//! Property tests for transform composition: chaining `t2 ∘ t1` is
//! step-for-step equivalent to applying `t1` then `t2`, and composition is
//! associative — any parenthesization of a chain yields the same sequence
//! and the same verification verdict.

use proptest::prelude::*;
use routelab_core::model::CommModel;
use routelab_realize::compose::{apply_chain, apply_edge};
use routelab_realize::plan::{fair_prefix, plan_route};
use routelab_realize::registry::Registry;
use routelab_realize::verify::report_for;
use routelab_spp::generator::{random_instance, RandomSppConfig};
use routelab_spp::SppInstance;

fn arb_instance() -> impl Strategy<Value = SppInstance> {
    (2usize..7, 0usize..5, 0u64..5_000).prop_map(|(nodes, extra, seed)| {
        random_instance(&RandomSppConfig {
            nodes,
            extra_edges: extra,
            max_paths_per_node: 4,
            max_path_len: 5,
            seed,
        })
        .expect("generator output validates")
    })
}

/// A random ordered model pair that the planner can bridge with at least
/// two stages (so splitting the chain is meaningful).
fn arb_routed_pair() -> impl Strategy<Value = (CommModel, CommModel)> {
    let pairs: Vec<(CommModel, CommModel)> = CommModel::all()
        .into_iter()
        .flat_map(|a| CommModel::all().into_iter().map(move |b| (a, b)))
        .filter(|(a, b)| {
            plan_route(Registry::global(), *a, *b).map(|r| r.steps.len() >= 2).unwrap_or(false)
        })
        .collect();
    let n = pairs.len();
    (0..n).prop_map(move |i| pairs[i])
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn chaining_equals_sequential_application(
        inst in arb_instance(),
        (from, to) in arb_routed_pair(),
        steps in 1usize..16,
    ) {
        let route = plan_route(Registry::global(), from, to).expect("pair is routed");
        let edges = route.edges();
        let seq = fair_prefix(&inst, from, steps);

        let chained = apply_chain(&inst, &seq, &edges).expect("chain applies");
        // Fold the edges one at a time by hand.
        let mut cur = seq.clone();
        let mut claimed = routelab_core::lattice::Strength::Exact;
        let mut lossless = true;
        for e in &edges {
            let out = apply_edge(e, &inst, &cur).expect("edge applies");
            cur = out.seq;
            claimed = claimed.min(out.claimed);
            lossless = lossless && out.lossless;
        }
        prop_assert_eq!(&chained.seq, &cur, "step-for-step mismatch {} -> {}", from, to);
        prop_assert_eq!(chained.claimed, claimed);
        prop_assert_eq!(chained.lossless, lossless);
    }

    #[test]
    fn composition_is_associative_on_sequences_and_verdicts(
        inst in arb_instance(),
        (from, to) in arb_routed_pair(),
        steps in 1usize..12,
        cut_seed in 0usize..64,
    ) {
        let route = plan_route(Registry::global(), from, to).expect("pair is routed");
        let edges = route.edges();
        let seq = fair_prefix(&inst, from, steps);

        // Whole chain in one go …
        let whole = apply_chain(&inst, &seq, &edges).expect("chain applies");
        // … versus split at an arbitrary interior point and re-associated.
        let cut = 1 + cut_seed % (edges.len() - 1);
        let first = apply_chain(&inst, &seq, &edges[..cut]).expect("prefix applies");
        let second = apply_chain(&inst, &first.seq, &edges[cut..]).expect("suffix applies");

        prop_assert_eq!(&whole.seq, &second.seq, "associativity broken at cut {}", cut);
        prop_assert_eq!(whole.claimed, first.claimed.min(second.claimed));
        prop_assert_eq!(whole.lossless, first.lossless && second.lossless);

        // The verification verdict is identical however the chain was built.
        let r_whole =
            report_for(&inst, &seq, &whole.seq, from, to, whole.claimed, whole.lossless);
        let r_split = report_for(
            &inst,
            &seq,
            &second.seq,
            from,
            to,
            first.claimed.min(second.claimed),
            first.lossless && second.lossless,
        );
        prop_assert_eq!(r_whole.holds(), r_split.holds());
        prop_assert_eq!(r_whole.achieved, r_split.achieved);
        prop_assert!(r_whole.holds(), "{}", r_whole);
    }
}

//! Differential suite for the realization-lattice planner: every ordered
//! pair of the 24 communication models is decided, every route the planner
//! claims is validated end to end by `realize::verify` semantics on the full
//! gadget library, and every `NoRoute` verdict is closure-sound.

use routelab_core::closure::derive_bounds;
use routelab_core::edges::foundational_facts;
use routelab_core::model::CommModel;
use routelab_realize::plan::{fair_prefix, plan_route, verify_route};
use routelab_realize::registry::Registry;
use routelab_spp::gadgets;

#[test]
fn planner_decides_all_576_ordered_pairs() {
    let reg = Registry::global();
    let mut reachable = 0;
    let mut unreachable = 0;
    for from in CommModel::all() {
        for to in CommModel::all() {
            match plan_route(reg, from, to) {
                Ok(route) => {
                    assert_eq!(route.from, from);
                    assert_eq!(route.to, to);
                    // The route is a contiguous chain through the lattice.
                    let mut cur = from;
                    for step in &route.steps {
                        assert_eq!(step.edge.realized, cur, "{route}");
                        cur = step.edge.realizer;
                    }
                    assert_eq!(cur, to, "{route}");
                    reachable += 1;
                }
                Err(e) => {
                    assert_eq!((e.from, e.to), (from, to));
                    unreachable += 1;
                }
            }
        }
    }
    assert_eq!(reachable + unreachable, 576);
    // The 24 trivial pairs are reachable; plenty of real routes exist too.
    assert!(reachable > 24, "only {reachable} reachable pairs");
    assert!(unreachable > 0, "Thm 3.8 pairs must be unreachable");
}

#[test]
fn every_reachable_route_verifies_on_the_full_gadget_library() {
    let reg = Registry::global();
    let corpus = gadgets::corpus();
    let mut verified = 0;
    for from in CommModel::all() {
        for to in CommModel::all() {
            let Ok(route) = plan_route(reg, from, to) else { continue };
            for (name, inst) in &corpus {
                let seq = fair_prefix(inst, from, 3 * inst.node_count());
                let report = verify_route(inst, &seq, &route)
                    .unwrap_or_else(|e| panic!("{name}: {route}: {e}"));
                assert!(report.holds(), "{name}: {route}: {report}");
                assert_eq!(report.claimed, route.bottleneck(), "{name}: {route}");
                verified += 1;
            }
        }
    }
    // Every reachable ordered pair times every corpus gadget was verified.
    assert!(verified >= 24 * corpus.len(), "only {verified} verifications ran");
}

#[test]
fn unreachable_pairs_have_no_single_registered_edge() {
    // Closure soundness of NoRoute: if no composite chain exists, then in
    // particular no single registered transform may bridge the pair.
    let reg = Registry::global();
    for from in CommModel::all() {
        for to in CommModel::all() {
            if plan_route(reg, from, to).is_ok() {
                continue;
            }
            for (name, edge) in reg.transform_arcs() {
                assert!(
                    !(edge.realized == from && edge.realizer == to),
                    "{from} -> {to}: NoRoute, but `{name}` bridges it directly"
                );
            }
        }
    }
}

#[test]
fn planner_reachability_and_bottlenecks_match_the_positive_closure() {
    // The planner must agree exactly with the derived closure of the
    // paper's foundational facts: reachable iff lower bound > 0, and the
    // route's bottleneck strength equals the lower bound.
    let reg = Registry::global();
    let bounds = derive_bounds(&foundational_facts());
    for from in CommModel::all() {
        for to in CommModel::all() {
            if from == to {
                continue;
            }
            let lower = bounds.get(from, to).lower;
            match plan_route(reg, from, to) {
                Ok(route) => {
                    assert_eq!(
                        route.bottleneck().level(),
                        lower,
                        "{from} -> {to}: planner bottleneck vs closure lower bound"
                    );
                }
                Err(_) => assert_eq!(lower, 0, "{from} -> {to}: closure reachable, planner not"),
            }
        }
    }
}

#[test]
fn compose_plan_facade_agrees_with_the_planner() {
    let reg = Registry::global();
    for from in CommModel::all() {
        for to in CommModel::all() {
            let via_compose = routelab_realize::compose::plan(from, to);
            let via_planner = plan_route(reg, from, to).ok().map(|r| r.edges());
            assert_eq!(via_compose, via_planner, "{from} -> {to}");
        }
    }
}

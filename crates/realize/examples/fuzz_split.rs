//! Randomized conformance scan for the Theorem 3.5 splitting construction:
//! random instances × random fair lossy UMF schedules, each transformed into
//! U1F and checked for the claimed repetition relation. Prints the first
//! counterexample in full, or `scan done`.

use routelab_core::MessagePolicy;
use routelab_engine::runner::Runner;
use routelab_engine::schedule::{RandomFair, Scheduler};
use routelab_engine::trace::{strongest_relation, TraceRelation};
use routelab_realize::transform::split_m_to_1;
use routelab_spp::generator::{random_instance, RandomSppConfig};

fn main() {
    'outer: for nodes in 3..6 {
        for iseed in 0..100u64 {
            let inst = random_instance(&RandomSppConfig {
                nodes,
                extra_edges: 2,
                max_paths_per_node: 3,
                max_path_len: 5,
                seed: iseed,
            })
            .unwrap();
            for sseed in 0..30u64 {
                let mut sched =
                    RandomFair::new(&inst, "UMF".parse().unwrap(), sseed).with_drop_prob(0.3);
                let mut runner = Runner::new(&inst);
                let mut seq = Vec::new();
                for _ in 0..3 * inst.node_count() {
                    let s = sched.next_step(&runner.state()).unwrap();
                    runner.step(&s);
                    seq.push(s);
                }
                let out = split_m_to_1(&inst, &seq, MessagePolicy::Forced).unwrap();
                if !out.lossless {
                    continue;
                }
                let base = Runner::trace_of(&inst, &seq);
                let cand = Runner::trace_of(&inst, &out.seq);
                let rel = strongest_relation(&base, &cand);
                if rel < TraceRelation::Repetition {
                    println!("FAIL nodes={nodes} iseed={iseed} sseed={sseed} rel={rel:?}");
                    println!("{inst}");
                    for (t, s) in seq.iter().enumerate() {
                        println!("M step {t}: {s}");
                    }
                    println!("base:\n{}", base.render(&inst));
                    for (t, s) in out.seq.iter().enumerate() {
                        println!("1 step {t}: {s}");
                    }
                    println!("cand:\n{}", cand.render(&inst));
                    break 'outer;
                }
            }
        }
    }
    println!("scan done");
}

//! The transformation algorithms behind the paper's positive results.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use routelab_core::lattice::Strength;
use routelab_core::step::{ActivationSeq, ActivationStep, ChannelAction, NodeUpdate, Take};
use routelab_core::MessagePolicy;
use routelab_engine::index::ChannelIndex;
use routelab_engine::runner::{Runner, StateView};
use routelab_spp::{Channel, SppInstance};

/// Failure modes of a transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TransformError {
    /// The input step updates several nodes; the taxonomy transforms assume
    /// `|U| = 1`.
    MultiNodeStep { step: usize },
    /// The input step does not have the shape its source model requires
    /// (e.g. several channels where scope `1` is expected).
    BadSourceShape { step: usize, reason: &'static str },
    /// Internal invariant broken — indicates a bug, surfaced loudly.
    Internal { step: usize, reason: &'static str },
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::MultiNodeStep { step } => {
                write!(f, "step {step} updates multiple nodes")
            }
            TransformError::BadSourceShape { step, reason } => {
                write!(f, "step {step} has the wrong shape for the source model: {reason}")
            }
            TransformError::Internal { step, reason } => {
                write!(f, "internal invariant broken at step {step}: {reason}")
            }
        }
    }
}

impl Error for TransformError {}

/// A transformed sequence plus bookkeeping.
#[derive(Debug, Clone)]
pub struct TransformOutput {
    /// The activation sequence for the target model.
    pub seq: ActivationSeq,
    /// The trace relation the construction guarantees.
    pub claimed: Strength,
    /// `false` when a source no-op step could not be represented in the
    /// target model (no empty channel was available for a padding read) and
    /// was skipped; the claimed relation may then fail on traces that
    /// stutter at exactly that point.
    pub lossless: bool,
}

fn single(step: &ActivationStep, t: usize) -> Result<&NodeUpdate, TransformError> {
    match step.updates.as_slice() {
        [u] => Ok(u),
        _ => Err(TransformError::MultiNodeStep { step: t }),
    }
}

/// Finds a state-preserving step for the given message policy: a read on an
/// empty channel (policies `O`/`F`/`A`) or an `f = 0` read anywhere (`S`).
fn noop_step(
    state: StateView<'_>,
    index: &ChannelIndex,
    policy: MessagePolicy,
) -> Option<ActivationStep> {
    // A step is state-preserving only if the activated node has nothing
    // pending to announce (before its first activation the destination owes
    // its bootstrap announcement) and, unless the policy admits `f = 0`,
    // the targeted channel is empty.
    let settled = |c: &Channel| state.chosen(c.to) == state.announced(c.to);
    if policy == MessagePolicy::Some {
        let cid = (0..index.len()).find(|&cid| settled(&index.channel(cid)))?;
        let c = index.channel(cid);
        return Some(ActivationStep::single(NodeUpdate::new(c.to, vec![ChannelAction::skip(c)])));
    }
    let cid = (0..index.len())
        .find(|&cid| state.queue(cid).is_empty() && settled(&index.channel(cid)))?;
    let c = index.channel(cid);
    let action = match policy {
        MessagePolicy::All => ChannelAction::read_all(c),
        _ => ChannelAction::read_one(c),
    };
    Some(ActivationStep::single(NodeUpdate::new(c.to, vec![action])))
}

/// Proposition 3.3: the identity embedding. The sequence is returned as-is;
/// it is already syntactically legal in the stronger model.
pub fn identity(
    _inst: &SppInstance,
    seq: &ActivationSeq,
) -> Result<TransformOutput, TransformError> {
    Ok(TransformOutput { seq: seq.clone(), claimed: Strength::Exact, lossless: true })
}

/// Proposition 3.4: `wES` exactly realizes `wMS`. Every update is padded
/// with `f = 0` actions on its unprocessed channels, so scope `E` holds and
/// no extra message is touched.
pub fn pad_m_to_e(
    inst: &SppInstance,
    seq: &ActivationSeq,
) -> Result<TransformOutput, TransformError> {
    let index = ChannelIndex::new(inst.graph());
    let mut out = Vec::with_capacity(seq.len());
    for (t, step) in seq.iter().enumerate() {
        let u = single(step, t)?;
        let mut actions = u.actions.clone();
        for &cid in index.in_channels(u.node) {
            let c = index.channel(cid);
            if !actions.iter().any(|a| a.channel() == c) {
                actions.push(ChannelAction::skip(c));
            }
        }
        out.push(ActivationStep::single(NodeUpdate::new(u.node, actions)));
    }
    Ok(TransformOutput { seq: out, claimed: Strength::Exact, lossless: true })
}

/// Theorem 3.5: `w1y` realizes `wMy` with repetition. Each multi-channel
/// update is split into single-channel updates, ordered so that the channel
/// providing the *new* best path comes first and the channel that provided
/// the *old* best path comes last (with the proof's tie rule when they
/// coincide), which guarantees at most one π change across the split.
///
/// `policy` is the shared message dimension `y` (used to shape the
/// state-preserving steps that stand in for empty `wMy` updates).
pub fn split_m_to_1(
    inst: &SppInstance,
    seq: &ActivationSeq,
    policy: MessagePolicy,
) -> Result<TransformOutput, TransformError> {
    let index = ChannelIndex::new(inst.graph());
    let mut source = Runner::new(inst); // the wMy execution
    let mut target = Runner::new(inst); // the w1y execution being built
    let mut out = Vec::new();
    let mut lossless = true;

    for (t, step) in seq.iter().enumerate() {
        let u = single(step, t)?;
        let v = u.node;
        let before = source.state().chosen(v).clone();
        let mut probe = source.clone();
        probe.step(step);
        let after = probe.state().chosen(v).clone();

        let chan_of = |route: &routelab_spp::Route| {
            route.as_path().and_then(|p| p.next_hop()).map(|nh| Channel::new(nh, v))
        };
        let c_new = chan_of(&after);
        let c_old = chan_of(&before);

        let mut actions = u.actions.clone();
        if actions.is_empty() {
            // An empty wMy update still re-chooses and may announce (the
            // destination's bootstrap!), so the SAME node must activate:
            // under policy S an `f = 0` read works on any channel; otherwise
            // pick an empty in-channel so no message is consumed.
            let action = if policy == MessagePolicy::Some {
                index.in_channels(v).first().map(|&c| ChannelAction::skip(index.channel(c)))
            } else {
                index
                    .in_channels(v)
                    .iter()
                    .copied()
                    .find(|&c| target.state().queue(c).is_empty())
                    .map(|c| match policy {
                        MessagePolicy::All => ChannelAction::read_all(index.channel(c)),
                        _ => ChannelAction::read_one(index.channel(c)),
                    })
            };
            match action {
                Some(a) => {
                    let s = ActivationStep::single(NodeUpdate::new(v, vec![a]));
                    target.step(&s);
                    out.push(s);
                }
                None => lossless = false,
            }
        } else {
            // Order: new-best channel first, old-best channel last; when
            // they coincide, first iff the new path is weakly preferred.
            let rank_of = |route: &routelab_spp::Route| {
                route.as_path().and_then(|p| inst.rank(v, p)).unwrap_or(u32::MAX)
            };
            let first = match (c_new, c_old) {
                (Some(cn), Some(co)) if cn == co => {
                    if rank_of(&after) <= rank_of(&before) {
                        Some(cn)
                    } else {
                        None
                    }
                }
                (cn, _) => cn,
            };
            let last = match (c_new, c_old) {
                (Some(cn), Some(co)) if cn == co => {
                    if rank_of(&after) > rank_of(&before) {
                        Some(co)
                    } else {
                        None
                    }
                }
                (_, co) => co,
            };
            actions.sort_by_key(|a| {
                if Some(a.channel()) == first {
                    (0, a.channel())
                } else if Some(a.channel()) == last {
                    (2, a.channel())
                } else {
                    (1, a.channel())
                }
            });
            for a in actions {
                let s = ActivationStep::single(NodeUpdate::new(v, vec![a]));
                target.step(&s);
                out.push(s);
            }
        }
        source.step(step);
    }
    Ok(TransformOutput { seq: out, claimed: Strength::Repetition, lossless })
}

/// Proposition 3.6, reliable case: `R1O` realizes `R1S` as a subsequence.
///
/// The construction simulates both systems. Messages in the R1O channels
/// carry a *flag* marking them as counterparts of R1S messages (a node's
/// intermediate announcements within a split batch are unflagged). An R1S
/// read of `f` messages becomes single reads up to and including the `f`-th
/// flagged message; the batch's final announcement is flagged exactly when
/// the R1S system announces.
pub fn flag_r1s_to_r1o(
    inst: &SppInstance,
    seq: &ActivationSeq,
) -> Result<TransformOutput, TransformError> {
    let index = ChannelIndex::new(inst.graph());
    let mut s_sim = Runner::new(inst); // R1S reference execution
    let mut o_sim = Runner::new(inst); // R1O execution being built
    let mut flags: Vec<VecDeque<bool>> = vec![VecDeque::new(); index.len()];
    let mut out = Vec::new();
    let mut lossless = true;

    for (t, step) in seq.iter().enumerate() {
        if !lossless {
            // A skipped unrepresentable step desynchronized the two systems;
            // the flags are no longer trustworthy, so stop extending the
            // output (the caller sees `lossless = false`).
            break;
        }
        let u = single(step, t)?;
        let v = u.node;
        let [action] = u.actions.as_slice() else {
            return Err(TransformError::BadSourceShape {
                step: t,
                reason: "R1S updates process exactly one channel",
            });
        };
        if !action.is_lossless() {
            return Err(TransformError::BadSourceShape { step: t, reason: "R1S never drops" });
        }
        let cid = index
            .id(action.channel())
            .ok_or(TransformError::Internal { step: t, reason: "unknown channel" })?;
        let m_s = s_sim.state().queue(cid).len();
        let i = match action.take() {
            Take::All => m_s,
            Take::Count(k) => (k as usize).min(m_s),
        };
        // Advance the reference R1S system; whether it *announced* decides
        // which R1O announcement (if any) gets flagged below. (Announcing
        // with an unchanged π happens exactly once: the destination's
        // bootstrap.)
        let s_announced = s_sim.step(step).sent > 0;
        let mut o_announced_for_v = false;

        if i == 0 {
            if s_announced {
                // v must activate so the R1O system announces too; pick a
                // read that cannot consume a flagged message.
                let pick = index
                    .in_channels(v)
                    .iter()
                    .copied()
                    .find(|&c| o_sim.state().queue(c).is_empty())
                    .or_else(|| {
                        index
                            .in_channels(v)
                            .iter()
                            .copied()
                            .find(|&c| flags[c].front() == Some(&false))
                    });
                match pick {
                    Some(pc) => {
                        let s = ActivationStep::single(NodeUpdate::new(
                            v,
                            vec![ChannelAction::read_one(index.channel(pc))],
                        ));
                        let effect = o_sim.step(&s);
                        if effect.consumed == 1 {
                            flags[pc].pop_front();
                        }
                        if effect.sent > 0 {
                            for &oc in index.out_channels(v) {
                                flags[oc].push_back(false);
                            }
                            o_announced_for_v = true;
                        }
                        out.push(s);
                    }
                    None => lossless = false,
                }
            } else {
                // A pure no-op in R1S; mirror it to keep trace stutter.
                match noop_step(o_sim.state(), &index, MessagePolicy::One) {
                    Some(s) => {
                        o_sim.step(&s);
                        out.push(s);
                    }
                    None => lossless = false,
                }
            }
        } else {
            let mut flagged_consumed = 0;
            while flagged_consumed < i {
                let fl = flags[cid].pop_front().ok_or(TransformError::Internal {
                    step: t,
                    reason: "flag queue drained before enough flagged messages",
                })?;
                let s = ActivationStep::single(NodeUpdate::new(
                    v,
                    vec![ChannelAction::read_one(action.channel())],
                ));
                let effect = o_sim.step(&s);
                if effect.consumed != 1 {
                    return Err(TransformError::Internal {
                        step: t,
                        reason: "R1O read consumed nothing despite pending flags",
                    });
                }
                if effect.sent > 0 {
                    for &oc in index.out_channels(v) {
                        flags[oc].push_back(false);
                    }
                    o_announced_for_v = true;
                }
                out.push(s);
                if fl {
                    flagged_consumed += 1;
                }
            }
        }

        // Flag v's final in-batch announcement exactly when R1S announced.
        if s_announced && o_announced_for_v {
            for &oc in index.out_channels(v) {
                if let Some(last) = flags[oc].back_mut() {
                    *last = true;
                }
            }
        } else if s_announced && lossless {
            return Err(TransformError::Internal {
                step: t,
                reason: "R1S announced but the R1O batch did not",
            });
        }

        // Invariant: on every channel the flagged messages of the R1O run
        // mirror the R1S channel contents one for one.
        if lossless && cfg!(debug_assertions) {
            for (c, channel_flags) in flags.iter().enumerate().take(index.len()) {
                debug_assert_eq!(
                    channel_flags.iter().filter(|&&f| f).count(),
                    s_sim.state().queue(c).len(),
                    "flag bookkeeping broken on channel {c} after step {t}"
                );
            }
        }
    }
    Ok(TransformOutput { seq: out, claimed: Strength::Subsequence, lossless })
}

/// Proposition 3.6, unreliable case: `U1O` realizes `U1S` with repetition.
/// A batch read of `f` messages becomes `f` single reads in which every
/// message except the one the U1S system actually uses is dropped.
pub fn elide_u1s_to_u1o(
    inst: &SppInstance,
    seq: &ActivationSeq,
) -> Result<TransformOutput, TransformError> {
    let index = ChannelIndex::new(inst.graph());
    let mut sim = Runner::new(inst); // the U1S execution (the U1O one is identical state-wise)
    let mut out = Vec::new();
    let mut lossless = true;

    for (t, step) in seq.iter().enumerate() {
        let u = single(step, t)?;
        let v = u.node;
        let [action] = u.actions.as_slice() else {
            return Err(TransformError::BadSourceShape {
                step: t,
                reason: "U1S updates process exactly one channel",
            });
        };
        let cid = index
            .id(action.channel())
            .ok_or(TransformError::Internal { step: t, reason: "unknown channel" })?;
        let m = sim.state().queue(cid).len();
        let i = match action.take() {
            Take::All => m,
            Take::Count(k) => (k as usize).min(m),
        };
        // The used message: largest index in 1..=i not dropped.
        let j = (1..=i).rev().find(|idx| !action.drops().contains(&(*idx as u32)));

        if i == 0 {
            if m == 0 {
                // The channel is empty in both systems: a single read is a
                // perfect mirror (it also fires any pending bootstrap
                // announcement, since it activates the same node).
                out.push(ActivationStep::single(NodeUpdate::new(
                    v,
                    vec![ChannelAction::read_one(action.channel())],
                )));
            } else {
                // f = 0 on a non-empty channel: U1O cannot read nothing from
                // it, so activate v through one of its empty channels (or
                // any no-op when v has nothing pending).
                let pending = sim.state().chosen(v) != sim.state().announced(v);
                let pick =
                    index.in_channels(v).iter().copied().find(|&c| sim.state().queue(c).is_empty());
                match (pending, pick) {
                    (_, Some(pc)) => out.push(ActivationStep::single(NodeUpdate::new(
                        v,
                        vec![ChannelAction::read_one(index.channel(pc))],
                    ))),
                    (false, None) => match noop_step(sim.state(), &index, MessagePolicy::One) {
                        Some(s) => out.push(s),
                        None => lossless = false,
                    },
                    (true, None) => lossless = false,
                }
            }
        } else {
            for r in 1..=i {
                let a = if Some(r) == j {
                    ChannelAction::read_one(action.channel())
                } else {
                    ChannelAction::drop_one(action.channel())
                };
                out.push(ActivationStep::single(NodeUpdate::new(v, vec![a])));
            }
        }
        sim.step(step);
    }
    Ok(TransformOutput { seq: out, claimed: Strength::Repetition, lossless })
}

/// Theorem 3.7: `R1S` exactly realizes `U1O`. Dropped reads become `f = 0`
/// reads; a kept read consumes the accumulated backlog of messages the U1O
/// system dropped, learning exactly the message U1O kept.
pub fn coalesce_u1o_to_r1s(
    inst: &SppInstance,
    seq: &ActivationSeq,
) -> Result<TransformOutput, TransformError> {
    let index = ChannelIndex::new(inst.graph());
    let mut sim = Runner::new(inst); // the U1O execution
    let mut backlog = vec![0u32; index.len()];
    let mut out = Vec::with_capacity(seq.len());

    for (t, step) in seq.iter().enumerate() {
        let u = single(step, t)?;
        let v = u.node;
        let [action] = u.actions.as_slice() else {
            return Err(TransformError::BadSourceShape {
                step: t,
                reason: "U1O updates process exactly one channel",
            });
        };
        if action.take() != Take::Count(1) {
            return Err(TransformError::BadSourceShape {
                step: t,
                reason: "U1O reads exactly one message",
            });
        }
        let cid = index
            .id(action.channel())
            .ok_or(TransformError::Internal { step: t, reason: "unknown channel" })?;
        let effect = sim.step(step);
        let dropped = !action.is_lossless();
        let a = if effect.consumed == 0 {
            // Empty channel in U1O: nothing happened; R1S reads nothing.
            ChannelAction::skip(action.channel())
        } else if dropped {
            backlog[cid] += 1;
            ChannelAction::skip(action.channel())
        } else {
            let k = backlog[cid] + 1;
            backlog[cid] = 0;
            ChannelAction::read_count(action.channel(), k)
        };
        out.push(ActivationStep::single(NodeUpdate::new(v, vec![a])));
    }
    Ok(TransformOutput { seq: out, claimed: Strength::Exact, lossless: true })
}

#[cfg(test)]
mod tests {
    use super::*;
    use routelab_engine::paper_runs::{self, r1o_step};
    use routelab_engine::trace::{strongest_relation, TraceRelation};
    use routelab_spp::gadgets;
    use routelab_spp::Channel;

    #[test]
    fn identity_is_identity() {
        let (run, _) = paper_runs::a2_reo();
        let out = identity(&run.instance, &run.seq).unwrap();
        assert_eq!(out.seq, run.seq);
        assert_eq!(out.claimed, Strength::Exact);
    }

    #[test]
    fn pad_produces_exact_trace() {
        // A.1's R1O script is a legal RMO (and R1S ⊂ RMS) shape; pad it to
        // scope E and check exactness.
        let (run, _) = paper_runs::a1_r1o();
        let out = pad_m_to_e(&run.instance, &run.seq).unwrap();
        let base = Runner::trace_of(&run.instance, &run.seq);
        let cand = Runner::trace_of(&run.instance, &out.seq);
        assert_eq!(strongest_relation(&base, &cand), TraceRelation::Exact);
        // Every padded update now covers all channels of its node.
        for step in &out.seq {
            let u = &step.updates[0];
            assert_eq!(u.actions.len(), run.instance.graph().degree(u.node));
        }
    }

    #[test]
    fn split_rea_run_with_repetition() {
        // The REA scripts of A.4/A.5 are legal RMA sequences; split them to
        // R1A and check the repetition relation.
        for run in [paper_runs::a4_rea(), paper_runs::a5_rea()] {
            let out = split_m_to_1(&run.instance, &run.seq, MessagePolicy::All).unwrap();
            assert!(out.lossless);
            let base = Runner::trace_of(&run.instance, &run.seq);
            let cand = Runner::trace_of(&run.instance, &out.seq);
            let rel = strongest_relation(&base, &cand);
            assert!(
                rel >= TraceRelation::Repetition,
                "{}: got {rel:?}\nbase:\n{}cand:\n{}",
                run.name,
                base.render(&run.instance),
                cand.render(&run.instance)
            );
            // Each output step reads exactly one channel.
            for s in &out.seq {
                assert_eq!(s.actions().count(), 1);
            }
        }
    }

    #[test]
    fn flag_construction_on_batched_reads() {
        // Build an R1S run on FIG8 that batches two messages in one read —
        // precisely the situation of Example A.4 — and realize it in R1O.
        let inst = gadgets::fig8();
        let seq = vec![
            r1o_step(&inst, "d", "a"),
            r1o_step(&inst, "a", "d"),
            r1o_step(&inst, "u", "a"),
            r1o_step(&inst, "b", "d"),
            r1o_step(&inst, "u", "b"),
            // s reads BOTH of u's announcements in one R1S batch:
            batch(&inst, "s", "u", 2),
        ];
        let out = flag_r1s_to_r1o(&inst, &seq).unwrap();
        assert!(out.lossless);
        let base = Runner::trace_of(&inst, &seq);
        let cand = Runner::trace_of(&inst, &out.seq);
        let rel = strongest_relation(&base, &cand);
        assert!(
            rel >= TraceRelation::Subsequence,
            "got {rel:?}\nbase:\n{}cand:\n{}",
            base.render(&inst),
            cand.render(&inst)
        );
        // The R1O run passes through suad — the extra state of Example A.4.
        let suad = inst.parse_path("suad").unwrap();
        let s = inst.node_by_name("s").unwrap();
        assert!(
            cand.iter().any(|pi| pi[s.index()].as_path() == Some(&suad)),
            "R1O realization must pass through suad"
        );
    }

    fn batch(inst: &SppInstance, node: &str, from: &str, k: u32) -> ActivationStep {
        let v = inst.node_by_name(node).unwrap();
        let u = inst.node_by_name(from).unwrap();
        ActivationStep::single(NodeUpdate::new(
            v,
            vec![ChannelAction::read_count(Channel::new(u, v), k)],
        ))
    }

    #[test]
    fn elide_drops_everything_but_the_used_message() {
        let inst = gadgets::fig8();
        // Same batched run as above, but as U1S (drops allowed; none used).
        let seq = vec![
            r1o_step(&inst, "d", "a"),
            r1o_step(&inst, "a", "d"),
            r1o_step(&inst, "u", "a"),
            r1o_step(&inst, "b", "d"),
            r1o_step(&inst, "u", "b"),
            batch(&inst, "s", "u", 2),
        ];
        let out = elide_u1s_to_u1o(&inst, &seq).unwrap();
        assert!(out.lossless);
        let base = Runner::trace_of(&inst, &seq);
        let cand = Runner::trace_of(&inst, &out.seq);
        let rel = strongest_relation(&base, &cand);
        assert!(rel >= TraceRelation::Repetition, "got {rel:?}");
        // s must never pass through suad here: the intermediate uad message
        // is dropped, not processed.
        let suad = inst.parse_path("suad").unwrap();
        let s = inst.node_by_name("s").unwrap();
        assert!(cand.iter().all(|pi| pi[s.index()].as_path() != Some(&suad)));
    }

    #[test]
    fn coalesce_is_exact() {
        let inst = gadgets::disagree();
        // A U1O run where x's first read of d's announcement is dropped and
        // a later one is kept.
        let drop = |node: &str, from: &str| {
            let v = inst.node_by_name(node).unwrap();
            let u = inst.node_by_name(from).unwrap();
            ActivationStep::single(NodeUpdate::new(
                v,
                vec![ChannelAction::drop_one(Channel::new(u, v))],
            ))
        };
        let seq = vec![
            r1o_step(&inst, "d", "x"), // d announces
            drop("x", "d"),            // x drops d's announcement
            r1o_step(&inst, "y", "d"), // y learns d -> yd, announces
            r1o_step(&inst, "x", "y"), // x learns yd -> xyd
            r1o_step(&inst, "x", "d"), // empty now: the dropped message is gone
        ];
        let out = coalesce_u1o_to_r1s(&inst, &seq).unwrap();
        let base = Runner::trace_of(&inst, &seq);
        let cand = Runner::trace_of(&inst, &out.seq);
        assert_eq!(
            strongest_relation(&base, &cand),
            TraceRelation::Exact,
            "base:\n{}cand:\n{}",
            base.render(&inst),
            cand.render(&inst)
        );
    }

    #[test]
    fn coalesce_consumes_backlog() {
        let inst = gadgets::fig8();
        // u announces twice into (u, s); U1O drops the first and keeps the
        // second; the R1S realization must read both in one f=2 batch.
        let seq = vec![
            r1o_step(&inst, "d", "a"),
            r1o_step(&inst, "a", "d"),
            r1o_step(&inst, "u", "a"),
            r1o_step(&inst, "b", "d"),
            r1o_step(&inst, "u", "b"),
            {
                let s = inst.node_by_name("s").unwrap();
                let u = inst.node_by_name("u").unwrap();
                ActivationStep::single(NodeUpdate::new(
                    s,
                    vec![ChannelAction::drop_one(Channel::new(u, s))],
                ))
            },
            r1o_step(&inst, "s", "u"),
        ];
        let out = coalesce_u1o_to_r1s(&inst, &seq).unwrap();
        let base = Runner::trace_of(&inst, &seq);
        let cand = Runner::trace_of(&inst, &out.seq);
        assert_eq!(strongest_relation(&base, &cand), TraceRelation::Exact);
        // The final R1S action must be an f=2 batch.
        let last = out.seq.last().unwrap().actions().next().unwrap().clone();
        assert_eq!(last.take(), Take::Count(2));
        // And the realized system ends on subd (u's latest), not suad.
        let s = inst.node_by_name("s").unwrap();
        assert_eq!(inst.fmt_route(&cand.last().unwrap()[s.index()]), "subd");
    }

    #[test]
    fn multi_node_steps_rejected() {
        let (inst, boot, _) = paper_runs::a6_multinode();
        let err = pad_m_to_e(&inst, &boot).unwrap_err();
        assert!(matches!(err, TransformError::MultiNodeStep { step: 1 }));
        assert!(err.to_string().contains("multiple nodes"));
    }

    #[test]
    fn bad_shapes_rejected() {
        let inst = gadgets::disagree();
        let x = inst.node_by_name("x").unwrap();
        let two_channels = ActivationStep::single(NodeUpdate::new(
            x,
            inst.graph()
                .neighbors(x)
                .iter()
                .map(|&u| ChannelAction::read_one(Channel::new(u, x)))
                .collect(),
        ));
        let seq = vec![two_channels];
        assert!(matches!(flag_r1s_to_r1o(&inst, &seq), Err(TransformError::BadSourceShape { .. })));
        assert!(matches!(
            coalesce_u1o_to_r1s(&inst, &seq),
            Err(TransformError::BadSourceShape { .. })
        ));
        assert!(matches!(
            elide_u1s_to_u1o(&inst, &seq),
            Err(TransformError::BadSourceShape { .. })
        ));
    }
}

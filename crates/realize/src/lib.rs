//! Constructive realization transformations between communication models.
//!
//! The paper's positive results (Sec. 3.2) are proved by exhibiting, for an
//! activation sequence in model `A`, an activation sequence in model `B`
//! whose path-assignment trace realizes the original exactly, with
//! repetition, or as a subsequence. This crate implements those proofs as
//! executable algorithms:
//!
//! * [`transform::pad_m_to_e`] — Prop 3.4 (`wMS` inside `wES`),
//! * [`transform::split_m_to_1`] — Thm 3.5 (`wMy` inside `w1y`, with
//!   repetition, using the c-first/d-last channel ordering),
//! * [`transform::flag_r1s_to_r1o`] — Prop 3.6 reliable case (`R1S` inside
//!   `R1O` as a subsequence, via message flagging),
//! * [`transform::elide_u1s_to_u1o`] — Prop 3.6 unreliable case (`U1S`
//!   inside `U1O` with repetition, dropping all but the used message),
//! * [`transform::coalesce_u1o_to_r1s`] — Thm 3.7 (`U1O` inside `R1S`
//!   exactly, coalescing dropped backlogs),
//! * identity embeddings for Prop 3.3 (weaker models are syntactic subsets).
//!
//! [`compose`] chains these along the strongest foundational path between
//! any two models, and [`verify`] checks end to end that the produced
//! sequence is legal in the target model and that the claimed trace relation
//! (Definition 3.2) actually holds.
//!
//! [`registry`] names every transform, gadget generator, and check under a
//! stable, versioned string identity, and [`plan`] builds two façades on
//! top: a realization-lattice planner ([`plan::plan_route`] /
//! [`plan::verify_route`]) and the composable `|`-separated pipeline
//! language behind `routelab pipeline`.
//!
//! # Example
//!
//! ```
//! use routelab_engine::paper_runs;
//! use routelab_realize::verify::verify_edge;
//! use routelab_realize::compose::TransformKind;
//!
//! // Run Example A.2's REO script, then realize it inside RMO (Prop 3.3).
//! let (run, _) = paper_runs::a2_reo();
//! let report = verify_edge(
//!     &run.instance,
//!     &run.seq,
//!     TransformKind::Identity,
//!     "REO".parse().unwrap(),
//!     "RMO".parse().unwrap(),
//! ).unwrap();
//! assert!(report.holds());
//! ```

pub mod compose;
pub mod plan;
pub mod registry;
pub mod transform;
pub mod verify;

pub use compose::{apply_chain, realize, Edge, TransformKind};
pub use plan::{plan_route, run_pipeline, NoRoute, PipelineError, Route};
pub use registry::{Registry, RegistryError};
pub use transform::{TransformError, TransformOutput};
pub use verify::{verify_edge, Report};

//! The named-transformation registry: every realization transform, gadget
//! generator, and check in the workspace registered under a stable string
//! name with a one-line description, model constraints, and a version tag.
//!
//! The registry is the single source of truth that the pipeline language
//! ([`crate::plan`]), the lattice planner, the `routelab` CLI, and the
//! experiment binaries all resolve names against — there is no second,
//! hardcoded transform table anywhere else. Each entry carries a
//! [`Entry::cache_key`] (`name@vN`, the identity-plus-version idiom of
//! memoized dataflow caches) so a future memoizing service can key cached
//! stage outputs by entry identity and invalidate them when an algorithm's
//! semantics change.
//!
//! ```
//! use routelab_realize::registry::{Registry, Resolved};
//!
//! let reg = Registry::global();
//! let Some(Resolved::Transform(split)) = reg.lookup("split") else { panic!() };
//! assert_eq!(split.meta.cache_key(), "split@v1");
//! // `split` realizes every wMy model inside w1y.
//! assert_eq!(split.edges().len(), 8);
//! ```

use std::fmt;
use std::sync::OnceLock;

use routelab_core::dims::{MessagePolicy, NeighborScope, Reliability};
use routelab_core::lattice::Strength;
use routelab_core::model::CommModel;
use routelab_spp::{gadgets, SppInstance};

use crate::compose::{foundational_edges, Edge, TransformKind};

/// What kind of pipeline stage an entry provides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// A realization transformation between communication models.
    Transform,
    /// A source of SPP instances (the gadget library and scaling families).
    Generator,
    /// A terminal validation stage.
    Check,
}

impl fmt::Display for EntryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EntryKind::Transform => "transform",
            EntryKind::Generator => "generator",
            EntryKind::Check => "check",
        };
        write!(f, "{s}")
    }
}

/// Metadata shared by every registry entry.
#[derive(Debug, Clone, Copy)]
pub struct Entry {
    /// Stable string name used in pipelines and plans.
    pub name: &'static str,
    /// The entry's stage kind.
    pub kind: EntryKind,
    /// One-line human description.
    pub description: &'static str,
    /// Version tag: bump whenever the algorithm's observable behavior
    /// changes, so memoized results keyed by [`Entry::cache_key`] are
    /// invalidated rather than silently reused.
    pub version: u32,
    /// Human-readable input constraint (model pattern or argument shape).
    pub input: &'static str,
    /// Human-readable output description.
    pub output: &'static str,
    /// The `crate::module::function` the entry dispatches to (consumed by
    /// `scripts/check_registry.py`, the drift gate).
    pub impl_path: &'static str,
}

impl Entry {
    /// The memoization identity of this entry: `name@vN`.
    pub fn cache_key(&self) -> String {
        format!("{}@v{}", self.name, self.version)
    }
}

/// A registered realization transformation and the lattice edges it covers.
#[derive(Debug, Clone)]
pub struct TransformEntry {
    /// Shared metadata.
    pub meta: Entry,
    /// The constructive algorithm behind every edge of this entry.
    pub kind: TransformKind,
    edges: Vec<Edge>,
}

impl TransformEntry {
    /// Every `(realized, realizer, strength)` lattice edge this transform
    /// covers.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The edges applicable when the current model is `from`.
    pub fn edges_from(&self, from: CommModel) -> Vec<Edge> {
        self.edges.iter().filter(|e| e.realized == from).copied().collect()
    }

    /// The weakest strength over this entry's edges (what a pipeline stage
    /// may claim without knowing the concrete edge yet).
    pub fn strength(&self) -> Strength {
        self.edges.iter().map(|e| e.strength).min().unwrap_or(Strength::Exact)
    }
}

/// How a generator entry builds instances.
#[derive(Debug, Clone, Copy)]
enum GenImpl {
    /// A fixed gadget from the library; takes no arguments.
    Fixed(fn() -> SppInstance),
    /// A one-parameter scaling family with an inclusive argument range.
    Param1 { make: fn(usize) -> SppInstance, min: usize, max: usize },
}

/// A registered instance source.
#[derive(Debug, Clone)]
pub struct GeneratorEntry {
    /// Shared metadata.
    pub meta: Entry,
    imp: GenImpl,
}

impl GeneratorEntry {
    /// Builds the instance, validating argument count and range.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::BadArgs`] when `args` does not match the
    /// generator's arity or range.
    pub fn build(&self, args: &[usize]) -> Result<SppInstance, RegistryError> {
        match self.imp {
            GenImpl::Fixed(make) => {
                if args.is_empty() {
                    Ok(make())
                } else {
                    Err(RegistryError::BadArgs {
                        name: self.meta.name,
                        reason: format!("takes no arguments, got {}", args.len()),
                    })
                }
            }
            GenImpl::Param1 { make, min, max } => match args {
                [n] if (min..=max).contains(n) => Ok(make(*n)),
                [n] => Err(RegistryError::BadArgs {
                    name: self.meta.name,
                    reason: format!("argument {n} outside {min}..={max}"),
                }),
                _ => Err(RegistryError::BadArgs {
                    name: self.meta.name,
                    reason: format!("takes exactly one argument, got {}", args.len()),
                }),
            },
        }
    }
}

/// A registered terminal check.
#[derive(Debug, Clone)]
pub struct CheckEntry {
    /// Shared metadata.
    pub meta: Entry,
}

/// A name-resolution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// No entry answers to the name.
    UnknownName {
        /// The offending name as written.
        name: String,
    },
    /// A generator was invoked with the wrong arguments.
    BadArgs {
        /// The entry name.
        name: &'static str,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownName { name } => {
                write!(f, "no registered transform, generator, or check named {name:?}")
            }
            RegistryError::BadArgs { name, reason } => write!(f, "{name}: {reason}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// A successful name lookup.
#[derive(Debug, Clone, Copy)]
pub enum Resolved<'a> {
    /// The name is a transform.
    Transform(&'a TransformEntry),
    /// The name is a generator.
    Generator(&'a GeneratorEntry),
    /// The name is a check.
    Check(&'a CheckEntry),
}

impl Resolved<'_> {
    /// The entry's shared metadata.
    pub fn meta(&self) -> &Entry {
        match self {
            Resolved::Transform(t) => &t.meta,
            Resolved::Generator(g) => &g.meta,
            Resolved::Check(c) => &c.meta,
        }
    }
}

/// The registry: ordered entry lists per kind (listing order is stable and
/// part of the `routelab transforms list` golden snapshot).
#[derive(Debug, Clone)]
pub struct Registry {
    transforms: Vec<TransformEntry>,
    generators: Vec<GeneratorEntry>,
    checks: Vec<CheckEntry>,
}

impl Registry {
    /// The process-wide shared registry.
    pub fn global() -> &'static Registry {
        static REG: OnceLock<Registry> = OnceLock::new();
        REG.get_or_init(Registry::build)
    }

    /// All registered transforms, in listing order.
    pub fn transforms(&self) -> &[TransformEntry] {
        &self.transforms
    }

    /// All registered generators, in listing order.
    pub fn generators(&self) -> &[GeneratorEntry] {
        &self.generators
    }

    /// All registered checks, in listing order.
    pub fn checks(&self) -> &[CheckEntry] {
        &self.checks
    }

    /// Every entry's metadata, transforms first.
    pub fn entries(&self) -> impl Iterator<Item = &Entry> {
        self.transforms
            .iter()
            .map(|t| &t.meta)
            .chain(self.generators.iter().map(|g| &g.meta))
            .chain(self.checks.iter().map(|c| &c.meta))
    }

    /// Case-insensitive name lookup across all kinds.
    pub fn lookup(&self, name: &str) -> Option<Resolved<'_>> {
        let hit = |n: &str| n.eq_ignore_ascii_case(name);
        if let Some(t) = self.transforms.iter().find(|t| hit(t.meta.name)) {
            return Some(Resolved::Transform(t));
        }
        if let Some(g) = self.generators.iter().find(|g| hit(g.meta.name)) {
            return Some(Resolved::Generator(g));
        }
        self.checks.iter().find(|c| hit(c.meta.name)).map(Resolved::Check)
    }

    /// The transform entry implementing `kind`, if registered.
    pub fn transform_for(&self, kind: TransformKind) -> Option<&TransformEntry> {
        self.transforms.iter().find(|t| t.kind == kind)
    }

    /// Every transform edge with its owning entry name, in listing order —
    /// the arc set of the realization lattice the planner searches.
    pub fn transform_arcs(&self) -> Vec<(&'static str, Edge)> {
        self.transforms.iter().flat_map(|t| t.edges.iter().map(|e| (t.meta.name, *e))).collect()
    }

    fn build() -> Registry {
        let by_kind = |kind: TransformKind| -> Vec<Edge> {
            foundational_edges().into_iter().filter(|e| e.kind == kind).collect()
        };
        // Prop 3.4 generalizes beyond its wMS statement: a w1S update is a
        // one-channel wMS update, so padding with `f = 0` reads realizes
        // w1S inside wES exactly as well. The planner gets those edges
        // directly instead of composing `embed | pad`.
        let mut pad_edges = by_kind(TransformKind::Pad);
        for w in Reliability::ALL {
            pad_edges.push(Edge {
                realized: CommModel::new(w, NeighborScope::One, MessagePolicy::Some),
                realizer: CommModel::new(w, NeighborScope::Every, MessagePolicy::Some),
                strength: Strength::Exact,
                kind: TransformKind::Pad,
            });
        }

        let transforms = vec![
            TransformEntry {
                meta: Entry {
                    name: "embed",
                    kind: EntryKind::Transform,
                    description: "Prop 3.3 identity embedding into a stronger model",
                    version: 1,
                    input: "wxy",
                    output: "one dimension relaxed (needs a target argument when ambiguous)",
                    impl_path: "transform::identity",
                },
                kind: TransformKind::Identity,
                edges: by_kind(TransformKind::Identity),
            },
            TransformEntry {
                meta: Entry {
                    name: "pad",
                    kind: EntryKind::Transform,
                    description: "Prop 3.4 padding with f=0 reads up to scope E",
                    version: 1,
                    input: "wxS (x in 1,M)",
                    output: "wES",
                    impl_path: "transform::pad_m_to_e",
                },
                kind: TransformKind::Pad,
                edges: pad_edges,
            },
            TransformEntry {
                meta: Entry {
                    name: "split",
                    kind: EntryKind::Transform,
                    description: "Thm 3.5 splitting into ordered single-channel updates",
                    version: 1,
                    input: "wMy",
                    output: "w1y",
                    impl_path: "transform::split_m_to_1",
                },
                kind: TransformKind::Split,
                edges: by_kind(TransformKind::Split),
            },
            TransformEntry {
                meta: Entry {
                    name: "flag",
                    kind: EntryKind::Transform,
                    description: "Prop 3.6 (reliable) message flagging",
                    version: 1,
                    input: "R1S",
                    output: "R1O",
                    impl_path: "transform::flag_r1s_to_r1o",
                },
                kind: TransformKind::Flag,
                edges: by_kind(TransformKind::Flag),
            },
            TransformEntry {
                meta: Entry {
                    name: "elide",
                    kind: EntryKind::Transform,
                    description: "Prop 3.6 (unreliable) dropping all but the used message",
                    version: 1,
                    input: "U1S",
                    output: "U1O",
                    impl_path: "transform::elide_u1s_to_u1o",
                },
                kind: TransformKind::Elide,
                edges: by_kind(TransformKind::Elide),
            },
            TransformEntry {
                meta: Entry {
                    name: "coalesce",
                    kind: EntryKind::Transform,
                    description: "Thm 3.7 coalescing dropped backlogs into batch reads",
                    version: 1,
                    input: "U1O",
                    output: "R1S",
                    impl_path: "transform::coalesce_u1o_to_r1s",
                },
                kind: TransformKind::Coalesce,
                edges: by_kind(TransformKind::Coalesce),
            },
        ];

        let fixed = |name: &'static str,
                     description: &'static str,
                     impl_path: &'static str,
                     make: fn() -> SppInstance| GeneratorEntry {
            meta: Entry {
                name,
                kind: EntryKind::Generator,
                description,
                version: 1,
                input: "(no arguments)",
                output: "SPP instance",
                impl_path,
            },
            imp: GenImpl::Fixed(make),
        };
        let generators = vec![
            fixed(
                "disagree",
                "Fig. 5 DISAGREE: two stable assignments",
                "gadgets::disagree",
                gadgets::disagree,
            ),
            fixed("fig6", "Fig. 6 oscillator with a dispute wheel", "gadgets::fig6", gadgets::fig6),
            fixed(
                "fig7",
                "Fig. 7 gadget (converges yet transfers FIG6)",
                "gadgets::fig7",
                gadgets::fig7,
            ),
            fixed(
                "fig8",
                "Fig. 8 gadget for Example A.4's extra state",
                "gadgets::fig8",
                gadgets::fig8,
            ),
            fixed(
                "fig9",
                "Fig. 9 gadget of the beyond-the-paper survey",
                "gadgets::fig9",
                gadgets::fig9,
            ),
            fixed(
                "bad-gadget",
                "BAD GADGET: no stable assignment at all",
                "gadgets::bad_gadget",
                gadgets::bad_gadget,
            ),
            fixed(
                "good-gadget",
                "GOOD GADGET: safe under every model",
                "gadgets::good_gadget",
                gadgets::good_gadget,
            ),
            fixed(
                "line2",
                "two-node line, the smallest instance",
                "gadgets::line2",
                gadgets::line2,
            ),
            GeneratorEntry {
                meta: Entry {
                    name: "wheel",
                    kind: EntryKind::Generator,
                    description: "n-rim dispute wheel (odd n has no stable assignment)",
                    version: 1,
                    input: "n in 3..=64",
                    output: "SPP instance",
                    impl_path: "gadgets::wheel",
                },
                imp: GenImpl::Param1 { make: gadgets::wheel, min: 3, max: 64 },
            },
            GeneratorEntry {
                meta: Entry {
                    name: "disagree-chain",
                    kind: EntryKind::Generator,
                    description: "k independent DISAGREE pairs (2^k stable assignments)",
                    version: 1,
                    input: "k in 1..=64",
                    output: "SPP instance",
                    impl_path: "gadgets::disagree_chain",
                },
                imp: GenImpl::Param1 { make: gadgets::disagree_chain, min: 1, max: 64 },
            },
        ];

        let checks = vec![CheckEntry {
            meta: Entry {
                name: "verify",
                kind: EntryKind::Check,
                description: "Definition 3.2 trace relation + target-model legality",
                version: 1,
                input: "transformed run",
                output: "verification report (fails the pipeline unless it holds)",
                impl_path: "verify::report_for",
            },
        }];

        Registry { transforms, generators, checks }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_resolvable() {
        let reg = Registry::global();
        let names: Vec<&str> = reg.entries().map(|e| e.name).collect();
        for (i, n) in names.iter().enumerate() {
            assert!(
                !names[i + 1..].iter().any(|m| m.eq_ignore_ascii_case(n)),
                "duplicate registry name {n}"
            );
            assert!(reg.lookup(n).is_some(), "{n} does not resolve");
            assert!(reg.lookup(&n.to_uppercase()).is_some(), "{n} is not case-insensitive");
        }
        assert!(reg.lookup("no-such-entry").is_none());
    }

    #[test]
    fn every_transform_kind_has_exactly_one_entry() {
        let reg = Registry::global();
        for kind in TransformKind::ALL {
            let hits: Vec<_> = reg.transforms.iter().filter(|t| t.kind == kind).collect();
            assert_eq!(hits.len(), 1, "{kind:?} must be registered exactly once");
        }
        assert_eq!(reg.transforms.len(), TransformKind::ALL.len());
    }

    #[test]
    fn registry_covers_every_foundational_edge() {
        // Closure soundness at the edge level: the registry's arc set must
        // contain every foundational positive edge (it may add generalized
        // edges, but may never lose one).
        let reg = Registry::global();
        let arcs = reg.transform_arcs();
        for e in foundational_edges() {
            assert!(
                arcs.iter().any(|(_, a)| a.realized == e.realized
                    && a.realizer == e.realizer
                    && a.strength == e.strength
                    && a.kind == e.kind),
                "foundational edge {} -> {} ({:?}) missing from the registry",
                e.realized,
                e.realizer,
                e.kind
            );
        }
    }

    #[test]
    fn extra_registry_edges_are_closure_sound() {
        // Any edge beyond the foundational set must already be derivable:
        // its strength may not exceed the closure's lower bound.
        let bounds =
            routelab_core::closure::derive_bounds(&routelab_core::edges::foundational_facts());
        for (name, e) in Registry::global().transform_arcs() {
            assert!(
                e.strength.level() <= bounds.get(e.realized, e.realizer).lower,
                "{name} edge {} -> {} claims {} above the closure bound",
                e.realized,
                e.realizer,
                e.strength
            );
        }
    }

    #[test]
    fn every_corpus_gadget_has_a_generator_entry() {
        let reg = Registry::global();
        for (name, inst) in gadgets::corpus() {
            let found = reg
                .lookup(name)
                .unwrap_or_else(|| panic!("corpus gadget {name} has no registry entry"));
            let Resolved::Generator(g) = found else { panic!("{name} is not a generator") };
            assert_eq!(g.build(&[]).unwrap(), inst, "{name} builds a different instance");
        }
    }

    #[test]
    fn parameterized_generators_validate_arguments() {
        let reg = Registry::global();
        let Some(Resolved::Generator(wheel)) = reg.lookup("wheel") else { panic!() };
        assert_eq!(wheel.build(&[3]).unwrap(), gadgets::wheel(3));
        assert!(matches!(wheel.build(&[]), Err(RegistryError::BadArgs { .. })));
        assert!(matches!(wheel.build(&[2]), Err(RegistryError::BadArgs { .. })));
        assert!(matches!(wheel.build(&[65]), Err(RegistryError::BadArgs { .. })));
        let Some(Resolved::Generator(fig6)) = reg.lookup("fig6") else { panic!() };
        assert!(matches!(fig6.build(&[4]), Err(RegistryError::BadArgs { .. })));
    }

    #[test]
    fn cache_keys_carry_versions() {
        for e in Registry::global().entries() {
            assert_eq!(e.cache_key(), format!("{}@v{}", e.name, e.version));
            assert!(e.version >= 1);
            assert!(!e.description.is_empty());
            assert!(!e.impl_path.is_empty());
        }
    }
}

//! The realization-lattice planner and the composable pipeline language.
//!
//! Two façades over the [`crate::registry`]:
//!
//! * **Planner** — [`plan_route`] searches the realization lattice (24
//!   models, arcs from every registered transform) for a composite transform
//!   route between any two models, maximizing the bottleneck realization
//!   strength and then minimizing the number of stages. The result is a
//!   [`Route`] of named stages; [`verify_route`] executes it and checks the
//!   Definition 3.2 relation end to end, so planner output is *validated*,
//!   never trusted. Unreachable pairs get a typed [`NoRoute`].
//!
//! * **Pipelines** — [`parse`], [`typecheck`], and [`execute`] implement the
//!   `routelab pipeline "fig6 | split | pad | verify"` language: stages are
//!   `|`-separated registry names (a generator first, then transforms,
//!   model pins, and checks), resolved against the registry and type-checked
//!   for model compatibility *at plan time* with typed errors naming the
//!   offending stage. The initial communication model is inferred as the
//!   first model (in [`CommModel::all`] order) under which every stage
//!   type-checks, or pinned explicitly by naming a model as the second
//!   stage.

use std::fmt;

use routelab_core::lattice::Strength;
use routelab_core::model::CommModel;
use routelab_core::step::ActivationSeq;
use routelab_engine::runner::Runner;
use routelab_engine::schedule::{RoundRobin, Scheduler};
use routelab_spp::SppInstance;

use crate::compose::{apply_chain, Edge};
use crate::registry::{Registry, RegistryError, Resolved};
use crate::transform::{TransformError, TransformOutput};
use crate::verify::{report_for, Report};

/// A deterministic fair prefix: `steps` activations of `model`'s round-robin
/// schedule. The standard source run for planner validation and pipelines.
pub fn fair_prefix(inst: &SppInstance, model: CommModel, steps: usize) -> ActivationSeq {
    let mut sched = RoundRobin::new(inst, model);
    let mut runner = Runner::new(inst);
    let mut seq = Vec::with_capacity(steps);
    for _ in 0..steps {
        let s = sched.next_step(&runner.state()).expect("round robin is infinite");
        runner.step(&s);
        seq.push(s);
    }
    seq
}

// ---------------------------------------------------------------------------
// Planner
// ---------------------------------------------------------------------------

/// One stage of a planned composite transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteStep {
    /// The registry name of the transform.
    pub name: &'static str,
    /// The concrete lattice edge it applies.
    pub edge: Edge,
}

/// A composite transform route through the realization lattice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Source model.
    pub from: CommModel,
    /// Target model.
    pub to: CommModel,
    /// The stages, in application order (empty when `from == to`).
    pub steps: Vec<RouteStep>,
}

impl Route {
    /// The weakest strength along the route (what the composite claims).
    pub fn bottleneck(&self) -> Strength {
        self.steps.iter().map(|s| s.edge.strength).min().unwrap_or(Strength::Exact)
    }

    /// The model sequence visited, `from` first and `to` last.
    pub fn models(&self) -> Vec<CommModel> {
        let mut out = vec![self.from];
        out.extend(self.steps.iter().map(|s| s.edge.realizer));
        out
    }

    /// The edges, in application order.
    pub fn edges(&self) -> Vec<Edge> {
        self.steps.iter().map(|s| s.edge).collect()
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.from)?;
        for s in &self.steps {
            write!(f, " -[{}]-> {}", s.name, s.edge.realizer)?;
        }
        Ok(())
    }
}

/// Typed planner failure: the lattice has no positive chain between the
/// models (e.g. `R1O` into the polling models, Thm 3.8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoRoute {
    /// Source model.
    pub from: CommModel,
    /// Target model.
    pub to: CommModel,
}

impl fmt::Display for NoRoute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NoRoute: no composite of registered transforms realizes {} inside {} \
             (the realization lattice has no positive chain)",
            self.from, self.to
        )
    }
}

impl std::error::Error for NoRoute {}

/// Finds the strongest composite transform route from `from` to `to`:
/// maximum bottleneck strength first, fewest stages second, registry listing
/// order as the deterministic tie-break.
///
/// # Errors
///
/// Returns [`NoRoute`] when the lattice has no positive chain.
pub fn plan_route(reg: &Registry, from: CommModel, to: CommModel) -> Result<Route, NoRoute> {
    let mut sp = routelab_obs::span("pipeline.plan");
    sp.field("from", from.to_string());
    sp.field("to", to.to_string());
    if from == to {
        return Ok(Route { from, to, steps: Vec::new() });
    }
    let arcs = reg.transform_arcs();
    // Relax (bottleneck strength desc, stage count asc) to a fixpoint; the
    // lattice has 24 nodes, so 24 rounds suffice.
    let n = 24;
    let mut best: Vec<Option<(u8, usize)>> = vec![None; n];
    let mut pred: Vec<Option<RouteStep>> = vec![None; n];
    best[from.index()] = Some((Strength::Exact.level(), 0));
    for _ in 0..n {
        let mut changed = false;
        for (name, e) in &arcs {
            let Some((b, l)) = best[e.realized.index()] else { continue };
            let cand = (b.min(e.strength.level()), l + 1);
            let better = match best[e.realizer.index()] {
                None => true,
                Some((ob, ol)) => cand.0 > ob || (cand.0 == ob && cand.1 < ol),
            };
            if better {
                best[e.realizer.index()] = Some(cand);
                pred[e.realizer.index()] = Some(RouteStep { name, edge: *e });
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    if best[to.index()].is_none() {
        return Err(NoRoute { from, to });
    }
    let mut steps = Vec::new();
    let mut cur = to;
    while cur != from {
        let s = pred[cur.index()].expect("predecessor exists on reachable node");
        steps.push(s);
        cur = s.edge.realized;
    }
    steps.reverse();
    sp.field("stages", steps.len());
    Ok(Route { from, to, steps })
}

/// Applies a planned route to `seq` (legal in `route.from`).
///
/// # Errors
///
/// Propagates [`TransformError`] from the underlying algorithms.
pub fn apply_route(
    inst: &SppInstance,
    seq: &ActivationSeq,
    route: &Route,
) -> Result<TransformOutput, TransformError> {
    apply_chain(inst, seq, &route.edges())
}

/// Applies a planned route and verifies it end to end: target-model
/// legality plus the Definition 3.2 trace relation. This is how planner
/// output must be consumed — validated, never trusted.
///
/// # Errors
///
/// Propagates [`TransformError`] from the underlying algorithms.
pub fn verify_route(
    inst: &SppInstance,
    seq: &ActivationSeq,
    route: &Route,
) -> Result<Report, TransformError> {
    let out = apply_route(inst, seq, route)?;
    Ok(report_for(inst, seq, &out.seq, route.from, route.to, out.claimed, out.lossless))
}

// ---------------------------------------------------------------------------
// Pipeline language
// ---------------------------------------------------------------------------

/// A parsed (name-resolved, but not yet model-checked) pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageSpec {
    /// A generator stage: builds the instance. Must be the first stage.
    Source {
        /// Registry name.
        name: &'static str,
        /// Numeric arguments (e.g. `wheel 5`).
        args: Vec<usize>,
    },
    /// A bare model name: pins (asserts) the current model.
    Pin(CommModel),
    /// A transform stage, optionally with an explicit target model to
    /// disambiguate (`embed UMS`).
    Transform {
        /// Registry name.
        name: &'static str,
        /// Explicit target model, when given.
        target: Option<CommModel>,
    },
    /// A check stage (`verify`).
    Check {
        /// Registry name.
        name: &'static str,
    },
}

/// A stage with its position and original text (for error messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedStage {
    /// 0-based position in the pipeline.
    pub index: usize,
    /// The stage as written (trimmed).
    pub text: String,
    /// What it resolved to.
    pub spec: StageSpec,
}

/// Typed pipeline failures. Every variant names the offending stage
/// (`stage` is 0-based; [`fmt::Display`] prints it 1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PipelineError {
    /// The pipeline has no stages.
    Empty,
    /// A `|`-separated segment is blank.
    EmptyStage {
        /// Offending position.
        stage: usize,
    },
    /// A stage name matches no registry entry (and is not a model).
    Unknown {
        /// Offending position.
        stage: usize,
        /// The name as written.
        name: String,
    },
    /// A stage's arguments do not fit the entry.
    BadArgs {
        /// Offending position.
        stage: usize,
        /// Entry name.
        name: String,
        /// What was wrong.
        reason: String,
    },
    /// The first stage is not a generator.
    MissingSource {
        /// What the first stage was instead.
        found: String,
    },
    /// A generator appears after the first stage.
    SourceNotFirst {
        /// Offending position.
        stage: usize,
        /// Generator name.
        name: String,
    },
    /// A model pin contradicts the model the preceding stages produce.
    PinMismatch {
        /// Offending position.
        stage: usize,
        /// The pinned model.
        pinned: CommModel,
        /// The model actually produced.
        actual: CommModel,
    },
    /// No registered edge of the named transform applies to the current
    /// model (under every admissible start model).
    Incompatible {
        /// Offending position.
        stage: usize,
        /// Transform name.
        name: String,
        /// The model the preceding stages produce.
        from: CommModel,
    },
    /// The transform applies to several target models; an explicit target
    /// argument is required.
    Ambiguous {
        /// Offending position.
        stage: usize,
        /// Transform name.
        name: String,
        /// The current model.
        from: CommModel,
        /// The admissible target models.
        options: Vec<CommModel>,
    },
    /// A generator failed to build its instance.
    Generator {
        /// Offending position.
        stage: usize,
        /// The underlying registry error.
        error: RegistryError,
    },
    /// A transform algorithm failed during execution.
    Transform {
        /// Offending position.
        stage: usize,
        /// Transform name.
        name: String,
        /// The underlying error.
        error: TransformError,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Empty => write!(f, "empty pipeline: expected `source | stage | …`"),
            PipelineError::EmptyStage { stage } => write!(f, "stage {}: empty stage", stage + 1),
            PipelineError::Unknown { stage, name } => write!(
                f,
                "stage {} ({name:?}): not a registered transform, generator, check, or model \
                 (see `routelab transforms list`)",
                stage + 1
            ),
            PipelineError::BadArgs { stage, name, reason } => {
                write!(f, "stage {} ({name}): {reason}", stage + 1)
            }
            PipelineError::MissingSource { found } => write!(
                f,
                "stage 1 ({found:?}): a pipeline must start with a generator (e.g. `fig6 | …`)"
            ),
            PipelineError::SourceNotFirst { stage, name } => write!(
                f,
                "stage {} ({name}): generators may only appear as the first stage",
                stage + 1
            ),
            PipelineError::PinMismatch { stage, pinned, actual } => write!(
                f,
                "stage {} ({pinned}): the preceding stages produce {actual}, not {pinned}",
                stage + 1
            ),
            PipelineError::Incompatible { stage, name, from } => write!(
                f,
                "stage {} ({name}): no registered {name} edge applies to model {from}",
                stage + 1
            ),
            PipelineError::Ambiguous { stage, name, from, options } => {
                let opts: Vec<String> = options.iter().map(CommModel::to_string).collect();
                write!(
                    f,
                    "stage {} ({name}): ambiguous from {from} — give a target, one of: {name} {}",
                    stage + 1,
                    opts.join(&format!(" | {name} "))
                )
            }
            PipelineError::Generator { stage, error } => {
                write!(f, "stage {}: {error}", stage + 1)
            }
            PipelineError::Transform { stage, name, error } => {
                write!(f, "stage {} ({name}): {error}", stage + 1)
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// Parses a `|`-separated pipeline and resolves every stage name against
/// the registry. Model compatibility is *not* checked here — see
/// [`typecheck`].
///
/// # Errors
///
/// Returns a typed [`PipelineError`] naming the offending stage.
pub fn parse(reg: &Registry, spec: &str) -> Result<Vec<ParsedStage>, PipelineError> {
    let segments: Vec<&str> = spec.split('|').collect();
    if segments.iter().all(|s| s.trim().is_empty()) {
        return Err(PipelineError::Empty);
    }
    let mut out = Vec::with_capacity(segments.len());
    for (index, segment) in segments.iter().enumerate() {
        let text = segment.trim().to_string();
        let mut tokens = text.split_whitespace();
        let Some(head) = tokens.next() else {
            return Err(PipelineError::EmptyStage { stage: index });
        };
        let rest: Vec<&str> = tokens.collect();
        // A bare model name pins the current model.
        if let Ok(model) = head.parse::<CommModel>() {
            if !rest.is_empty() {
                return Err(PipelineError::BadArgs {
                    stage: index,
                    name: head.to_string(),
                    reason: "a model pin takes no arguments".into(),
                });
            }
            out.push(ParsedStage { index, text, spec: StageSpec::Pin(model) });
            continue;
        }
        let spec = match reg.lookup(head) {
            Some(Resolved::Generator(g)) => {
                let mut args = Vec::with_capacity(rest.len());
                for a in &rest {
                    let n = a.parse::<usize>().map_err(|_| PipelineError::BadArgs {
                        stage: index,
                        name: g.meta.name.to_string(),
                        reason: format!("argument {a:?} is not a number"),
                    })?;
                    args.push(n);
                }
                StageSpec::Source { name: g.meta.name, args }
            }
            Some(Resolved::Transform(t)) => {
                let target = match rest.as_slice() {
                    [] => None,
                    [m] => Some(m.parse::<CommModel>().map_err(|e| PipelineError::BadArgs {
                        stage: index,
                        name: t.meta.name.to_string(),
                        reason: e.to_string(),
                    })?),
                    _ => {
                        return Err(PipelineError::BadArgs {
                            stage: index,
                            name: t.meta.name.to_string(),
                            reason: "a transform takes at most one target model".into(),
                        })
                    }
                };
                StageSpec::Transform { name: t.meta.name, target }
            }
            Some(Resolved::Check(c)) => {
                if !rest.is_empty() {
                    return Err(PipelineError::BadArgs {
                        stage: index,
                        name: c.meta.name.to_string(),
                        reason: "a check takes no arguments".into(),
                    });
                }
                StageSpec::Check { name: c.meta.name }
            }
            None => return Err(PipelineError::Unknown { stage: index, name: head.to_string() }),
        };
        out.push(ParsedStage { index, text, spec });
    }
    Ok(out)
}

/// One type-checked stage: the operation with its resolved models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypedOp {
    /// Build the instance.
    Source {
        /// Generator name.
        name: &'static str,
        /// Generator arguments.
        args: Vec<usize>,
    },
    /// Assert the current model (a no-op at execution time).
    Pin(CommModel),
    /// Apply one resolved lattice edge.
    Transform {
        /// Transform name.
        name: &'static str,
        /// The concrete edge chosen for the current model.
        edge: Edge,
    },
    /// Verify the accumulated realization against the source run.
    Check {
        /// Check name.
        name: &'static str,
    },
}

/// A fully type-checked pipeline, ready to execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypedPipeline {
    /// The stages with resolved edges.
    pub stages: Vec<(ParsedStage, TypedOp)>,
    /// The initial communication model of the source run.
    pub start: CommModel,
    /// `true` when `start` was inferred rather than pinned.
    pub inferred: bool,
}

impl TypedPipeline {
    /// The model the final stage produces.
    pub fn end(&self) -> CommModel {
        let mut cur = self.start;
        for (_, op) in &self.stages {
            if let TypedOp::Transform { edge, .. } = op {
                cur = edge.realizer;
            }
        }
        cur
    }
}

/// Simulates the model flow of `stages` from candidate start model `start`.
fn simulate(
    reg: &Registry,
    stages: &[ParsedStage],
    start: CommModel,
) -> Result<Vec<(ParsedStage, TypedOp)>, (usize, PipelineError)> {
    let mut cur = start;
    let mut out = Vec::with_capacity(stages.len());
    for st in stages {
        let op = match &st.spec {
            StageSpec::Source { name, args } => TypedOp::Source { name, args: args.clone() },
            StageSpec::Pin(m) => {
                if *m != cur {
                    let e = PipelineError::PinMismatch { stage: st.index, pinned: *m, actual: cur };
                    return Err((st.index, e));
                }
                TypedOp::Pin(*m)
            }
            StageSpec::Transform { name, target } => {
                let Some(Resolved::Transform(t)) = reg.lookup(name) else {
                    unreachable!("parse resolved the name")
                };
                let mut edges = t.edges_from(cur);
                if let Some(want) = target {
                    edges.retain(|e| e.realizer == *want);
                }
                match edges.as_slice() {
                    [] => {
                        let e = PipelineError::Incompatible {
                            stage: st.index,
                            name: name.to_string(),
                            from: cur,
                        };
                        return Err((st.index, e));
                    }
                    [edge] => {
                        cur = edge.realizer;
                        TypedOp::Transform { name, edge: *edge }
                    }
                    many => {
                        let e = PipelineError::Ambiguous {
                            stage: st.index,
                            name: name.to_string(),
                            from: cur,
                            options: many.iter().map(|e| e.realizer).collect(),
                        };
                        return Err((st.index, e));
                    }
                }
            }
            StageSpec::Check { name } => TypedOp::Check { name },
        };
        out.push((st.clone(), op));
    }
    Ok(out)
}

/// Type-checks a parsed pipeline: the first stage must be a generator, every
/// transform must have a unique applicable edge, and model pins must hold.
/// The start model is taken from a pin in second position, or otherwise
/// inferred as the first model in [`CommModel::all`] order under which the
/// whole chain type-checks.
///
/// # Errors
///
/// Returns a typed [`PipelineError`] naming the offending stage; when no
/// start model works, the error is the one from the candidate that got
/// furthest through the chain.
pub fn typecheck(reg: &Registry, stages: &[ParsedStage]) -> Result<TypedPipeline, PipelineError> {
    let Some(first) = stages.first() else { return Err(PipelineError::Empty) };
    if !matches!(first.spec, StageSpec::Source { .. }) {
        return Err(PipelineError::MissingSource { found: first.text.clone() });
    }
    for st in &stages[1..] {
        if let StageSpec::Source { name, .. } = &st.spec {
            return Err(PipelineError::SourceNotFirst { stage: st.index, name: name.to_string() });
        }
    }
    let pinned = match stages.get(1).map(|s| &s.spec) {
        Some(StageSpec::Pin(m)) => Some(*m),
        _ => None,
    };
    let candidates = match pinned {
        Some(m) => vec![m],
        None => CommModel::all(),
    };
    let mut best_err: Option<(usize, PipelineError)> = None;
    for cand in candidates {
        match simulate(reg, stages, cand) {
            Ok(ops) => {
                return Ok(TypedPipeline { stages: ops, start: cand, inferred: pinned.is_none() })
            }
            Err((idx, e)) => {
                if best_err.as_ref().is_none_or(|(bi, _)| idx > *bi) {
                    best_err = Some((idx, e));
                }
            }
        }
    }
    Err(best_err.expect("at least one candidate was simulated").1)
}

/// What one executed stage did, for per-stage summaries.
#[derive(Debug, Clone)]
pub enum StageOutcome {
    /// The instance was built and the source run generated.
    Source {
        /// Generator name (with arguments rendered).
        label: String,
        /// Node count of the instance.
        nodes: usize,
        /// The source model.
        model: CommModel,
        /// `true` when the model was inferred.
        inferred: bool,
        /// Length of the generated round-robin run.
        steps: usize,
    },
    /// The pin held.
    Pin {
        /// The pinned model.
        model: CommModel,
    },
    /// A transform stage ran.
    Transform {
        /// Transform name.
        name: &'static str,
        /// The edge applied.
        edge: Edge,
        /// Sequence length before.
        steps_in: usize,
        /// Sequence length after.
        steps_out: usize,
        /// Accumulated claimed strength after this stage.
        claimed: Strength,
        /// Accumulated losslessness after this stage.
        lossless: bool,
    },
    /// A check stage ran.
    Check {
        /// Check name.
        name: &'static str,
        /// The verification report.
        report: Report,
    },
}

/// The result of executing a type-checked pipeline.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// Per-stage outcomes, in stage order.
    pub outcomes: Vec<StageOutcome>,
    /// `false` when any check failed to hold.
    pub ok: bool,
    /// The source run (legal in [`TypedPipeline::start`]).
    pub source: ActivationSeq,
    /// The final transformed sequence.
    pub seq: ActivationSeq,
    /// The start model.
    pub start: CommModel,
    /// The final model.
    pub end: CommModel,
}

/// Executes a type-checked pipeline: builds the instance, generates a
/// `4 · nodes` round-robin source run in the start model, applies each
/// transform edge, and runs the checks. Each stage is wrapped in a
/// `pipeline.stage` telemetry span.
///
/// # Errors
///
/// Returns [`PipelineError::Generator`] when instance construction fails and
/// [`PipelineError::Transform`] when a transform algorithm fails.
pub fn execute(reg: &Registry, pipe: &TypedPipeline) -> Result<PipelineRun, PipelineError> {
    let mut inst: Option<SppInstance> = None;
    let mut source = ActivationSeq::new();
    let mut cur = ActivationSeq::new();
    let mut model = pipe.start;
    let mut claimed = Strength::Exact;
    let mut lossless = true;
    let mut ok = true;
    let mut outcomes = Vec::with_capacity(pipe.stages.len());

    for (st, op) in &pipe.stages {
        let mut sp = routelab_obs::span("pipeline.stage");
        sp.field("stage", st.index);
        sp.field("op", st.text.clone());
        match op {
            TypedOp::Source { name, args } => {
                let Some(Resolved::Generator(g)) = reg.lookup(name) else {
                    unreachable!("typecheck resolved the name")
                };
                let built = g
                    .build(args)
                    .map_err(|error| PipelineError::Generator { stage: st.index, error })?;
                let steps = 4 * built.node_count();
                source = fair_prefix(&built, pipe.start, steps);
                cur = source.clone();
                outcomes.push(StageOutcome::Source {
                    label: st.text.clone(),
                    nodes: built.node_count(),
                    model: pipe.start,
                    inferred: pipe.inferred,
                    steps,
                });
                sp.field("steps", steps);
                inst = Some(built);
            }
            TypedOp::Pin(m) => outcomes.push(StageOutcome::Pin { model: *m }),
            TypedOp::Transform { name, edge } => {
                let inst = inst.as_ref().expect("typecheck put the source first");
                let steps_in = cur.len();
                let out = crate::compose::apply_edge(edge, inst, &cur).map_err(|error| {
                    PipelineError::Transform { stage: st.index, name: name.to_string(), error }
                })?;
                claimed = claimed.min(out.claimed);
                lossless = lossless && out.lossless;
                cur = out.seq;
                model = edge.realizer;
                outcomes.push(StageOutcome::Transform {
                    name,
                    edge: *edge,
                    steps_in,
                    steps_out: cur.len(),
                    claimed,
                    lossless,
                });
                sp.field("steps", cur.len());
            }
            TypedOp::Check { name } => {
                let inst = inst.as_ref().expect("typecheck put the source first");
                let report = report_for(inst, &source, &cur, pipe.start, model, claimed, lossless);
                ok &= report.holds();
                sp.field("holds", u64::from(report.holds()));
                outcomes.push(StageOutcome::Check { name, report });
            }
        }
    }
    Ok(PipelineRun { outcomes, ok, source, seq: cur, start: pipe.start, end: model })
}

/// Parse + typecheck + execute in one call.
///
/// # Errors
///
/// Returns the first typed [`PipelineError`].
pub fn run_pipeline(reg: &Registry, spec: &str) -> Result<PipelineRun, PipelineError> {
    let stages = parse(reg, spec)?;
    let typed = typecheck(reg, &stages)?;
    execute(reg, &typed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn m(s: &str) -> CommModel {
        s.parse().unwrap()
    }

    #[test]
    fn plan_route_finds_named_chains() {
        let reg = Registry::global();
        let r = plan_route(reg, m("REA"), m("UMS")).unwrap();
        assert_eq!(r.models().first(), Some(&m("REA")));
        assert_eq!(r.models().last(), Some(&m("UMS")));
        assert_eq!(r.bottleneck(), Strength::Exact);
        for s in &r.steps {
            assert_eq!(s.name, "embed", "{r}");
        }
        // Display names every stage.
        let shown = r.to_string();
        assert!(shown.starts_with("REA -[embed]-> "), "{shown}");
        assert!(shown.ends_with("UMS"), "{shown}");
    }

    #[test]
    fn plan_route_is_typed_on_unreachable_pairs() {
        let reg = Registry::global();
        let err = plan_route(reg, m("R1O"), m("REA")).unwrap_err();
        assert_eq!(err, NoRoute { from: m("R1O"), to: m("REA") });
        assert!(err.to_string().contains("NoRoute"), "{err}");
        assert!(err.to_string().contains("R1O"), "{err}");
    }

    #[test]
    fn trivial_route_is_empty_and_exact() {
        let r = plan_route(Registry::global(), m("RMS"), m("RMS")).unwrap();
        assert!(r.steps.is_empty());
        assert_eq!(r.bottleneck(), Strength::Exact);
        assert_eq!(r.to_string(), "RMS");
    }

    #[test]
    fn parse_resolves_all_stage_forms() {
        let reg = Registry::global();
        let stages = parse(reg, "wheel 4 | RMS | embed UMS | verify").unwrap();
        assert_eq!(stages.len(), 4);
        assert_eq!(stages[0].spec, StageSpec::Source { name: "wheel", args: vec![4] });
        assert_eq!(stages[1].spec, StageSpec::Pin(m("RMS")));
        assert_eq!(stages[2].spec, StageSpec::Transform { name: "embed", target: Some(m("UMS")) });
        assert_eq!(stages[3].spec, StageSpec::Check { name: "verify" });
    }

    #[test]
    fn parse_rejects_unknown_names_with_stage_position() {
        let err = parse(Registry::global(), "fig6 | bogus | verify").unwrap_err();
        assert_eq!(err, PipelineError::Unknown { stage: 1, name: "bogus".into() });
        assert!(err.to_string().contains("stage 2"), "{err}");
    }

    #[test]
    fn typecheck_infers_the_first_admissible_start_model() {
        let reg = Registry::global();
        let stages = parse(reg, "fig6 | split | pad | verify").unwrap();
        let typed = typecheck(reg, &stages).unwrap();
        // RMS is the first model in all() order for which split (needs
        // scope M) then pad (needs policy S) both apply.
        assert_eq!(typed.start, m("RMS"));
        assert!(typed.inferred);
        assert_eq!(typed.end(), m("RES"));
    }

    #[test]
    fn typecheck_honors_pins() {
        let reg = Registry::global();
        let stages = parse(reg, "fig6 | UMS | split | verify").unwrap();
        let typed = typecheck(reg, &stages).unwrap();
        assert_eq!(typed.start, m("UMS"));
        assert!(!typed.inferred);
        assert_eq!(typed.end(), m("U1S"));
        let stages = parse(reg, "fig6 | split | R1S").unwrap();
        let typed = typecheck(reg, &stages).unwrap();
        assert_eq!(typed.start, m("RMS"), "mid-chain pin constrains inference");
    }

    #[test]
    fn typecheck_incompatible_stage_is_typed() {
        let reg = Registry::global();
        // coalesce: U1O -> R1S; a second coalesce cannot apply from R1S.
        let stages = parse(reg, "fig6 | coalesce | coalesce").unwrap();
        let err = typecheck(reg, &stages).unwrap_err();
        assert_eq!(
            err,
            PipelineError::Incompatible { stage: 2, name: "coalesce".into(), from: m("R1S") }
        );
        assert!(err.to_string().contains("stage 3"), "{err}");
    }

    #[test]
    fn typecheck_ambiguous_embed_lists_options() {
        let reg = Registry::global();
        let stages = parse(reg, "fig6 | R1O | embed").unwrap();
        let err = typecheck(reg, &stages).unwrap_err();
        let PipelineError::Ambiguous { stage: 2, name, from, options } = err else {
            panic!("{err:?}")
        };
        assert_eq!(name, "embed");
        assert_eq!(from, m("R1O"));
        assert_eq!(options, vec![m("U1O"), m("R1F"), m("RMO")]);
    }

    #[test]
    fn typecheck_requires_a_leading_source() {
        let reg = Registry::global();
        let stages = parse(reg, "split | pad").unwrap();
        assert!(matches!(
            typecheck(reg, &stages),
            Err(PipelineError::MissingSource { found }) if found == "split"
        ));
        let stages = parse(reg, "fig6 | split | fig7").unwrap();
        assert!(matches!(
            typecheck(reg, &stages),
            Err(PipelineError::SourceNotFirst { stage: 2, .. })
        ));
    }

    #[test]
    fn typecheck_pin_mismatch_is_typed() {
        let reg = Registry::global();
        let stages = parse(reg, "fig6 | RMS | split | RES").unwrap();
        let err = typecheck(reg, &stages).unwrap_err();
        assert_eq!(
            err,
            PipelineError::PinMismatch { stage: 3, pinned: m("RES"), actual: m("R1S") }
        );
    }

    #[test]
    fn execute_runs_the_issue_example_and_checks_hold() {
        let reg = Registry::global();
        let run = run_pipeline(reg, "fig6 | split | pad | verify").unwrap();
        assert!(run.ok);
        assert_eq!(run.start, m("RMS"));
        assert_eq!(run.end, m("RES"));
        assert_eq!(run.outcomes.len(), 4);
        let StageOutcome::Check { report, .. } = run.outcomes.last().unwrap() else {
            panic!("last stage is the check")
        };
        assert!(report.holds(), "{report}");
        assert_eq!(report.claimed, Strength::Repetition);
    }

    #[test]
    fn execute_reports_generator_failures_with_stage() {
        let reg = Registry::global();
        let stages = parse(reg, "wheel 99 | verify").unwrap();
        let typed = typecheck(reg, &stages).unwrap();
        let err = execute(reg, &typed).unwrap_err();
        assert!(matches!(err, PipelineError::Generator { stage: 0, .. }), "{err:?}");
    }

    #[test]
    fn verified_routes_hold_for_a_sample_of_pairs() {
        let reg = Registry::global();
        let inst = routelab_spp::gadgets::fig6();
        for (from, to) in [("REA", "UMS"), ("RMO", "R1O"), ("U1O", "RMS"), ("R1S", "RES")] {
            let route = plan_route(reg, m(from), m(to)).unwrap();
            let seq = fair_prefix(&inst, route.from, 3 * inst.node_count());
            let report = verify_route(&inst, &seq, &route).unwrap();
            assert!(report.holds(), "{from} -> {to}: {report}");
        }
    }
}

//! Composition of foundational transformations (the positive half of
//! Sec. 3.4): realize a sequence of one model inside any other model by
//! chaining transformations along the strongest foundational path.

use routelab_core::dims::{MessagePolicy, NeighborScope, Reliability};
use routelab_core::lattice::Strength;
use routelab_core::model::CommModel;
use routelab_core::step::ActivationSeq;
use routelab_spp::SppInstance;

use crate::transform::{self, TransformError, TransformOutput};

/// Which constructive algorithm realizes a foundational edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransformKind {
    /// Prop 3.3: the sequence is already legal in the stronger model.
    Identity,
    /// Prop 3.4: pad `wMS` updates with `f = 0` reads to scope `E`.
    Pad,
    /// Thm 3.5: split `wMy` updates into ordered single-channel updates.
    Split,
    /// Prop 3.6 (reliable): the R1S→R1O flagging construction.
    Flag,
    /// Prop 3.6 (unreliable): drop all but the used message.
    Elide,
    /// Thm 3.7: coalesce U1O drops into R1S batch reads.
    Coalesce,
}

impl TransformKind {
    /// Every constructive algorithm, in paper order.
    pub const ALL: [TransformKind; 6] = [
        TransformKind::Identity,
        TransformKind::Pad,
        TransformKind::Split,
        TransformKind::Flag,
        TransformKind::Elide,
        TransformKind::Coalesce,
    ];
}

/// A foundational positive edge with its transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// The realized (source) model.
    pub realized: CommModel,
    /// The realizing (target) model.
    pub realizer: CommModel,
    /// The strength the construction guarantees.
    pub strength: Strength,
    /// The algorithm.
    pub kind: TransformKind,
}

/// All foundational edges with their transformation kinds. The `(realized,
/// realizer, strength)` triples coincide exactly with
/// [`routelab_core::edges::foundational_facts`] (checked by a test).
pub fn foundational_edges() -> Vec<Edge> {
    use MessagePolicy as P;
    use NeighborScope as S;
    use Reliability as R;
    let m = CommModel::new;
    let mut out = Vec::new();
    // Prop 3.3(1): Rxy inside Uxy.
    for x in S::ALL {
        for y in P::ALL {
            out.push(Edge {
                realized: m(R::Reliable, x, y),
                realizer: m(R::Unreliable, x, y),
                strength: Strength::Exact,
                kind: TransformKind::Identity,
            });
        }
    }
    for w in R::ALL {
        for x in S::ALL {
            // Prop 3.3(2) and (3).
            for (a, b) in [(P::Forced, P::Some), (P::One, P::Forced), (P::All, P::Forced)] {
                out.push(Edge {
                    realized: m(w, x, a),
                    realizer: m(w, x, b),
                    strength: Strength::Exact,
                    kind: TransformKind::Identity,
                });
            }
        }
        for y in P::ALL {
            // Prop 3.3(4).
            for a in [S::One, S::Every] {
                out.push(Edge {
                    realized: m(w, a, y),
                    realizer: m(w, S::Multiple, y),
                    strength: Strength::Exact,
                    kind: TransformKind::Identity,
                });
            }
            // Thm 3.5.
            out.push(Edge {
                realized: m(w, S::Multiple, y),
                realizer: m(w, S::One, y),
                strength: Strength::Repetition,
                kind: TransformKind::Split,
            });
        }
        // Prop 3.4.
        out.push(Edge {
            realized: m(w, S::Multiple, P::Some),
            realizer: m(w, S::Every, P::Some),
            strength: Strength::Exact,
            kind: TransformKind::Pad,
        });
    }
    // Prop 3.6.
    out.push(Edge {
        realized: m(R::Reliable, S::One, P::Some),
        realizer: m(R::Reliable, S::One, P::One),
        strength: Strength::Subsequence,
        kind: TransformKind::Flag,
    });
    out.push(Edge {
        realized: m(R::Unreliable, S::One, P::Some),
        realizer: m(R::Unreliable, S::One, P::One),
        strength: Strength::Repetition,
        kind: TransformKind::Elide,
    });
    // Thm 3.7.
    out.push(Edge {
        realized: m(R::Unreliable, S::One, P::One),
        realizer: m(R::Reliable, S::One, P::Some),
        strength: Strength::Exact,
        kind: TransformKind::Coalesce,
    });
    out
}

/// Applies one edge's transformation.
///
/// # Errors
///
/// Propagates [`TransformError`] from the underlying algorithm.
pub fn apply_edge(
    edge: &Edge,
    inst: &SppInstance,
    seq: &ActivationSeq,
) -> Result<TransformOutput, TransformError> {
    match edge.kind {
        TransformKind::Identity => transform::identity(inst, seq),
        TransformKind::Pad => transform::pad_m_to_e(inst, seq),
        TransformKind::Split => transform::split_m_to_1(inst, seq, edge.realizer.messages),
        TransformKind::Flag => transform::flag_r1s_to_r1o(inst, seq),
        TransformKind::Elide => transform::elide_u1s_to_u1o(inst, seq),
        TransformKind::Coalesce => transform::coalesce_u1o_to_r1s(inst, seq),
    }
}

/// Applies a chain of edges in order, accumulating the weakest claimed
/// strength and the conjunction of losslessness.
///
/// # Errors
///
/// Propagates [`TransformError`] from the underlying algorithms.
pub fn apply_chain(
    inst: &SppInstance,
    seq: &ActivationSeq,
    edges: &[Edge],
) -> Result<TransformOutput, TransformError> {
    let mut cur = TransformOutput { seq: seq.clone(), claimed: Strength::Exact, lossless: true };
    for edge in edges {
        let next = apply_edge(edge, inst, &cur.seq)?;
        cur = TransformOutput {
            seq: next.seq,
            claimed: cur.claimed.min(next.claimed),
            lossless: cur.lossless && next.lossless,
        };
    }
    Ok(cur)
}

/// Finds the strongest chain of registered edges realizing `from` inside
/// `to` (maximum bottleneck strength, then fewest edges), or `None` when no
/// positive chain exists (e.g. realizing `R1O` inside `REA`). Thin wrapper
/// over [`crate::plan::plan_route`] against the global registry.
pub fn plan(from: CommModel, to: CommModel) -> Option<Vec<Edge>> {
    crate::plan::plan_route(crate::registry::Registry::global(), from, to)
        .ok()
        .map(|route| route.edges())
}

/// Realizes `seq` (legal in `from`) inside `to` along the strongest
/// registered chain. Returns `None` when no positive chain exists.
///
/// # Errors
///
/// Propagates [`TransformError`] from the underlying algorithms.
pub fn realize(
    inst: &SppInstance,
    seq: &ActivationSeq,
    from: CommModel,
    to: CommModel,
) -> Result<Option<TransformOutput>, TransformError> {
    let Some(path) = plan(from, to) else { return Ok(None) };
    apply_chain(inst, seq, &path).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use routelab_core::edges::foundational_facts;

    #[test]
    fn edges_match_core_facts() {
        let edges = foundational_edges();
        let facts = foundational_facts();
        assert_eq!(edges.len(), facts.positives.len());
        for e in &edges {
            assert!(
                facts.positives.iter().any(|p| p.realized == e.realized
                    && p.realizer == e.realizer
                    && p.strength == e.strength),
                "edge {} -> {} not in core facts",
                e.realized,
                e.realizer
            );
        }
    }

    #[test]
    fn plan_matches_closure_lower_bounds() {
        // The bottleneck strength of the best plan must equal the positive
        // closure's lower bound for every pair with a plan; pairs without a
        // plan must have lower bound 0 (only negatives/unknowns there).
        let bounds = routelab_core::closure::derive_bounds(&foundational_facts());
        for a in CommModel::all() {
            for b in CommModel::all() {
                if a == b {
                    continue;
                }
                let lower = bounds.get(a, b).lower;
                match plan(a, b) {
                    Some(path) => {
                        let bottleneck = path.iter().map(|e| e.strength.level()).min().unwrap_or(4);
                        assert_eq!(
                            bottleneck, lower,
                            "plan {a} -> {b}: bottleneck {bottleneck} vs closure {lower}"
                        );
                    }
                    None => {
                        assert_eq!(lower, 0, "{a} -> {b}: closure says {lower} but no plan");
                    }
                }
            }
        }
    }

    #[test]
    fn plan_is_empty_for_same_model() {
        let m: CommModel = "RMS".parse().unwrap();
        assert_eq!(plan(m, m).unwrap().len(), 0);
    }

    #[test]
    fn no_plan_into_weak_models() {
        // R1O cannot be realized in the polling models (Thm 3.8): there must
        // be no positive chain.
        let r1o: CommModel = "R1O".parse().unwrap();
        for weak in ["REO", "REF", "R1A", "RMA", "REA"] {
            assert!(plan(r1o, weak.parse().unwrap()).is_none(), "{weak}");
        }
    }

    #[test]
    fn ums_realizes_everything_exactly() {
        let ums: CommModel = "UMS".parse().unwrap();
        for a in CommModel::all() {
            if a == ums {
                continue;
            }
            let path = plan(a, ums).unwrap_or_else(|| panic!("no plan {a} -> UMS"));
            let bottleneck = path.iter().map(|e| e.strength.level()).min().unwrap();
            assert_eq!(bottleneck, 4, "{a} -> UMS should be exact");
        }
    }

    #[test]
    fn paths_are_well_formed_chains() {
        for a in CommModel::all() {
            for b in CommModel::all() {
                if let Some(path) = plan(a, b) {
                    let mut cur = a;
                    for e in &path {
                        assert_eq!(e.realized, cur);
                        cur = e.realizer;
                    }
                    assert_eq!(cur, b);
                }
            }
        }
    }
}

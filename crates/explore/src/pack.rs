//! Packed network states: route-interned, flat `u16` encodings.
//!
//! Exhaustive exploration used to intern full [`NetworkState`] clones —
//! four heap structures per state, dozens of `Route` allocations each. But
//! every route a state can ever mention is drawn from a fixed universe
//! derivable from the instance alone: ε plus the permitted paths of every
//! node (a node only ever chooses/announces permitted paths, and ρ/queue
//! entries are neighbors' announcements). Interning that universe once
//! yields a dense route-id space, and a state becomes one flat `u16`
//! buffer:
//!
//! ```text
//! [chosen: n][announced: n][learned: m][queue lens: m][queue contents…]
//! ```
//!
//! (`n` nodes, `m` dense channel ids, queues oldest-first.) The encoding is
//! injective — equal buffers iff equal states — so hash-dedup over
//! [`PackedState`] is exact, at a fraction of the memory of the 654k-state
//! Appendix A.2 sweeps. Route-table construction is deterministic (node
//! order, then rank order), so packed bytes are reproducible across runs
//! and thread counts.

use std::collections::HashMap;
use std::sync::Arc;

use routelab_engine::index::ChannelIndex;
use routelab_engine::state::NetworkState;
use routelab_spp::{NodeId, Path, Route, SppInstance};

use crate::error::ExploreError;

/// A state encoded as a flat route-id buffer (layout in the module docs).
///
/// The buffer is reference-counted: the frontier engine keeps each packed
/// state in several places at once (dedup maps, pending queues, the arena),
/// and `Arc` turns those clones into pointer bumps instead of buffer copies
/// — shared-ownership interning.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PackedState(Arc<[u16]>);

impl PackedState {
    /// Buffer length in `u16`s (for memory accounting).
    pub fn len_u16(&self) -> usize {
        self.0.len()
    }

    /// The raw route-id buffer (for the reduction layer's canonicalizers).
    pub(crate) fn as_u16s(&self) -> &[u16] {
        &self.0
    }

    /// Wraps a raw buffer produced by a canonicalizer.
    pub(crate) fn from_u16s(buf: Vec<u16>) -> Self {
        PackedState(buf.into())
    }
}

/// The per-instance codec: route universe + layout dimensions.
#[derive(Debug, Clone)]
pub struct StateCodec {
    n: usize,
    m: usize,
    routes: Vec<Route>,
    ids: HashMap<Route, u16>,
    /// Instance × model descriptor used to attribute errors to their cell.
    cell: String,
}

impl StateCodec {
    /// Builds the codec for an instance. The route table is ε followed by
    /// every node's permitted paths in (node id, rank) order — a canonical
    /// enumeration independent of exploration order.
    ///
    /// # Errors
    ///
    /// [`ExploreErrorKind::RouteTableOverflow`](crate::error::ExploreErrorKind)
    /// when the universe exceeds the `u16` id space.
    pub fn new(
        inst: &SppInstance,
        index: &ChannelIndex,
        cell: impl Into<String>,
    ) -> Result<Self, ExploreError> {
        let cell = cell.into();
        let mut routes = vec![Route::empty()];
        let mut ids = HashMap::new();
        ids.insert(Route::empty(), 0u16);
        let intern = |r: Route, routes: &mut Vec<Route>, ids: &mut HashMap<Route, u16>| {
            if !ids.contains_key(&r) {
                let id = routes.len();
                ids.insert(r.clone(), id as u16);
                routes.push(r);
            }
        };
        // The destination's trivial path first (its π in every state), then
        // each node's permitted paths in preference order.
        intern(Route::path(Path::trivial(inst.dest())), &mut routes, &mut ids);
        for v in inst.nodes() {
            for rp in inst.permitted(v) {
                intern(Route::path(rp.path.clone()), &mut routes, &mut ids);
            }
        }
        if routes.len() > usize::from(u16::MAX) {
            return Err(ExploreError {
                cell,
                kind: crate::error::ExploreErrorKind::RouteTableOverflow { routes: routes.len() },
            });
        }
        Ok(StateCodec { n: inst.node_count(), m: index.len(), routes, ids, cell })
    }

    /// The cell descriptor errors are attributed to.
    pub fn cell(&self) -> &str {
        &self.cell
    }

    /// Node count `n` of the layout.
    pub(crate) fn n(&self) -> usize {
        self.n
    }

    /// Channel count `m` of the layout.
    pub(crate) fn m(&self) -> usize {
        self.m
    }

    /// The interned route universe, id order.
    pub(crate) fn routes(&self) -> &[Route] {
        &self.routes
    }

    /// Number of interned routes.
    pub fn route_count(&self) -> usize {
        self.routes.len()
    }

    /// The id of `r` within this instance's route universe, if interned.
    pub fn route_id(&self, r: &Route) -> Option<u16> {
        self.ids.get(r).copied()
    }

    fn rid(&self, r: &Route) -> Result<u16, ExploreError> {
        self.ids
            .get(r)
            .copied()
            .ok_or_else(|| ExploreError::unknown_route(&self.cell, format!("{r:?}")))
    }

    /// Encodes a state.
    ///
    /// # Errors
    ///
    /// [`ExploreErrorKind::UnknownRoute`](crate::error::ExploreErrorKind)
    /// when the state mentions a route outside the instance's universe.
    pub fn encode(&self, s: &NetworkState) -> Result<PackedState, ExploreError> {
        let mut buf = Vec::with_capacity(2 * self.n + 2 * self.m + 4);
        self.encode_into(s, &mut buf)?;
        Ok(PackedState(buf.into()))
    }

    /// Encodes a state into a caller-owned buffer (cleared first) — the
    /// allocation-free path for the frontier engine's expansion buffers.
    ///
    /// # Errors
    ///
    /// Same as [`StateCodec::encode`].
    pub fn encode_into(&self, s: &NetworkState, buf: &mut Vec<u16>) -> Result<(), ExploreError> {
        buf.clear();
        for v in 0..self.n {
            buf.push(self.rid(s.chosen(NodeId(v as u32)))?);
        }
        for v in 0..self.n {
            buf.push(self.rid(s.announced(NodeId(v as u32)))?);
        }
        for c in 0..self.m {
            buf.push(self.rid(s.learned(c))?);
        }
        for c in 0..self.m {
            let len = s.queue(c).len();
            let len =
                u16::try_from(len).map_err(|_| ExploreError::path_too_long(&self.cell, c, len))?;
            buf.push(len);
        }
        for c in 0..self.m {
            for r in s.queue(c).iter() {
                buf.push(self.rid(r)?);
            }
        }
        Ok(())
    }

    fn route(&self, id: u16, ws: &[u16]) -> Result<Route, ExploreError> {
        self.routes.get(usize::from(id)).cloned().ok_or_else(|| {
            ExploreError::corrupt(
                &self.cell,
                format!(
                    "route id {id} out of range ({} routes, buffer {ws:?})",
                    self.routes.len(),
                ),
            )
        })
    }

    /// Decodes a packed state back into a [`NetworkState`].
    ///
    /// # Errors
    ///
    /// [`ExploreErrorKind::CorruptState`](crate::error::ExploreErrorKind)
    /// when the buffer does not match the codec's layout.
    pub fn decode(&self, p: &PackedState) -> Result<NetworkState, ExploreError> {
        self.decode_words(&p.0)
    }

    /// Decodes a raw word buffer back into a [`NetworkState`].
    ///
    /// # Errors
    ///
    /// Same as [`StateCodec::decode`].
    pub fn decode_words(&self, ws: &[u16]) -> Result<NetworkState, ExploreError> {
        let header = 2 * self.n + 2 * self.m;
        if ws.len() < header {
            return Err(ExploreError::corrupt(
                &self.cell,
                format!("buffer holds {} u16s, header needs {header}", ws.len()),
            ));
        }
        let chosen =
            ws[..self.n].iter().map(|&id| self.route(id, ws)).collect::<Result<Vec<_>, _>>()?;
        let announced = ws[self.n..2 * self.n]
            .iter()
            .map(|&id| self.route(id, ws))
            .collect::<Result<Vec<_>, _>>()?;
        let learned = ws[2 * self.n..2 * self.n + self.m]
            .iter()
            .map(|&id| self.route(id, ws))
            .collect::<Result<Vec<_>, _>>()?;
        let mut queues = Vec::with_capacity(self.m);
        let mut at = header;
        for c in 0..self.m {
            let len = usize::from(ws[2 * self.n + self.m + c]);
            let end = at + len;
            if end > ws.len() {
                return Err(ExploreError::corrupt(
                    &self.cell,
                    format!("queue {c} runs past the buffer ({end} > {})", ws.len()),
                ));
            }
            queues.push(
                ws[at..end].iter().map(|&id| self.route(id, ws)).collect::<Result<Vec<_>, _>>()?,
            );
            at = end;
        }
        // The cursor must land exactly on the buffer end: a buffer with
        // words after the last queue is not an encoding of any state, and
        // accepting it would break the "equal states iff equal buffers"
        // injectivity that exact dedup rests on.
        if at != ws.len() {
            return Err(ExploreError::corrupt(
                &self.cell,
                format!("{} trailing u16s after the last queue (buffer {})", ws.len() - at, at),
            ));
        }
        Ok(NetworkState::from_parts(chosen, announced, learned, queues))
    }

    /// Queue length of channel `c` — read straight from the packed header.
    pub fn queue_len(&self, p: &PackedState, c: usize) -> usize {
        self.queue_len_words(&p.0, c)
    }

    /// [`StateCodec::queue_len`] over a raw word buffer.
    pub fn queue_len_words(&self, ws: &[u16], c: usize) -> usize {
        usize::from(ws[2 * self.n + self.m + c])
    }

    /// `true` when channel `c`'s queue is empty.
    pub fn queue_empty(&self, p: &PackedState, c: usize) -> bool {
        self.queue_len(p, c) == 0
    }

    /// [`StateCodec::queue_empty`] over a raw word buffer.
    pub fn queue_empty_words(&self, ws: &[u16], c: usize) -> bool {
        self.queue_len_words(ws, c) == 0
    }

    /// `true` when node `v`'s choice equals its last announcement.
    pub fn chosen_eq_announced(&self, p: &PackedState, v: NodeId) -> bool {
        self.chosen_eq_announced_words(&p.0, v)
    }

    /// [`StateCodec::chosen_eq_announced`] over a raw word buffer.
    pub fn chosen_eq_announced_words(&self, ws: &[u16], v: NodeId) -> bool {
        ws[v.index()] == ws[self.n + v.index()]
    }

    /// `true` when the packed state is quiescent (all queues empty, every
    /// choice announced) — mirrors [`NetworkState::is_quiescent`].
    pub fn is_quiescent(&self, p: &PackedState) -> bool {
        self.is_quiescent_words(&p.0)
    }

    /// [`StateCodec::is_quiescent`] over a raw word buffer.
    pub fn is_quiescent_words(&self, ws: &[u16]) -> bool {
        (0..self.m).all(|c| self.queue_len_words(ws, c) == 0)
            && (0..self.n).all(|v| ws[v] == ws[self.n + v])
    }

    /// The packed π region (chosen route ids) — equal slices iff equal path
    /// assignments.
    pub fn pi_ids<'p>(&self, p: &'p PackedState) -> &'p [u16] {
        &p.0[..self.n]
    }

    /// [`StateCodec::pi_ids`] over a raw word buffer.
    pub fn pi_ids_words<'w>(&self, ws: &'w [u16]) -> &'w [u16] {
        &ws[..self.n]
    }

    /// A 64-bit fingerprint of the packed π region (for π-change tests on
    /// the state graph; collisions only ever merge equal-π classes checks,
    /// and the fingerprint is compared for equality, never ordered).
    pub fn pi_fingerprint(&self, p: &PackedState) -> u64 {
        self.pi_fingerprint_words(&p.0)
    }

    /// [`StateCodec::pi_fingerprint`] over a raw word buffer.
    pub fn pi_fingerprint_words(&self, ws: &[u16]) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.pi_ids_words(ws).hash(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routelab_core::step::{ActivationStep, ChannelAction, NodeUpdate};
    use routelab_engine::exec::execute_step;
    use routelab_spp::gadgets;

    fn codec_for(inst: &SppInstance) -> (ChannelIndex, StateCodec) {
        let index = ChannelIndex::new(inst.graph());
        let codec = StateCodec::new(inst, &index, "test-cell").expect("codec");
        (index, codec)
    }

    /// Rebuilds `s` with channel 0's queue replaced by `queue0` (states are
    /// externally immutable, so tests perturb them through `from_parts`).
    fn with_queue0(
        inst: &SppInstance,
        index: &ChannelIndex,
        s: &NetworkState,
        queue0: Vec<Route>,
    ) -> NetworkState {
        let mut queues: Vec<Vec<Route>> =
            (0..index.len()).map(|c| s.queue(c).iter().cloned().collect()).collect();
        queues[0] = queue0;
        NetworkState::from_parts(
            s.assignment(),
            inst.nodes().map(|v| s.announced(v).clone()).collect(),
            (0..index.len()).map(|c| s.learned(c).clone()).collect(),
            queues,
        )
    }

    #[test]
    fn round_trips_along_real_executions() {
        // Drive a few dozen random-ish steps on each gadget and round-trip
        // every intermediate state through the codec.
        for (name, inst) in gadgets::corpus() {
            let (index, codec) = codec_for(&inst);
            let mut state = NetworkState::initial(&inst, &index);
            let p = codec.encode(&state).expect("encode initial");
            assert_eq!(codec.decode(&p).expect("decode"), state, "{name} initial");
            for round in 0..6 {
                for v in inst.nodes() {
                    let actions = index
                        .in_channels(v)
                        .iter()
                        .map(|&cid| ChannelAction::read_all(index.channel(cid)))
                        .collect();
                    let step = ActivationStep::single(NodeUpdate::new(v, actions));
                    execute_step(&inst, &index, &mut state, &step);
                    let p = codec.encode(&state).expect("encode");
                    let back = codec.decode(&p).expect("decode");
                    assert_eq!(back, state, "{name} round {round} node {v:?}");
                    assert_eq!(codec.is_quiescent(&p), state.is_quiescent());
                    for c in 0..index.len() {
                        assert_eq!(codec.queue_len(&p, c), state.queue(c).len());
                    }
                    for v in inst.nodes() {
                        assert_eq!(
                            codec.chosen_eq_announced(&p, v),
                            state.chosen(v) == state.announced(v)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn encoding_is_injective_on_distinct_states() {
        let inst = gadgets::disagree();
        let (index, codec) = codec_for(&inst);
        let a = NetworkState::initial(&inst, &index);
        let b = with_queue0(&inst, &index, &a, vec![Route::empty()]);
        let pa = codec.encode(&a).unwrap();
        let pb = codec.encode(&b).unwrap();
        assert_ne!(pa, pb);
        // And π fingerprints agree exactly when π agrees.
        assert_eq!(codec.pi_fingerprint(&pa), codec.pi_fingerprint(&pb));
        assert_eq!(codec.pi_ids(&pa), codec.pi_ids(&pb));
    }

    #[test]
    fn unknown_route_is_reported_with_cell() {
        let inst = gadgets::disagree();
        let (index, codec) = codec_for(&inst);
        let init = NetworkState::initial(&inst, &index);
        // A route that is no node's permitted path: the bare path (x) —
        // paths must end at the destination, so (x) alone is never
        // permitted.
        let x = inst.node_by_name("x").unwrap();
        let s = with_queue0(&inst, &index, &init, vec![Route::path(Path::trivial(x))]);
        let err = codec.encode(&s).expect_err("foreign route");
        assert_eq!(err.cell, "test-cell");
        assert!(err.to_string().contains("permitted-path universe"), "{err}");
    }

    #[test]
    fn oversized_queue_is_a_checked_error_not_a_truncation() {
        // A queue longer than u16::MAX used to slip past a debug_assert and
        // truncate its length field in release builds; it must now be a
        // typed error carrying the cell and the channel.
        let inst = gadgets::disagree();
        let (index, codec) = codec_for(&inst);
        let init = NetworkState::initial(&inst, &index);
        let huge = vec![Route::empty(); usize::from(u16::MAX) + 1];
        let s = with_queue0(&inst, &index, &init, huge);
        let err = codec.encode(&s).expect_err("oversized queue");
        assert_eq!(err.cell, "test-cell");
        assert!(
            matches!(
                err.kind,
                crate::error::ExploreErrorKind::PathTooLong { channel: 0, len } if len == 65_536
            ),
            "{err:?}"
        );
    }

    #[test]
    fn corrupt_buffers_are_reported() {
        let inst = gadgets::line2();
        let (index, codec) = codec_for(&inst);
        let s = NetworkState::initial(&inst, &index);
        let p = codec.encode(&s).unwrap();
        let truncated = PackedState(p.0[..1].to_vec().into());
        let err = codec.decode(&truncated).expect_err("short buffer");
        assert!(matches!(err.kind, crate::error::ExploreErrorKind::CorruptState { .. }));
        assert!(p.len_u16() > 4);
    }

    #[test]
    fn trailing_words_after_the_last_queue_are_corrupt() {
        // decode() used to stop reading at the last queue without checking
        // that it had consumed the whole buffer, so a corrupt state with
        // trailing words silently decoded to the same NetworkState as its
        // clean prefix — breaking the codec's injectivity guarantee.
        for (name, inst) in gadgets::corpus() {
            let (index, codec) = codec_for(&inst);
            let s = NetworkState::initial(&inst, &index);
            let p = codec.encode(&s).unwrap();
            let mut padded = p.0.to_vec();
            padded.push(0);
            let err = codec.decode_words(&padded).expect_err("trailing words");
            assert!(
                matches!(&err.kind, crate::error::ExploreErrorKind::CorruptState { detail }
                    if detail.contains("trailing")),
                "{name}: {err:?}"
            );
            // The clean buffer still decodes.
            assert_eq!(codec.decode_words(&p.0).unwrap(), s, "{name}");
        }
    }
}

//! The state-space reduction layer: verdict-preserving normal forms and
//! symmetry quotients for the frontier engine.
//!
//! Four reductions compose, each exact for the fair-oscillation question
//! (soundness arguments in EXPERIMENTS.md):
//!
//! 1. **Observational route-class projection.** A route in channel
//!    `c = (u, v)` — queued or already learned as ρ — influences the
//!    execution in exactly one way: through the candidate extension
//!    `(v)·r` in `v`'s best-route computation. Routes whose extension is
//!    not permitted at `v` (and ε, and everything at channels into the
//!    destination) are therefore observationally interchangeable, and the
//!    normal form projects them all onto ε, the class representative. The
//!    projection is a strong bisimulation respecting π, quiescence and the
//!    fairness labels: step enumeration depends only on queue lengths
//!    (which it preserves), reads learn pointwise-equivalent values, and
//!    choices, announcements and drops are unchanged. It also makes the
//!    absorbed-read normalization below *class-aware* — a pending
//!    announcement that is merely equivalent to ρ pops just like an equal
//!    one — which is where most of its state-count reduction comes from.
//! 2. **Absorbed-read normalization** (partial-order reduction). A message
//!    at the head of channel `c` that equals the channel's ρ is *absorbed*
//!    when read: ρ keeps its value, the reader's re-choice is a no-op (π is
//!    always consistent with the ρ vector), nothing is announced. That read
//!    therefore commutes with every other enabled activation, and the
//!    explorer expands only the canonical interleaving in which it fires
//!    immediately — successors are normalized by popping absorbed heads.
//!    Applied only where the standalone absorbing read is a real step of
//!    the model: readers of scope `1`/`M` (scope `E` must read all
//!    channels at once), any policy for which a head-keeping read exists
//!    (`O`/`F`/`S` directly; `A` via the newest-collapse below, which
//!    leaves at most one message). Each popped channel is recorded on the
//!    merged edge as attended *and* kept, preserving the fairness labels.
//! 3. **Per-channel newest-collapse.** For a reliable channel whose reader
//!    is on policy `A`, a read always consumes the whole queue and learns
//!    only the newest message — older entries are unobservable. This
//!    refines the previous whole-model `collapsible()` gate to single
//!    channels, so heterogeneous and mixed-policy models benefit too.
//! 4. **Unreliable-All set-collapse.** For an *unreliable* channel whose
//!    reader is on policy `A`, a read consumes the whole queue and ρ
//!    becomes any one element (or none); order and multiplicity are
//!    unobservable, so the queue is kept as a sorted, deduplicated set.
//!    Such channels are bounded by the sender's announcement universe and
//!    are therefore exempt from the channel cap — the `U·A` state spaces
//!    become finite and the survey's `?` cells decidable.
//!
//! On top, **symmetry reduction**: states are canonicalized to the
//! lexicographically least image under the instance's automorphism group
//! (detected once per gadget in `routelab_spp::automorphism`). Each edge
//! records which group element canonicalized its target; fairness analysis
//! un-folds the quotient into the orbit graph ([`unfold_symmetry`]) because
//! per-channel attendance is not group-invariant (the Emerson–Sistla
//! caveat), so running the Streett-style check directly on the quotient
//! would be unsound.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use routelab_core::dims::{MessagePolicy, NeighborScope, Reliability};
use routelab_engine::index::ChannelIndex;
use routelab_engine::state::NetworkState;
use routelab_spp::{automorphisms, Channel, NodeId, Route, SppInstance};

use crate::arena::NodeArena;
use crate::effects::Spec;
use crate::graph::{EdgeLabel, StateGraph, StepInfo};
use crate::pack::{PackedState, StateCodec};

/// Aggregated reduction activity of one graph build.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReductionStats {
    /// `true` when the build ran with the reduction layer on.
    pub enabled: bool,
    /// Learned or queued routes projected onto their observational class
    /// representative (unusable-at-the-reader routes becoming ε).
    pub canon_rewrites: u64,
    /// Messages removed by absorbed-read normalization.
    pub absorb_pops: u64,
    /// Queues rewritten by the unreliable-All set collapse.
    pub set_collapses: u64,
    /// Successors replaced by a lexicographically smaller symmetric image.
    pub sym_hits: u64,
    /// Order of the instance's automorphism group (1 = no usable symmetry).
    pub group_order: usize,
}

/// How the reducer treats one channel's queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ChannelMode {
    /// Collapse to the newest message (reliable, policy-`A` reader).
    newest: bool,
    /// Collapse to a sorted set (unreliable, policy-`A` reader); exempt
    /// from the channel cap.
    set: bool,
    /// Pop absorbed heads (scope-`1`/`M` reader with a head-keeping read).
    absorb: bool,
}

fn mode_for(spec: Spec<'_>, index: &ChannelIndex, c: usize) -> ChannelMode {
    let ch = index.channel(c);
    let policy = spec.messages(ch.to);
    let scope = spec.scope(ch.to);
    let all = policy == MessagePolicy::All;
    let unreliable = spec.reliability(ch) == Reliability::Unreliable;
    let set = all && unreliable;
    ChannelMode {
        newest: all && !unreliable,
        set,
        // For a set-collapsed queue "head" is meaningless, and a scope-E
        // reader cannot perform the standalone absorbing read.
        absorb: scope != NeighborScope::Every && !set,
    }
}

/// Per-build reduction state: channel modes, symmetry tables, counters.
#[derive(Debug)]
pub(crate) struct Reducer {
    modes: Vec<ChannelMode>,
    /// Per channel `c = (u, v)`: the sorted set of routes whose extension
    /// by `v` is permitted at `v` — every other route (including ε) is
    /// observationally ⊥ there and projects onto ε.
    usable: Vec<Vec<Route>>,
    pub(crate) sym: Option<Arc<SymTables>>,
    canon_rewrites: AtomicU64,
    pops: AtomicU64,
    set_collapses: AtomicU64,
    sym_hits: AtomicU64,
}

/// The per-channel usable-route sets of the class projection: for
/// `c = (u, v)`, the tails of `v`'s permitted paths whose next hop is `u`.
/// On reachable states (channel contents are announcements of `u`, i.e.
/// routes sourced at `u`, or ε) membership coincides exactly with
/// [`SppInstance::candidate`] succeeding at `v`. Channels into the
/// destination get the empty set: `d`'s choice is always `(d)`.
fn usable_routes(inst: &SppInstance, index: &ChannelIndex) -> Vec<Vec<Route>> {
    (0..index.len())
        .map(|c| {
            let ch = index.channel(c);
            let mut u: Vec<Route> = inst
                .permitted(ch.to)
                .iter()
                .filter(|rp| rp.path.len() >= 2 && rp.path.next_hop() == Some(ch.from))
                .map(|rp| Route::path(rp.path.suffix(1)))
                .collect();
            u.sort_unstable();
            u.dedup();
            u
        })
        .collect()
}

impl Reducer {
    pub(crate) fn new(
        inst: &SppInstance,
        index: &ChannelIndex,
        codec: &StateCodec,
        spec: Spec<'_>,
    ) -> Self {
        Reducer {
            modes: (0..index.len()).map(|c| mode_for(spec, index, c)).collect(),
            usable: usable_routes(inst, index),
            sym: SymTables::detect(inst, index, codec, spec).map(Arc::new),
            canon_rewrites: AtomicU64::new(0),
            pops: AtomicU64::new(0),
            set_collapses: AtomicU64::new(0),
            sym_hits: AtomicU64::new(0),
        }
    }

    /// Rewrites `next` into its queue normal form. Channels whose head was
    /// absorbed (popped) are appended to `absorbed` — the caller must
    /// annotate the edge as attending and keeping on them.
    pub(crate) fn normalize(&self, next: &mut NetworkState, absorbed: &mut Vec<usize>) {
        absorbed.clear();
        let mut rewrites = 0u64;
        let mut pops = 0u64;
        let mut collapses = 0u64;
        for (c, mode) in self.modes.iter().enumerate() {
            // Class projection first: it can only create further absorb,
            // newest and set-dedup opportunities, never destroy them.
            let usable = &self.usable[c];
            rewrites += next.rewrite_channel_routes(c, |r| {
                (!r.is_epsilon() && usable.binary_search(r).is_err()).then(Route::empty)
            }) as u64;
            if mode.newest {
                next.collapse_queue_to_newest(c);
            }
            if mode.set && next.collapse_queue_to_set(c) {
                collapses += 1;
            }
            if mode.absorb {
                let popped = next.absorb_queue_head(c);
                if popped > 0 {
                    pops += popped as u64;
                    absorbed.push(c);
                }
            }
        }
        if rewrites > 0 {
            self.canon_rewrites.fetch_add(rewrites, Ordering::Relaxed);
        }
        if pops > 0 {
            self.pops.fetch_add(pops, Ordering::Relaxed);
        }
        if collapses > 0 {
            self.set_collapses.fetch_add(collapses, Ordering::Relaxed);
        }
    }

    /// The channel-cap test, skipping set-collapsed channels (their size is
    /// bounded by the sender's announcement universe, not the cap).
    pub(crate) fn exceeds_cap(&self, s: &NetworkState, cap: usize) -> bool {
        self.modes.iter().enumerate().any(|(c, m)| !m.set && s.queue(c).len() > cap)
    }

    /// Canonicalizes a packed state under the symmetry group; returns the
    /// representative and the group element that was applied (0 = identity).
    pub(crate) fn canonicalize(&self, p: PackedState) -> (PackedState, u16) {
        match &self.sym {
            Some(t) => {
                let (q, g) = t.canonicalize(p);
                if g != 0 {
                    self.sym_hits.fetch_add(1, Ordering::Relaxed);
                }
                (q, g)
            }
            None => (p, 0),
        }
    }

    /// Word-level canonicalization for the frontier hot loop: returns the
    /// replacement buffer when a strictly smaller symmetric image exists
    /// (`None` means `ws` is already canonical) plus the group element
    /// applied.
    pub(crate) fn canonicalize_words(&self, ws: &[u16]) -> (Option<Vec<u16>>, u16) {
        match &self.sym {
            Some(t) => {
                let (img, g) = t.canonicalize_words(ws);
                if g != 0 {
                    self.sym_hits.fetch_add(1, Ordering::Relaxed);
                }
                (img, g)
            }
            None => (None, 0),
        }
    }

    /// Snapshot of the counters.
    pub(crate) fn stats(&self) -> ReductionStats {
        ReductionStats {
            enabled: true,
            canon_rewrites: self.canon_rewrites.load(Ordering::Relaxed),
            absorb_pops: self.pops.load(Ordering::Relaxed),
            set_collapses: self.set_collapses.load(Ordering::Relaxed),
            sym_hits: self.sym_hits.load(Ordering::Relaxed),
            group_order: self.sym.as_ref().map_or(1, |t| t.order()),
        }
    }
}

/// Precomputed packed-layout action of the instance's automorphism group:
/// per group element, the node, channel, and route-id permutations, plus
/// the group's multiplication and inverse tables.
#[derive(Debug)]
pub(crate) struct SymTables {
    n: usize,
    m: usize,
    elems: Vec<SymElem>,
    inv: Vec<usize>,
    mult: Vec<Vec<usize>>,
    /// Channels kept in set normal form (sorted by route order); their
    /// queue segments are re-sorted after a transform so images stay in
    /// normal form and lex-minimization compares like with like.
    set_channels: Vec<bool>,
    /// `sort_key[id]` = position of route `id` under the route ordering
    /// (the order the set collapse sorts queues by).
    sort_key: Vec<u32>,
}

#[derive(Debug)]
struct SymElem {
    node_map: Vec<usize>,
    channel_map: Vec<usize>,
    /// `channel_unmap[c'] = c` with `channel_map[c] = c'`.
    channel_unmap: Vec<usize>,
    route_map: Vec<u16>,
}

impl SymTables {
    /// Detects the automorphism group and compiles it against the codec's
    /// layout; `None` when the group is trivial.
    ///
    /// Instance automorphisms are filtered to those that also preserve the
    /// *model*: a heterogeneous spec can break the gadget's symmetry (e.g.
    /// DISAGREE with only one disputant polling), and folding states along
    /// a non-model symmetry would conflate inequivalent executions. The
    /// model-preserving automorphisms form a subgroup, so the group tables
    /// below stay closed.
    pub(crate) fn detect(
        inst: &SppInstance,
        index: &ChannelIndex,
        codec: &StateCodec,
        spec: Spec<'_>,
    ) -> Option<SymTables> {
        let auts: Vec<_> = automorphisms(inst)
            .into_iter()
            .filter(|a| {
                inst.nodes().all(|v| {
                    let w = a.apply(v);
                    spec.scope(v) == spec.scope(w) && spec.messages(v) == spec.messages(w)
                }) && (0..index.len()).all(|c| {
                    let ch = index.channel(c);
                    let img = Channel::new(a.apply(ch.from), a.apply(ch.to));
                    spec.reliability(ch) == spec.reliability(img)
                })
            })
            .collect();
        if auts.len() <= 1 {
            return None;
        }
        let n = codec.n();
        let m = codec.m();
        let elems = auts
            .iter()
            .map(|a| {
                let node_map: Vec<usize> =
                    (0..n).map(|v| a.apply(NodeId(v as u32)).index()).collect();
                let channel_map: Vec<usize> = (0..m)
                    .map(|c| {
                        let ch = index.channel(c);
                        index
                            .id(Channel::new(a.apply(ch.from), a.apply(ch.to)))
                            .expect("automorphisms preserve the channel set")
                    })
                    .collect();
                let mut channel_unmap = vec![0usize; m];
                for (c, &cc) in channel_map.iter().enumerate() {
                    channel_unmap[cc] = c;
                }
                let route_map: Vec<u16> = codec
                    .routes()
                    .iter()
                    .map(|r| {
                        codec
                            .route_id(&a.map_route(r))
                            .expect("automorphisms preserve the route universe")
                    })
                    .collect();
                SymElem { node_map, channel_map, channel_unmap, route_map }
            })
            .collect();
        let pos = |x: &routelab_spp::Automorphism| {
            auts.iter().position(|b| b == x).expect("automorphism groups are closed")
        };
        let inv: Vec<usize> = auts.iter().map(|a| pos(&a.inverse())).collect();
        let mult: Vec<Vec<usize>> =
            auts.iter().map(|a| auts.iter().map(|b| pos(&a.compose(b))).collect()).collect();
        let set_channels: Vec<bool> = (0..m).map(|c| mode_for(spec, index, c).set).collect();
        let mut by_route: Vec<u16> = (0..codec.route_count() as u16).collect();
        by_route.sort_unstable_by(|&a, &b| {
            codec.routes()[usize::from(a)].cmp(&codec.routes()[usize::from(b)])
        });
        let mut sort_key = vec![0u32; by_route.len()];
        for (k, &id) in by_route.iter().enumerate() {
            sort_key[usize::from(id)] = k as u32;
        }
        Some(SymTables { n, m, elems, inv, mult, set_channels, sort_key })
    }

    /// Group order.
    pub(crate) fn order(&self) -> usize {
        self.elems.len()
    }

    /// Index of `g⁻¹`.
    pub(crate) fn inverse(&self, g: usize) -> usize {
        self.inv[g]
    }

    /// Index of `g ∘ h` (apply `h` first).
    pub(crate) fn compose(&self, g: usize, h: usize) -> usize {
        self.mult[g][h]
    }

    /// The image of dense channel `c` under element `g`.
    pub(crate) fn map_channel(&self, g: usize, c: usize) -> usize {
        self.elems[g].channel_map[c]
    }

    /// The image of a packed buffer under element `g` (same layout).
    pub(crate) fn transform(&self, p: &[u16], g: usize) -> Vec<u16> {
        let e = &self.elems[g];
        let (n, m) = (self.n, self.m);
        let mut out = vec![0u16; p.len()];
        for v in 0..n {
            out[e.node_map[v]] = e.route_map[usize::from(p[v])];
            out[n + e.node_map[v]] = e.route_map[usize::from(p[n + v])];
        }
        for c in 0..m {
            out[2 * n + e.channel_map[c]] = e.route_map[usize::from(p[2 * n + c])];
            out[2 * n + m + e.channel_map[c]] = p[2 * n + m + c];
        }
        // Queue contents: source segment offsets, emitted in target order.
        let mut src_off = vec![0usize; m + 1];
        src_off[0] = 2 * n + 2 * m;
        for c in 0..m {
            src_off[c + 1] = src_off[c] + usize::from(p[2 * n + m + c]);
        }
        let mut at = 2 * n + 2 * m;
        for tc in 0..m {
            let sc = e.channel_unmap[tc];
            let start = at;
            for &id in &p[src_off[sc]..src_off[sc + 1]] {
                out[at] = e.route_map[usize::from(id)];
                at += 1;
            }
            if self.set_channels[tc] {
                // Keep set-collapsed queues in their sorted normal form.
                out[start..at].sort_unstable_by_key(|&id| self.sort_key[usize::from(id)]);
            }
        }
        debug_assert_eq!(at, p.len());
        out
    }

    /// The lexicographically least image of `p` over the group, with the
    /// element that produced it (0 when `p` is already canonical; ties
    /// resolve to the smallest element index, so the result is a function
    /// of the buffer alone).
    pub(crate) fn canonicalize(&self, p: PackedState) -> (PackedState, u16) {
        match self.canonicalize_words(p.as_u16s()) {
            (Some(ws), g) => (PackedState::from_u16s(ws), g),
            (None, _) => (p, 0),
        }
    }

    /// Word-level variant of [`SymTables::canonicalize`]: `None` when `raw`
    /// is already the least element of its orbit.
    pub(crate) fn canonicalize_words(&self, raw: &[u16]) -> (Option<Vec<u16>>, u16) {
        let mut best: Option<(Vec<u16>, usize)> = None;
        for g in 1..self.elems.len() {
            let img = self.transform(raw, g);
            let better = match &best {
                None => img.as_slice() < raw,
                Some((b, _)) => img < *b,
            };
            if better {
                best = Some((img, g));
            }
        }
        match best {
            Some((b, g)) => (Some(b), g as u16),
            None => (None, 0),
        }
    }
}

/// Un-folds a symmetry quotient into the orbit graph the fairness check
/// runs on: nodes are (representative, group element) pairs — the real
/// state is the element's image of the representative — and a quotient
/// edge annotated with canonicalizer `a` continues from `(q, g)` to
/// `(q', g ∘ a⁻¹)`, with its channel labels mapped through `g`. Per-channel
/// attendance is not invariant under the group action, so the Streett-style
/// fairness refinement must run here, not on the quotient itself.
///
/// The `step` field of un-folded edges is *not* relabeled: witnesses are
/// only ever extracted from unreduced graphs.
pub(crate) fn unfold_symmetry(g: &StateGraph) -> StateGraph {
    let t = g.sym.as_ref().expect("unfold_symmetry requires symmetry tables").clone();
    let mut ids: HashMap<(usize, usize), usize> = HashMap::new();
    let mut nodes: Vec<(usize, usize)> = Vec::new();
    let mut arena = NodeArena::new(g.codec.cell());
    let mut pi_fp: Vec<u64> = Vec::new();
    let mut intern = |q: usize,
                      gi: usize,
                      nodes: &mut Vec<(usize, usize)>,
                      arena: &mut NodeArena,
                      pi_fp: &mut Vec<u64>|
     -> usize {
        *ids.entry((q, gi)).or_insert_with(|| {
            nodes.push((q, gi));
            let base = g.nodes.node_vec(q as u32);
            let ws = if gi == 0 { base } else { t.transform(&base, gi) };
            pi_fp.push(g.codec.pi_fingerprint_words(&ws));
            arena.intern_full(&ws).expect("resident arenas cannot fail to intern");
            nodes.len() - 1
        })
    };
    intern(0, 0, &mut nodes, &mut arena, &mut pi_fp);
    let mut edges: Vec<Vec<EdgeLabel>> = Vec::new();
    let mut head = 0usize;
    while head < nodes.len() {
        let (q, gi) = nodes[head];
        let mut out = Vec::with_capacity(g.edges[q].len());
        for e in &g.edges[q] {
            let a = usize::from(e.sym);
            let to = intern(e.to, t.compose(gi, t.inverse(a)), &mut nodes, &mut arena, &mut pi_fp);
            out.push(EdgeLabel {
                to,
                info: Arc::new(StepInfo {
                    step: e.step().clone(),
                    attended: e.attended().iter().map(|&c| t.map_channel(gi, c)).collect(),
                    kept: e.kept().iter().map(|&c| t.map_channel(gi, c)).collect(),
                    dropped: e.dropped().iter().map(|&c| t.map_channel(gi, c)).collect(),
                }),
                changes_pi: e.changes_pi,
                sym: 0,
            });
        }
        edges.push(out);
        head += 1;
    }
    StateGraph {
        codec: g.codec.clone(),
        index: g.index.clone(),
        nodes: arena,
        pi_fp,
        edges,
        truncated: g.truncated,
        stats: g.stats,
        reduction: g.reduction,
        sym: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routelab_spp::gadgets;

    fn uniform() -> Spec<'static> {
        Spec::Uniform("R1O".parse().unwrap())
    }

    fn tables(inst: &SppInstance) -> (ChannelIndex, StateCodec, SymTables) {
        let index = ChannelIndex::new(inst.graph());
        let codec = StateCodec::new(inst, &index, "test-cell").expect("codec");
        let t = SymTables::detect(inst, &index, &codec, uniform()).expect("nontrivial group");
        (index, codec, t)
    }

    #[test]
    fn trivial_groups_detect_as_none() {
        let inst = gadgets::fig6();
        let index = ChannelIndex::new(inst.graph());
        let codec = StateCodec::new(&inst, &index, "t").unwrap();
        assert!(SymTables::detect(&inst, &index, &codec, uniform()).is_none());
    }

    #[test]
    fn hetero_models_break_instance_symmetry() {
        // DISAGREE's x↔y swap is an instance automorphism, but once only x
        // polls it no longer preserves the model — folding along it would
        // conflate inequivalent executions, so detection must reject it.
        use routelab_core::dims::{MessagePolicy, NeighborScope};
        use routelab_core::hetero::{HeteroModel, NodeModel};
        let inst = gadgets::disagree();
        let index = ChannelIndex::new(inst.graph());
        let codec = StateCodec::new(&inst, &index, "t").unwrap();
        let mut h = HeteroModel::uniform(inst.node_count(), "R1O".parse().unwrap());
        assert!(SymTables::detect(&inst, &index, &codec, Spec::Hetero(&h)).is_some());
        h.set_node(
            inst.node_by_name("x").unwrap(),
            NodeModel { scope: NeighborScope::Every, messages: MessagePolicy::All },
        );
        assert!(SymTables::detect(&inst, &index, &codec, Spec::Hetero(&h)).is_none());
    }

    #[test]
    fn transform_round_trips_through_decode() {
        // The packed transform must equal the semantic action: decode,
        // relabel with the automorphism, re-encode.
        let inst = gadgets::disagree();
        let (index, codec, t) = tables(&inst);
        let auts = automorphisms(&inst);
        let mut state = NetworkState::initial(&inst, &index);
        // Drive a few steps to populate queues and ρ.
        use routelab_core::step::{ActivationStep, ChannelAction, NodeUpdate};
        use routelab_engine::exec::execute_step;
        for _ in 0..3 {
            for v in inst.nodes() {
                let actions = index
                    .in_channels(v)
                    .iter()
                    .map(|&cid| ChannelAction::read_all(index.channel(cid)))
                    .collect();
                let step = ActivationStep::single(NodeUpdate::new(v, actions));
                execute_step(&inst, &index, &mut state, &step);
                let p = codec.encode(&state).unwrap();
                for (g, a) in auts.iter().enumerate().take(t.order()) {
                    let img = t.transform(p.as_u16s(), g);
                    let back = codec.decode(&PackedState::from_u16s(img.clone())).unwrap();
                    for v in inst.nodes() {
                        assert_eq!(*back.chosen(a.apply(v)), a.map_route(state.chosen(v)));
                        assert_eq!(*back.announced(a.apply(v)), a.map_route(state.announced(v)));
                    }
                    for c in 0..index.len() {
                        let ch = index.channel(c);
                        let cc = index
                            .id(Channel::new(a.apply(ch.from), a.apply(ch.to)))
                            .expect("channel image");
                        assert_eq!(*back.learned(cc), a.map_route(state.learned(c)));
                        let q: Vec<_> = state.queue(c).iter().map(|r| a.map_route(r)).collect();
                        let qq: Vec<_> = back.queue(cc).iter().cloned().collect();
                        assert_eq!(q, qq);
                    }
                }
            }
        }
    }

    #[test]
    fn canonicalization_is_idempotent_and_invariant() {
        let inst = gadgets::bad_gadget();
        let (index, codec, t) = tables(&inst);
        let state = NetworkState::initial(&inst, &index);
        let p = codec.encode(&state).unwrap();
        for g in 0..t.order() {
            let img = PackedState::from_u16s(t.transform(p.as_u16s(), g));
            let (canon, _) = t.canonicalize(img);
            let (again, e2) = t.canonicalize(canon.clone());
            assert_eq!(canon, again, "idempotent");
            assert_eq!(e2, 0, "canonical forms are fixed points");
            let (base, _) = t.canonicalize(p.clone());
            assert_eq!(canon, base, "same orbit, same representative");
        }
    }

    #[test]
    fn group_tables_are_consistent() {
        let inst = gadgets::bad_gadget();
        let (_, _, t) = tables(&inst);
        for g in 0..t.order() {
            assert_eq!(t.compose(g, t.inverse(g)), 0);
            assert_eq!(t.compose(t.inverse(g), g), 0);
            assert_eq!(t.compose(g, 0), g);
            assert_eq!(t.compose(0, g), g);
        }
    }

    mod canonicalization_props {
        use super::*;
        use proptest::prelude::*;
        use routelab_core::step::{ActivationStep, ChannelAction, NodeUpdate};
        use routelab_engine::exec::execute_step;
        use routelab_spp::NodeId;

        /// A reachable state of a symmetric gadget: the initial state driven
        /// by an arbitrary finite activation walk (read-all activations of
        /// the chosen nodes, which reach a rich slice of the space).
        fn walk_state(inst: &SppInstance, index: &ChannelIndex, walk: &[usize]) -> NetworkState {
            let mut state = NetworkState::initial(inst, index);
            for &pick in walk {
                let v = NodeId((pick % inst.node_count()) as u32);
                let actions = index
                    .in_channels(v)
                    .iter()
                    .map(|&cid| ChannelAction::read_all(index.channel(cid)))
                    .collect();
                execute_step(
                    inst,
                    index,
                    &mut state,
                    &ActivationStep::single(NodeUpdate::new(v, actions)),
                );
            }
            state
        }

        proptest! {
            #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

            #[test]
            fn idempotent_and_permutation_invariant(
                gadget in 0usize..3,
                walk in prop::collection::vec(0usize..64, 0..14),
            ) {
                let inst = match gadget {
                    0 => gadgets::disagree(),
                    1 => gadgets::bad_gadget(),
                    _ => gadgets::wheel(4),
                };
                let (index, codec, t) = tables(&inst);
                let state = walk_state(&inst, &index, &walk);
                let p = codec.encode(&state).expect("reachable states encode");
                let (canon, _) = t.canonicalize(p.clone());
                // Idempotence: a canonical form is its own representative.
                let (again, g2) = t.canonicalize(canon.clone());
                prop_assert_eq!(&again, &canon);
                prop_assert_eq!(g2, 0);
                // Permutation invariance: every image of the orbit
                // canonicalizes to the same representative.
                for g in 0..t.order() {
                    let img = PackedState::from_u16s(t.transform(p.as_u16s(), g));
                    let (c2, _) = t.canonicalize(img);
                    prop_assert_eq!(&c2, &canon, "element {}", g);
                }
            }
        }
    }

    #[test]
    fn class_projection_rewrites_unusable_routes_to_epsilon() {
        // FIG6: on channel (x, a) the route xd is usable (axd is permitted
        // at a) and must survive the projection; on (x, d) the same
        // announcement can never extend at the destination and projects
        // onto ε, where the absorbed-read normalization then pops it.
        let inst = gadgets::fig6();
        let index = ChannelIndex::new(inst.graph());
        let codec = StateCodec::new(&inst, &index, "t").unwrap();
        let red = Reducer::new(&inst, &index, &codec, uniform());
        let x = inst.node_by_name("x").unwrap();
        let a = inst.node_by_name("a").unwrap();
        let d = inst.dest();
        let xa = index.id(Channel::new(x, a)).unwrap();
        let xd = Route::path(inst.parse_path("xd").unwrap());
        let xd_chan = index.id(Channel::new(x, d)).unwrap();
        let init = NetworkState::initial(&inst, &index);
        let mut queues = vec![Vec::new(); index.len()];
        // Usable on (x, a): survives the projection. Unusable on (x, d):
        // x's announcement can never extend at the destination.
        queues[xa].push(xd.clone());
        queues[xd_chan].push(xd.clone());
        let mut s = NetworkState::from_parts(
            init.assignment(),
            inst.nodes().map(|v| init.announced(v).clone()).collect(),
            (0..index.len()).map(|c| init.learned(c).clone()).collect(),
            queues,
        );
        let mut absorbed = Vec::new();
        red.normalize(&mut s, &mut absorbed);
        assert_eq!(s.queue(xa).peek(1), Some(&xd));
        // The unusable announcement became ε and was then absorbed against
        // the channel's ε ρ — the queue is empty and the edge must attend.
        assert!(s.queue(xd_chan).is_empty());
        assert_eq!(absorbed, vec![xd_chan]);
        let stats = red.stats();
        assert_eq!(stats.canon_rewrites, 1);
        assert_eq!(stats.absorb_pops, 1);
    }

    #[test]
    fn modes_follow_the_reader() {
        let inst = gadgets::disagree();
        let index = ChannelIndex::new(inst.graph());
        // R1A: reliable policy-A readers — newest-collapse + absorb.
        let spec = Spec::Uniform("R1A".parse().unwrap());
        for c in 0..index.len() {
            let m = mode_for(spec, &index, c);
            assert!(m.newest && m.absorb && !m.set, "{m:?}");
        }
        // UEA: unreliable policy-A scope-E — set-collapse only.
        let spec = Spec::Uniform("UEA".parse().unwrap());
        for c in 0..index.len() {
            let m = mode_for(spec, &index, c);
            assert!(m.set && !m.absorb && !m.newest, "{m:?}");
        }
        // REO: reliable scope-E policy-O — nothing applies.
        let spec = Spec::Uniform("REO".parse().unwrap());
        for c in 0..index.len() {
            let m = mode_for(spec, &index, c);
            assert!(!m.set && !m.absorb && !m.newest, "{m:?}");
        }
        // U1O: unreliable scope-1 policy-O — absorb only.
        let spec = Spec::Uniform("U1O".parse().unwrap());
        for c in 0..index.len() {
            let m = mode_for(spec, &index, c);
            assert!(m.absorb && !m.set && !m.newest, "{m:?}");
        }
    }
}

//! Exhaustive search for an activation sequence of a model inducing a given
//! path-assignment trace (used to verify Examples A.3–A.5 mechanically).
//!
//! Runs on the sharded frontier engine ([`crate::frontier`]): search nodes
//! are `(packed state, matched-prefix-length)` pairs, so the closure is
//! deterministic at every thread count and a found witness is always the
//! breadth-first shortest one.

use routelab_core::model::CommModel;
use routelab_core::step::{ActivationSeq, ActivationStep};
use routelab_engine::exec::execute_step;
use routelab_engine::index::ChannelIndex;
use routelab_engine::state::NetworkState;
use routelab_engine::trace::PathTrace;
use routelab_spp::SppInstance;

use crate::effects::{all_steps, Spec};
use crate::error::ExploreError;
use crate::frontier::{bfs, BfsOptions, Expand, SuccBuf};
use crate::graph::{cell_of, ExploreConfig};
use crate::pack::StateCodec;

/// Which Definition 3.2 relation the found sequence must induce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchGoal {
    /// The induced trace equals the target exactly.
    Exact,
    /// The induced trace is the target with entries repeated.
    Repetition,
    /// The target is a subsequence of the induced trace.
    Subsequence,
}

/// Search outcome.
#[derive(Debug, Clone)]
pub enum SearchResult {
    /// A witnessing activation sequence.
    Found(ActivationSeq),
    /// Exhaustively impossible within the configured channel cap.
    Impossible {
        /// Distinct (state, progress) pairs visited.
        visited: usize,
    },
    /// The search hit a budget before deciding.
    BoundExceeded {
        /// Distinct (state, progress) pairs visited.
        visited: usize,
    },
}

impl SearchResult {
    /// `true` for [`SearchResult::Found`].
    pub fn is_found(&self) -> bool {
        matches!(self, SearchResult::Found(_))
    }

    /// `true` for [`SearchResult::Impossible`].
    pub fn is_impossible(&self) -> bool {
        matches!(self, SearchResult::Impossible { .. })
    }
}

/// A search node is the packed network state followed by two trailer words
/// carrying the search's own position counter (how much of the target has
/// been matched) as a little-endian-split `u32`.
fn split_node(node: &[u16]) -> (&[u16], u32) {
    let (ws, tail) = node.split_at(node.len() - 2);
    (ws, u32::from(tail[0]) | (u32::from(tail[1]) << 16))
}

struct SearchExpand<'a> {
    inst: &'a SppInstance,
    index: &'a ChannelIndex,
    model: CommModel,
    codec: &'a StateCodec,
    /// Per target entry, the π of that entry as codec route ids — `None`
    /// when the entry mentions a route outside the instance's universe (no
    /// reachable state can ever match it).
    target_ids: &'a [Option<Vec<u16>>],
    goal: SearchGoal,
    last: u32,
    must_settle: bool,
    cfg: &'a ExploreConfig,
}

impl SearchExpand<'_> {
    fn matches_at(&self, t: u32, pi: &[u16]) -> bool {
        self.target_ids.get(t as usize).and_then(Option::as_deref) == Some(pi)
    }
}

/// Reusable per-worker encode buffer.
#[derive(Default)]
struct SearchScratch {
    enc: Vec<u16>,
}

impl Expand for SearchExpand<'_> {
    type Label = ActivationStep;
    type Scratch = SearchScratch;

    fn expand(
        &self,
        _id: u32,
        node: &[u16],
        out: &mut SuccBuf<ActivationStep>,
        scratch: &mut SearchScratch,
    ) -> Result<bool, ExploreError> {
        let (packed, progress) = split_node(node);
        let state = self.codec.decode_words(packed)?;
        let spec = Spec::Uniform(self.model);
        let (steps, capped) = all_steps(
            spec,
            self.index,
            &state,
            self.inst.node_count(),
            self.cfg.max_steps_per_state,
        );
        let mut truncated = capped;
        for cs in steps {
            let activation = cs.to_activation(spec, self.index);
            let mut next = state.clone();
            execute_step(self.inst, self.index, &mut next, &activation);
            if next.max_queue_len() > self.cfg.channel_cap {
                truncated = true;
                continue;
            }
            self.codec.encode_into(&next, &mut scratch.enc)?;
            let pi = self.codec.pi_ids_words(&scratch.enc);
            let next_progress = match self.goal {
                SearchGoal::Exact => {
                    if progress == self.last {
                        // Settling phase: the infinite tail of the base is
                        // constant, so every extra entry must repeat it.
                        if !self.matches_at(self.last, pi) {
                            continue;
                        }
                        self.last
                    } else if self.matches_at(progress + 1, pi) {
                        progress + 1
                    } else {
                        continue;
                    }
                }
                SearchGoal::Repetition => {
                    if self.matches_at(progress + 1, pi) {
                        progress + 1
                    } else if self.matches_at(progress, pi) {
                        progress
                    } else {
                        continue;
                    }
                }
                SearchGoal::Subsequence => {
                    if self.matches_at(progress + 1, pi) {
                        progress + 1
                    } else {
                        progress
                    }
                }
            };
            scratch.enc.push((next_progress & 0xFFFF) as u16);
            scratch.enc.push((next_progress >> 16) as u16);
            out.push(&scratch.enc, activation);
        }
        Ok(truncated)
    }

    fn accept(&self, _id: u32, node: &[u16]) -> bool {
        let (packed, progress) = split_node(node);
        progress == self.last && (!self.must_settle || self.codec.is_quiescent_words(packed))
    }
}

/// Searches for an activation sequence of `model` whose trace realizes
/// `target` per `goal`. The search is exhaustive over canonical step
/// effects with memoization on (state, matched-prefix-length); when it
/// terminates without budget pressure, a negative answer is a proof (within
/// the channel cap).
///
/// For [`SearchGoal::Exact`] and [`SearchGoal::Repetition`], the target is
/// treated as a *converged* execution (as in Examples A.3–A.5): activation
/// sequences are infinite and fair, so after matching the last entry the
/// realization must be able to drain every outstanding message without ever
/// changing π — acceptance therefore requires reaching a quiescent state
/// whose assignment is the target's last entry. This is precisely the
/// argument of Example A.3: "the outstanding messages must be processed;
/// this causes π_s(10) = svbd". A subsequence realization constrains only a
/// finite prefix, so it accepts as soon as the whole target has appeared.
///
/// # Panics
///
/// On an internal [`ExploreError`]; use [`try_search`] to handle those.
pub fn search(
    inst: &SppInstance,
    model: CommModel,
    target: &PathTrace,
    goal: SearchGoal,
    cfg: &ExploreConfig,
) -> SearchResult {
    try_search(inst, model, target, goal, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`search`], attributing failures to their cell.
///
/// # Errors
///
/// Any [`ExploreError`] raised while packing states or expanding the
/// frontier (route-universe overflow, corrupt buffers, worker panics).
pub fn try_search(
    inst: &SppInstance,
    model: CommModel,
    target: &PathTrace,
    goal: SearchGoal,
    cfg: &ExploreConfig,
) -> Result<SearchResult, ExploreError> {
    let index = ChannelIndex::new(inst.graph());
    let initial = NetworkState::initial(inst, &index);
    if target.is_empty() || target.get(0) != Some(&initial.assignment()) {
        return Ok(SearchResult::Impossible { visited: 0 });
    }
    let codec = StateCodec::new(inst, &index, cell_of(inst, Spec::Uniform(model)))?;
    let target_ids: Vec<Option<Vec<u16>>> = (0..target.len())
        .map(|t| {
            target.get(t).expect("t < target.len()").iter().map(|r| codec.route_id(r)).collect()
        })
        .collect();
    let exp = SearchExpand {
        inst,
        index: &index,
        model,
        codec: &codec,
        target_ids: &target_ids,
        goal,
        last: (target.len() - 1) as u32,
        must_settle: matches!(goal, SearchGoal::Exact | SearchGoal::Repetition),
        cfg,
    };
    let opts = BfsOptions {
        threads: cfg.resolved_threads(),
        max_nodes: cfg.max_states,
        record_edges: false,
        record_parents: true,
        progress_label: "search.visited",
        spill_dir: cfg.spill_dir.clone(),
        spill_resident_bytes: cfg.spill_resident_bytes,
    };
    let mut root = Vec::new();
    codec.encode_into(&initial, &mut root)?;
    root.extend_from_slice(&[0, 0]); // progress trailer = 0
    let r = bfs(&exp, &root, codec.cell(), &opts)?;
    if routelab_obs::enabled() {
        routelab_obs::gauge("search.visited", r.nodes.len() as u64);
    }
    Ok(match r.accepted {
        Some(id) => SearchResult::Found(r.path_to(id)),
        None if r.truncated => SearchResult::BoundExceeded { visited: r.nodes.len() },
        None => SearchResult::Impossible { visited: r.nodes.len() },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use routelab_core::validate::check_sequence;
    use routelab_engine::paper_runs;
    use routelab_engine::runner::Runner;
    use routelab_engine::trace::{is_repetition, is_subsequence};

    fn target_of(run: &paper_runs::PaperRun) -> PathTrace {
        Runner::trace_of(&run.instance, &run.seq)
    }

    fn cfg() -> ExploreConfig {
        ExploreConfig {
            channel_cap: 6,
            max_states: 2_000_000,
            max_steps_per_state: 50_000,
            ..ExploreConfig::default()
        }
    }

    /// The candidate equals the target followed by settle steps repeating
    /// the final assignment (the infinite tail of a converged execution).
    fn exact_then_settled(target: &PathTrace, cand: &PathTrace) -> bool {
        cand.len() >= target.len()
            && (0..target.len()).all(|t| cand.get(t) == target.get(t))
            && (target.len()..cand.len()).all(|t| cand.get(t) == target.last())
    }

    #[test]
    fn a3_trace_exactly_realizable_in_its_own_model() {
        let run = paper_runs::a3_reo();
        let target = target_of(&run);
        let res = search(&run.instance, "REO".parse().unwrap(), &target, SearchGoal::Exact, &cfg());
        let SearchResult::Found(seq) = res else { panic!("{res:?}") };
        let cand = Runner::trace_of(&run.instance, &seq);
        assert!(exact_then_settled(&target, &cand), "{}", cand.render(&run.instance));
        check_sequence("REO".parse().unwrap(), run.instance.graph(), &seq).unwrap();
    }

    #[test]
    fn proposition_3_10_a3_not_exact_in_r1o() {
        // Example A.3: the REO execution cannot be exactly realized in R1O.
        let run = paper_runs::a3_reo();
        let target = target_of(&run);
        let res = search(&run.instance, "R1O".parse().unwrap(), &target, SearchGoal::Exact, &cfg());
        assert!(res.is_impossible(), "{res:?}");
    }

    #[test]
    fn a3_is_subsequence_realizable_in_r1o() {
        let run = paper_runs::a3_reo();
        let target = target_of(&run);
        let res =
            search(&run.instance, "R1O".parse().unwrap(), &target, SearchGoal::Subsequence, &cfg());
        let SearchResult::Found(seq) = res else { panic!("{res:?}") };
        let cand = Runner::trace_of(&run.instance, &seq);
        assert!(is_subsequence(&target, &cand));
        check_sequence("R1O".parse().unwrap(), run.instance.graph(), &seq).unwrap();
    }

    #[test]
    fn proposition_3_11_a4_not_repetition_in_r1o() {
        // Example A.4: the REA execution cannot be realized with repetition
        // in R1O…
        let run = paper_runs::a4_rea();
        let target = target_of(&run);
        let res =
            search(&run.instance, "R1O".parse().unwrap(), &target, SearchGoal::Repetition, &cfg());
        assert!(res.is_impossible(), "{res:?}");
        // …but it is realizable as a subsequence (the paper's remark).
        let res =
            search(&run.instance, "R1O".parse().unwrap(), &target, SearchGoal::Subsequence, &cfg());
        let SearchResult::Found(seq) = res else { panic!("{res:?}") };
        let cand = Runner::trace_of(&run.instance, &seq);
        assert!(is_subsequence(&target, &cand));
    }

    #[test]
    fn proposition_3_12_a5_not_exact_in_r1s() {
        // Example A.5: the REA execution cannot be exactly realized in R1S.
        let run = paper_runs::a5_rea();
        let target = target_of(&run);
        let res = search(&run.instance, "R1S".parse().unwrap(), &target, SearchGoal::Exact, &cfg());
        assert!(res.is_impossible(), "{res:?}");
    }

    #[test]
    fn a5_exactly_realizable_in_queueing_model() {
        // RMS exactly realizes REA (Fig. 3), so the A.5 trace must be
        // exactly inducible in RMS.
        let run = paper_runs::a5_rea();
        let target = target_of(&run);
        let res = search(&run.instance, "RMS".parse().unwrap(), &target, SearchGoal::Exact, &cfg());
        let SearchResult::Found(seq) = res else { panic!("{res:?}") };
        let cand = Runner::trace_of(&run.instance, &seq);
        assert!(exact_then_settled(&target, &cand), "{}", cand.render(&run.instance));
        check_sequence("RMS".parse().unwrap(), run.instance.graph(), &seq).unwrap();
    }

    #[test]
    fn a4_repetition_realizable_in_r1s() {
        // R1S realizes REA with repetition (Fig. 3 row REA col R1S = 3).
        let run = paper_runs::a4_rea();
        let target = target_of(&run);
        let res =
            search(&run.instance, "R1S".parse().unwrap(), &target, SearchGoal::Repetition, &cfg());
        let SearchResult::Found(seq) = res else { panic!("{res:?}") };
        let cand = Runner::trace_of(&run.instance, &seq);
        assert!(is_repetition(&target, &cand));
    }

    #[test]
    fn mismatched_initial_assignment_is_impossible() {
        let run = paper_runs::a4_rea();
        let mut bogus = PathTrace::new();
        bogus.push(vec![routelab_spp::Route::empty(); run.instance.node_count()]);
        let res = search(&run.instance, "REA".parse().unwrap(), &bogus, SearchGoal::Exact, &cfg());
        assert!(res.is_impossible());
    }

    #[test]
    fn forever_initial_assignment_is_unfair_hence_impossible() {
        // A base trace that never leaves the initial assignment cannot be
        // realized by any *fair* execution: the destination must eventually
        // announce and its neighbors must adopt a route.
        let run = paper_runs::a4_rea();
        let target = {
            let mut t = PathTrace::new();
            let index = ChannelIndex::new(run.instance.graph());
            t.push(NetworkState::initial(&run.instance, &index).assignment());
            t
        };
        let res = search(&run.instance, "REA".parse().unwrap(), &target, SearchGoal::Exact, &cfg());
        assert!(res.is_impossible(), "{res:?}");
    }

    #[test]
    fn bound_exceeded_reported() {
        let run = paper_runs::a3_reo();
        let target = target_of(&run);
        let tight = ExploreConfig {
            channel_cap: 6,
            max_states: 3,
            max_steps_per_state: 50_000,
            ..ExploreConfig::default()
        };
        let res = search(&run.instance, "RMS".parse().unwrap(), &target, SearchGoal::Exact, &tight);
        assert!(matches!(res, SearchResult::BoundExceeded { .. }), "{res:?}");
    }

    #[test]
    fn search_is_thread_invariant() {
        // The same witness (not merely *a* witness) at every thread count.
        let run = paper_runs::a3_reo();
        let target = target_of(&run);
        let mut found = Vec::new();
        for threads in [1usize, 2, 8] {
            let cfg = ExploreConfig { threads: Some(threads), ..cfg() };
            let res =
                search(&run.instance, "REO".parse().unwrap(), &target, SearchGoal::Exact, &cfg);
            let SearchResult::Found(seq) = res else { panic!("{res:?}") };
            found.push(seq);
        }
        assert_eq!(found[0], found[1]);
        assert_eq!(found[0], found[2]);
    }
}

//! Exhaustive search for an activation sequence of a model inducing a given
//! path-assignment trace (used to verify Examples A.3–A.5 mechanically).

use std::collections::HashMap;

use routelab_core::model::CommModel;
use routelab_core::step::{ActivationSeq, ActivationStep};
use routelab_engine::exec::execute_step;
use routelab_engine::index::ChannelIndex;
use routelab_engine::state::NetworkState;
use routelab_engine::trace::PathTrace;
use routelab_spp::SppInstance;

use crate::effects::{all_steps, Spec};
use crate::graph::ExploreConfig;

/// Which Definition 3.2 relation the found sequence must induce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchGoal {
    /// The induced trace equals the target exactly.
    Exact,
    /// The induced trace is the target with entries repeated.
    Repetition,
    /// The target is a subsequence of the induced trace.
    Subsequence,
}

/// Search outcome.
#[derive(Debug, Clone)]
pub enum SearchResult {
    /// A witnessing activation sequence.
    Found(ActivationSeq),
    /// Exhaustively impossible within the configured channel cap.
    Impossible {
        /// Distinct (state, progress) pairs visited.
        visited: usize,
    },
    /// The search hit a budget before deciding.
    BoundExceeded {
        /// Distinct (state, progress) pairs visited.
        visited: usize,
    },
}

impl SearchResult {
    /// `true` for [`SearchResult::Found`].
    pub fn is_found(&self) -> bool {
        matches!(self, SearchResult::Found(_))
    }

    /// `true` for [`SearchResult::Impossible`].
    pub fn is_impossible(&self) -> bool {
        matches!(self, SearchResult::Impossible { .. })
    }
}

/// Searches for an activation sequence of `model` whose trace realizes
/// `target` per `goal`. The search is exhaustive over canonical step
/// effects with memoization on (state, matched-prefix-length); when it
/// terminates without budget pressure, a negative answer is a proof (within
/// the channel cap).
///
/// For [`SearchGoal::Exact`] and [`SearchGoal::Repetition`], the target is
/// treated as a *converged* execution (as in Examples A.3–A.5): activation
/// sequences are infinite and fair, so after matching the last entry the
/// realization must be able to drain every outstanding message without ever
/// changing π — acceptance therefore requires reaching a quiescent state
/// whose assignment is the target's last entry. This is precisely the
/// argument of Example A.3: "the outstanding messages must be processed;
/// this causes π_s(10) = svbd". A subsequence realization constrains only a
/// finite prefix, so it accepts as soon as the whole target has appeared.
pub fn search(
    inst: &SppInstance,
    model: CommModel,
    target: &PathTrace,
    goal: SearchGoal,
    cfg: &ExploreConfig,
) -> SearchResult {
    let index = ChannelIndex::new(inst.graph());
    let initial = NetworkState::initial(inst, &index);
    if target.is_empty() || target.get(0) != Some(&initial.assignment()) {
        return SearchResult::Impossible { visited: 0 };
    }
    let last = target.len() - 1;
    let must_settle = matches!(goal, SearchGoal::Exact | SearchGoal::Repetition);
    let accepts = |state: &NetworkState, progress: usize| {
        progress == last && (!must_settle || state.is_quiescent())
    };
    if accepts(&initial, 0) {
        return SearchResult::Found(Vec::new());
    }

    // DFS with memoized (state, progress) pairs and parent links for
    // witness reconstruction.
    type Key = (NetworkState, usize);
    let mut parent: HashMap<Key, Option<(Key, ActivationStep)>> = HashMap::new();
    let start: Key = (initial, 0);
    parent.insert(start.clone(), None);
    let mut stack = vec![start];
    let mut truncated = false;
    let mut heartbeat = routelab_obs::Heartbeat::new("search.visited", cfg.max_states as u64);

    while let Some(key) = stack.pop() {
        heartbeat.tick(parent.len() as u64);
        let (state, progress) = &key;
        let (steps, capped) = all_steps(
            Spec::Uniform(model),
            &index,
            state,
            inst.node_count(),
            cfg.max_steps_per_state,
        );
        truncated |= capped;
        for cs in steps {
            let activation = cs.to_activation(Spec::Uniform(model), &index);
            let mut next = state.clone();
            execute_step(inst, &index, &mut next, &activation);
            if next.max_queue_len() > cfg.channel_cap {
                truncated = true;
                continue;
            }
            let pi = next.assignment();
            let at_last = *progress == last;
            let next_progress = match goal {
                SearchGoal::Exact => {
                    if at_last {
                        // Settling phase: the infinite tail of the base is
                        // constant, so every extra entry must repeat it.
                        if Some(&pi) != target.get(last) {
                            continue;
                        }
                        last
                    } else if Some(&pi) == target.get(progress + 1) {
                        progress + 1
                    } else {
                        continue;
                    }
                }
                SearchGoal::Repetition => {
                    if Some(&pi) == target.get(progress + 1) {
                        progress + 1
                    } else if Some(&pi) == target.get(*progress) {
                        *progress
                    } else {
                        continue;
                    }
                }
                SearchGoal::Subsequence => {
                    if Some(&pi) == target.get(progress + 1) {
                        progress + 1
                    } else {
                        *progress
                    }
                }
            };
            let next_key: Key = (next, next_progress);
            if parent.contains_key(&next_key) {
                continue;
            }
            parent.insert(next_key.clone(), Some((key.clone(), activation.clone())));
            if accepts(&next_key.0, next_progress) {
                return SearchResult::Found(reconstruct(&parent, next_key));
            }
            if parent.len() >= cfg.max_states {
                return SearchResult::BoundExceeded { visited: parent.len() };
            }
            stack.push(next_key);
        }
    }
    if routelab_obs::enabled() {
        routelab_obs::gauge("search.visited", parent.len() as u64);
    }
    if truncated {
        SearchResult::BoundExceeded { visited: parent.len() }
    } else {
        SearchResult::Impossible { visited: parent.len() }
    }
}

/// A search node: the network state plus the search's own position counter.
type SearchKey = (NetworkState, usize);

fn reconstruct(
    parent: &HashMap<SearchKey, Option<(SearchKey, ActivationStep)>>,
    mut key: SearchKey,
) -> ActivationSeq {
    let mut seq = Vec::new();
    while let Some(Some((prev, step))) = parent.get(&key) {
        seq.push(step.clone());
        key = prev.clone();
    }
    seq.reverse();
    seq
}

#[cfg(test)]
mod tests {
    use super::*;
    use routelab_core::validate::check_sequence;
    use routelab_engine::paper_runs;
    use routelab_engine::runner::Runner;
    use routelab_engine::trace::{is_repetition, is_subsequence};

    fn target_of(run: &paper_runs::PaperRun) -> PathTrace {
        Runner::trace_of(&run.instance, &run.seq)
    }

    fn cfg() -> ExploreConfig {
        ExploreConfig { channel_cap: 6, max_states: 2_000_000, max_steps_per_state: 50_000 }
    }

    /// The candidate equals the target followed by settle steps repeating
    /// the final assignment (the infinite tail of a converged execution).
    fn exact_then_settled(target: &PathTrace, cand: &PathTrace) -> bool {
        cand.len() >= target.len()
            && (0..target.len()).all(|t| cand.get(t) == target.get(t))
            && (target.len()..cand.len()).all(|t| cand.get(t) == target.last())
    }

    #[test]
    fn a3_trace_exactly_realizable_in_its_own_model() {
        let run = paper_runs::a3_reo();
        let target = target_of(&run);
        let res = search(&run.instance, "REO".parse().unwrap(), &target, SearchGoal::Exact, &cfg());
        let SearchResult::Found(seq) = res else { panic!("{res:?}") };
        let cand = Runner::trace_of(&run.instance, &seq);
        assert!(exact_then_settled(&target, &cand), "{}", cand.render(&run.instance));
        check_sequence("REO".parse().unwrap(), run.instance.graph(), &seq).unwrap();
    }

    #[test]
    fn proposition_3_10_a3_not_exact_in_r1o() {
        // Example A.3: the REO execution cannot be exactly realized in R1O.
        let run = paper_runs::a3_reo();
        let target = target_of(&run);
        let res = search(&run.instance, "R1O".parse().unwrap(), &target, SearchGoal::Exact, &cfg());
        assert!(res.is_impossible(), "{res:?}");
    }

    #[test]
    fn a3_is_subsequence_realizable_in_r1o() {
        let run = paper_runs::a3_reo();
        let target = target_of(&run);
        let res =
            search(&run.instance, "R1O".parse().unwrap(), &target, SearchGoal::Subsequence, &cfg());
        let SearchResult::Found(seq) = res else { panic!("{res:?}") };
        let cand = Runner::trace_of(&run.instance, &seq);
        assert!(is_subsequence(&target, &cand));
        check_sequence("R1O".parse().unwrap(), run.instance.graph(), &seq).unwrap();
    }

    #[test]
    fn proposition_3_11_a4_not_repetition_in_r1o() {
        // Example A.4: the REA execution cannot be realized with repetition
        // in R1O…
        let run = paper_runs::a4_rea();
        let target = target_of(&run);
        let res =
            search(&run.instance, "R1O".parse().unwrap(), &target, SearchGoal::Repetition, &cfg());
        assert!(res.is_impossible(), "{res:?}");
        // …but it is realizable as a subsequence (the paper's remark).
        let res =
            search(&run.instance, "R1O".parse().unwrap(), &target, SearchGoal::Subsequence, &cfg());
        let SearchResult::Found(seq) = res else { panic!("{res:?}") };
        let cand = Runner::trace_of(&run.instance, &seq);
        assert!(is_subsequence(&target, &cand));
    }

    #[test]
    fn proposition_3_12_a5_not_exact_in_r1s() {
        // Example A.5: the REA execution cannot be exactly realized in R1S.
        let run = paper_runs::a5_rea();
        let target = target_of(&run);
        let res = search(&run.instance, "R1S".parse().unwrap(), &target, SearchGoal::Exact, &cfg());
        assert!(res.is_impossible(), "{res:?}");
    }

    #[test]
    fn a5_exactly_realizable_in_queueing_model() {
        // RMS exactly realizes REA (Fig. 3), so the A.5 trace must be
        // exactly inducible in RMS.
        let run = paper_runs::a5_rea();
        let target = target_of(&run);
        let res = search(&run.instance, "RMS".parse().unwrap(), &target, SearchGoal::Exact, &cfg());
        let SearchResult::Found(seq) = res else { panic!("{res:?}") };
        let cand = Runner::trace_of(&run.instance, &seq);
        assert!(exact_then_settled(&target, &cand), "{}", cand.render(&run.instance));
        check_sequence("RMS".parse().unwrap(), run.instance.graph(), &seq).unwrap();
    }

    #[test]
    fn a4_repetition_realizable_in_r1s() {
        // R1S realizes REA with repetition (Fig. 3 row REA col R1S = 3).
        let run = paper_runs::a4_rea();
        let target = target_of(&run);
        let res =
            search(&run.instance, "R1S".parse().unwrap(), &target, SearchGoal::Repetition, &cfg());
        let SearchResult::Found(seq) = res else { panic!("{res:?}") };
        let cand = Runner::trace_of(&run.instance, &seq);
        assert!(is_repetition(&target, &cand));
    }

    #[test]
    fn mismatched_initial_assignment_is_impossible() {
        let run = paper_runs::a4_rea();
        let mut bogus = PathTrace::new();
        bogus.push(vec![routelab_spp::Route::empty(); run.instance.node_count()]);
        let res = search(&run.instance, "REA".parse().unwrap(), &bogus, SearchGoal::Exact, &cfg());
        assert!(res.is_impossible());
    }

    #[test]
    fn forever_initial_assignment_is_unfair_hence_impossible() {
        // A base trace that never leaves the initial assignment cannot be
        // realized by any *fair* execution: the destination must eventually
        // announce and its neighbors must adopt a route.
        let run = paper_runs::a4_rea();
        let target = {
            let mut t = PathTrace::new();
            let index = ChannelIndex::new(run.instance.graph());
            t.push(NetworkState::initial(&run.instance, &index).assignment());
            t
        };
        let res = search(&run.instance, "REA".parse().unwrap(), &target, SearchGoal::Exact, &cfg());
        assert!(res.is_impossible(), "{res:?}");
    }

    #[test]
    fn bound_exceeded_reported() {
        let run = paper_runs::a3_reo();
        let target = target_of(&run);
        let tight = ExploreConfig { channel_cap: 6, max_states: 3, max_steps_per_state: 50_000 };
        let res = search(&run.instance, "RMS".parse().unwrap(), &target, SearchGoal::Exact, &tight);
        assert!(matches!(res, SearchResult::BoundExceeded { .. }), "{res:?}");
    }
}

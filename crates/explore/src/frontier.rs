//! Deterministic sharded parallel breadth-first frontier engine.
//!
//! Every exhaustive check in this crate — state-graph construction, trace
//! realization search — is a breadth-first closure over an implicit graph:
//! intern a root, repeatedly expand un-expanded nodes into candidate
//! successors, dedup candidates against everything seen, stop on a cap or
//! an accepting node. [`bfs`] runs that loop with the frontier partitioned
//! by state-hash shard across `std::thread::scope` workers, under a strict
//! determinism contract:
//!
//! **The result — node ids, node count, edges, parents, truncation point,
//! accepted node — is bit-identical at any thread count**, and identical to
//! the plain sequential reference [`bfs_reference`]. The trick is canonical
//! ordinal numbering: a block of frontier nodes is expanded in parallel
//! (each parent's successors land in that parent's own slot, in the
//! parent's canonical successor order), candidates are routed to hash
//! shards *in (parent, successor) order*, each shard dedups its candidates
//! in parallel against its persistent map in that same order, and a final
//! serial merge walks candidates in (parent, successor) order assigning
//! fresh ids first-occurrence-first. That numbering is exactly what a
//! sequential breadth-first loop produces, so thread count, scheduling, and
//! shard assignment can never leak into the output. Caps and acceptance cut
//! at an exact candidate ordinal, discarding everything after it, for the
//! same reason.
//!
//! The same contract as the run-level pool (`ROUTELAB_THREADS`, PR 1),
//! pushed down into a single gadget × model cell.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::error::ExploreError;

/// Number of dedup shards. A fixed power of two: enough to keep 8–16
/// workers busy, few enough that per-shard maps stay dense. Constant so
/// shard routing can never vary run-to-run.
pub const SHARDS: usize = 64;

/// Frontier nodes expanded per parallel block. Purely a performance knob —
/// the ordinal merge makes results independent of block size.
const BLOCK: usize = 4096;

/// Env var overriding the explorer's worker count (same contract as the
/// run-level pool's variable of the same name).
pub const THREADS_ENV: &str = "ROUTELAB_THREADS";

/// Resolves a worker count: explicit setting, else `ROUTELAB_THREADS`, else
/// the machine's available parallelism.
pub fn resolved_threads(explicit: Option<usize>) -> usize {
    explicit
        .or_else(|| std::env::var(THREADS_ENV).ok().and_then(|v| v.parse().ok()))
        .filter(|&t| t > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, usize::from))
}

/// A client of the frontier engine: how to expand a node, and which nodes
/// finish the search.
pub trait Expand: Sync {
    /// The interned node type (a packed state, possibly with search-local
    /// annotations such as a progress counter).
    type Node: Hash + Eq + Clone + Send + Sync;
    /// Per-edge payload (labels for the state graph, replay steps for trace
    /// search).
    type Label: Clone + Send + Sync;

    /// Appends `node`'s successors to `out` in canonical order. Returns
    /// `true` when some transition was cut by a bound (the closure is then
    /// incomplete and the caller's verdict must say so).
    ///
    /// # Errors
    ///
    /// Any [`ExploreError`] aborts the whole search, attributed to its cell.
    fn expand(
        &self,
        id: u32,
        node: &Self::Node,
        out: &mut Vec<(Self::Node, Self::Label)>,
    ) -> Result<bool, ExploreError>;

    /// Called once per node, at interning, in id order. Returning `true`
    /// stops the search immediately (candidates after this one, in ordinal
    /// order, are discarded — on every thread count alike).
    fn accept(&self, _id: u32, _node: &Self::Node) -> bool {
        false
    }
}

/// Engine knobs. `threads` must already be resolved (≥ 1).
#[derive(Debug, Clone, Copy)]
pub struct BfsOptions {
    /// Worker count (1 = run everything inline).
    pub threads: usize,
    /// Maximum nodes interned; hitting the cap truncates the search.
    pub max_nodes: usize,
    /// Record the full edge list (needed for SCC analysis).
    pub record_edges: bool,
    /// Record one (parent, label) link per node (needed to reconstruct a
    /// path to an accepted node).
    pub record_parents: bool,
    /// Heartbeat/progress label for long closures.
    pub progress_label: &'static str,
}

/// Aggregate behavior of one [`bfs`] run (feeds `explore.*` telemetry and
/// the scaling bench).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontierStats {
    /// Worker threads used.
    pub threads: usize,
    /// Parallel blocks processed.
    pub blocks: u64,
    /// Nodes expanded.
    pub expanded: u64,
    /// Successor candidates generated.
    pub candidates: u64,
    /// Candidates that resolved to an already-interned node.
    pub dedup_hits: u64,
    /// Largest un-expanded frontier observed at a block boundary.
    pub peak_frontier: usize,
    /// Final size of the fullest dedup shard.
    pub shard_max: usize,
    /// Final size of the emptiest dedup shard.
    pub shard_min: usize,
}

impl FrontierStats {
    /// Dedup hit rate in [0, 1].
    pub fn dedup_hit_rate(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.dedup_hits as f64 / self.candidates as f64
        }
    }
}

/// Output of a frontier run.
#[derive(Debug, Clone)]
pub struct BfsResult<N, L> {
    /// Interned nodes; index = id, id 0 = root.
    pub nodes: Vec<N>,
    /// Outgoing `(to, label)` edges per node (empty unless `record_edges`;
    /// value-preserving self-loops are kept — callers filter if needed).
    pub edges: Vec<Vec<(u32, L)>>,
    /// First-discovery `(parent, label)` link per node, `None` for the root
    /// (empty unless `record_parents`).
    pub parents: Vec<Option<(u32, L)>>,
    /// `true` when a bound cut the closure (expand-reported or node cap).
    pub truncated: bool,
    /// The first accepted node, if any.
    pub accepted: Option<u32>,
    /// Run statistics.
    pub stats: FrontierStats,
}

impl<N, L> BfsResult<N, L> {
    /// Reconstructs the label path root → `id` from the parent links.
    pub fn path_to(&self, id: u32) -> Vec<L>
    where
        L: Clone,
    {
        let mut labels = Vec::new();
        let mut cur = id;
        while let Some(Some((p, l))) = self.parents.get(cur as usize) {
            labels.push(l.clone());
            cur = *p;
        }
        labels.reverse();
        labels
    }
}

/// Deterministic shard routing: a fixed-key hash of the node, reduced to a
/// shard index. Never feeds id assignment — only map placement.
fn shard_of<N: Hash>(node: &N) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    node.hash(&mut h);
    (h.finish() as usize) & (SHARDS - 1)
}

/// How a candidate resolved against the shard maps.
#[derive(Clone, Copy)]
enum Resolution {
    /// Already interned with this id.
    Old(u32),
    /// First seen this block; index into the shard's pending list.
    New(u32),
}

/// Per-shard output of the parallel dedup phase.
#[derive(Default)]
struct ShardOut<N> {
    /// One resolution per routed candidate, in ordinal order.
    resolutions: Vec<Resolution>,
    /// First occurrence of each block-new node, in ordinal order.
    pending: Vec<N>,
    /// Block-local dedup map: node → pending index (reused to extend the
    /// persistent map once global ids exist).
    pend_map: HashMap<N, u32>,
    /// Old-node hits (for the dedup hit-rate stat).
    hits: u64,
}

type Candidates<N, L> = Vec<(N, L)>;

/// One parent's expansion: its candidate successors plus the "budget cut
/// here" flag returned by [`Expand::expand`].
type Slot<N, L> = (Candidates<N, L>, bool);

/// Expands parents `results[i] ↔ id block_start + i`, filling each slot in
/// place. Panics inside `expand` are caught and attributed to `cell`.
fn expand_block<E: Expand>(
    exp: &E,
    arena: &[E::Node],
    block_start: usize,
    slots: &mut [Slot<E::Node, E::Label>],
    threads: usize,
    cell: &str,
) -> Result<(), ExploreError> {
    let run_range = |offset: usize, slots: &mut [Slot<E::Node, E::Label>]| {
        for (i, slot) in slots.iter_mut().enumerate() {
            let id = block_start + offset + i;
            let node = &arena[id];
            let expanded =
                catch_unwind(AssertUnwindSafe(|| exp.expand(id as u32, node, &mut slot.0)));
            match expanded {
                Ok(r) => slot.1 = r?,
                Err(payload) => {
                    return Err(ExploreError::worker_panic(cell, panic_message(&*payload)))
                }
            }
        }
        Ok(())
    };
    if threads <= 1 || slots.len() <= 1 {
        return run_range(0, slots);
    }
    let chunk = slots.len().div_ceil(threads);
    let mut failures: Vec<(usize, ExploreError)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (w, chunk_slots) in slots.chunks_mut(chunk).enumerate() {
            let run_range = &run_range;
            handles.push((w, scope.spawn(move || run_range(w * chunk, chunk_slots))));
        }
        for (w, h) in handles {
            match h.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => failures.push((w, e)),
                // A panic that escaped catch_unwind (e.g. in the harness
                // itself) — still attribute it.
                Err(payload) => {
                    failures.push((w, ExploreError::worker_panic(cell, panic_message(&*payload))))
                }
            }
        }
    });
    // Earliest worker's failure wins, deterministically.
    failures.sort_by_key(|&(w, _)| w);
    match failures.into_iter().next() {
        Some((_, e)) => Err(e),
        None => Ok(()),
    }
}

/// Resolves every routed candidate of the block against the shard maps —
/// shards in parallel, each walking its bucket in ordinal order.
fn dedup_block<N, L>(
    shard_maps: &[HashMap<N, u32>],
    buckets: &[Vec<(u32, u32)>],
    results: &[(Candidates<N, L>, bool)],
    threads: usize,
) -> Vec<ShardOut<N>>
where
    N: Hash + Eq + Clone + Send + Sync,
    L: Sync,
{
    let resolve_shard = |s: usize| -> ShardOut<N> {
        let mut out = ShardOut {
            resolutions: Vec::with_capacity(buckets[s].len()),
            pending: Vec::new(),
            pend_map: HashMap::new(),
            hits: 0,
        };
        for &(pi, si) in &buckets[s] {
            let node = &results[pi as usize].0[si as usize].0;
            if let Some(&id) = shard_maps[s].get(node) {
                out.hits += 1;
                out.resolutions.push(Resolution::Old(id));
            } else if let Some(&p) = out.pend_map.get(node) {
                // A duplicate within the block still resolves to an
                // already-interned node by merge time — count it as a hit,
                // matching the sequential reference's accounting.
                out.hits += 1;
                out.resolutions.push(Resolution::New(p));
            } else {
                let p = out.pending.len() as u32;
                out.pend_map.insert(node.clone(), p);
                out.pending.push(node.clone());
                out.resolutions.push(Resolution::New(p));
            }
        }
        out
    };
    if threads <= 1 {
        return (0..SHARDS).map(resolve_shard).collect();
    }
    let mut outs: Vec<Option<ShardOut<N>>> = (0..SHARDS).map(|_| None).collect();
    let chunk = SHARDS.div_ceil(threads.min(SHARDS));
    std::thread::scope(|scope| {
        for (w, out_chunk) in outs.chunks_mut(chunk).enumerate() {
            let resolve_shard = &resolve_shard;
            scope.spawn(move || {
                for (i, slot) in out_chunk.iter_mut().enumerate() {
                    *slot = Some(resolve_shard(w * chunk + i));
                }
            });
        }
    });
    outs.into_iter().map(|o| o.expect("every shard resolved")).collect()
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs the sharded parallel breadth-first closure from `root`.
///
/// # Errors
///
/// Propagates the first [`ExploreError`] (in deterministic order) from
/// expansion, attributed to `cell`.
pub fn bfs<E: Expand>(
    exp: &E,
    root: E::Node,
    cell: &str,
    opts: &BfsOptions,
) -> Result<BfsResult<E::Node, E::Label>, ExploreError> {
    let threads = opts.threads.max(1);
    let mut stats = FrontierStats { threads, ..FrontierStats::default() };

    let mut arena: Vec<E::Node> = Vec::new();
    let mut shard_maps: Vec<HashMap<E::Node, u32>> = (0..SHARDS).map(|_| HashMap::new()).collect();
    let mut edges: Vec<Vec<(u32, E::Label)>> = Vec::new();
    let mut parents: Vec<Option<(u32, E::Label)>> = Vec::new();
    let mut truncated = false;
    let mut accepted = None;

    shard_maps[shard_of(&root)].insert(root.clone(), 0);
    if opts.record_edges {
        edges.push(Vec::new());
    }
    if opts.record_parents {
        parents.push(None);
    }
    if exp.accept(0, &root) {
        accepted = Some(0);
    }
    arena.push(root);

    let mut heartbeat = routelab_obs::Heartbeat::new(opts.progress_label, opts.max_nodes as u64);
    let mut expanded = 0usize;
    // Reusable per-parent successor slots: cleared and refilled every block,
    // so candidate buffers keep their capacity across the whole search
    // instead of being reallocated per block.
    let mut results: Vec<Slot<E::Node, E::Label>> = Vec::new();
    'search: while expanded < arena.len() && accepted.is_none() {
        stats.peak_frontier = stats.peak_frontier.max(arena.len() - expanded);
        let block_start = expanded;
        let block_len = (arena.len() - expanded).min(BLOCK);
        expanded += block_len;
        stats.blocks += 1;
        stats.expanded += block_len as u64;
        heartbeat.tick(arena.len() as u64);

        // Phase 1 (parallel): expand every parent of the block into its own
        // slot, in the parent's canonical successor order.
        for slot in results.iter_mut() {
            slot.0.clear();
            slot.1 = false;
        }
        while results.len() < block_len {
            results.push((Vec::new(), false));
        }
        expand_block(exp, &arena, block_start, &mut results[..block_len], threads, cell)?;

        // Phase 2 (serial, cheap): route candidates to shards in ordinal
        // (parent, successor) order, so each shard's bucket is
        // ordinal-sorted.
        let mut buckets: Vec<Vec<(u32, u32)>> = (0..SHARDS).map(|_| Vec::new()).collect();
        for (pi, (cands, cut)) in results[..block_len].iter().enumerate() {
            truncated |= cut;
            stats.candidates += cands.len() as u64;
            for (si, (node, _)) in cands.iter().enumerate() {
                buckets[shard_of(node)].push((pi as u32, si as u32));
            }
        }

        // Phase 3 (parallel): per-shard dedup against the persistent maps,
        // each bucket walked in ordinal order.
        let mut outs = dedup_block(&shard_maps, &buckets, &results[..block_len], threads);
        for o in &outs {
            stats.dedup_hits += o.hits;
        }

        // Phase 4 (serial): fixed-order merge. Walk candidates in ordinal
        // order, assigning fresh ids first-occurrence-first — exactly the
        // numbering of a sequential BFS. Caps and acceptance stop at an
        // exact ordinal, discarding the rest of the block.
        let mut cursor = [0usize; SHARDS];
        let mut assigned: Vec<Vec<Option<u32>>> =
            outs.iter().map(|o| vec![None; o.pending.len()]).collect();
        for (pi, result) in results.iter_mut().enumerate().take(block_len) {
            let from = (block_start + pi) as u32;
            for (node, label) in result.0.drain(..) {
                let s = shard_of(&node);
                let r = outs[s].resolutions[cursor[s]];
                cursor[s] += 1;
                let to = match r {
                    Resolution::Old(id) => id,
                    Resolution::New(p) => match assigned[s][p as usize] {
                        Some(id) => id,
                        None => {
                            if arena.len() >= opts.max_nodes {
                                truncated = true;
                                break 'search;
                            }
                            let id = arena.len() as u32;
                            assigned[s][p as usize] = Some(id);
                            if opts.record_edges {
                                edges.push(Vec::new());
                            }
                            if opts.record_parents {
                                parents.push(Some((from, label.clone())));
                            }
                            if exp.accept(id, &node) {
                                accepted = Some(id);
                            }
                            arena.push(node);
                            id
                        }
                    },
                };
                if opts.record_edges {
                    edges[from as usize].push((to, label));
                }
                if accepted.is_some() {
                    break 'search;
                }
            }
        }

        // Phase 5 (serial, cheap): publish the block's assignments into the
        // persistent shard maps (unassigned pendings were cut — never
        // published, as in the sequential loop).
        for (s, out) in outs.iter_mut().enumerate() {
            for (node, p) in out.pend_map.drain() {
                if let Some(id) = assigned[s][p as usize] {
                    shard_maps[s].insert(node, id);
                }
            }
        }
    }

    stats.shard_max = shard_maps.iter().map(HashMap::len).max().unwrap_or(0);
    stats.shard_min = shard_maps.iter().map(HashMap::len).min().unwrap_or(0);
    Ok(BfsResult { nodes: arena, edges, parents, truncated, accepted, stats })
}

/// The plain sequential reference implementation: one queue, one map, no
/// blocks. Kept deliberately independent of [`bfs`]'s machinery — the
/// differential tests assert the two agree bit-for-bit.
///
/// # Errors
///
/// Propagates the first [`ExploreError`] from expansion.
pub fn bfs_reference<E: Expand>(
    exp: &E,
    root: E::Node,
    cell: &str,
    opts: &BfsOptions,
) -> Result<BfsResult<E::Node, E::Label>, ExploreError> {
    let mut arena: Vec<E::Node> = Vec::new();
    let mut ids: HashMap<E::Node, u32> = HashMap::new();
    let mut edges: Vec<Vec<(u32, E::Label)>> = Vec::new();
    let mut parents: Vec<Option<(u32, E::Label)>> = Vec::new();
    let mut truncated = false;
    let mut accepted = None;
    let mut stats = FrontierStats { threads: 1, ..FrontierStats::default() };

    ids.insert(root.clone(), 0);
    if opts.record_edges {
        edges.push(Vec::new());
    }
    if opts.record_parents {
        parents.push(None);
    }
    if exp.accept(0, &root) {
        accepted = Some(0);
    }
    arena.push(root);

    let mut expanded = 0usize;
    'search: while expanded < arena.len() && accepted.is_none() {
        stats.peak_frontier = stats.peak_frontier.max(arena.len() - expanded);
        let from = expanded as u32;
        expanded += 1;
        stats.expanded += 1;
        let mut cands = Vec::new();
        let cut =
            catch_unwind(AssertUnwindSafe(|| exp.expand(from, &arena[from as usize], &mut cands)))
                .map_err(|p| ExploreError::worker_panic(cell, panic_message(&*p)))??;
        truncated |= cut;
        stats.candidates += cands.len() as u64;
        for (node, label) in cands {
            let to = match ids.get(&node) {
                Some(&id) => {
                    stats.dedup_hits += 1;
                    id
                }
                None => {
                    if arena.len() >= opts.max_nodes {
                        truncated = true;
                        break 'search;
                    }
                    let id = arena.len() as u32;
                    ids.insert(node.clone(), id);
                    if opts.record_edges {
                        edges.push(Vec::new());
                    }
                    if opts.record_parents {
                        parents.push(Some((from, label.clone())));
                    }
                    if exp.accept(id, &node) {
                        accepted = Some(id);
                    }
                    arena.push(node);
                    id
                }
            };
            if opts.record_edges {
                edges[from as usize].push((to, label));
            }
            if accepted.is_some() {
                break 'search;
            }
        }
    }
    stats.blocks = stats.expanded;
    Ok(BfsResult { nodes: arena, edges, parents, truncated, accepted, stats })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic graph over u64 node values: each node n < limit expands
    /// to a deterministic pseudo-random fan-out, exercising dedup heavily.
    struct Synthetic {
        limit: u64,
        fan: u64,
        accept_at: Option<u64>,
    }

    impl Expand for Synthetic {
        type Node = u64;
        type Label = u64;
        fn expand(
            &self,
            _id: u32,
            node: &u64,
            out: &mut Vec<(u64, u64)>,
        ) -> Result<bool, ExploreError> {
            for k in 0..self.fan {
                // A fixed mixing function: collides often, covers slowly.
                let succ =
                    (node.wrapping_mul(6364136223846793005).wrapping_add(k * 1442695040888963407)
                        >> 33)
                        % self.limit;
                out.push((succ, k));
            }
            Ok(false)
        }
        fn accept(&self, _id: u32, node: &u64) -> bool {
            Some(*node) == self.accept_at
        }
    }

    fn opts(threads: usize) -> BfsOptions {
        BfsOptions {
            threads,
            max_nodes: usize::MAX,
            record_edges: true,
            record_parents: true,
            progress_label: "test.frontier",
        }
    }

    fn assert_identical(a: &BfsResult<u64, u64>, b: &BfsResult<u64, u64>) {
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.parents, b.parents);
        assert_eq!(a.truncated, b.truncated);
        assert_eq!(a.accepted, b.accepted);
    }

    #[test]
    fn parallel_matches_reference_at_every_thread_count() {
        let g = Synthetic { limit: 5_000, fan: 7, accept_at: None };
        let reference = bfs_reference(&g, 0, "synthetic", &opts(1)).unwrap();
        assert!(reference.nodes.len() > 1_000);
        for threads in [1, 2, 3, 8] {
            let par = bfs(&g, 0, "synthetic", &opts(threads)).unwrap();
            assert_identical(&par, &reference);
            assert_eq!(par.stats.threads, threads);
            assert_eq!(par.stats.dedup_hits, reference.stats.dedup_hits);
            assert_eq!(par.stats.candidates, reference.stats.candidates);
        }
    }

    #[test]
    fn truncation_point_is_thread_invariant() {
        let g = Synthetic { limit: 50_000, fan: 9, accept_at: None };
        let mut o = opts(1);
        o.max_nodes = 1234;
        let reference = bfs_reference(&g, 0, "synthetic", &o).unwrap();
        assert!(reference.truncated);
        assert_eq!(reference.nodes.len(), 1234);
        for threads in [1, 2, 8] {
            let mut o = opts(threads);
            o.max_nodes = 1234;
            let par = bfs(&g, 0, "synthetic", &o).unwrap();
            assert_identical(&par, &reference);
        }
    }

    #[test]
    fn acceptance_is_thread_invariant() {
        let g = Synthetic { limit: 5_000, fan: 7, accept_at: Some(4_321) };
        let reference = bfs_reference(&g, 0, "synthetic", &opts(1)).unwrap();
        for threads in [1, 2, 8] {
            let par = bfs(&g, 0, "synthetic", &opts(threads)).unwrap();
            assert_identical(&par, &reference);
        }
        if let Some(id) = reference.accepted {
            assert_eq!(reference.nodes[id as usize], 4_321);
            // The parent chain replays to the accepted node.
            let path = reference.path_to(id);
            assert!(!path.is_empty());
        }
    }

    #[test]
    fn worker_panics_become_typed_errors() {
        struct Bomb;
        impl Expand for Bomb {
            type Node = u64;
            type Label = ();
            fn expand(
                &self,
                _id: u32,
                node: &u64,
                out: &mut Vec<(u64, ())>,
            ) -> Result<bool, ExploreError> {
                if *node == 3 {
                    panic!("boom at {node}");
                }
                out.push((node + 1, ()));
                Ok(false)
            }
        }
        for runner in [bfs::<Bomb>, bfs_reference::<Bomb>] {
            let err = runner(&Bomb, 0, "BOMB × R1O", &opts(2)).expect_err("must fail");
            assert_eq!(err.cell, "BOMB × R1O");
            assert!(err.to_string().contains("boom at 3"), "{err}");
        }
    }

    #[test]
    fn accept_on_root_short_circuits() {
        let g = Synthetic { limit: 10, fan: 2, accept_at: Some(0) };
        let r = bfs(&g, 0, "synthetic", &opts(4)).unwrap();
        assert_eq!(r.accepted, Some(0));
        assert_eq!(r.nodes.len(), 1);
        assert_eq!(r.stats.expanded, 0);
    }

    #[test]
    fn resolved_threads_prefers_explicit() {
        assert_eq!(resolved_threads(Some(3)), 3);
        assert!(resolved_threads(None) >= 1);
    }
}

//! Deterministic sharded parallel breadth-first frontier engine.
//!
//! Every exhaustive check in this crate — state-graph construction, trace
//! realization search — is a breadth-first closure over an implicit graph:
//! intern a root, repeatedly expand un-expanded nodes into candidate
//! successors, dedup candidates against everything seen, stop on a cap or
//! an accepting node. [`bfs`] runs that loop with the frontier partitioned
//! by state-hash shard across `std::thread::scope` workers, under a strict
//! determinism contract:
//!
//! **The result — node ids, node count, edges, parents, truncation point,
//! accepted node — is bit-identical at any thread count**, and identical to
//! the plain sequential reference [`bfs_reference`]. The trick is canonical
//! ordinal numbering: a block of frontier nodes is expanded in parallel
//! (each parent's successors land in that parent's own slot, in the
//! parent's canonical successor order), candidates are routed to hash
//! shards *in (parent, successor) order*, each shard dedups its candidates
//! in parallel against its persistent map in that same order, and a final
//! serial merge walks candidates in (parent, successor) order assigning
//! fresh ids first-occurrence-first. That numbering is exactly what a
//! sequential breadth-first loop produces, so thread count, scheduling, and
//! shard assignment can never leak into the output. Caps and acceptance cut
//! at an exact candidate ordinal, discarding everything after it, for the
//! same reason.
//!
//! Nodes are plain `u16` word buffers. Expansion writes successors straight
//! into a reusable per-parent [`SuccBuf`] (no per-candidate allocation),
//! dedup keys are 64-bit [`hash_words`] fingerprints verified word-for-word
//! against the interned node (so dedup stays *exact* — the hash only routes
//! and pre-filters), and interned nodes live delta-compressed in a
//! spill-capable [`NodeArena`]. All arena writes happen in the serial merge
//! phase; the parallel phases only read.
//!
//! The same contract as the run-level pool (`ROUTELAB_THREADS`, PR 1),
//! pushed down into a single gadget × model cell.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use crate::arena::{MatScratch, NodeArena};
use crate::error::ExploreError;

/// Number of dedup shards. A fixed power of two: enough to keep 8–16
/// workers busy, few enough that per-shard maps stay dense. Constant so
/// shard routing can never vary run-to-run.
pub const SHARDS: usize = 64;

/// Frontier nodes expanded per parallel block. Purely a performance knob —
/// the ordinal merge makes results independent of block size.
const BLOCK: usize = 4096;

/// Default resident budget for the spill arena (bytes of node payload kept
/// in memory once a spill directory is configured).
pub const DEFAULT_SPILL_RESIDENT_BYTES: usize = 256 << 20;

/// Env var overriding the explorer's worker count (same contract as the
/// run-level pool's variable of the same name).
pub const THREADS_ENV: &str = "ROUTELAB_THREADS";

/// Parses a `ROUTELAB_THREADS` value. Invalid or zero values are a hard
/// error naming the offending string — a typo in a CI matrix must fail the
/// job, not silently fall back to machine parallelism.
///
/// # Panics
///
/// Panics when `raw` is not a positive integer.
pub fn threads_from_env(raw: &str) -> usize {
    match raw.trim().parse::<usize>() {
        Ok(t) if t > 0 => t,
        _ => panic!("{THREADS_ENV} must be a positive integer, got {raw:?}"),
    }
}

/// Resolves a worker count: explicit setting, else `ROUTELAB_THREADS`, else
/// the machine's available parallelism.
///
/// # Panics
///
/// Panics when `ROUTELAB_THREADS` is set to a non-numeric or zero value
/// (see [`threads_from_env`]).
pub fn resolved_threads(explicit: Option<usize>) -> usize {
    if let Some(t) = explicit.filter(|&t| t > 0) {
        return t;
    }
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        return threads_from_env(&raw);
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// The fixed-key 64-bit node fingerprint: routes candidates to shards and
/// pre-filters dedup lookups. Never trusted alone — every hash hit is
/// verified word-for-word, so a collision costs one comparison, never
/// correctness. Never feeds id assignment.
pub(crate) fn hash_words(ws: &[u16]) -> u64 {
    const K: u64 = 0x9E37_79B9_7F4A_7C15;
    const M: u64 = 0x9DDF_EA08_EB38_2D69;
    let mut h: u64 = 0x8F1B_BCDC_BF69_63D1 ^ (ws.len() as u64).wrapping_mul(K);
    let mut chunks = ws.chunks_exact(4);
    for c in &mut chunks {
        let x =
            (c[0] as u64) | ((c[1] as u64) << 16) | ((c[2] as u64) << 32) | ((c[3] as u64) << 48);
        h = (h ^ x.wrapping_mul(K)).rotate_left(29).wrapping_mul(M);
    }
    for &w in chunks.remainder() {
        h = (h ^ (w as u64).wrapping_mul(K)).rotate_left(17).wrapping_mul(M);
    }
    h ^ (h >> 32)
}

/// Deterministic shard routing from a node fingerprint.
fn shard_of_hash(h: u64) -> usize {
    (h as usize) & (SHARDS - 1)
}

/// Shard a raw node buffer routes to (exposed so tests and diagnostics can
/// recount per-shard populations independently of [`FrontierStats`]).
pub fn shard_of_words(ws: &[u16]) -> usize {
    shard_of_hash(hash_words(ws))
}

/// A reusable per-parent successor buffer: candidate node words appended
/// into one flat arena-style `Vec`, labels and fingerprints alongside.
/// Cleared (capacity kept) for every parent, so steady-state expansion
/// performs no per-candidate allocation for node storage.
#[derive(Debug)]
pub struct SuccBuf<L> {
    words: Vec<u16>,
    spans: Vec<(u32, u32)>,
    hashes: Vec<u64>,
    labels: Vec<Option<L>>,
}

impl<L> Default for SuccBuf<L> {
    fn default() -> Self {
        SuccBuf { words: Vec::new(), spans: Vec::new(), hashes: Vec::new(), labels: Vec::new() }
    }
}

impl<L> SuccBuf<L> {
    /// Number of committed candidates.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` when no candidate has been committed.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Marks the start of a new candidate; pass the mark to
    /// [`SuccBuf::commit`] or [`SuccBuf::cancel`].
    pub fn mark(&self) -> usize {
        self.words.len()
    }

    /// The shared word buffer — append the candidate's words here.
    pub fn words(&mut self) -> &mut Vec<u16> {
        &mut self.words
    }

    /// The words written since `mark` (the in-progress candidate).
    pub fn since(&self, mark: usize) -> &[u16] {
        &self.words[mark..]
    }

    /// Commits the words written since `mark` as one candidate.
    pub fn commit(&mut self, mark: usize, label: L) {
        let end = self.words.len();
        self.hashes.push(hash_words(&self.words[mark..end]));
        self.spans.push((mark as u32, end as u32));
        self.labels.push(Some(label));
    }

    /// Discards the words written since `mark`.
    pub fn cancel(&mut self, mark: usize) {
        self.words.truncate(mark);
    }

    /// Appends a complete candidate in one call.
    pub fn push(&mut self, ws: &[u16], label: L) {
        let m = self.mark();
        self.words.extend_from_slice(ws);
        self.commit(m, label);
    }

    fn clear(&mut self) {
        self.words.clear();
        self.spans.clear();
        self.hashes.clear();
        self.labels.clear();
    }

    fn node(&self, i: usize) -> &[u16] {
        let (a, b) = self.spans[i];
        &self.words[a as usize..b as usize]
    }

    fn hash(&self, i: usize) -> u64 {
        self.hashes[i]
    }

    fn take_label(&mut self, i: usize) -> L {
        self.labels[i].take().expect("label taken once")
    }

    fn clone_label(&self, i: usize) -> L
    where
        L: Clone,
    {
        self.labels[i].clone().expect("label still present")
    }
}

/// A client of the frontier engine: how to expand a node, and which nodes
/// finish the search.
pub trait Expand: Sync {
    /// Per-edge payload (labels for the state graph, replay steps for trace
    /// search).
    type Label: Clone + Send + Sync;
    /// Per-worker reusable scratch threaded through [`Expand::expand`]
    /// (decoded parents, encode buffers — whatever the client reuses to
    /// avoid per-candidate allocation).
    type Scratch: Default + Send;

    /// Appends `node`'s successors to `out` in canonical order. Returns
    /// `true` when some transition was cut by a bound (the closure is then
    /// incomplete and the caller's verdict must say so).
    ///
    /// # Errors
    ///
    /// Any [`ExploreError`] aborts the whole search, attributed to its cell.
    fn expand(
        &self,
        id: u32,
        node: &[u16],
        out: &mut SuccBuf<Self::Label>,
        scratch: &mut Self::Scratch,
    ) -> Result<bool, ExploreError>;

    /// Called once per node, at interning, in id order. Returning `true`
    /// stops the search immediately (candidates after this one, in ordinal
    /// order, are discarded — on every thread count alike).
    fn accept(&self, _id: u32, _node: &[u16]) -> bool {
        false
    }
}

/// Engine knobs. `threads` must already be resolved (≥ 1).
#[derive(Debug, Clone)]
pub struct BfsOptions {
    /// Worker count (1 = run everything inline).
    pub threads: usize,
    /// Maximum nodes interned; hitting the cap truncates the search.
    pub max_nodes: usize,
    /// Record the full edge list (needed for SCC analysis).
    pub record_edges: bool,
    /// Record one (parent, label) link per node (needed to reconstruct a
    /// path to an accepted node).
    pub record_parents: bool,
    /// Heartbeat/progress label for long closures.
    pub progress_label: &'static str,
    /// Directory for the node arena's spill file; `None` keeps every page
    /// resident.
    pub spill_dir: Option<PathBuf>,
    /// Resident-payload budget (bytes) once spilling is enabled.
    pub spill_resident_bytes: usize,
}

impl BfsOptions {
    /// Fully resident options with `threads` workers and `max_nodes` cap.
    pub fn new(threads: usize, max_nodes: usize) -> Self {
        BfsOptions {
            threads,
            max_nodes,
            record_edges: false,
            record_parents: false,
            progress_label: "frontier.nodes",
            spill_dir: None,
            spill_resident_bytes: DEFAULT_SPILL_RESIDENT_BYTES,
        }
    }
}

/// Aggregate behavior of one [`bfs`] run (feeds `explore.*` telemetry and
/// the scaling bench).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontierStats {
    /// Worker threads used.
    pub threads: usize,
    /// Parallel blocks processed.
    pub blocks: u64,
    /// Nodes expanded.
    pub expanded: u64,
    /// Successor candidates generated.
    pub candidates: u64,
    /// Candidates that resolved to an already-interned node.
    pub dedup_hits: u64,
    /// Largest un-expanded frontier observed at a block boundary.
    pub peak_frontier: usize,
    /// Final size of the fullest dedup shard.
    pub shard_max: usize,
    /// Final size of the emptiest dedup shard.
    pub shard_min: usize,
    /// Bytes of node storage resident in memory at the end of the run.
    pub bytes_resident: u64,
    /// Bytes of node storage spilled to disk over the run.
    pub bytes_spilled: u64,
}

impl FrontierStats {
    /// Dedup hit rate in [0, 1].
    pub fn dedup_hit_rate(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.dedup_hits as f64 / self.candidates as f64
        }
    }
}

/// Output of a frontier run.
#[derive(Debug)]
pub struct BfsResult<L> {
    /// Interned nodes, delta-compressed; index = id, id 0 = root.
    pub nodes: NodeArena,
    /// Outgoing `(to, label)` edges per node (empty unless `record_edges`;
    /// value-preserving self-loops are kept — callers filter if needed).
    pub edges: Vec<Vec<(u32, L)>>,
    /// First-discovery `(parent, label)` link per node, `None` for the root
    /// (empty unless `record_parents`).
    pub parents: Vec<Option<(u32, L)>>,
    /// `true` when a bound cut the closure (expand-reported or node cap).
    pub truncated: bool,
    /// The first accepted node, if any.
    pub accepted: Option<u32>,
    /// Run statistics.
    pub stats: FrontierStats,
}

impl<L> BfsResult<L> {
    /// Reconstructs the label path root → `id` from the parent links.
    pub fn path_to(&self, id: u32) -> Vec<L>
    where
        L: Clone,
    {
        let mut labels = Vec::new();
        let mut cur = id;
        while let Some(Some((p, l))) = self.parents.get(cur as usize) {
            labels.push(l.clone());
            cur = *p;
        }
        labels.reverse();
        labels
    }
}

/// The ids behind one fingerprint in a shard map — almost always one;
/// colliding fingerprints chain into a spilled `Vec`.
enum SmallIds {
    One(u32),
    Many(Vec<u32>),
}

impl SmallIds {
    fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        match self {
            SmallIds::One(id) => std::slice::from_ref(id).iter().copied(),
            SmallIds::Many(ids) => ids.iter().copied(),
        }
    }

    fn push(&mut self, id: u32) {
        match self {
            SmallIds::One(a) => *self = SmallIds::Many(vec![*a, id]),
            SmallIds::Many(ids) => ids.push(id),
        }
    }
}

/// The hasher of the fingerprint-keyed dedup maps: keys are already
/// avalanche-mixed [`hash_words`] outputs, so SipHash-ing them again per
/// lookup buys nothing. One odd-constant multiply remixes the low bits
/// (which shard routing consumed — every key of a shard's map shares
/// them) back across the table index. Purely an internal-layout choice:
/// the maps are never iterated, so results cannot depend on it.
#[derive(Default)]
struct FpHasher(u64);

impl std::hash::Hasher for FpHasher {
    fn finish(&self) -> u64 {
        self.0.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("fingerprint maps hash only u64 keys")
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

type FpBuild = std::hash::BuildHasherDefault<FpHasher>;
type ShardMap = HashMap<u64, SmallIds, FpBuild>;

/// Inserts a freshly interned node into its shard map.
fn publish(map: &mut ShardMap, hash: u64, id: u32) {
    match map.entry(hash) {
        std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(id),
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert(SmallIds::One(id));
        }
    }
}

/// Upper bound on [`NodeCache`] slots (tunes memory, never results).
const MAX_CACHE_SLOTS: usize = 1 << 18;

/// A direct-mapped ring cache of recently interned nodes' materialized
/// words, keyed by id. BFS locality concentrates dedup hits and expansion
/// parents near the frontier — i.e. on recently assigned ids — so most
/// reads become one memcmp/memcpy instead of a delta-chain walk through
/// the arena (and never touch the spill file). Written only in the serial
/// merge phase; the parallel phases share it read-only. Purely a read
/// accelerator: a hit returns exactly the bytes `NodeArena::materialize`
/// would, so results cannot depend on cache size or hit pattern.
struct NodeCache {
    mask: usize,
    /// `(id, words)` per slot; `u32::MAX` tags an empty slot.
    slots: Vec<(u32, Vec<u16>)>,
    /// Hit/miss tallies when profiling (atomics: `get` runs from the
    /// parallel expand/dedup phases). Counting only — never results.
    track: bool,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl NodeCache {
    fn new(max_nodes: usize) -> Self {
        let k = max_nodes.clamp(1, MAX_CACHE_SLOTS).next_power_of_two();
        NodeCache {
            mask: k - 1,
            slots: (0..k).map(|_| (u32::MAX, Vec::new())).collect(),
            track: false,
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    fn get(&self, id: u32) -> Option<&[u16]> {
        let (tag, words) = &self.slots[id as usize & self.mask];
        let hit = *tag == id;
        if self.track {
            let ctr = if hit { &self.hits } else { &self.misses };
            ctr.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        hit.then_some(words.as_slice())
    }

    fn put(&mut self, id: u32, words: &[u16]) {
        let slot = &mut self.slots[id as usize & self.mask];
        slot.0 = id;
        slot.1.clear();
        slot.1.extend_from_slice(words);
    }
}

/// Reads node `id` into `out` — from the cache when it is still resident
/// there, else by materializing the delta chain from the arena.
fn read_node(
    arena: &NodeArena,
    cache: &NodeCache,
    id: u32,
    ms: &mut MatScratch,
    out: &mut Vec<u16>,
) -> Result<(), ExploreError> {
    match cache.get(id) {
        Some(w) => {
            out.clear();
            out.extend_from_slice(w);
            Ok(())
        }
        None => arena.materialize(id, ms, out),
    }
}

/// How a candidate resolved against the shard maps.
#[derive(Clone, Copy)]
enum Resolution {
    /// Already interned with this id.
    Old(u32),
    /// First seen this block; index into the shard's pending list.
    New(u32),
}

/// Per-shard output of the parallel dedup phase.
#[derive(Default)]
struct ShardOut {
    /// One resolution per routed candidate, in ordinal order.
    resolutions: Vec<Resolution>,
    /// First occurrence of each block-new node, in ordinal order:
    /// `(parent slot, successor index, fingerprint)`.
    pending: Vec<(u32, u32, u64)>,
    /// Old-node hits (for the dedup hit-rate stat).
    hits: u64,
}

/// One parent's expansion: its candidate successors plus the "budget cut
/// here" flag returned by [`Expand::expand`].
struct Slot<L> {
    buf: SuccBuf<L>,
    cut: bool,
}

impl<L> Default for Slot<L> {
    fn default() -> Self {
        Slot { buf: SuccBuf::default(), cut: false }
    }
}

/// Expands parents `slots[i] ↔ id block_start + i`, filling each slot in
/// place. Panics inside `expand` are caught and attributed to `cell`.
fn expand_block<E: Expand>(
    exp: &E,
    arena: &NodeArena,
    cache: &NodeCache,
    block_start: usize,
    slots: &mut [Slot<E::Label>],
    threads: usize,
    cell: &str,
) -> Result<(), ExploreError> {
    let run_range = |offset: usize, slots: &mut [Slot<E::Label>]| {
        let mut scratch = E::Scratch::default();
        let mut ms = MatScratch::default();
        let mut parent: Vec<u16> = Vec::new();
        for (i, slot) in slots.iter_mut().enumerate() {
            let id = (block_start + offset + i) as u32;
            read_node(arena, cache, id, &mut ms, &mut parent)?;
            let expanded = catch_unwind(AssertUnwindSafe(|| {
                exp.expand(id, &parent, &mut slot.buf, &mut scratch)
            }));
            match expanded {
                Ok(r) => slot.cut = r?,
                Err(payload) => {
                    return Err(ExploreError::worker_panic(cell, panic_message(&*payload)))
                }
            }
        }
        Ok(())
    };
    if threads <= 1 || slots.len() <= 1 {
        return run_range(0, slots);
    }
    let chunk = slots.len().div_ceil(threads);
    let mut failures: Vec<(usize, ExploreError)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (w, chunk_slots) in slots.chunks_mut(chunk).enumerate() {
            let run_range = &run_range;
            handles.push((w, scope.spawn(move || run_range(w * chunk, chunk_slots))));
        }
        for (w, h) in handles {
            match h.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => failures.push((w, e)),
                // A panic that escaped catch_unwind (e.g. in the harness
                // itself) — still attribute it.
                Err(payload) => {
                    failures.push((w, ExploreError::worker_panic(cell, panic_message(&*payload))))
                }
            }
        }
    });
    // Earliest worker's failure wins, deterministically.
    failures.sort_by_key(|&(w, _)| w);
    match failures.into_iter().next() {
        Some((_, e)) => Err(e),
        None => Ok(()),
    }
}

/// Resolves every routed candidate of the block against the shard maps —
/// shards in parallel, each walking its bucket in ordinal order. Every
/// fingerprint hit is verified against the actual node words (from the
/// arena for interned nodes, from the slots for block-pending ones), so
/// resolution is exact.
fn dedup_block<L: Sync>(
    arena: &NodeArena,
    cache: &NodeCache,
    maps: &[ShardMap],
    buckets: &[Vec<(u32, u32)>],
    slots: &[Slot<L>],
    threads: usize,
) -> Result<Vec<ShardOut>, ExploreError> {
    let resolve_shard = |s: usize| -> Result<ShardOut, ExploreError> {
        let mut out = ShardOut {
            resolutions: Vec::with_capacity(buckets[s].len()),
            pending: Vec::new(),
            hits: 0,
        };
        let mut pend_map: HashMap<u64, Vec<u32>, FpBuild> = HashMap::default();
        let mut ms = MatScratch::default();
        let mut known: Vec<u16> = Vec::new();
        for &(pi, si) in &buckets[s] {
            let buf = &slots[pi as usize].buf;
            let (node, h) = (buf.node(si as usize), buf.hash(si as usize));
            let mut resolved = None;
            if let Some(ids) = maps[s].get(&h) {
                for id in ids.iter() {
                    if arena.word_len(id) != node.len() {
                        continue;
                    }
                    let same = match cache.get(id) {
                        Some(w) => w == node,
                        None => {
                            arena.materialize(id, &mut ms, &mut known)?;
                            known == node
                        }
                    };
                    if same {
                        resolved = Some(Resolution::Old(id));
                        break;
                    }
                }
            }
            if resolved.is_none() {
                if let Some(ps) = pend_map.get(&h) {
                    for &p in ps {
                        let (qpi, qsi, _) = out.pending[p as usize];
                        if slots[qpi as usize].buf.node(qsi as usize) == node {
                            // A duplicate within the block still resolves to
                            // an already-interned node by merge time — count
                            // it as a hit, matching the sequential
                            // reference's accounting.
                            resolved = Some(Resolution::New(p));
                            break;
                        }
                    }
                }
            }
            match resolved {
                Some(r) => {
                    out.hits += 1;
                    out.resolutions.push(r);
                }
                None => {
                    let p = out.pending.len() as u32;
                    pend_map.entry(h).or_default().push(p);
                    out.pending.push((pi, si, h));
                    out.resolutions.push(Resolution::New(p));
                }
            }
        }
        Ok(out)
    };
    if threads <= 1 {
        return (0..SHARDS).map(resolve_shard).collect();
    }
    let mut outs: Vec<Option<Result<ShardOut, ExploreError>>> = (0..SHARDS).map(|_| None).collect();
    let chunk = SHARDS.div_ceil(threads.min(SHARDS));
    std::thread::scope(|scope| {
        for (w, out_chunk) in outs.chunks_mut(chunk).enumerate() {
            let resolve_shard = &resolve_shard;
            scope.spawn(move || {
                for (i, slot) in out_chunk.iter_mut().enumerate() {
                    *slot = Some(resolve_shard(w * chunk + i));
                }
            });
        }
    });
    // The lowest-index shard's failure wins, deterministically.
    outs.into_iter().map(|o| o.expect("every shard resolved")).collect()
}

/// Per-block phase timer for the explorer pipeline. Active only when
/// telemetry or tracing is enabled; each `lap` emits an obs histogram sample
/// and a flight-recorder `tph` event, so a whole exploration renders as a
/// timeline in the Chrome export. Timing only observes — results are
/// bit-identical with profiling on or off.
struct PhaseProfiler {
    on: bool,
    last: std::time::Instant,
}

impl PhaseProfiler {
    fn new() -> Self {
        PhaseProfiler {
            on: routelab_obs::enabled() || routelab_obs::trace_enabled(),
            last: std::time::Instant::now(),
        }
    }

    /// Marks the start of a phase (re-arms the clock).
    fn start(&mut self) {
        if self.on {
            self.last = std::time::Instant::now();
        }
    }

    /// Closes the current phase: `hist` is the obs histogram name, `name`
    /// the short phase name in the trace.
    fn lap(&mut self, hist: &'static str, name: &str, block: u64, args: &[(&str, u64)]) {
        if !self.on {
            return;
        }
        let now = std::time::Instant::now();
        let dur_ns = now.duration_since(self.last).as_nanos() as u64;
        self.last = now;
        routelab_obs::histogram(hist, dur_ns);
        routelab_obs::trace_phase(name, dur_ns, block, args);
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs the sharded parallel breadth-first closure from the root node
/// `root` (its raw words).
///
/// # Errors
///
/// Propagates the first [`ExploreError`] (in deterministic order) from
/// expansion, dedup, or the spill arena, attributed to `cell`.
pub fn bfs<E: Expand>(
    exp: &E,
    root: &[u16],
    cell: &str,
    opts: &BfsOptions,
) -> Result<BfsResult<E::Label>, ExploreError> {
    let threads = opts.threads.max(1);
    let mut stats = FrontierStats { threads, ..FrontierStats::default() };

    let mut arena = match &opts.spill_dir {
        Some(dir) => NodeArena::with_spill(cell, dir, opts.spill_resident_bytes / 2)?,
        None => NodeArena::new(cell),
    };
    let mut maps: Vec<ShardMap> = (0..SHARDS).map(|_| ShardMap::default()).collect();
    let mut counts = [0usize; SHARDS];
    let mut edges: Vec<Vec<(u32, E::Label)>> = Vec::new();
    let mut parents: Vec<Option<(u32, E::Label)>> = Vec::new();
    let mut truncated = false;
    let mut accepted = None;

    let root_hash = hash_words(root);
    publish(&mut maps[shard_of_hash(root_hash)], root_hash, 0);
    counts[shard_of_hash(root_hash)] += 1;
    if opts.record_edges {
        edges.push(Vec::new());
    }
    if opts.record_parents {
        parents.push(None);
    }
    if exp.accept(0, root) {
        accepted = Some(0);
    }
    arena.intern_full(root)?;
    let mut cache = NodeCache::new(opts.max_nodes);
    cache.put(0, root);
    let mut profiler = PhaseProfiler::new();
    cache.track = profiler.on;

    let mut heartbeat = routelab_obs::Heartbeat::new(opts.progress_label, opts.max_nodes as u64);
    let mut expanded = 0usize;
    // Reusable per-parent successor slots: cleared and refilled every block,
    // so candidate buffers keep their capacity across the whole search
    // instead of being reallocated per block.
    let mut slots: Vec<Slot<E::Label>> = Vec::new();
    // Serial-merge scratch: delta encoder buffer and the memoized parent
    // materialization (successors arrive grouped by parent).
    let mut code: Vec<u16> = Vec::new();
    let mut ms = MatScratch::default();
    let mut parent_words: Vec<u16> = Vec::new();
    'search: while expanded < arena.len() && accepted.is_none() {
        stats.peak_frontier = stats.peak_frontier.max(arena.len() - expanded);
        let block_start = expanded;
        let block_len = (arena.len() - expanded).min(BLOCK);
        expanded += block_len;
        stats.blocks += 1;
        stats.expanded += block_len as u64;
        heartbeat.tick(arena.len() as u64);

        let block_no = stats.blocks - 1;

        // Phase 1 (parallel): expand every parent of the block into its own
        // slot, in the parent's canonical successor order.
        profiler.start();
        for slot in slots.iter_mut() {
            slot.buf.clear();
            slot.cut = false;
        }
        while slots.len() < block_len {
            slots.push(Slot::default());
        }
        expand_block(exp, &arena, &cache, block_start, &mut slots[..block_len], threads, cell)?;
        profiler.lap("frontier.expand_ns", "expand", block_no, &[("parents", block_len as u64)]);

        // Phase 2 (serial, cheap): route candidates to shards in ordinal
        // (parent, successor) order, so each shard's bucket is
        // ordinal-sorted.
        let candidates_before = stats.candidates;
        let mut buckets: Vec<Vec<(u32, u32)>> = (0..SHARDS).map(|_| Vec::new()).collect();
        for (pi, slot) in slots[..block_len].iter().enumerate() {
            truncated |= slot.cut;
            stats.candidates += slot.buf.len() as u64;
            for si in 0..slot.buf.len() {
                buckets[shard_of_hash(slot.buf.hash(si))].push((pi as u32, si as u32));
            }
        }
        profiler.lap(
            "frontier.route_ns",
            "route",
            block_no,
            &[("candidates", stats.candidates - candidates_before)],
        );

        // Phase 3 (parallel): per-shard dedup against the persistent maps,
        // each bucket walked in ordinal order.
        let hits_before = stats.dedup_hits;
        let outs = dedup_block(&arena, &cache, &maps, &buckets, &slots[..block_len], threads)?;
        for o in &outs {
            stats.dedup_hits += o.hits;
        }
        profiler.lap(
            "frontier.dedup_ns",
            "dedup",
            block_no,
            &[("hits", stats.dedup_hits - hits_before)],
        );

        // Phase 4 (serial): fixed-order merge. Walk candidates in ordinal
        // order, assigning fresh ids first-occurrence-first — exactly the
        // numbering of a sequential BFS. Caps and acceptance stop at an
        // exact ordinal, discarding the rest of the block.
        profiler.start();
        let interned_before = arena.len();
        let spilled_before = arena.bytes_spilled();
        let mut cursor = [0usize; SHARDS];
        let mut assigned: Vec<Vec<Option<u32>>> =
            outs.iter().map(|o| vec![None; o.pending.len()]).collect();
        let mut done = false;
        let mut last_parent = u32::MAX;
        'merge: for (pi, slot) in slots[..block_len].iter_mut().enumerate() {
            let from = (block_start + pi) as u32;
            for si in 0..slot.buf.len() {
                let s = shard_of_hash(slot.buf.hash(si));
                let r = outs[s].resolutions[cursor[s]];
                cursor[s] += 1;
                let to = match r {
                    Resolution::Old(id) => id,
                    Resolution::New(p) => match assigned[s][p as usize] {
                        Some(id) => id,
                        None => {
                            if arena.len() >= opts.max_nodes {
                                truncated = true;
                                done = true;
                                break 'merge;
                            }
                            if last_parent != from {
                                read_node(&arena, &cache, from, &mut ms, &mut parent_words)?;
                                last_parent = from;
                            }
                            let node = slot.buf.node(si);
                            let id = arena.intern(node, from, &parent_words, &mut code)?;
                            cache.put(id, node);
                            assigned[s][p as usize] = Some(id);
                            if opts.record_edges {
                                edges.push(Vec::new());
                            }
                            if opts.record_parents {
                                parents.push(Some((from, slot.buf.clone_label(si))));
                            }
                            if exp.accept(id, slot.buf.node(si)) {
                                accepted = Some(id);
                            }
                            id
                        }
                    },
                };
                if opts.record_edges {
                    let label = slot.buf.take_label(si);
                    edges[from as usize].push((to, label));
                }
                if accepted.is_some() {
                    done = true;
                    break 'merge;
                }
            }
        }

        // The merge lap covers interning (delta encode + arena append +
        // cache fill) and any page spilling the appends forced; the spilled
        // delta attributes disk pressure to its block.
        profiler.lap(
            "frontier.merge_ns",
            "merge",
            block_no,
            &[
                ("interned", (arena.len() - interned_before) as u64),
                ("spilled_bytes", arena.bytes_spilled() - spilled_before),
            ],
        );

        // Phase 5 (serial, cheap): publish the block's assignments into the
        // persistent shard maps. This runs even when the merge was cut
        // mid-block by the cap or an acceptance — nodes interned before the
        // cut point are already in the arena and must be in the maps, or
        // the shard statistics (and any hypothetical resumed search) would
        // silently miss them. Unassigned pendings were cut — never
        // published, as in the sequential loop.
        profiler.start();
        for (s, out) in outs.iter().enumerate() {
            for (p, &(_, _, h)) in out.pending.iter().enumerate() {
                if let Some(id) = assigned[s][p] {
                    publish(&mut maps[s], h, id);
                    counts[s] += 1;
                }
            }
        }
        profiler.lap("frontier.publish_ns", "publish", block_no, &[]);
        if done {
            break 'search;
        }
    }
    stats.shard_max = counts.iter().copied().max().unwrap_or(0);
    stats.shard_min = counts.iter().copied().min().unwrap_or(0);
    stats.bytes_resident = arena.bytes_resident();
    stats.bytes_spilled = arena.bytes_spilled();
    if profiler.on {
        // Cache effectiveness totals go to telemetry/trace only — never into
        // `FrontierStats`, whose fields the differential tests compare
        // against the sequential reference.
        let hits = cache.hits.load(std::sync::atomic::Ordering::Relaxed);
        let misses = cache.misses.load(std::sync::atomic::Ordering::Relaxed);
        if routelab_obs::enabled() {
            routelab_obs::counter("frontier.cache.hits", hits);
            routelab_obs::counter("frontier.cache.misses", misses);
        }
        routelab_obs::trace_counter("frontier.cache.hits", hits);
        routelab_obs::trace_counter("frontier.cache.misses", misses);
    }
    Ok(BfsResult { nodes: arena, edges, parents, truncated, accepted, stats })
}

/// The plain sequential reference implementation: one queue, one exact
/// (full-buffer-keyed) map, no blocks, no delta compression — nodes are
/// stored as full keyframes. Kept deliberately independent of [`bfs`]'s
/// machinery — the differential tests assert the two agree bit-for-bit,
/// which in particular cross-checks the fingerprint dedup and the delta
/// chains against plain storage and exact hashing.
///
/// # Errors
///
/// Propagates the first [`ExploreError`] from expansion.
pub fn bfs_reference<E: Expand>(
    exp: &E,
    root: &[u16],
    cell: &str,
    opts: &BfsOptions,
) -> Result<BfsResult<E::Label>, ExploreError> {
    let mut arena = NodeArena::new(cell);
    let mut ids: HashMap<Vec<u16>, u32> = HashMap::new();
    let mut edges: Vec<Vec<(u32, E::Label)>> = Vec::new();
    let mut parents: Vec<Option<(u32, E::Label)>> = Vec::new();
    let mut truncated = false;
    let mut accepted = None;
    let mut stats = FrontierStats { threads: 1, ..FrontierStats::default() };

    ids.insert(root.to_vec(), 0);
    if opts.record_edges {
        edges.push(Vec::new());
    }
    if opts.record_parents {
        parents.push(None);
    }
    if exp.accept(0, root) {
        accepted = Some(0);
    }
    arena.intern_full(root)?;

    let mut scratch = E::Scratch::default();
    let mut ms = MatScratch::default();
    let mut parent: Vec<u16> = Vec::new();
    let mut buf: SuccBuf<E::Label> = SuccBuf::default();
    'search: while expanded_lt(&arena, accepted, stats.expanded) {
        let from = stats.expanded as u32;
        stats.expanded += 1;
        stats.peak_frontier = stats.peak_frontier.max(arena.len() - from as usize);
        arena.materialize(from, &mut ms, &mut parent)?;
        buf.clear();
        let cut =
            catch_unwind(AssertUnwindSafe(|| exp.expand(from, &parent, &mut buf, &mut scratch)))
                .map_err(|p| ExploreError::worker_panic(cell, panic_message(&*p)))??;
        truncated |= cut;
        stats.candidates += buf.len() as u64;
        for si in 0..buf.len() {
            let to = match ids.get(buf.node(si)) {
                Some(&id) => {
                    stats.dedup_hits += 1;
                    id
                }
                None => {
                    if arena.len() >= opts.max_nodes {
                        truncated = true;
                        break 'search;
                    }
                    let id = arena.intern_full(buf.node(si))?;
                    ids.insert(buf.node(si).to_vec(), id);
                    if opts.record_edges {
                        edges.push(Vec::new());
                    }
                    if opts.record_parents {
                        parents.push(Some((from, buf.clone_label(si))));
                    }
                    if exp.accept(id, buf.node(si)) {
                        accepted = Some(id);
                    }
                    id
                }
            };
            if opts.record_edges {
                edges[from as usize].push((to, buf.take_label(si)));
            }
            if accepted.is_some() {
                break 'search;
            }
        }
    }
    stats.blocks = stats.expanded;
    stats.bytes_resident = arena.bytes_resident();
    Ok(BfsResult { nodes: arena, edges, parents, truncated, accepted, stats })
}

/// Loop condition of the sequential reference (`expanded < len`, no
/// acceptance yet).
fn expanded_lt(arena: &NodeArena, accepted: Option<u32>, expanded: u64) -> bool {
    (expanded as usize) < arena.len() && accepted.is_none()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(x: u64) -> [u16; 4] {
        [x as u16, (x >> 16) as u16, (x >> 32) as u16, (x >> 48) as u16]
    }

    fn dec(ws: &[u16]) -> u64 {
        (ws[0] as u64) | ((ws[1] as u64) << 16) | ((ws[2] as u64) << 32) | ((ws[3] as u64) << 48)
    }

    /// A synthetic graph over u64 node values: each node n < limit expands
    /// to a deterministic pseudo-random fan-out, exercising dedup heavily.
    struct Synthetic {
        limit: u64,
        fan: u64,
        accept_at: Option<u64>,
    }

    impl Expand for Synthetic {
        type Label = u64;
        type Scratch = ();
        fn expand(
            &self,
            _id: u32,
            node: &[u16],
            out: &mut SuccBuf<u64>,
            _scratch: &mut (),
        ) -> Result<bool, ExploreError> {
            let node = dec(node);
            for k in 0..self.fan {
                // A fixed mixing function: collides often, covers slowly.
                let succ =
                    (node.wrapping_mul(6364136223846793005).wrapping_add(k * 1442695040888963407)
                        >> 33)
                        % self.limit;
                out.push(&enc(succ), k);
            }
            Ok(false)
        }
        fn accept(&self, _id: u32, node: &[u16]) -> bool {
            Some(dec(node)) == self.accept_at
        }
    }

    fn opts(threads: usize) -> BfsOptions {
        BfsOptions {
            threads,
            max_nodes: usize::MAX,
            record_edges: true,
            record_parents: true,
            progress_label: "test.frontier",
            spill_dir: None,
            spill_resident_bytes: DEFAULT_SPILL_RESIDENT_BYTES,
        }
    }

    fn assert_identical(a: &BfsResult<u64>, b: &BfsResult<u64>) {
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.parents, b.parents);
        assert_eq!(a.truncated, b.truncated);
        assert_eq!(a.accepted, b.accepted);
    }

    #[test]
    fn parallel_matches_reference_at_every_thread_count() {
        let g = Synthetic { limit: 5_000, fan: 7, accept_at: None };
        let reference = bfs_reference(&g, &enc(0), "synthetic", &opts(1)).unwrap();
        assert!(reference.nodes.len() > 1_000);
        for threads in [1, 2, 3, 8] {
            let par = bfs(&g, &enc(0), "synthetic", &opts(threads)).unwrap();
            assert_identical(&par, &reference);
            assert_eq!(par.stats.threads, threads);
            assert_eq!(par.stats.dedup_hits, reference.stats.dedup_hits);
            assert_eq!(par.stats.candidates, reference.stats.candidates);
        }
    }

    #[test]
    fn truncation_point_is_thread_invariant() {
        let g = Synthetic { limit: 50_000, fan: 9, accept_at: None };
        let mut o = opts(1);
        o.max_nodes = 1234;
        let reference = bfs_reference(&g, &enc(0), "synthetic", &o).unwrap();
        assert!(reference.truncated);
        assert_eq!(reference.nodes.len(), 1234);
        for threads in [1, 2, 8] {
            let mut o = opts(threads);
            o.max_nodes = 1234;
            let par = bfs(&g, &enc(0), "synthetic", &o).unwrap();
            assert_identical(&par, &reference);
        }
    }

    #[test]
    fn shard_stats_match_a_sequential_recount_even_after_a_mid_merge_cut() {
        // Nodes interned in the truncating final block used to be dropped
        // from the shard maps (Phase 5 was skipped on the cut), so
        // shard_max/shard_min undercounted. The stats must now equal a
        // plain recount of every interned node's shard.
        let g = Synthetic { limit: 50_000, fan: 9, accept_at: None };
        for max_nodes in [1234usize, 5000] {
            let mut o = opts(2);
            o.max_nodes = max_nodes;
            let r = bfs(&g, &enc(0), "synthetic", &o).unwrap();
            assert!(r.truncated);
            let mut recount = [0usize; SHARDS];
            for node in r.nodes.snapshot() {
                recount[shard_of_words(&node)] += 1;
            }
            assert_eq!(recount.iter().sum::<usize>(), r.nodes.len());
            assert_eq!(r.stats.shard_max, recount.iter().copied().max().unwrap(), "{max_nodes}");
            assert_eq!(r.stats.shard_min, recount.iter().copied().min().unwrap(), "{max_nodes}");
        }
    }

    #[test]
    fn acceptance_is_thread_invariant() {
        let g = Synthetic { limit: 5_000, fan: 7, accept_at: Some(4_321) };
        let reference = bfs_reference(&g, &enc(0), "synthetic", &opts(1)).unwrap();
        for threads in [1, 2, 8] {
            let par = bfs(&g, &enc(0), "synthetic", &opts(threads)).unwrap();
            assert_identical(&par, &reference);
        }
        if let Some(id) = reference.accepted {
            assert_eq!(dec(&reference.nodes.node_vec(id)), 4_321);
            // The parent chain replays to the accepted node.
            let path = reference.path_to(id);
            assert!(!path.is_empty());
        }
    }

    #[test]
    fn spilled_run_is_identical_to_resident_run() {
        let g = Synthetic { limit: 20_000, fan: 9, accept_at: None };
        let resident = bfs(&g, &enc(0), "synthetic", &opts(2)).unwrap();
        let dir =
            std::env::temp_dir().join(format!("routelab-frontier-spill-{}", std::process::id()));
        let mut o = opts(2);
        o.spill_dir = Some(dir.clone());
        o.spill_resident_bytes = 4096; // force heavy spilling
        let spilled = bfs(&g, &enc(0), "synthetic", &o).unwrap();
        assert!(spilled.stats.bytes_spilled > 0, "{:?}", spilled.stats);
        assert_identical(&spilled, &resident);
        assert_eq!(spilled.stats.dedup_hits, resident.stats.dedup_hits);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn worker_panics_become_typed_errors() {
        struct Bomb;
        impl Expand for Bomb {
            type Label = ();
            type Scratch = ();
            fn expand(
                &self,
                _id: u32,
                node: &[u16],
                out: &mut SuccBuf<()>,
                _scratch: &mut (),
            ) -> Result<bool, ExploreError> {
                let node = dec(node);
                if node == 3 {
                    panic!("boom at {node}");
                }
                out.push(&enc(node + 1), ());
                Ok(false)
            }
        }
        for runner in [bfs::<Bomb>, bfs_reference::<Bomb>] {
            let err = runner(&Bomb, &enc(0), "BOMB × R1O", &opts(2)).expect_err("must fail");
            assert_eq!(err.cell, "BOMB × R1O");
            assert!(err.to_string().contains("boom at 3"), "{err}");
        }
    }

    #[test]
    fn accept_on_root_short_circuits() {
        let g = Synthetic { limit: 10, fan: 2, accept_at: Some(0) };
        let r = bfs(&g, &enc(0), "synthetic", &opts(4)).unwrap();
        assert_eq!(r.accepted, Some(0));
        assert_eq!(r.nodes.len(), 1);
        assert_eq!(r.stats.expanded, 0);
    }

    #[test]
    fn resolved_threads_prefers_explicit() {
        assert_eq!(resolved_threads(Some(3)), 3);
        assert!(resolved_threads(None) >= 1);
    }

    #[test]
    fn invalid_thread_env_values_are_hard_errors_naming_the_value() {
        // Parsed through the same function `resolved_threads` uses for the
        // env var, without mutating the process environment (other tests
        // resolve threads concurrently).
        assert_eq!(threads_from_env("4"), 4);
        assert_eq!(threads_from_env(" 2 "), 2);
        for bogus in ["", "zero", "1.5", "0", "-3"] {
            let err = catch_unwind(|| threads_from_env(bogus)).expect_err(bogus);
            let msg = panic_message(&*err);
            assert!(msg.contains(THREADS_ENV), "{msg}");
            assert!(msg.contains(&format!("{bogus:?}")), "{msg}");
        }
    }

    #[test]
    fn hash_words_separates_length_and_content() {
        assert_ne!(hash_words(&[]), hash_words(&[0]));
        assert_ne!(hash_words(&[0, 0]), hash_words(&[0, 0, 0]));
        assert_ne!(hash_words(&[1, 2, 3, 4, 5]), hash_words(&[1, 2, 3, 4, 6]));
        assert_ne!(hash_words(&[1, 2, 3, 4, 5]), hash_words(&[5, 2, 3, 4, 1]));
        assert_eq!(hash_words(&[7, 8, 9]), hash_words(&[7, 8, 9]));
    }
}

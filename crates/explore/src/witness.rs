//! Concrete oscillation witnesses: a replayable prefix + cycle extracted
//! from a fair oscillating SCC.
//!
//! The [`crate::oscillation`] verdicts prove *that* a fair oscillation
//! exists; this module produces one you can hand to the execution engine: a
//! finite prefix from the initial state into the witnessing SCC, and a
//! closed walk inside the SCC that changes π. Driving the prefix and then
//! cycling the walk forever reproduces the divergence (the cycle alone need
//! not attend every channel — fairness is certified by the SCC criterion,
//! which also accounts for the state-preserving attendance steps that can
//! be interleaved freely).

use std::collections::{HashMap, VecDeque};

use routelab_core::model::CommModel;
use routelab_core::step::ActivationSeq;
use routelab_spp::SppInstance;

use crate::effects::Spec;
use crate::graph::{build_spec, ExploreConfig, StateGraph};
use crate::oscillation::find_fair_scc;

/// A replayable divergence witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OscillationWitness {
    /// Steps leading from the initial state into the SCC.
    pub prefix: ActivationSeq,
    /// A closed walk within the SCC changing at least one π.
    pub cycle: ActivationSeq,
}

/// Shortest edge path `from → to` (BFS); `within` restricts intermediate
/// states (pass `None` for the whole graph). Returns edge indices per hop.
fn bfs_path(
    g: &StateGraph,
    from: usize,
    to: usize,
    within: Option<&[bool]>,
) -> Option<Vec<(usize, usize)>> {
    if from == to {
        return Some(Vec::new());
    }
    let mut prev: HashMap<usize, (usize, usize)> = HashMap::new(); // state -> (pred, edge idx)
    let mut queue = VecDeque::from([from]);
    while let Some(s) = queue.pop_front() {
        for (ei, e) in g.edges[s].iter().enumerate() {
            if let Some(mask) = within {
                if !mask[e.to] {
                    continue;
                }
            }
            if e.to != from && !prev.contains_key(&e.to) {
                prev.insert(e.to, (s, ei));
                if e.to == to {
                    let mut path = Vec::new();
                    let mut cur = to;
                    while cur != from {
                        let (p, ei) = prev[&cur];
                        path.push((p, ei));
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(e.to);
            }
        }
    }
    None
}

/// Extracts an oscillation witness for `inst` under `model`, or `None` when
/// the analysis finds no fair oscillating SCC within the bounds.
pub fn oscillation_witness(
    inst: &SppInstance,
    model: CommModel,
    cfg: &ExploreConfig,
) -> Option<OscillationWitness> {
    oscillation_witness_spec(inst, Spec::Uniform(model), cfg)
}

/// Extracts an oscillation witness for any model view (uniform or mixed).
///
/// The graph is always built *unreduced* (overriding `cfg.reduce`): witness
/// steps are replayed literally against the execution engine, and edges of a
/// reduced graph denote normalized/canonicalized transitions whose raw
/// successors differ from the recorded targets.
pub fn oscillation_witness_spec(
    inst: &SppInstance,
    spec: Spec<'_>,
    cfg: &ExploreConfig,
) -> Option<OscillationWitness> {
    let cfg = ExploreConfig { reduce: false, ..cfg.clone() };
    let g = build_spec(inst, spec, &cfg);
    witness_from_graph(spec, &g)
}

/// Extracts an oscillation witness from a prebuilt graph (used by the
/// differential tests to compare parallel- and reference-built graphs).
pub fn witness_from_graph(spec: Spec<'_>, g: &StateGraph) -> Option<OscillationWitness> {
    let comp = find_fair_scc(spec, g)?;
    let index = &g.index;
    let mut member = vec![false; g.len()];
    for &s in &comp {
        member[s] = true;
    }

    // A π-changing internal edge must exist (π differs across the SCC).
    let (ca, cei) = comp.iter().find_map(|&s| {
        g.edges[s]
            .iter()
            .enumerate()
            .find(|(_, e)| member[e.to] && e.changes_pi)
            .map(|(ei, _)| (s, ei))
    })?;
    let cb = g.edges[ca][cei].to;

    // Prefix: initial state -> ca (unrestricted).
    let prefix_edges = bfs_path(g, 0, ca, None)?;
    // Cycle: the changing edge plus a return path cb -> ca inside the SCC.
    let back = bfs_path(g, cb, ca, Some(&member))?;

    let to_steps = |edges: &[(usize, usize)]| -> ActivationSeq {
        edges.iter().map(|&(s, ei)| g.edges[s][ei].step().to_activation(spec, index)).collect()
    };
    let mut cycle = vec![g.edges[ca][cei].step().to_activation(spec, index)];
    cycle.extend(to_steps(&back));
    Some(OscillationWitness { prefix: to_steps(&prefix_edges), cycle })
}

#[cfg(test)]
mod tests {
    use super::*;
    use routelab_core::validate::check_sequence;
    use routelab_engine::outcome::{drive, RunOutcome};
    use routelab_engine::runner::Runner;
    use routelab_engine::schedule::Cyclic;
    use routelab_spp::gadgets;

    fn replay(inst: &SppInstance, model: &str, witness: &OscillationWitness) {
        let model: CommModel = model.parse().unwrap();
        check_sequence(model, inst.graph(), &witness.prefix)
            .unwrap_or_else(|(t, e)| panic!("prefix step {t}: {e}"));
        check_sequence(model, inst.graph(), &witness.cycle)
            .unwrap_or_else(|(t, e)| panic!("cycle step {t}: {e}"));
        let mut runner = Runner::new(inst);
        runner.run(&witness.prefix);
        let mut sched = Cyclic::new(witness.cycle.clone());
        match drive(&mut runner, &mut sched, 10_000) {
            RunOutcome::CycleDetected { oscillating, .. } => {
                assert!(oscillating, "witness cycle must change π")
            }
            other => panic!("witness did not oscillate: {other:?}"),
        }
    }

    #[test]
    fn disagree_r1o_witness_replays() {
        let inst = gadgets::disagree();
        let w = oscillation_witness(&inst, "R1O".parse().unwrap(), &ExploreConfig::default())
            .expect("R1O oscillates on DISAGREE");
        assert!(!w.cycle.is_empty());
        replay(&inst, "R1O", &w);
    }

    #[test]
    fn bad_gadget_rea_witness_replays() {
        let inst = gadgets::bad_gadget();
        let w = oscillation_witness(&inst, "REA".parse().unwrap(), &ExploreConfig::default())
            .expect("REA oscillates on BAD-GADGET");
        replay(&inst, "REA", &w);
    }

    #[test]
    fn fig6_reo_witness_replays() {
        let inst = gadgets::fig6();
        let cfg = ExploreConfig { channel_cap: 3, ..ExploreConfig::default() };
        let w = oscillation_witness(&inst, "REO".parse().unwrap(), &cfg)
            .expect("REO oscillates on Fig. 6");
        replay(&inst, "REO", &w);
    }

    #[test]
    fn no_witness_for_converging_models() {
        let inst = gadgets::disagree();
        assert!(
            oscillation_witness(&inst, "RMA".parse().unwrap(), &ExploreConfig::default()).is_none()
        );
        let good = gadgets::good_gadget();
        assert!(
            oscillation_witness(&good, "R1O".parse().unwrap(), &ExploreConfig::default()).is_none()
        );
    }

    #[test]
    fn unreliable_witness_respects_drop_fairness_criterion() {
        let inst = gadgets::disagree();
        let w = oscillation_witness(&inst, "U1O".parse().unwrap(), &ExploreConfig::default())
            .expect("U1O oscillates on DISAGREE");
        replay(&inst, "U1O", &w);
    }
}

//! Typed errors for the exhaustive explorer.
//!
//! Exploration used to fail by panicking deep inside the frontier loop,
//! surfacing as an anonymous "thread panicked" with no hint of *which*
//! gadget × model cell was being checked. Every fallible step of the
//! parallel engine — interning a state into the packed arena, resolving a
//! route id, a worker shard poisoned by a panic — now reports an
//! [`ExploreError`] carrying the offending cell, in the same spirit as the
//! experiment pool's per-job panic attribution.

use std::fmt;

/// What went wrong inside the explorer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExploreErrorKind {
    /// The instance's permitted-path universe exceeds the packed route-id
    /// width (u16); such an instance cannot be interned.
    RouteTableOverflow {
        /// Number of distinct routes the instance admits.
        routes: usize,
    },
    /// A state to be interned mentions a route outside the instance's
    /// permitted-path universe — the engine produced an impossible route,
    /// or the instance was mutated mid-exploration.
    UnknownRoute {
        /// The offending route, rendered.
        route: String,
    },
    /// A queue grew past the packed length-field width (u16); the state
    /// cannot be encoded without silently truncating it.
    PathTooLong {
        /// The dense channel id whose queue overflowed.
        channel: usize,
        /// The offending queue length.
        len: usize,
    },
    /// A packed state failed to decode (corrupt arena entry).
    CorruptState {
        /// Human-readable description of the corruption.
        detail: String,
    },
    /// A worker thread panicked while expanding a state; the panic payload
    /// is preserved.
    WorkerPanic {
        /// The rendered panic payload.
        message: String,
    },
    /// The spill-backed state arena failed to read or write its backing
    /// file (disk full, permissions, the spill directory vanishing
    /// mid-run).
    SpillIo {
        /// Human-readable description of the I/O failure.
        detail: String,
    },
}

/// An explorer failure attributed to its gadget × model cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreError {
    /// The cell being explored (instance descriptor × model).
    pub cell: String,
    /// The failure itself.
    pub kind: ExploreErrorKind,
}

impl ExploreError {
    /// A worker-panic error for `cell`.
    pub fn worker_panic(cell: impl Into<String>, message: impl Into<String>) -> Self {
        ExploreError {
            cell: cell.into(),
            kind: ExploreErrorKind::WorkerPanic { message: message.into() },
        }
    }

    /// An unknown-route error for `cell`.
    pub fn unknown_route(cell: impl Into<String>, route: impl Into<String>) -> Self {
        ExploreError {
            cell: cell.into(),
            kind: ExploreErrorKind::UnknownRoute { route: route.into() },
        }
    }

    /// A queue-length overflow error for `cell`.
    pub fn path_too_long(cell: impl Into<String>, channel: usize, len: usize) -> Self {
        ExploreError { cell: cell.into(), kind: ExploreErrorKind::PathTooLong { channel, len } }
    }

    /// A corrupt-state error for `cell`.
    pub fn corrupt(cell: impl Into<String>, detail: impl Into<String>) -> Self {
        ExploreError {
            cell: cell.into(),
            kind: ExploreErrorKind::CorruptState { detail: detail.into() },
        }
    }

    /// A spill-arena I/O error for `cell`.
    pub fn spill_io(cell: impl Into<String>, detail: impl Into<String>) -> Self {
        ExploreError {
            cell: cell.into(),
            kind: ExploreErrorKind::SpillIo { detail: detail.into() },
        }
    }
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "explore[{}]: ", self.cell)?;
        match &self.kind {
            ExploreErrorKind::RouteTableOverflow { routes } => {
                write!(f, "route table overflow ({routes} routes exceed the u16 id space)")
            }
            ExploreErrorKind::UnknownRoute { route } => {
                write!(f, "route {route} is outside the instance's permitted-path universe")
            }
            ExploreErrorKind::PathTooLong { channel, len } => {
                write!(f, "queue on channel {channel} holds {len} routes, exceeding the packed u16 length field")
            }
            ExploreErrorKind::CorruptState { detail } => {
                write!(f, "corrupt packed state: {detail}")
            }
            ExploreErrorKind::WorkerPanic { message } => {
                write!(f, "worker panicked: {message}")
            }
            ExploreErrorKind::SpillIo { detail } => {
                write!(f, "spill arena I/O failure: {detail}")
            }
        }
    }
}

impl std::error::Error for ExploreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_cell() {
        let e = ExploreError::worker_panic("DISAGREE × R1O", "queue empty");
        let s = e.to_string();
        assert!(s.contains("DISAGREE × R1O"), "{s}");
        assert!(s.contains("queue empty"), "{s}");
        let e = ExploreError {
            cell: "FIG6 × RMA".into(),
            kind: ExploreErrorKind::RouteTableOverflow { routes: 70_000 },
        };
        assert!(e.to_string().contains("70000"), "{e}");
        let e = ExploreError::unknown_route("c", "xyd");
        assert!(e.to_string().contains("xyd"), "{e}");
        let e = ExploreError::corrupt("c", "short buffer");
        assert!(e.to_string().contains("short buffer"), "{e}");
        let e = ExploreError::path_too_long("c", 3, 70_000);
        assert!(e.to_string().contains("70000"), "{e}");
        assert!(e.to_string().contains("channel 3"), "{e}");
    }
}

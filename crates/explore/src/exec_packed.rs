//! Packed-space step execution for the unreduced explorer.
//!
//! The unreduced hot loop used to pay, per candidate successor: decode the
//! parent into a [`NetworkState`] (dozens of `Route` clones), clone it,
//! run [`execute_step`](routelab_engine::exec::execute_step), and re-encode
//! — all to produce one flat `u16` buffer differing from the parent in a
//! handful of slots. This module applies a [`CanonicalStep`] *directly on
//! the packed words*.
//!
//! The key observation: in packed space, one activation step is pure
//! integer lookups. Processing a channel effect `(consume i, keep j)` sets
//! ρ to the queue word at offset `j-1` and drops the first `i` queue words;
//! the re-choice is a minimum over per-channel candidate entries of a table
//! precomputed from the instance (`route id → (rank, tie-break ordinal,
//! extended route id)` — the extension of a permitted route is itself in
//! the codec's universe, so the table is total); announcing appends one
//! word to each out-channel queue. No routes are ever materialized.
//!
//! Equivalence with the engine (pinned by the differential test below and
//! the graph-level suites):
//!
//! * `choose_best` takes the minimum by `(rank, path)`; the table stores
//!   each candidate's ordinal within the node's `Path`-sorted permitted
//!   set, so `(rank, ordinal)` induces the same order.
//! * ρ is updated only when a message is kept (`keep = Some(j)`), exactly
//!   when `FifoChannel::process` reports a learned route.
//! * π and the announcement are written under the same conditions as
//!   `execute_step` phase 3, and the newest-collapse abstraction for
//!   reliable policy-`A` models is applied per queue, as
//!   [`NetworkState::collapse_queues_to_newest`] does.
//!
//! [`NetworkState`]: routelab_engine::state::NetworkState
//! [`NetworkState::collapse_queues_to_newest`]: routelab_engine::state::NetworkState::collapse_queues_to_newest

use routelab_engine::index::ChannelIndex;
use routelab_spp::{Path, Route, SppInstance};

use crate::effects::{CanonicalStep, Spec};
use crate::pack::StateCodec;

/// One candidate entry: extending a learned route at the reading node
/// yields the permitted path with this rank and route id. `ord` is the
/// path's position in the node's `Path`-sorted permitted set, the proxy for
/// `choose_best`'s lexicographic tie-break.
#[derive(Debug, Clone, Copy)]
struct Cand {
    rank: u32,
    ord: u32,
    ext: u16,
}

/// Precompiled packed-space execution tables for one instance × codec.
#[derive(Debug)]
pub(crate) struct ExecTables {
    n: usize,
    m: usize,
    dest: usize,
    trivial_id: u16,
    /// Apply the queue-to-newest abstraction (reliable, all-policy models).
    collapse: bool,
    in_channels: Vec<Vec<usize>>,
    out_channels: Vec<Vec<usize>>,
    /// `cand[v][rid]`: the candidate `v` obtains by extending route `rid`,
    /// `None` when the extension is ε, loops, or is not permitted.
    cand: Vec<Vec<Option<Cand>>>,
}

/// Reusable per-worker scratch: queue start offsets of the current parent,
/// plus the per-candidate patch list of [`ExecTables::apply`].
#[derive(Debug, Default)]
pub(crate) struct PackedScratch {
    qstart: Vec<usize>,
    touch: Vec<Touch>,
}

/// One channel whose queue a candidate step changes; every other channel's
/// length word and contents copy verbatim from the parent.
#[derive(Debug, Clone, Copy)]
struct Touch {
    c: usize,
    consume: usize,
    append: bool,
}

/// Outcome of applying one step in packed space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Applied {
    /// The successor words were written; `new_rid` is the updater's chosen
    /// route afterwards, `announcing` whether phase 3 wrote to channels.
    Ok { new_rid: u16, announcing: bool },
    /// Some queue would exceed the channel cap; nothing meaningful written
    /// (the caller must discard the partial output).
    Capped,
}

impl ExecTables {
    pub(crate) fn new(
        inst: &SppInstance,
        index: &ChannelIndex,
        codec: &StateCodec,
        spec: Spec<'_>,
    ) -> Self {
        let n = inst.node_count();
        let m = index.len();
        let trivial_id = codec
            .route_id(&Route::path(Path::trivial(inst.dest())))
            .expect("the trivial route is interned by construction");
        let cand = inst
            .nodes()
            .map(|v| {
                if v == inst.dest() {
                    return vec![None; codec.route_count()];
                }
                let mut sorted: Vec<Path> =
                    inst.permitted(v).iter().map(|rp| rp.path.clone()).collect();
                sorted.sort_unstable();
                codec
                    .routes()
                    .iter()
                    .map(|r| {
                        inst.candidate(v, r).map(|(ext, rank)| {
                            let ord = sorted
                                .binary_search(&ext)
                                .expect("candidate extensions are permitted paths")
                                as u32;
                            let ext = codec
                                .route_id(&Route::path(ext))
                                .expect("permitted paths are in the route universe");
                            Cand { rank, ord, ext }
                        })
                    })
                    .collect()
            })
            .collect();
        ExecTables {
            n,
            m,
            dest: inst.dest().index(),
            trivial_id,
            collapse: spec.collapsible(),
            in_channels: inst.nodes().map(|v| index.in_channels(v).to_vec()).collect(),
            out_channels: inst.nodes().map(|v| index.out_channels(v).to_vec()).collect(),
            cand,
        }
    }

    /// Computes the queue start offsets of `node` into `scratch` — once per
    /// parent, shared by all its candidate applications.
    pub(crate) fn prepare(&self, node: &[u16], scratch: &mut PackedScratch) {
        scratch.qstart.clear();
        scratch.qstart.reserve(self.m);
        let mut at = 2 * self.n + 2 * self.m;
        for c in 0..self.m {
            scratch.qstart.push(at);
            at += usize::from(node[2 * self.n + self.m + c]);
        }
    }

    /// Queue length of channel `c` in `node`.
    pub(crate) fn queue_len(&self, node: &[u16], c: usize) -> usize {
        usize::from(node[2 * self.n + self.m + c])
    }

    /// The queue-length profile of `node`: one word per channel, already
    /// contiguous in the packed layout. States with equal profiles
    /// enumerate equal canonical-step sets, which is what the expansion
    /// catalog keys on.
    pub(crate) fn qlen_profile<'a>(&self, node: &'a [u16]) -> &'a [u16] {
        &node[2 * self.n + self.m..2 * self.n + 2 * self.m]
    }

    /// Applies `cs` to `node`, appending the successor's words to `out`.
    /// On [`Applied::Capped`] the caller must truncate `out` back to its
    /// pre-call length. `scratch` must hold `node`'s offsets (see
    /// [`ExecTables::prepare`]).
    pub(crate) fn apply(
        &self,
        node: &[u16],
        scratch: &mut PackedScratch,
        cs: &CanonicalStep,
        cap: usize,
        out: &mut Vec<u16>,
    ) -> Applied {
        let (n, m) = (self.n, self.m);
        let v = cs.node.index();
        let mark = out.len();

        // Phase 2 (choice) first — it only reads the parent. ρ' on an
        // in-channel is the kept queue word when the step keeps one there,
        // else the parent's ρ.
        let new_rid = if v == self.dest {
            self.trivial_id
        } else {
            let mut best: Option<Cand> = None;
            for &c in &self.in_channels[v] {
                let mut rho = node[2 * n + c];
                for e in &cs.effects {
                    if e.channel == c {
                        if let Some(j) = e.keep {
                            rho = node[scratch.qstart[c] + j - 1];
                        }
                        break;
                    }
                }
                if let Some(cand) = self.cand[v][usize::from(rho)] {
                    let better = match best {
                        None => true,
                        Some(b) => (cand.rank, cand.ord) < (b.rank, b.ord),
                    };
                    if better {
                        best = Some(cand);
                    }
                }
            }
            best.map_or(0, |c| c.ext) // route id 0 is ε
        };
        let announcing = new_rid != node[n + v];

        // Header: chosen (π'ᵥ = the new choice — writing it unconditionally
        // equals execute_step's guarded write), announced, learned.
        out.extend_from_slice(&node[..n]);
        out[mark + v] = new_rid;
        out.extend_from_slice(&node[n..2 * n]);
        if announcing {
            out[mark + n + v] = new_rid;
        }
        out.extend_from_slice(&node[2 * n..2 * n + m]);
        for e in &cs.effects {
            if let Some(j) = e.keep {
                out[mark + 2 * n + e.channel] = node[scratch.qstart[e.channel] + j - 1];
            }
        }

        // Patch plan: the few channels this step consumes from or appends
        // to. Every other channel's length word and contents are identical
        // to the parent's and copy verbatim in bulk runs below — per
        // candidate the work is a handful of touched channels plus two or
        // three `memcpy`s, not an `m`-way scan with per-channel branching.
        scratch.touch.clear();
        for e in &cs.effects {
            if e.consume > 0 {
                scratch.touch.push(Touch { c: e.channel, consume: e.consume, append: false });
            }
        }
        if announcing {
            for &c in &self.out_channels[v] {
                match scratch.touch.iter_mut().find(|t| t.c == c) {
                    Some(t) => t.append = true,
                    None => scratch.touch.push(Touch { c, consume: 0, append: true }),
                }
            }
        }
        if self.collapse {
            // Untouched channels copy verbatim, which equals the collapse
            // normal form only for queues of length ≤ 1. Collapsed parents
            // never hold longer ones, but stay exact if one ever appears.
            for c in 0..m {
                if self.queue_len(node, c) > 1 && !scratch.touch.iter().any(|t| t.c == c) {
                    scratch.touch.push(Touch { c, consume: 0, append: false });
                }
            }
        }
        scratch.touch.sort_unstable_by_key(|t| t.c);

        // Queue lengths: the parent's header patched at the touched
        // channels. Only they can change, and only appends can grow a
        // queue, so the cap check (execute_step's caller performs it on
        // `max_queue_len()` after the optional newest-collapse) is theirs
        // alone — untouched lengths were cap-checked when the parent was.
        out.extend_from_slice(&node[2 * n + m..2 * n + 2 * m]);
        let qbase = mark + 2 * n + m;
        for t in &scratch.touch {
            let rem = self.queue_len(node, t.c) - t.consume;
            let new_len = if self.collapse {
                if t.append {
                    1
                } else {
                    rem.min(1)
                }
            } else {
                rem + usize::from(t.append)
            };
            if new_len > cap {
                return Applied::Capped;
            }
            out[qbase + t.c] = new_len as u16;
        }

        // Queue contents: verbatim runs between touched channels.
        let mut copy_from = 2 * n + 2 * m;
        for t in &scratch.touch {
            let qs = scratch.qstart[t.c];
            let qe = qs + self.queue_len(node, t.c);
            out.extend_from_slice(&node[copy_from..qs]);
            if self.collapse {
                if t.append {
                    out.push(new_rid);
                } else if qe > qs + t.consume {
                    out.push(node[qe - 1]); // the newest survivor
                }
            } else {
                out.extend_from_slice(&node[qs + t.consume..qe]);
                if t.append {
                    out.push(new_rid);
                }
            }
            copy_from = qe;
        }
        out.extend_from_slice(&node[copy_from..]);
        Applied::Ok { new_rid, announcing }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    use routelab_engine::exec::execute_step;
    use routelab_engine::state::NetworkState;
    use routelab_spp::gadgets;

    use crate::effects::all_steps;

    /// Differential mini-BFS: every candidate successor computed in packed
    /// space must equal the engine's decode → clone → execute_step →
    /// (collapse) → encode result word for word, including the cap verdict
    /// and the kept/changed metadata, over a few hundred reachable states
    /// per gadget × model.
    #[test]
    fn packed_execution_matches_the_engine_differentially() {
        let cap = 3usize;
        for (name, inst) in gadgets::corpus() {
            for model in ["R1O", "RMA", "REA", "RES", "U1O", "UMA"] {
                let spec = Spec::Uniform(model.parse().unwrap());
                let index = ChannelIndex::new(inst.graph());
                let codec = StateCodec::new(&inst, &index, "diff-cell").unwrap();
                let tables = ExecTables::new(&inst, &index, &codec, spec);
                let collapse = spec.collapsible();
                let root = codec.encode(&NetworkState::initial(&inst, &index)).unwrap();

                let mut seen: HashSet<Vec<u16>> = HashSet::new();
                let mut frontier: Vec<Vec<u16>> = Vec::new();
                let root_words: Vec<u16> = {
                    let s = codec.decode(&root).unwrap();
                    let mut w = Vec::new();
                    codec.encode_into(&s, &mut w).unwrap();
                    w
                };
                seen.insert(root_words.clone());
                frontier.push(root_words);

                let mut scratch = PackedScratch::default();
                let mut fast = Vec::new();
                let mut head = 0;
                while head < frontier.len() && seen.len() < 200 {
                    let words = frontier[head].clone();
                    head += 1;
                    let state = codec.decode_words(&words).unwrap();
                    let (steps, _) = all_steps(spec, &index, &state, inst.node_count(), 10_000);
                    tables.prepare(&words, &mut scratch);
                    for cs in steps {
                        // Engine oracle.
                        let activation = cs.to_activation(spec, &index);
                        let mut next = state.clone();
                        let effect = execute_step(&inst, &index, &mut next, &activation);
                        if collapse {
                            next.collapse_queues_to_newest();
                        }
                        let capped = next.max_queue_len() > cap;

                        // Packed fast path.
                        fast.clear();
                        let applied = tables.apply(&words, &mut scratch, &cs, cap, &mut fast);
                        if capped {
                            assert_eq!(applied, Applied::Capped, "{name} {model} {cs:?}");
                            continue;
                        }
                        let mut oracle = Vec::new();
                        codec.encode_into(&next, &mut oracle).unwrap();
                        match applied {
                            Applied::Capped => panic!("{name} {model} {cs:?}: spurious cap"),
                            Applied::Ok { new_rid, announcing } => {
                                assert_eq!(fast, oracle, "{name} {model} {cs:?}");
                                let changed = !effect.changed.is_empty();
                                assert_eq!(
                                    new_rid != words[cs.node.index()],
                                    changed,
                                    "{name} {model} {cs:?}"
                                );
                                assert_eq!(
                                    announcing,
                                    next.announced(cs.node) != state.announced(cs.node),
                                    "{name} {model} {cs:?}"
                                );
                                let kept: Vec<usize> = cs
                                    .effects
                                    .iter()
                                    .filter(|e| e.keep.is_some())
                                    .map(|e| e.channel)
                                    .collect();
                                assert_eq!(kept, effect.kept_on, "{name} {model} {cs:?}");
                                let dropped: Vec<usize> = cs
                                    .effects
                                    .iter()
                                    .filter(|e| e.dropped() > 0)
                                    .map(|e| e.channel)
                                    .collect();
                                assert_eq!(dropped, effect.dropped_on, "{name} {model} {cs:?}");
                                if seen.insert(oracle.clone()) {
                                    frontier.push(oracle);
                                }
                            }
                        }
                    }
                }
                assert!(seen.len() > 1, "{name} {model}: walk never left the root");
            }
        }
    }
}

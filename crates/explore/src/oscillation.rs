//! Fair-oscillation detection on the explored state graph.
//!
//! An infinite fair execution eventually stays inside one strongly connected
//! component of the state graph, using its edges infinitely often. It is an
//! *oscillation* (per Definition 2.5) when π keeps changing there. The
//! component admits a fair tour (Definition 2.4) when
//!
//! 1. every channel is attended by some internal edge, or can be attended by
//!    a state-preserving step at some member state (an empty-queue read —
//!    such self-loops are elided from the graph and reconstructed here), and
//! 2. every channel that some internal edge drops on is also kept on by some
//!    internal edge (so dropped messages are always followed by delivered
//!    ones when the tour rotates through all edges).
//!
//! Soundness: if no reachable SCC passes the π-changing + fairness test and
//! exploration was not truncated, **no** fair execution oscillates — the
//! algorithm converges on every fair activation sequence of the model.

use std::collections::HashMap;

use routelab_core::dims::NeighborScope;
use routelab_core::hetero::HeteroModel;
use routelab_core::model::CommModel;
use routelab_engine::index::ChannelIndex;
use routelab_spp::SppInstance;

use crate::effects::Spec;
use crate::error::ExploreError;
use crate::graph::{build_spec, try_build_spec, ExploreConfig, StateGraph};
use crate::pack::StateCodec;

/// Outcome of exhaustive oscillation analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// A fair oscillation exists: a reachable SCC changes π and admits a
    /// fair tour.
    CanOscillate {
        /// States explored.
        states: usize,
        /// Size of the witnessing SCC.
        scc_size: usize,
    },
    /// Exploration was exhaustive and no fair oscillating SCC exists: every
    /// fair activation sequence converges.
    AlwaysConverges {
        /// States explored.
        states: usize,
    },
    /// No oscillation found, but exploration was truncated (channel cap,
    /// state cap or per-state step cap): convergence holds only within the
    /// bound.
    NoOscillationWithinBound {
        /// States explored.
        states: usize,
    },
}

/// `true` when channel `c` can be attended at `state` without changing it:
/// its queue is empty, its reader has nothing pending to announce, and — for
/// scope `E`, where the reader must process *all* its channels — every queue
/// into the reader is empty. Reads the packed state directly; no decode.
fn noop_attendable(
    spec: Spec<'_>,
    codec: &StateCodec,
    index: &ChannelIndex,
    state: &[u16],
    c: usize,
) -> bool {
    let reader = index.channel(c).to;
    if !codec.queue_empty_words(state, c) || !codec.chosen_eq_announced_words(state, reader) {
        return false;
    }
    match spec.scope(reader) {
        NeighborScope::Every => {
            index.in_channels(reader).iter().all(|&cc| codec.queue_empty_words(state, cc))
        }
        _ => true,
    }
}

/// SCC decomposition restricted to the states of `nodes` and to edges the
/// filter admits. Returns components as state lists.
fn sccs_restricted(
    g: &StateGraph,
    nodes: &[usize],
    edge_ok: &dyn Fn(usize, usize) -> bool,
) -> Vec<Vec<usize>> {
    let mut in_set = vec![false; g.len()];
    for &s in nodes {
        in_set[s] = true;
    }
    #[derive(Clone, Copy, PartialEq)]
    struct Info {
        index: usize,
        low: usize,
    }
    let mut info: HashMap<usize, Info> = HashMap::new();
    let mut on_stack: HashMap<usize, bool> = HashMap::new();
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out = Vec::new();

    for &root in nodes {
        if info.contains_key(&root) {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&(v, cursor)) = call.last() {
            if cursor == 0 {
                info.insert(v, Info { index: next_index, low: next_index });
                next_index += 1;
                stack.push(v);
                on_stack.insert(v, true);
            }
            if cursor < g.edges[v].len() {
                call.last_mut().expect("nonempty").1 += 1;
                let e = &g.edges[v][cursor];
                if !in_set[e.to] || !edge_ok(v, cursor) {
                    continue;
                }
                let w = e.to;
                match info.get(&w) {
                    None => call.push((w, 0)),
                    Some(wi) => {
                        if on_stack.get(&w).copied().unwrap_or(false) {
                            let low = info[&v].low.min(wi.index);
                            info.get_mut(&v).expect("visited").low = low;
                        }
                    }
                }
            } else {
                call.pop();
                let vi = info[&v];
                if let Some(&(parent, _)) = call.last() {
                    let low = info[&parent].low.min(vi.low);
                    info.get_mut(&parent).expect("visited").low = low;
                }
                if vi.low == vi.index {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack nonempty");
                        on_stack.insert(w, false);
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    out.push(comp);
                }
            }
        }
    }
    out
}

/// Finds the first reachable component witnessing a fair oscillation.
///
/// Drop fairness needs *iterative refinement* (as in Streett acceptance):
/// if a component drops on a channel it never delivers on, a fair walk must
/// eventually avoid those dropping edges, so they are removed and the
/// component re-decomposed until either a component passes every condition
/// or nothing is left.
pub(crate) fn find_fair_scc(spec: Spec<'_>, g: &StateGraph) -> Option<Vec<usize>> {
    let index = &g.index;
    let channel_count = index.len();

    // Banned (state, edge idx) pairs accompanying a candidate state set.
    type BannedEdges = std::collections::HashSet<(usize, usize)>;
    let all_nodes: Vec<usize> = (0..g.len()).collect();
    let mut work: Vec<(Vec<usize>, BannedEdges)> = vec![(all_nodes, BannedEdges::new())];

    while let Some((nodes, banned)) = work.pop() {
        let edge_ok = |s: usize, ei: usize| !banned.contains(&(s, ei));
        for comp in sccs_restricted(g, &nodes, &edge_ok) {
            let mut member = vec![false; g.len()];
            for &s in &comp {
                member[s] = true;
            }
            // Internal (non-banned) edges as (state, edge index).
            let mut internal: Vec<(usize, usize)> = Vec::new();
            for &s in &comp {
                for (ei, e) in g.edges[s].iter().enumerate() {
                    if member[e.to] && edge_ok(s, ei) {
                        internal.push((s, ei));
                    }
                }
            }
            if internal.is_empty() {
                continue;
            }
            let edge = |&(s, ei): &(usize, usize)| &g.edges[s][ei];
            // 1. π must change within the component (anti-monotone: a
            //    π-constant component stays π-constant in every sub-walk).
            let pi0 = g.pi_fp[comp[0]];
            let pi_changes = comp.iter().any(|&s| g.pi_fp[s] != pi0)
                || internal.iter().map(edge).any(|e| e.changes_pi);
            if !pi_changes {
                continue;
            }
            // 2. Every channel attended (anti-monotone likewise). Channels
            //    no internal edge attends fall back to noop-attendance at a
            //    member state; each such state is materialized from the
            //    arena once, not once per channel.
            let mut attended_ok = vec![false; channel_count];
            for e in internal.iter().map(edge) {
                for &c in e.attended() {
                    attended_ok[c] = true;
                }
            }
            if attended_ok.iter().any(|ok| !ok) {
                let mut ms = crate::arena::MatScratch::default();
                let mut ws = Vec::new();
                'states: for &s in &comp {
                    g.nodes
                        .materialize(s as u32, &mut ms, &mut ws)
                        .expect("built graphs materialize");
                    for c in 0..channel_count {
                        if !attended_ok[c] && noop_attendable(spec, &g.codec, index, &ws, c) {
                            attended_ok[c] = true;
                            if attended_ok.iter().all(|&ok| ok) {
                                break 'states;
                            }
                        }
                    }
                }
            }
            if attended_ok.iter().any(|ok| !ok) {
                continue;
            }
            // 3. Drop fairness: channels dropped on but never delivered on
            //    must not be dropped infinitely often — remove their
            //    dropping edges and re-decompose.
            let offending: Vec<usize> = (0..channel_count)
                .filter(|c| {
                    internal.iter().map(edge).any(|e| e.dropped().contains(c))
                        && !internal.iter().map(edge).any(|e| e.kept().contains(c))
                })
                .collect();
            if offending.is_empty() {
                return Some(comp);
            }
            let mut banned2 = banned.clone();
            for &(s, ei) in &internal {
                if g.edges[s][ei].dropped().iter().any(|c| offending.contains(c)) {
                    banned2.insert((s, ei));
                }
            }
            work.push((comp, banned2));
        }
    }
    None
}

/// Analyzes a prebuilt graph.
///
/// A symmetry-reduced graph is analyzed on its orbit un-folding
/// ([`crate::reduce::unfold_symmetry`]): per-channel attendance is not
/// invariant under the group action, so the fairness refinement on the raw
/// quotient would be unsound (the Emerson–Sistla caveat). The reported
/// `states` counts are always the built graph's — the quotient's, for
/// reduced builds.
pub fn analyze_graph(spec: Spec<'_>, g: &StateGraph) -> Verdict {
    let states = g.len();
    let fair = if g.sym.is_some() {
        let unfolded = crate::reduce::unfold_symmetry(g);
        find_fair_scc(spec, &unfolded)
    } else {
        find_fair_scc(spec, g)
    };
    if let Some(comp) = fair {
        return Verdict::CanOscillate { states, scc_size: comp.len() };
    }
    if g.truncated {
        Verdict::NoOscillationWithinBound { states }
    } else {
        Verdict::AlwaysConverges { states }
    }
}

/// Builds the graph and analyzes it.
pub fn analyze(inst: &SppInstance, model: CommModel, cfg: &ExploreConfig) -> Verdict {
    analyze_spec(inst, Spec::Uniform(model), cfg)
}

/// Builds the graph and analyzes it for a heterogeneous model (the paper's
/// open "mixed configuration" question, Sec. 5).
pub fn analyze_hetero(inst: &SppInstance, model: &HeteroModel, cfg: &ExploreConfig) -> Verdict {
    analyze_spec(inst, Spec::Hetero(model), cfg)
}

/// Builds the graph and analyzes it for any model view.
///
/// # Panics
///
/// Panics on an [`ExploreError`]; use [`try_analyze_spec`] to handle those.
pub fn analyze_spec(inst: &SppInstance, spec: Spec<'_>, cfg: &ExploreConfig) -> Verdict {
    let g = build_spec(inst, spec, cfg);
    analyze_graph(spec, &g)
}

/// Builds the graph and analyzes it, reporting explorer failures as typed
/// errors attributed to the gadget × model cell.
///
/// # Errors
///
/// Any [`ExploreError`] raised while building the state graph.
pub fn try_analyze(
    inst: &SppInstance,
    model: CommModel,
    cfg: &ExploreConfig,
) -> Result<Verdict, ExploreError> {
    try_analyze_spec(inst, Spec::Uniform(model), cfg)
}

/// Fallible variant of [`analyze_spec`].
///
/// # Errors
///
/// Any [`ExploreError`] raised while building the state graph.
pub fn try_analyze_spec(
    inst: &SppInstance,
    spec: Spec<'_>,
    cfg: &ExploreConfig,
) -> Result<Verdict, ExploreError> {
    let g = try_build_spec(inst, spec, cfg)?;
    Ok(analyze_graph(spec, &g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use routelab_spp::gadgets;

    fn verdict(inst: &routelab_spp::SppInstance, model: &str) -> Verdict {
        analyze(inst, model.parse().unwrap(), &ExploreConfig::default())
    }

    #[test]
    fn example_a1_disagree_oscillates_in_r1o_and_friends() {
        let inst = gadgets::disagree();
        for model in ["R1O", "RMO", "R1F", "RMF"] {
            assert!(
                matches!(verdict(&inst, model), Verdict::CanOscillate { .. }),
                "{model} must admit the DISAGREE oscillation"
            );
        }
        // The S-policy models have much larger effect spaces; a channel cap
        // of 2 still contains the DISAGREE oscillation (the witness cycle
        // never queues more than two messages) and keeps the graph small.
        let tight = ExploreConfig { channel_cap: 2, ..ExploreConfig::default() };
        for model in ["R1S", "RMS", "RES"] {
            let v = analyze(&inst, model.parse().unwrap(), &tight);
            assert!(
                matches!(v, Verdict::CanOscillate { .. }),
                "{model} must admit the DISAGREE oscillation (got {v:?})"
            );
        }
    }

    #[test]
    fn example_a1_disagree_cannot_oscillate_in_weak_models() {
        // Theorem 3.8's five models: DISAGREE always converges there.
        let inst = gadgets::disagree();
        for model in ["REO", "REF", "R1A", "RMA", "REA"] {
            assert!(
                matches!(verdict(&inst, model), Verdict::AlwaysConverges { .. }),
                "{model} must force DISAGREE to converge (got {:?})",
                verdict(&inst, model)
            );
        }
    }

    #[test]
    fn example_a2_fig6_separates_reo_ref_from_polling() {
        // Theorem 3.9: Fig. 6 oscillates in REO and REF but not in the
        // polling models. REO's oscillating SCC sits within the default
        // 150k-state budget of the breadth-first order, and REA is checked
        // here exhaustively (≈5k reduced states); REF (≈128k reduced),
        // R1A and RMA (a few hundred reduced states, ≈654k raw) are
        // covered by the release-only test below and by `exp-examples`.
        let inst = gadgets::fig6();
        let cfg = ExploreConfig { channel_cap: 3, ..ExploreConfig::default() };
        let v = analyze(&inst, "REO".parse().unwrap(), &cfg);
        assert!(
            matches!(v, Verdict::CanOscillate { .. }),
            "REO must admit the Fig. 6 oscillation (got {v:?})"
        );
        let v = analyze(&inst, "REA".parse().unwrap(), &cfg);
        assert!(
            matches!(v, Verdict::AlwaysConverges { .. }),
            "REA must force Fig. 6 to converge (got {v:?})"
        );
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "≈128k-state REF exploration; run with `cargo test --release` or `exp-examples a2`"
    )]
    fn example_a2_fig6_polling_r1a_rma_converge_exhaustively() {
        let inst = gadgets::fig6();
        let cfg = ExploreConfig {
            channel_cap: 3,
            max_states: 1_500_000,
            max_steps_per_state: 20_000,
            ..ExploreConfig::default()
        };
        for model in ["R1A", "RMA"] {
            let v = analyze(&inst, model.parse().unwrap(), &cfg);
            assert!(
                matches!(v, Verdict::AlwaysConverges { .. }),
                "{model} must force Fig. 6 to converge (got {v:?})"
            );
        }
        // REF's reduced space is ≈128k states (≈278k raw) — close enough
        // to the 150k debug budget that it stays in this release-only
        // test, exhaustively oscillating here.
        let v = analyze(&inst, "REF".parse().unwrap(), &cfg);
        assert!(
            matches!(v, Verdict::CanOscillate { .. }),
            "REF must admit the Fig. 6 oscillation (got {v:?})"
        );
    }

    #[test]
    fn bad_gadget_oscillates_even_when_polling() {
        // BAD-GADGET has no stable assignment at all: even REA oscillates.
        let inst = gadgets::bad_gadget();
        for model in ["REA", "R1A", "REO", "R1O"] {
            assert!(
                matches!(verdict(&inst, model), Verdict::CanOscillate { .. }),
                "{model} must oscillate on BAD-GADGET"
            );
        }
    }

    #[test]
    fn good_gadget_always_converges() {
        let inst = gadgets::good_gadget();
        for model in ["R1O", "REO", "REA", "RMA", "R1S"] {
            assert!(
                matches!(verdict(&inst, model), Verdict::AlwaysConverges { .. }),
                "{model} must converge on GOOD-GADGET"
            );
        }
    }

    #[test]
    fn line2_trivially_converges_in_every_model() {
        let inst = gadgets::line2();
        for model in routelab_core::model::CommModel::all() {
            let v = verdict(&inst, &model.to_string());
            assert!(matches!(v, Verdict::AlwaysConverges { .. }), "{model}: {v:?}");
        }
    }

    #[test]
    fn unreliable_channels_preserve_disagree_oscillation() {
        // Prop 3.3(1): U1O exactly realizes R1O, so the oscillation
        // survives; drop fairness is satisfiable.
        let inst = gadgets::disagree();
        assert!(matches!(verdict(&inst, "U1O"), Verdict::CanOscillate { .. }));
    }

    #[test]
    fn hetero_uniform_matches_uniform_analysis() {
        // A HeteroModel built uniformly must reproduce the CommModel
        // verdicts exactly.
        let inst = gadgets::disagree();
        let cfg = ExploreConfig::default();
        for model in ["R1O", "REA", "RMS", "U1O", "UEA"] {
            let m: CommModel = model.parse().unwrap();
            let h = HeteroModel::uniform(inst.node_count(), m);
            let uniform = analyze(&inst, m, &cfg);
            let hetero = analyze_hetero(&inst, &h, &cfg);
            assert_eq!(
                std::mem::discriminant(&uniform),
                std::mem::discriminant(&hetero),
                "{model}: {uniform:?} vs {hetero:?}"
            );
        }
    }

    #[test]
    fn hetero_one_polling_disputant_is_not_enough() {
        // Paper Sec. 5 open question, answered: on DISAGREE, letting only x
        // poll (while y stays event-driven) still admits a fair oscillation;
        // both disputants must poll to force convergence.
        use routelab_core::dims::{MessagePolicy, NeighborScope};
        use routelab_core::hetero::NodeModel;
        let inst = gadgets::disagree();
        let x = inst.node_by_name("x").unwrap();
        let y = inst.node_by_name("y").unwrap();
        let cfg = ExploreConfig::default();
        let poll = NodeModel { scope: NeighborScope::Every, messages: MessagePolicy::All };

        let mut one = HeteroModel::uniform(inst.node_count(), "R1O".parse().unwrap());
        one.set_node(x, poll);
        assert!(matches!(analyze_hetero(&inst, &one, &cfg), Verdict::CanOscillate { .. }));

        let mut both = HeteroModel::uniform(inst.node_count(), "R1O".parse().unwrap());
        both.set_node(x, poll);
        both.set_node(y, poll);
        assert!(matches!(analyze_hetero(&inst, &both, &cfg), Verdict::AlwaysConverges { .. }));
    }

    #[test]
    fn hetero_lossy_channels_do_not_break_polling_convergence() {
        // Mixed reliability on DISAGREE: even with every channel lossy,
        // poll-all keeps the instance convergent (cf. exp-beyond: UEA
        // cannot oscillate DISAGREE).
        use routelab_spp::Channel;
        let inst = gadgets::disagree();
        let x = inst.node_by_name("x").unwrap();
        let y = inst.node_by_name("y").unwrap();
        let cfg = ExploreConfig::default();
        let mut h = HeteroModel::uniform(inst.node_count(), "REA".parse().unwrap());
        h.set_lossy(Channel::new(x, y));
        h.set_lossy(Channel::new(y, x));
        assert!(matches!(analyze_hetero(&inst, &h, &cfg), Verdict::AlwaysConverges { .. }));
    }

    #[test]
    fn truncated_exploration_downgrades_verdict() {
        let inst = gadgets::good_gadget();
        let cfg = ExploreConfig {
            channel_cap: 1,
            max_states: 16,
            max_steps_per_state: 8,
            ..ExploreConfig::default()
        };
        let v = analyze(&inst, "REA".parse().unwrap(), &cfg);
        assert!(matches!(v, Verdict::NoOscillationWithinBound { .. }), "{v:?}");
    }
}

//! Canonical enumeration of the distinct step effects a model admits.
//!
//! A channel action `(f, g)` only influences the network through the pair
//! "(number of messages deleted, index of the message learned)", so instead
//! of enumerating the exponentially many `(f, g)` pairs the explorer
//! enumerates these *channel effects* — `O(m)` per channel for reliable
//! models and `O(m²)` for unreliable ones — and rebuilds a legal action for
//! each.

use routelab_core::dims::{MessagePolicy, NeighborScope, Reliability};
use routelab_core::hetero::HeteroModel;
use routelab_core::model::CommModel;
use routelab_core::step::{ActivationStep, ChannelAction, NodeUpdate, Take};
use routelab_engine::index::ChannelIndex;
use routelab_engine::state::NetworkState;
use routelab_spp::{Channel, NodeId};

/// Uniform-or-heterogeneous model view used throughout the explorer.
#[derive(Debug, Clone, Copy)]
pub enum Spec<'a> {
    /// One of the 24 uniform taxonomy models.
    Uniform(CommModel),
    /// A mixed per-node / per-channel model (the paper's future work).
    Hetero(&'a HeteroModel),
}

impl Spec<'_> {
    /// Neighbor scope of node `v`.
    pub fn scope(&self, v: NodeId) -> NeighborScope {
        match self {
            Spec::Uniform(m) => m.scope,
            Spec::Hetero(h) => h.node(v).scope,
        }
    }

    /// Message policy of node `v`.
    pub fn messages(&self, v: NodeId) -> MessagePolicy {
        match self {
            Spec::Uniform(m) => m.messages,
            Spec::Hetero(h) => h.node(v).messages,
        }
    }

    /// Reliability of channel `c`.
    pub fn reliability(&self, c: Channel) -> Reliability {
        match self {
            Spec::Uniform(m) => m.reliability,
            Spec::Hetero(h) => h.reliability(c),
        }
    }

    /// `true` when the queue-to-newest abstraction is exact: all channels
    /// reliable and every node on policy `A`.
    pub fn collapsible(&self) -> bool {
        match self {
            Spec::Uniform(m) => {
                m.reliability == Reliability::Reliable && m.messages == MessagePolicy::All
            }
            Spec::Hetero(h) => h.collapsible(),
        }
    }
}

/// The effect of processing one channel: delete the first `consume`
/// messages, learn the `keep`-th (1-based) if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelEffect {
    /// Dense channel id.
    pub channel: usize,
    /// Messages deleted from the head.
    pub consume: usize,
    /// 1-based index (≤ `consume`) of the learned message; `None` when all
    /// deleted messages are dropped (or none is deleted).
    pub keep: Option<usize>,
}

impl ChannelEffect {
    /// Number of messages dropped by this effect (with the minimal drop
    /// set: everything above the kept index).
    pub fn dropped(&self) -> usize {
        match self.keep {
            Some(j) => self.consume - j,
            None => self.consume,
        }
    }
}

/// Enumerates the distinct channel effects a message policy admits on a
/// channel currently holding `m` messages. The boolean per entry records
/// whether it is reachable without drops (needed to honor reliability).
fn channel_effects(
    policy: MessagePolicy,
    reliability: Reliability,
    channel: usize,
    m: usize,
) -> Vec<ChannelEffect> {
    let mut out = Vec::new();
    let consumes: Vec<usize> = match policy {
        MessagePolicy::One => vec![1.min(m)],
        MessagePolicy::All => vec![m],
        MessagePolicy::Forced => {
            if m == 0 {
                vec![0]
            } else {
                (1..=m).collect()
            }
        }
        MessagePolicy::Some => (0..=m).collect(),
    };
    for i in consumes {
        if i == 0 {
            out.push(ChannelEffect { channel, consume: 0, keep: None });
            continue;
        }
        match reliability {
            Reliability::Reliable => {
                out.push(ChannelEffect { channel, consume: i, keep: Some(i) });
            }
            Reliability::Unreliable => {
                out.push(ChannelEffect { channel, consume: i, keep: None });
                for j in 1..=i {
                    out.push(ChannelEffect { channel, consume: i, keep: Some(j) });
                }
            }
        }
    }
    out
}

/// Rebuilds a legal [`ChannelAction`] for an effect under the given policy.
fn action_for(
    policy: MessagePolicy,
    index: &ChannelIndex,
    effect: &ChannelEffect,
) -> ChannelAction {
    let c = index.channel(effect.channel);
    let take = match policy {
        MessagePolicy::One => Take::Count(1),
        MessagePolicy::All => Take::All,
        MessagePolicy::Forced => Take::Count(effect.consume.max(1) as u32),
        MessagePolicy::Some => Take::Count(effect.consume as u32),
    };
    // Minimal drop set realizing the effect: ρ becomes the *largest*
    // non-dropped index ≤ consume, so only indices above `keep` need
    // dropping (none when the newest consumed message is kept — the
    // lossless read, mandatory under reliable channels).
    let drops: std::collections::BTreeSet<u32> = match effect.keep {
        Some(j) => (j as u32 + 1..=effect.consume as u32).collect(),
        None => (1..=effect.consume as u32).collect(),
    };
    ChannelAction::new(c, take, drops).expect("canonical effects satisfy Definition 2.2")
}

/// A canonical single-node step: the updater and its channel effects.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanonicalStep {
    /// The updating node.
    pub node: NodeId,
    /// Effects, one per processed channel.
    pub effects: Vec<ChannelEffect>,
}

impl CanonicalStep {
    /// Rebuilds the activation step.
    pub fn to_activation(&self, spec: Spec<'_>, index: &ChannelIndex) -> ActivationStep {
        let policy = spec.messages(self.node);
        let actions = self.effects.iter().map(|e| action_for(policy, index, e)).collect();
        ActivationStep::single(NodeUpdate::new(self.node, actions))
    }

    /// Channels this step attends (reads with `f ≥ 1`): every processed
    /// channel except `f = 0` reads, which only policy `S` produces (the
    /// rebuilt action for a zero-consume effect has `f = 1` under `O`/`F`
    /// and `f = ∞` under `A`).
    pub fn attended(&self, spec: Spec<'_>) -> Vec<usize> {
        let policy = spec.messages(self.node);
        self.effects
            .iter()
            .filter(|e| e.consume > 0 || policy != MessagePolicy::Some)
            .map(|e| e.channel)
            .collect()
    }
}

/// Enumerates all canonical steps of `spec` for updater `v` in `state`,
/// capped at `max_steps` (the boolean marks the cap was hit).
pub fn node_steps(
    spec: Spec<'_>,
    index: &ChannelIndex,
    state: &NetworkState,
    v: NodeId,
    max_steps: usize,
) -> (Vec<CanonicalStep>, bool) {
    node_steps_with(spec, index, &|cid| state.queue(cid).len(), v, max_steps)
}

/// [`node_steps`] with queue lengths read through a closure — a canonical
/// step depends on the state only through its queue lengths, so the packed
/// fast path enumerates steps straight off a packed header without decoding
/// a [`NetworkState`].
pub fn node_steps_with(
    spec: Spec<'_>,
    index: &ChannelIndex,
    queue_len: &impl Fn(usize) -> usize,
    v: NodeId,
    max_steps: usize,
) -> (Vec<CanonicalStep>, bool) {
    let ins = index.in_channels(v);
    let policy = spec.messages(v);
    let per_channel: Vec<Vec<ChannelEffect>> = ins
        .iter()
        .map(|&cid| {
            channel_effects(policy, spec.reliability(index.channel(cid)), cid, queue_len(cid))
        })
        .collect();

    let mut out = Vec::new();
    let mut capped = false;
    match spec.scope(v) {
        NeighborScope::One => {
            for opts in &per_channel {
                for &e in opts {
                    out.push(CanonicalStep { node: v, effects: vec![e] });
                }
            }
        }
        NeighborScope::Every => {
            // Cartesian product over all channels.
            capped = product(v, &per_channel, false, max_steps, &mut out);
        }
        NeighborScope::Multiple => {
            // Product over ({absent} ∪ options) per channel; `absent` and a
            // zero-consume read have identical state effect, so drop
            // zero-consume options here to avoid duplicates.
            let trimmed: Vec<Vec<ChannelEffect>> = per_channel
                .iter()
                .map(|opts| opts.iter().copied().filter(|e| e.consume > 0).collect())
                .collect();
            capped = product(v, &trimmed, true, max_steps, &mut out);
        }
    }
    if ins.is_empty() {
        // A node with no neighbors can only perform a bare update; only
        // scope M admits it (no channels to process).
        if spec.scope(v) == NeighborScope::Multiple {
            out.push(CanonicalStep { node: v, effects: Vec::new() });
        }
    }
    (out, capped)
}

/// Cartesian product of per-channel options; with `optional` each channel
/// may also be absent. Returns `true` when `max` was hit.
fn product(
    v: NodeId,
    per_channel: &[Vec<ChannelEffect>],
    optional: bool,
    max: usize,
    out: &mut Vec<CanonicalStep>,
) -> bool {
    let mut stack: Vec<Vec<ChannelEffect>> = vec![Vec::new()];
    for opts in per_channel {
        let mut next = Vec::new();
        for partial in &stack {
            if optional {
                next.push(partial.clone());
            }
            for &e in opts {
                let mut ext = partial.clone();
                ext.push(e);
                next.push(ext);
                if next.len() + out.len() > max {
                    return true;
                }
            }
            if next.len() + out.len() > max {
                return true;
            }
        }
        stack = next;
    }
    for effects in stack {
        if out.len() >= max {
            return true;
        }
        out.push(CanonicalStep { node: v, effects });
    }
    false
}

/// Enumerates canonical steps for *every* node.
pub fn all_steps(
    spec: Spec<'_>,
    index: &ChannelIndex,
    state: &NetworkState,
    node_count: usize,
    max_steps: usize,
) -> (Vec<CanonicalStep>, bool) {
    all_steps_with(spec, index, &|cid| state.queue(cid).len(), node_count, max_steps)
}

/// [`all_steps`] with queue lengths read through a closure (see
/// [`node_steps_with`]).
pub fn all_steps_with(
    spec: Spec<'_>,
    index: &ChannelIndex,
    queue_len: &impl Fn(usize) -> usize,
    node_count: usize,
    max_steps: usize,
) -> (Vec<CanonicalStep>, bool) {
    let mut out = Vec::new();
    let mut capped = false;
    for i in 0..node_count {
        let (steps, c) = node_steps_with(
            spec,
            index,
            queue_len,
            NodeId(i as u32),
            max_steps.saturating_sub(out.len()),
        );
        out.extend(steps);
        capped |= c;
    }
    (out, capped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use routelab_core::validate::check_step;
    use routelab_engine::runner::Runner;
    use routelab_spp::gadgets;

    fn setup() -> (routelab_spp::SppInstance, ChannelIndex, NetworkState) {
        let inst = gadgets::disagree();
        let index = ChannelIndex::new(inst.graph());
        let state = NetworkState::initial(&inst, &index);
        (inst, index, state)
    }

    #[test]
    fn channel_effect_counts() {
        use MessagePolicy as P;
        use Reliability as R;
        // Empty channel: exactly one effect whatever the policy.
        for p in P::ALL {
            assert_eq!(channel_effects(p, R::Reliable, 0, 0).len(), 1, "{p:?}");
        }
        // m = 3: O -> 1; A -> 1; F -> 3; S -> 4 (reliable).
        assert_eq!(channel_effects(P::One, R::Reliable, 0, 3).len(), 1);
        assert_eq!(channel_effects(P::All, R::Reliable, 0, 3).len(), 1);
        assert_eq!(channel_effects(P::Forced, R::Reliable, 0, 3).len(), 3);
        assert_eq!(channel_effects(P::Some, R::Reliable, 0, 3).len(), 4);
        // Unreliable m = 3: O -> 2 (keep or drop); A -> 4 (none or keep j).
        assert_eq!(channel_effects(P::One, R::Unreliable, 0, 3).len(), 2);
        assert_eq!(channel_effects(P::All, R::Unreliable, 0, 3).len(), 4);
    }

    #[test]
    fn effects_rebuild_into_legal_steps() {
        let (inst, index, _) = setup();
        // Put messages in flight first.
        let mut runner = Runner::new(&inst);
        let mut sched = routelab_engine::schedule::RoundRobin::new(&inst, "RMS".parse().unwrap());
        for _ in 0..4 {
            use routelab_engine::schedule::Scheduler;
            let s = sched.next_step(&runner.state()).unwrap();
            runner.step(&s);
        }
        let ns = runner.state().to_network_state();
        for model in CommModel::all() {
            let (steps, capped) =
                all_steps(Spec::Uniform(model), &index, &ns, inst.node_count(), 100_000);
            assert!(!capped, "{model}");
            assert!(!steps.is_empty(), "{model}");
            for cs in &steps {
                let step = cs.to_activation(Spec::Uniform(model), &index);
                check_step(model, inst.graph(), &step)
                    .unwrap_or_else(|e| panic!("{model} {cs:?}: {e}"));
            }
        }
    }

    #[test]
    fn scope_one_enumerates_per_channel() {
        let (inst, index, state) = setup();
        let x = inst.node_by_name("x").unwrap();
        let (steps, _) = node_steps(Spec::Uniform("R1O".parse().unwrap()), &index, &state, x, 1000);
        // Two in-channels, both empty: one effect each.
        assert_eq!(steps.len(), 2);
        assert!(steps.iter().all(|s| s.effects.len() == 1));
    }

    #[test]
    fn scope_every_takes_product() {
        let (inst, index, state) = setup();
        let x = inst.node_by_name("x").unwrap();
        let (steps, _) = node_steps(Spec::Uniform("RES".parse().unwrap()), &index, &state, x, 1000);
        // Both channels empty: 1 option each -> single product entry.
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].effects.len(), 2);
    }

    #[test]
    fn scope_multiple_allows_absence() {
        let (inst, index, state) = setup();
        let x = inst.node_by_name("x").unwrap();
        let (steps, _) = node_steps(Spec::Uniform("RMA".parse().unwrap()), &index, &state, x, 1000);
        // Empty channels have only zero-consume effects, which `absent`
        // subsumes: the single remaining step is the bare update.
        assert_eq!(steps.len(), 1);
        assert!(steps[0].effects.is_empty());
    }

    #[test]
    fn caps_are_reported() {
        let (inst, index, state) = setup();
        let (_, capped) =
            all_steps(Spec::Uniform("UMS".parse().unwrap()), &index, &state, inst.node_count(), 1);
        assert!(capped);
    }

    #[test]
    fn dropped_counts() {
        let e = ChannelEffect { channel: 0, consume: 3, keep: Some(2) };
        assert_eq!(e.dropped(), 1); // only the message above the kept one
        let e = ChannelEffect { channel: 0, consume: 3, keep: Some(3) };
        assert_eq!(e.dropped(), 0); // the lossless batch read
        let e = ChannelEffect { channel: 0, consume: 3, keep: None };
        assert_eq!(e.dropped(), 3);
        let e = ChannelEffect { channel: 0, consume: 0, keep: None };
        assert_eq!(e.dropped(), 0);
    }

    #[test]
    fn attendance_classification() {
        let (inst, index, _) = setup();
        let x = inst.node_by_name("x").unwrap();
        let cid = index.in_channels(x)[0];
        let cs = CanonicalStep {
            node: x,
            effects: vec![ChannelEffect { channel: cid, consume: 0, keep: None }],
        };
        // Under O the rebuilt action is f = 1: attending even when nothing
        // is consumed; under S it is f = 0: not attending.
        assert_eq!(cs.attended(Spec::Uniform("R1O".parse().unwrap())).len(), 1);
        assert_eq!(cs.attended(Spec::Uniform("R1S".parse().unwrap())).len(), 0);
        let busy = CanonicalStep {
            node: x,
            effects: vec![ChannelEffect { channel: cid, consume: 2, keep: Some(2) }],
        };
        assert_eq!(busy.attended(Spec::Uniform("R1S".parse().unwrap())).len(), 1);
    }
}

//! Reachable-state-graph construction and SCC decomposition.
//!
//! States are interned in packed form (see [`crate::pack`]) and the graph
//! is built by the sharded parallel frontier engine ([`crate::frontier`]):
//! state ids, counts, edges, and truncation points are bit-identical at any
//! thread count, and identical to the retained sequential reference
//! ([`build_spec_reference`]) that the differential tests compare against.

use std::sync::Arc;

use routelab_core::model::CommModel;
use routelab_engine::exec::execute_step;
use routelab_engine::index::ChannelIndex;
use routelab_engine::state::NetworkState;
use routelab_spp::SppInstance;

use crate::effects::{all_steps, Spec};
use crate::error::ExploreError;
use crate::frontier::{self, BfsOptions, BfsResult, FrontierStats};
use crate::pack::{PackedState, StateCodec};
use crate::reduce::{Reducer, ReductionStats, SymTables};

/// Bounds for exhaustive exploration.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Maximum queue length; transitions that would exceed it are cut (and
    /// recorded, downgrading any "always converges" verdict).
    pub channel_cap: usize,
    /// Maximum number of distinct states.
    pub max_states: usize,
    /// Maximum canonical steps enumerated per state.
    pub max_steps_per_state: usize,
    /// Explorer worker threads; `None` resolves `ROUTELAB_THREADS`, then
    /// the machine's available parallelism. Results never depend on it.
    pub threads: Option<usize>,
    /// Apply the state-space reduction layer ([`crate::reduce`]): queue
    /// normal forms plus symmetry canonicalization. On by default; verdicts
    /// are identical either way (the differential suite proves it), only
    /// state counts and memory differ. Disable to obtain the literal
    /// unreduced graph (witness extraction does so internally).
    pub reduce: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            channel_cap: 3,
            max_states: 150_000,
            max_steps_per_state: 10_000,
            threads: None,
            reduce: true,
        }
    }
}

impl ExploreConfig {
    /// The worker count this config resolves to (≥ 1).
    pub fn resolved_threads(&self) -> usize {
        frontier::resolved_threads(self.threads)
    }
}

/// A labeled transition of the state graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeLabel {
    /// Target state index.
    pub to: usize,
    /// Dense channel ids the step attends.
    pub attended: Vec<usize>,
    /// Channels on which a message was learned (kept).
    pub kept: Vec<usize>,
    /// Channels on which at least one message was dropped.
    pub dropped: Vec<usize>,
    /// `true` when the step changes some π.
    pub changes_pi: bool,
    /// The canonical step generating this transition (for witness replay).
    pub step: crate::effects::CanonicalStep,
    /// Symmetry-group element that canonicalized the raw successor into
    /// `to` (0 = identity, i.e. the successor was already canonical). Only
    /// nonzero in reduced builds of symmetric instances; fairness analysis
    /// un-folds the quotient through these annotations.
    pub sym: u16,
}

/// The explored portion of a model's state graph. States live in a packed
/// arena; decode on demand with [`StateGraph::state`] or query the cheap
/// packed predicates through [`StateGraph::codec`].
#[derive(Debug, Clone)]
pub struct StateGraph {
    /// The per-instance codec the packed states were interned with.
    pub codec: StateCodec,
    /// The dense channel index of the instance's graph.
    pub index: ChannelIndex,
    /// Packed states, index 0 = initial.
    pub packed: Vec<PackedState>,
    /// Fingerprint of each state's path assignment π (not the full state).
    pub pi_fp: Vec<u64>,
    /// Outgoing edges per state (state-preserving self-loops elided).
    pub edges: Vec<Vec<EdgeLabel>>,
    /// `true` when some transition was cut by the channel cap or the state
    /// or per-state step budget — absence verdicts are then bounded.
    pub truncated: bool,
    /// Frontier-engine statistics for this build.
    pub stats: FrontierStats,
    /// Reduction-layer activity (zeroed when the build ran unreduced).
    pub reduction: ReductionStats,
    /// Symmetry tables of the build, when reduction was on and the
    /// instance's automorphism group is nontrivial. Fairness analysis uses
    /// them to un-fold the quotient.
    pub(crate) sym: Option<Arc<SymTables>>,
}

impl StateGraph {
    /// Number of explored states.
    pub fn len(&self) -> usize {
        self.packed.len()
    }

    /// `true` for a graph without states (never produced by `build`).
    pub fn is_empty(&self) -> bool {
        self.packed.is_empty()
    }

    /// Decodes state `i`.
    ///
    /// # Panics
    ///
    /// Panics if the arena entry fails to decode — an internal invariant
    /// violation, since every entry was produced by the same codec.
    pub fn state(&self, i: usize) -> NetworkState {
        self.codec.decode(&self.packed[i]).expect("arena entries decode with their own codec")
    }
}

/// The frontier label of a graph edge: [`EdgeLabel`] minus the target id
/// (which only exists after dedup).
#[derive(Debug, Clone)]
struct EdgePayload {
    attended: Vec<usize>,
    kept: Vec<usize>,
    dropped: Vec<usize>,
    changes_pi: bool,
    step: crate::effects::CanonicalStep,
    sym: u16,
}

/// The frontier-engine client for state-graph construction.
struct GraphExpand<'a> {
    inst: &'a SppInstance,
    index: &'a ChannelIndex,
    spec: Spec<'a>,
    codec: &'a StateCodec,
    collapse: bool,
    cfg: &'a ExploreConfig,
    reduce: Option<&'a Reducer>,
}

impl frontier::Expand for GraphExpand<'_> {
    type Node = PackedState;
    type Label = EdgePayload;

    fn expand(
        &self,
        _id: u32,
        packed: &PackedState,
        out: &mut Vec<(PackedState, EdgePayload)>,
    ) -> Result<bool, ExploreError> {
        let state = self.codec.decode(packed)?;
        let (steps, capped) = all_steps(
            self.spec,
            self.index,
            &state,
            self.inst.node_count(),
            self.cfg.max_steps_per_state,
        );
        let mut truncated = capped;
        let mut absorbed: Vec<usize> = Vec::new();
        for cs in steps {
            let activation = cs.to_activation(self.spec, self.index);
            let mut next = state.clone();
            let effect = execute_step(self.inst, self.index, &mut next, &activation);
            if let Some(red) = self.reduce {
                red.normalize(&mut next, &mut absorbed);
                if red.exceeds_cap(&next, self.cfg.channel_cap) {
                    truncated = true;
                    continue;
                }
            } else {
                if self.collapse {
                    // Exact abstraction for R·A models: only the newest
                    // queued message can ever be learned.
                    next.collapse_queues_to_newest();
                }
                if next.max_queue_len() > self.cfg.channel_cap {
                    truncated = true;
                    continue;
                }
            }
            let next_packed = self.codec.encode(&next)?;
            // The self-loop test runs *before* canonicalization: a real
            // transition whose canonical image happens to equal the source
            // is a genuine quotient self-loop and must be kept.
            if next_packed == *packed {
                continue; // state-preserving: handled by noop annotations
            }
            let (next_packed, sym) = match self.reduce {
                Some(red) => red.canonicalize(next_packed),
                None => (next_packed, 0),
            };
            let mut attended = cs.attended(self.spec);
            let mut kept = effect.kept_on;
            if !absorbed.is_empty() {
                // Absorbed reads fire inside this merged edge: the edge
                // attends (and keeps on) the channels it drained.
                attended.extend_from_slice(&absorbed);
                attended.sort_unstable();
                attended.dedup();
                kept.extend_from_slice(&absorbed);
                kept.sort_unstable();
                kept.dedup();
            }
            out.push((
                next_packed,
                EdgePayload {
                    attended,
                    kept,
                    dropped: effect.dropped_on,
                    changes_pi: !effect.changed.is_empty(),
                    step: cs,
                    sym,
                },
            ));
        }
        Ok(truncated)
    }
}

/// The cell descriptor used for error attribution and telemetry.
pub(crate) fn cell_of(inst: &SppInstance, spec: Spec<'_>) -> String {
    match spec {
        Spec::Uniform(m) => format!("{inst} × {m}"),
        Spec::Hetero(_) => format!("{inst} × hetero"),
    }
}

fn assemble(
    codec: StateCodec,
    index: ChannelIndex,
    r: BfsResult<PackedState, EdgePayload>,
    reduction: ReductionStats,
    sym: Option<Arc<SymTables>>,
) -> StateGraph {
    let pi_fp = r.nodes.iter().map(|p| codec.pi_fingerprint(p)).collect();
    let edges = r
        .edges
        .into_iter()
        .map(|out| {
            out.into_iter()
                .map(|(to, p)| EdgeLabel {
                    to: to as usize,
                    attended: p.attended,
                    kept: p.kept,
                    dropped: p.dropped,
                    changes_pi: p.changes_pi,
                    step: p.step,
                    sym: p.sym,
                })
                .collect()
        })
        .collect();
    let g = StateGraph {
        codec,
        index,
        packed: r.nodes,
        pi_fp,
        edges,
        truncated: r.truncated,
        stats: r.stats,
        reduction,
        sym,
    };
    if routelab_obs::enabled() {
        routelab_obs::gauge("explore.states", g.len() as u64);
        routelab_obs::gauge("explore.threads", g.stats.threads as u64);
        routelab_obs::gauge("explore.peak_frontier", g.stats.peak_frontier as u64);
        routelab_obs::gauge("explore.shard_max", g.stats.shard_max as u64);
        routelab_obs::gauge("explore.shard_min", g.stats.shard_min as u64);
        routelab_obs::counter("explore.candidates", g.stats.candidates);
        routelab_obs::counter("explore.dedup_hits", g.stats.dedup_hits);
        routelab_obs::counter("explore.builds", 1);
        if g.truncated {
            routelab_obs::counter("explore.builds_truncated", 1);
        }
        if g.reduction.enabled {
            routelab_obs::gauge("explore.sym_group", g.reduction.group_order as u64);
            routelab_obs::counter("explore.reduce_canon_rewrites", g.reduction.canon_rewrites);
            routelab_obs::counter("explore.reduce_absorb_pops", g.reduction.absorb_pops);
            routelab_obs::counter("explore.reduce_set_collapses", g.reduction.set_collapses);
            routelab_obs::counter("explore.reduce_sym_hits", g.reduction.sym_hits);
        }
    }
    g
}

/// Builds the reachable state graph of `inst` under `model`.
///
/// For reliable all-messages models (`R1A`/`RMA`/`REA`) states are built
/// modulo the queue-to-newest-message abstraction, which is a bisimulation
/// there and keeps the polling state spaces finite without truncation.
///
/// # Panics
///
/// Panics on an [`ExploreError`] (route universe overflow, worker panic);
/// use [`try_build_spec`] to handle those.
pub fn build(inst: &SppInstance, model: CommModel, cfg: &ExploreConfig) -> StateGraph {
    build_spec(inst, Spec::Uniform(model), cfg)
}

/// Builds the reachable state graph for a uniform or heterogeneous model.
///
/// # Panics
///
/// Panics on an [`ExploreError`]; use [`try_build_spec`] to handle those.
pub fn build_spec(inst: &SppInstance, spec: Spec<'_>, cfg: &ExploreConfig) -> StateGraph {
    try_build_spec(inst, spec, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Builds the reachable state graph, reporting failures as typed errors
/// attributed to the gadget × model cell.
///
/// # Errors
///
/// Any [`ExploreError`] raised while interning or expanding states.
pub fn try_build_spec(
    inst: &SppInstance,
    spec: Spec<'_>,
    cfg: &ExploreConfig,
) -> Result<StateGraph, ExploreError> {
    build_with(inst, spec, cfg, false)
}

/// The retained sequential reference build: same output contract as
/// [`try_build_spec`], but computed by the plain one-queue-one-map loop.
/// The differential tests assert both agree bit-for-bit.
///
/// # Errors
///
/// Any [`ExploreError`] raised while interning or expanding states.
pub fn build_spec_reference(
    inst: &SppInstance,
    spec: Spec<'_>,
    cfg: &ExploreConfig,
) -> Result<StateGraph, ExploreError> {
    build_with(inst, spec, cfg, true)
}

fn build_with(
    inst: &SppInstance,
    spec: Spec<'_>,
    cfg: &ExploreConfig,
    reference: bool,
) -> Result<StateGraph, ExploreError> {
    let _span = routelab_obs::span("explore.build");
    let cell = cell_of(inst, spec);
    let index = ChannelIndex::new(inst.graph());
    let codec = StateCodec::new(inst, &index, cell.as_str())?;
    let reducer = cfg.reduce.then(|| Reducer::new(inst, &index, &codec, spec));
    let root = codec.encode(&NetworkState::initial(inst, &index))?;
    let root = match &reducer {
        Some(red) => red.canonicalize(root).0,
        None => root,
    };
    let exp = GraphExpand {
        inst,
        index: &index,
        spec,
        codec: &codec,
        collapse: spec.collapsible(),
        cfg,
        reduce: reducer.as_ref(),
    };
    let opts = BfsOptions {
        threads: cfg.resolved_threads(),
        max_nodes: cfg.max_states,
        record_edges: true,
        record_parents: false,
        progress_label: "explore.states",
    };
    let r = if reference {
        frontier::bfs_reference(&exp, root, &cell, &opts)?
    } else {
        frontier::bfs(&exp, root, &cell, &opts)?
    };
    let (reduction, sym) = match reducer {
        Some(red) => (red.stats(), red.sym.clone()),
        None => (ReductionStats::default(), None),
    };
    Ok(assemble(codec, index, r, reduction, sym))
}

/// Tarjan's strongly connected components (iterative). Components are
/// returned in reverse topological order; singleton components without a
/// self-edge are included (callers filter).
pub fn sccs(g: &StateGraph) -> Vec<Vec<usize>> {
    let n = g.len();
    let mut index_of = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out = Vec::new();

    // Iterative DFS frames: (node, edge cursor).
    for root in 0..n {
        if index_of[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&(v, cursor)) = call.last() {
            if cursor == 0 {
                index_of[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if cursor < g.edges[v].len() {
                call.last_mut().expect("nonempty").1 += 1;
                let w = g.edges[v][cursor].to;
                if index_of[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index_of[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index_of[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack nonempty");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    out.push(comp);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use routelab_spp::gadgets;

    #[test]
    fn line2_graph_is_tiny_and_complete() {
        let inst = gadgets::line2();
        let g = build(&inst, "REA".parse().unwrap(), &ExploreConfig::default());
        assert!(!g.truncated);
        // Initial, d-announced, v-learned, v-announcement-consumed…
        assert!(g.len() <= 8, "{}", g.len());
        // From the converged terminal state there are no outgoing edges.
        let terminal = (0..g.len())
            .find(|&i| g.codec.is_quiescent(&g.packed[i]))
            .expect("line2 reaches quiescence");
        assert!(g.edges[terminal].is_empty());
        assert!(g.state(terminal).is_quiescent());
    }

    #[test]
    fn disagree_r1o_graph_has_cycles() {
        let inst = gadgets::disagree();
        let cfg = ExploreConfig::default();
        // Unreduced, divergent schedules pump queues past any cap (e.g. x
        // keeps announcing while d never reads), so the raw build
        // truncates. The class projection turns those announcements into
        // absorbed ε-reads, making the reduced build exhaustive. The
        // oscillating SCC must be inside the explored region either way.
        let raw = build(&inst, "R1O".parse().unwrap(), &ExploreConfig { reduce: false, ..cfg });
        assert!(raw.truncated);
        let g = build(&inst, "R1O".parse().unwrap(), &cfg);
        assert!(!g.truncated);
        assert!(g.reduction.canon_rewrites > 0);
        for graph in [&raw, &g] {
            let comps = sccs(graph);
            let biggest = comps.iter().map(Vec::len).max().unwrap();
            assert!(biggest > 1, "R1O on DISAGREE must contain a nontrivial SCC");
        }
    }

    #[test]
    fn disagree_rma_graph_is_acyclic_besides_terminals() {
        let inst = gadgets::disagree();
        let g = build(&inst, "RMA".parse().unwrap(), &ExploreConfig::default());
        assert!(!g.truncated);
        for comp in sccs(&g) {
            if comp.len() > 1 {
                // Any multi-state SCC must keep π constant (checked fully in
                // oscillation.rs; here ensure π fp equality).
                let fp = g.pi_fp[comp[0]];
                assert!(comp.iter().all(|&s| g.pi_fp[s] == fp));
            }
        }
    }

    #[test]
    fn truncation_reported_on_tiny_caps() {
        let inst = gadgets::disagree();
        let cfg = ExploreConfig {
            channel_cap: 1,
            max_states: 4,
            max_steps_per_state: 4,
            ..ExploreConfig::default()
        };
        let g = build(&inst, "RMS".parse().unwrap(), &cfg);
        assert!(g.truncated);
        assert!(g.len() <= 4);
    }

    #[test]
    fn scc_decomposition_covers_all_states() {
        let inst = gadgets::disagree();
        let g = build(&inst, "REO".parse().unwrap(), &ExploreConfig::default());
        let comps = sccs(&g);
        let total: usize = comps.iter().map(Vec::len).sum();
        assert_eq!(total, g.len());
        // Each state appears exactly once.
        let mut seen = vec![false; g.len()];
        for c in &comps {
            for &s in c {
                assert!(!seen[s]);
                seen[s] = true;
            }
        }
    }

    #[test]
    fn parallel_build_matches_reference_exactly() {
        let inst = gadgets::disagree();
        let cfg = ExploreConfig::default();
        for model in ["R1O", "RMA", "RES", "U1O"] {
            let spec = Spec::Uniform(model.parse().unwrap());
            let reference = build_spec_reference(&inst, spec, &cfg).unwrap();
            for threads in [1, 2, 8] {
                let c = ExploreConfig { threads: Some(threads), ..cfg };
                let g = try_build_spec(&inst, spec, &c).unwrap();
                assert_eq!(g.packed, reference.packed, "{model} @{threads}");
                assert_eq!(g.pi_fp, reference.pi_fp, "{model} @{threads}");
                assert_eq!(g.edges, reference.edges, "{model} @{threads}");
                assert_eq!(g.truncated, reference.truncated, "{model} @{threads}");
            }
        }
    }
}

//! Reachable-state-graph construction and SCC decomposition.
//!
//! States are interned in packed form (see [`crate::pack`]) inside a
//! delta-compressed, spill-capable arena (see [`crate::arena`]) and the
//! graph is built by the sharded parallel frontier engine
//! ([`crate::frontier`]): state ids, counts, edges, and truncation points
//! are bit-identical at any thread count, and identical to the retained
//! sequential reference ([`build_spec_reference`]) that the differential
//! tests compare against.
//!
//! Unreduced builds run on the packed fast path
//! ([`crate::exec_packed`]): successors are computed directly on the packed
//! words, never materializing a [`NetworkState`] per candidate. Reduced
//! builds keep the engine-executed path — the reduction layer's normal
//! forms operate on decoded states, and reduced spaces are small enough
//! that decode cost is irrelevant there.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use routelab_core::model::CommModel;
use routelab_engine::exec::execute_step;
use routelab_engine::index::ChannelIndex;
use routelab_engine::state::NetworkState;
use routelab_spp::SppInstance;

use crate::arena::{MatScratch, NodeArena};
use crate::effects::{all_steps, all_steps_with, Spec};
use crate::error::ExploreError;
use crate::exec_packed::{Applied, ExecTables, PackedScratch};
use crate::frontier::{self, BfsOptions, BfsResult, FrontierStats, SuccBuf};
use crate::pack::{PackedState, StateCodec};
use crate::reduce::{Reducer, ReductionStats, SymTables};

/// Bounds for exhaustive exploration.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Maximum queue length; transitions that would exceed it are cut (and
    /// recorded, downgrading any "always converges" verdict).
    pub channel_cap: usize,
    /// Maximum number of distinct states.
    pub max_states: usize,
    /// Maximum canonical steps enumerated per state.
    pub max_steps_per_state: usize,
    /// Explorer worker threads; `None` resolves `ROUTELAB_THREADS`, then
    /// the machine's available parallelism. Results never depend on it.
    pub threads: Option<usize>,
    /// Apply the state-space reduction layer ([`crate::reduce`]): queue
    /// normal forms plus symmetry canonicalization. On by default; verdicts
    /// are identical either way (the differential suite proves it), only
    /// state counts and memory differ. Disable to obtain the literal
    /// unreduced graph (witness extraction does so internally).
    pub reduce: bool,
    /// Directory for the state arena's spill file. `None` (the default)
    /// keeps every state resident; set it (CLI: `--spill-dir`) to let
    /// `max_states` budgets of 10M+ run within a bounded memory footprint.
    pub spill_dir: Option<PathBuf>,
    /// Resident-arena budget in bytes once spilling is enabled; ignored
    /// without `spill_dir`. Sealed pages beyond the budget move to the
    /// spill file oldest-first.
    pub spill_resident_bytes: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            channel_cap: 3,
            max_states: 150_000,
            max_steps_per_state: 10_000,
            threads: None,
            reduce: true,
            spill_dir: None,
            spill_resident_bytes: frontier::DEFAULT_SPILL_RESIDENT_BYTES,
        }
    }
}

impl ExploreConfig {
    /// The worker count this config resolves to (≥ 1).
    pub fn resolved_threads(&self) -> usize {
        frontier::resolved_threads(self.threads)
    }
}

/// The state-independent payload of an edge label: the canonical step and
/// the channel sets derived from it. Shared behind an [`Arc`] — the
/// unreduced fast path interns one `StepInfo` per distinct step and hands
/// out handles, so labeling millions of edges costs reference counts, not
/// allocations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepInfo {
    /// The canonical step generating the transition (for witness replay).
    pub step: crate::effects::CanonicalStep,
    /// Dense channel ids the step attends.
    pub attended: Vec<usize>,
    /// Channels on which a message was learned (kept).
    pub kept: Vec<usize>,
    /// Channels on which at least one message was dropped.
    pub dropped: Vec<usize>,
}

/// A labeled transition of the state graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeLabel {
    /// Target state index.
    pub to: usize,
    /// The shared step descriptor (step plus attended/kept/dropped sets);
    /// equality is by content, so differential comparisons are unaffected
    /// by which build interned the handle.
    pub info: Arc<StepInfo>,
    /// `true` when the step changes some π.
    pub changes_pi: bool,
    /// Symmetry-group element that canonicalized the raw successor into
    /// `to` (0 = identity, i.e. the successor was already canonical). Only
    /// nonzero in reduced builds of symmetric instances; fairness analysis
    /// un-folds the quotient through these annotations.
    pub sym: u16,
}

impl EdgeLabel {
    /// Dense channel ids the step attends.
    pub fn attended(&self) -> &[usize] {
        &self.info.attended
    }

    /// Channels on which a message was learned (kept).
    pub fn kept(&self) -> &[usize] {
        &self.info.kept
    }

    /// Channels on which at least one message was dropped.
    pub fn dropped(&self) -> &[usize] {
        &self.info.dropped
    }

    /// The canonical step generating this transition (for witness replay).
    pub fn step(&self) -> &crate::effects::CanonicalStep {
        &self.info.step
    }
}

/// The explored portion of a model's state graph. States live
/// delta-compressed in a [`NodeArena`]; materialize on demand with
/// [`StateGraph::packed`]/[`StateGraph::state`] or query the cheap packed
/// predicates through [`StateGraph::codec`].
#[derive(Debug)]
pub struct StateGraph {
    /// The per-instance codec the packed states were interned with.
    pub codec: StateCodec,
    /// The dense channel index of the instance's graph.
    pub index: ChannelIndex,
    /// The state arena, index 0 = initial.
    pub nodes: NodeArena,
    /// Fingerprint of each state's path assignment π (not the full state).
    pub pi_fp: Vec<u64>,
    /// Outgoing edges per state (state-preserving self-loops elided).
    pub edges: Vec<Vec<EdgeLabel>>,
    /// `true` when some transition was cut by the channel cap or the state
    /// or per-state step budget — absence verdicts are then bounded.
    pub truncated: bool,
    /// Frontier-engine statistics for this build.
    pub stats: FrontierStats,
    /// Reduction-layer activity (zeroed when the build ran unreduced).
    pub reduction: ReductionStats,
    /// Symmetry tables of the build, when reduction was on and the
    /// instance's automorphism group is nontrivial. Fairness analysis uses
    /// them to un-fold the quotient.
    pub(crate) sym: Option<Arc<SymTables>>,
}

impl StateGraph {
    /// Number of explored states.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` for a graph without states (never produced by `build`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Materializes state `i` in packed form.
    ///
    /// # Panics
    ///
    /// Panics if the arena fails to materialize the entry (spill I/O) — an
    /// internal invariant violation for resident arenas.
    pub fn packed(&self, i: usize) -> PackedState {
        PackedState::from_u16s(self.nodes.node_vec(i as u32))
    }

    /// Decodes state `i`.
    ///
    /// # Panics
    ///
    /// Panics if the arena entry fails to decode — an internal invariant
    /// violation, since every entry was produced by the same codec.
    pub fn state(&self, i: usize) -> NetworkState {
        self.codec
            .decode_words(&self.nodes.node_vec(i as u32))
            .expect("arena entries decode with their own codec")
    }
}

/// The frontier label of a graph edge: [`EdgeLabel`] minus the target id
/// (which only exists after dedup).
#[derive(Debug, Clone)]
pub(crate) struct EdgePayload {
    pub(crate) info: Arc<StepInfo>,
    pub(crate) changes_pi: bool,
    pub(crate) sym: u16,
}

/// Upper bound on memoized queue-length profiles; past it, unseen profiles
/// are enumerated without being recorded (correct, just slower). Distinct
/// steps (`infos`) are intrinsically few and stay unbounded.
const PROFILE_CAP: usize = 1 << 15;

/// The canonical steps of one queue-length profile, pre-resolved to shared
/// [`StepInfo`] handles.
struct ProfileSteps {
    steps: Vec<Arc<StepInfo>>,
    capped: bool,
}

/// Per-worker memo of the fast path's step enumeration. The step set is a
/// pure function of the parent's queue-length profile, so states sharing a
/// profile share one enumeration and one set of `Arc<StepInfo>` labels —
/// the hot loop allocates nothing per candidate.
#[derive(Default)]
struct StepCatalog {
    by_profile: HashMap<Vec<u16>, Arc<ProfileSteps>>,
    infos: HashMap<crate::effects::CanonicalStep, Arc<StepInfo>>,
    /// Profile-memo hit/miss tallies, flushed to telemetry when the scratch
    /// drops (plain integers: the catalog is worker-private).
    profile_hits: u64,
    profile_misses: u64,
}

impl StepCatalog {
    /// The shared descriptor of `cs`, interning it on first sight.
    fn info_of(&mut self, cs: crate::effects::CanonicalStep, spec: Spec<'_>) -> Arc<StepInfo> {
        if let Some(info) = self.infos.get(&cs) {
            return Arc::clone(info);
        }
        let attended = cs.attended(spec);
        let kept = cs.effects.iter().filter(|e| e.keep.is_some()).map(|e| e.channel).collect();
        let dropped = cs.effects.iter().filter(|e| e.dropped() > 0).map(|e| e.channel).collect();
        let info = Arc::new(StepInfo { step: cs.clone(), attended, kept, dropped });
        self.infos.insert(cs, Arc::clone(&info));
        info
    }
}

/// Reusable per-worker expansion scratch.
#[derive(Default)]
pub(crate) struct GraphScratch {
    packed: PackedScratch,
    absorbed: Vec<usize>,
    enc: Vec<u16>,
    catalog: StepCatalog,
}

impl Drop for GraphScratch {
    /// Flushes the catalog's profile-memo tallies to telemetry. The scratch
    /// is worker- and block-private, so drops are the natural flush point;
    /// counters sum across workers and blocks in the summarizer.
    fn drop(&mut self) {
        let (hits, misses) = (self.catalog.profile_hits, self.catalog.profile_misses);
        if hits + misses == 0 {
            return;
        }
        if routelab_obs::enabled() {
            routelab_obs::counter("explore.stepcatalog.hits", hits);
            routelab_obs::counter("explore.stepcatalog.misses", misses);
        }
        if routelab_obs::trace_enabled() {
            routelab_obs::trace_counter("explore.stepcatalog.hits", hits);
            routelab_obs::trace_counter("explore.stepcatalog.misses", misses);
        }
    }
}

/// The frontier-engine client for state-graph construction.
struct GraphExpand<'a> {
    inst: &'a SppInstance,
    index: &'a ChannelIndex,
    spec: Spec<'a>,
    codec: &'a StateCodec,
    collapse: bool,
    cfg: &'a ExploreConfig,
    reduce: Option<&'a Reducer>,
    /// Packed-space execution tables; `Some` exactly when the build runs
    /// unreduced (the fast path produces the raw graph bit-identically).
    fast: Option<ExecTables>,
}

impl GraphExpand<'_> {
    /// The packed fast path: canonical steps resolved through the
    /// per-worker [`StepCatalog`] (keyed on the packed queue-length
    /// header), successors written straight into the expansion buffer. No
    /// `NetworkState` is ever built and no label data is allocated per
    /// candidate.
    fn expand_fast(
        &self,
        tables: &ExecTables,
        node: &[u16],
        out: &mut SuccBuf<EdgePayload>,
        scratch: &mut GraphScratch,
    ) -> Result<bool, ExploreError> {
        let profile = match scratch.catalog.by_profile.get(tables.qlen_profile(node)) {
            Some(p) => {
                scratch.catalog.profile_hits += 1;
                Arc::clone(p)
            }
            None => {
                scratch.catalog.profile_misses += 1;
                let (steps, capped) = all_steps_with(
                    self.spec,
                    self.index,
                    &|c| tables.queue_len(node, c),
                    self.inst.node_count(),
                    self.cfg.max_steps_per_state,
                );
                let steps =
                    steps.into_iter().map(|cs| scratch.catalog.info_of(cs, self.spec)).collect();
                let p = Arc::new(ProfileSteps { steps, capped });
                if scratch.catalog.by_profile.len() < PROFILE_CAP {
                    scratch
                        .catalog
                        .by_profile
                        .insert(tables.qlen_profile(node).to_vec(), Arc::clone(&p));
                }
                p
            }
        };
        let mut truncated = profile.capped;
        tables.prepare(node, &mut scratch.packed);
        for info in &profile.steps {
            let cs = &info.step;
            let mark = out.mark();
            match tables.apply(node, &mut scratch.packed, cs, self.cfg.channel_cap, out.words()) {
                Applied::Capped => {
                    truncated = true;
                    out.cancel(mark);
                }
                Applied::Ok { new_rid, announcing: _ } => {
                    if out.since(mark) == node {
                        out.cancel(mark); // state-preserving: noop annotations
                        continue;
                    }
                    let changes_pi = new_rid != node[cs.node.index()];
                    out.commit(mark, EdgePayload { info: Arc::clone(info), changes_pi, sym: 0 });
                }
            }
        }
        Ok(truncated)
    }

    /// The engine-executed path, used by reduced builds: decode, run
    /// `execute_step`, apply the reduction normal forms, re-encode.
    fn expand_general(
        &self,
        node: &[u16],
        out: &mut SuccBuf<EdgePayload>,
        scratch: &mut GraphScratch,
    ) -> Result<bool, ExploreError> {
        let state = self.codec.decode_words(node)?;
        let (steps, capped) = all_steps(
            self.spec,
            self.index,
            &state,
            self.inst.node_count(),
            self.cfg.max_steps_per_state,
        );
        let mut truncated = capped;
        for cs in steps {
            let activation = cs.to_activation(self.spec, self.index);
            let mut next = state.clone();
            let effect = execute_step(self.inst, self.index, &mut next, &activation);
            if let Some(red) = self.reduce {
                red.normalize(&mut next, &mut scratch.absorbed);
                if red.exceeds_cap(&next, self.cfg.channel_cap) {
                    truncated = true;
                    continue;
                }
            } else {
                if self.collapse {
                    // Exact abstraction for R·A models: only the newest
                    // queued message can ever be learned.
                    next.collapse_queues_to_newest();
                }
                if next.max_queue_len() > self.cfg.channel_cap {
                    truncated = true;
                    continue;
                }
            }
            self.codec.encode_into(&next, &mut scratch.enc)?;
            // The self-loop test runs *before* canonicalization: a real
            // transition whose canonical image happens to equal the source
            // is a genuine quotient self-loop and must be kept.
            if scratch.enc.as_slice() == node {
                continue; // state-preserving: handled by noop annotations
            }
            let (canon, sym) = match self.reduce {
                Some(red) => red.canonicalize_words(&scratch.enc),
                None => (None, 0),
            };
            let mut attended = cs.attended(self.spec);
            let mut kept = effect.kept_on;
            if self.reduce.is_some() && !scratch.absorbed.is_empty() {
                // Absorbed reads fire inside this merged edge: the edge
                // attends (and keeps on) the channels it drained.
                attended.extend_from_slice(&scratch.absorbed);
                attended.sort_unstable();
                attended.dedup();
                kept.extend_from_slice(&scratch.absorbed);
                kept.sort_unstable();
                kept.dedup();
            }
            // Reduced labels are state-dependent (absorbed reads extend the
            // attended/kept sets), so each edge gets a fresh descriptor —
            // reduced spaces are small enough for that not to matter.
            let payload = EdgePayload {
                info: Arc::new(StepInfo { step: cs, attended, kept, dropped: effect.dropped_on }),
                changes_pi: !effect.changed.is_empty(),
                sym,
            };
            match canon {
                Some(ws) => out.push(&ws, payload),
                None => out.push(&scratch.enc, payload),
            }
        }
        Ok(truncated)
    }
}

impl frontier::Expand for GraphExpand<'_> {
    type Label = EdgePayload;
    type Scratch = GraphScratch;

    fn expand(
        &self,
        _id: u32,
        node: &[u16],
        out: &mut SuccBuf<EdgePayload>,
        scratch: &mut GraphScratch,
    ) -> Result<bool, ExploreError> {
        match &self.fast {
            Some(tables) => self.expand_fast(tables, node, out, scratch),
            None => self.expand_general(node, out, scratch),
        }
    }
}

/// The cell descriptor used for error attribution and telemetry.
pub(crate) fn cell_of(inst: &SppInstance, spec: Spec<'_>) -> String {
    match spec {
        Spec::Uniform(m) => format!("{inst} × {m}"),
        Spec::Hetero(_) => format!("{inst} × hetero"),
    }
}

fn assemble(
    codec: StateCodec,
    index: ChannelIndex,
    r: BfsResult<EdgePayload>,
    reduction: ReductionStats,
    sym: Option<Arc<SymTables>>,
) -> Result<StateGraph, ExploreError> {
    let mut pi_fp = Vec::with_capacity(r.nodes.len());
    let mut ms = MatScratch::default();
    let mut buf = Vec::new();
    for i in 0..r.nodes.len() {
        r.nodes.materialize(i as u32, &mut ms, &mut buf)?;
        pi_fp.push(codec.pi_fingerprint_words(&buf));
    }
    let edges = r
        .edges
        .into_iter()
        .map(|out| {
            out.into_iter()
                .map(|(to, p)| EdgeLabel {
                    to: to as usize,
                    info: p.info,
                    changes_pi: p.changes_pi,
                    sym: p.sym,
                })
                .collect()
        })
        .collect();
    let g = StateGraph {
        codec,
        index,
        nodes: r.nodes,
        pi_fp,
        edges,
        truncated: r.truncated,
        stats: r.stats,
        reduction,
        sym,
    };
    if routelab_obs::enabled() {
        routelab_obs::gauge("explore.states", g.len() as u64);
        routelab_obs::gauge("explore.threads", g.stats.threads as u64);
        routelab_obs::gauge("explore.peak_frontier", g.stats.peak_frontier as u64);
        routelab_obs::gauge("explore.shard_max", g.stats.shard_max as u64);
        routelab_obs::gauge("explore.shard_min", g.stats.shard_min as u64);
        routelab_obs::gauge("explore.bytes_resident", g.stats.bytes_resident);
        routelab_obs::gauge("explore.bytes_spilled", g.stats.bytes_spilled);
        routelab_obs::counter("explore.candidates", g.stats.candidates);
        routelab_obs::counter("explore.dedup_hits", g.stats.dedup_hits);
        routelab_obs::counter("explore.builds", 1);
        if g.truncated {
            routelab_obs::counter("explore.builds_truncated", 1);
        }
        if g.reduction.enabled {
            routelab_obs::gauge("explore.sym_group", g.reduction.group_order as u64);
            routelab_obs::counter("explore.reduce_canon_rewrites", g.reduction.canon_rewrites);
            routelab_obs::counter("explore.reduce_absorb_pops", g.reduction.absorb_pops);
            routelab_obs::counter("explore.reduce_set_collapses", g.reduction.set_collapses);
            routelab_obs::counter("explore.reduce_sym_hits", g.reduction.sym_hits);
        }
    }
    if routelab_obs::trace_enabled() {
        routelab_obs::trace_counter("explore.states", g.len() as u64);
        routelab_obs::trace_counter("explore.candidates", g.stats.candidates);
        routelab_obs::trace_counter("explore.dedup_hits", g.stats.dedup_hits);
        if g.reduction.enabled {
            routelab_obs::trace_counter(
                "explore.reduce_canon_rewrites",
                g.reduction.canon_rewrites,
            );
            routelab_obs::trace_counter("explore.reduce_absorb_pops", g.reduction.absorb_pops);
            routelab_obs::trace_counter("explore.reduce_set_collapses", g.reduction.set_collapses);
            routelab_obs::trace_counter("explore.reduce_sym_hits", g.reduction.sym_hits);
        }
    }
    Ok(g)
}

/// Builds the reachable state graph of `inst` under `model`.
///
/// For reliable all-messages models (`R1A`/`RMA`/`REA`) states are built
/// modulo the queue-to-newest-message abstraction, which is a bisimulation
/// there and keeps the polling state spaces finite without truncation.
///
/// # Panics
///
/// Panics on an [`ExploreError`] (route universe overflow, worker panic);
/// use [`try_build_spec`] to handle those.
pub fn build(inst: &SppInstance, model: CommModel, cfg: &ExploreConfig) -> StateGraph {
    build_spec(inst, Spec::Uniform(model), cfg)
}

/// Builds the reachable state graph for a uniform or heterogeneous model.
///
/// # Panics
///
/// Panics on an [`ExploreError`]; use [`try_build_spec`] to handle those.
pub fn build_spec(inst: &SppInstance, spec: Spec<'_>, cfg: &ExploreConfig) -> StateGraph {
    try_build_spec(inst, spec, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Builds the reachable state graph, reporting failures as typed errors
/// attributed to the gadget × model cell.
///
/// # Errors
///
/// Any [`ExploreError`] raised while interning or expanding states.
pub fn try_build_spec(
    inst: &SppInstance,
    spec: Spec<'_>,
    cfg: &ExploreConfig,
) -> Result<StateGraph, ExploreError> {
    build_with(inst, spec, cfg, false)
}

/// The retained sequential reference build: same output contract as
/// [`try_build_spec`], but computed by the plain one-queue-one-map loop
/// over full (undelta'd) state buffers.
/// The differential tests assert both agree bit-for-bit.
///
/// # Errors
///
/// Any [`ExploreError`] raised while interning or expanding states.
pub fn build_spec_reference(
    inst: &SppInstance,
    spec: Spec<'_>,
    cfg: &ExploreConfig,
) -> Result<StateGraph, ExploreError> {
    build_with(inst, spec, cfg, true)
}

fn build_with(
    inst: &SppInstance,
    spec: Spec<'_>,
    cfg: &ExploreConfig,
    reference: bool,
) -> Result<StateGraph, ExploreError> {
    let _span = routelab_obs::span("explore.build");
    let cell = cell_of(inst, spec);
    let index = ChannelIndex::new(inst.graph());
    let codec = StateCodec::new(inst, &index, cell.as_str())?;
    let reducer = cfg.reduce.then(|| Reducer::new(inst, &index, &codec, spec));
    let root = codec.encode(&NetworkState::initial(inst, &index))?;
    let root = match &reducer {
        Some(red) => red.canonicalize(root).0,
        None => root,
    };
    let fast = reducer.is_none().then(|| ExecTables::new(inst, &index, &codec, spec));
    let exp = GraphExpand {
        inst,
        index: &index,
        spec,
        codec: &codec,
        collapse: spec.collapsible(),
        cfg,
        reduce: reducer.as_ref(),
        fast,
    };
    let opts = BfsOptions {
        threads: cfg.resolved_threads(),
        max_nodes: cfg.max_states,
        record_edges: true,
        record_parents: false,
        progress_label: "explore.states",
        spill_dir: cfg.spill_dir.clone(),
        spill_resident_bytes: cfg.spill_resident_bytes,
    };
    let r = if reference {
        frontier::bfs_reference(&exp, root.as_u16s(), &cell, &opts)?
    } else {
        frontier::bfs(&exp, root.as_u16s(), &cell, &opts)?
    };
    let (reduction, sym) = match reducer {
        Some(red) => (red.stats(), red.sym.clone()),
        None => (ReductionStats::default(), None),
    };
    assemble(codec, index, r, reduction, sym)
}

/// Tarjan's strongly connected components (iterative). Components are
/// returned in reverse topological order; singleton components without a
/// self-edge are included (callers filter).
pub fn sccs(g: &StateGraph) -> Vec<Vec<usize>> {
    let n = g.len();
    let mut index_of = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out = Vec::new();

    // Iterative DFS frames: (node, edge cursor).
    for root in 0..n {
        if index_of[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&(v, cursor)) = call.last() {
            if cursor == 0 {
                index_of[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if cursor < g.edges[v].len() {
                call.last_mut().expect("nonempty").1 += 1;
                let w = g.edges[v][cursor].to;
                if index_of[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index_of[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index_of[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack nonempty");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    out.push(comp);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use routelab_spp::gadgets;

    #[test]
    fn line2_graph_is_tiny_and_complete() {
        let inst = gadgets::line2();
        let g = build(&inst, "REA".parse().unwrap(), &ExploreConfig::default());
        assert!(!g.truncated);
        // Initial, d-announced, v-learned, v-announcement-consumed…
        assert!(g.len() <= 8, "{}", g.len());
        // From the converged terminal state there are no outgoing edges.
        let terminal = (0..g.len())
            .find(|&i| g.codec.is_quiescent(&g.packed(i)))
            .expect("line2 reaches quiescence");
        assert!(g.edges[terminal].is_empty());
        assert!(g.state(terminal).is_quiescent());
    }

    #[test]
    fn disagree_r1o_graph_has_cycles() {
        let inst = gadgets::disagree();
        let cfg = ExploreConfig::default();
        // Unreduced, divergent schedules pump queues past any cap (e.g. x
        // keeps announcing while d never reads), so the raw build
        // truncates. The class projection turns those announcements into
        // absorbed ε-reads, making the reduced build exhaustive. The
        // oscillating SCC must be inside the explored region either way.
        let raw =
            build(&inst, "R1O".parse().unwrap(), &ExploreConfig { reduce: false, ..cfg.clone() });
        assert!(raw.truncated);
        let g = build(&inst, "R1O".parse().unwrap(), &cfg);
        assert!(!g.truncated);
        assert!(g.reduction.canon_rewrites > 0);
        for graph in [&raw, &g] {
            let comps = sccs(graph);
            let biggest = comps.iter().map(Vec::len).max().unwrap();
            assert!(biggest > 1, "R1O on DISAGREE must contain a nontrivial SCC");
        }
    }

    #[test]
    fn disagree_rma_graph_is_acyclic_besides_terminals() {
        let inst = gadgets::disagree();
        let g = build(&inst, "RMA".parse().unwrap(), &ExploreConfig::default());
        assert!(!g.truncated);
        for comp in sccs(&g) {
            if comp.len() > 1 {
                // Any multi-state SCC must keep π constant (checked fully in
                // oscillation.rs; here ensure π fp equality).
                let fp = g.pi_fp[comp[0]];
                assert!(comp.iter().all(|&s| g.pi_fp[s] == fp));
            }
        }
    }

    #[test]
    fn truncation_reported_on_tiny_caps() {
        let inst = gadgets::disagree();
        let cfg = ExploreConfig {
            channel_cap: 1,
            max_states: 4,
            max_steps_per_state: 4,
            ..ExploreConfig::default()
        };
        let g = build(&inst, "RMS".parse().unwrap(), &cfg);
        assert!(g.truncated);
        assert!(g.len() <= 4);
    }

    #[test]
    fn scc_decomposition_covers_all_states() {
        let inst = gadgets::disagree();
        let g = build(&inst, "REO".parse().unwrap(), &ExploreConfig::default());
        let comps = sccs(&g);
        let total: usize = comps.iter().map(Vec::len).sum();
        assert_eq!(total, g.len());
        // Each state appears exactly once.
        let mut seen = vec![false; g.len()];
        for c in &comps {
            for &s in c {
                assert!(!seen[s]);
                seen[s] = true;
            }
        }
    }

    #[test]
    fn parallel_build_matches_reference_exactly() {
        let inst = gadgets::disagree();
        let cfg = ExploreConfig::default();
        for model in ["R1O", "RMA", "RES", "U1O"] {
            let spec = Spec::Uniform(model.parse().unwrap());
            let reference = build_spec_reference(&inst, spec, &cfg).unwrap();
            for threads in [1, 2, 8] {
                let c = ExploreConfig { threads: Some(threads), ..cfg.clone() };
                let g = try_build_spec(&inst, spec, &c).unwrap();
                assert_eq!(g.nodes, reference.nodes, "{model} @{threads}");
                assert_eq!(g.pi_fp, reference.pi_fp, "{model} @{threads}");
                assert_eq!(g.edges, reference.edges, "{model} @{threads}");
                assert_eq!(g.truncated, reference.truncated, "{model} @{threads}");
            }
        }
    }

    #[test]
    fn spilled_build_matches_resident_build() {
        let inst = gadgets::disagree();
        let base = ExploreConfig { reduce: false, ..ExploreConfig::default() };
        let resident = build(&inst, "R1O".parse().unwrap(), &base);
        let dir = std::env::temp_dir().join(format!("routelab-graph-spill-{}", std::process::id()));
        let cfg =
            ExploreConfig { spill_dir: Some(dir.clone()), spill_resident_bytes: 4096, ..base };
        let spilled = build(&inst, "R1O".parse().unwrap(), &cfg);
        assert!(spilled.stats.bytes_spilled > 0, "{:?}", spilled.stats);
        assert_eq!(spilled.nodes, resident.nodes);
        assert_eq!(spilled.edges, resident.edges);
        assert_eq!(spilled.pi_fp, resident.pi_fp);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

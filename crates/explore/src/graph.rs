//! Reachable-state-graph construction and SCC decomposition.

use std::collections::HashMap;

use routelab_core::model::CommModel;
use routelab_engine::exec::execute_step;
use routelab_engine::index::ChannelIndex;
use routelab_engine::state::NetworkState;
use routelab_spp::SppInstance;

use crate::effects::{all_steps, Spec};

/// Bounds for exhaustive exploration.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Maximum queue length; transitions that would exceed it are cut (and
    /// recorded, downgrading any "always converges" verdict).
    pub channel_cap: usize,
    /// Maximum number of distinct states.
    pub max_states: usize,
    /// Maximum canonical steps enumerated per state.
    pub max_steps_per_state: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig { channel_cap: 3, max_states: 150_000, max_steps_per_state: 10_000 }
    }
}

/// A labeled transition of the state graph.
#[derive(Debug, Clone)]
pub struct EdgeLabel {
    /// Target state index.
    pub to: usize,
    /// Dense channel ids the step attends.
    pub attended: Vec<usize>,
    /// Channels on which a message was learned (kept).
    pub kept: Vec<usize>,
    /// Channels on which at least one message was dropped.
    pub dropped: Vec<usize>,
    /// `true` when the step changes some π.
    pub changes_pi: bool,
    /// The canonical step generating this transition (for witness replay).
    pub step: crate::effects::CanonicalStep,
}

/// The explored portion of a model's state graph.
#[derive(Debug, Clone)]
pub struct StateGraph {
    /// States, index 0 = initial.
    pub states: Vec<NetworkState>,
    /// Fingerprint of each state's path assignment π (not the full state).
    pub pi_fp: Vec<u64>,
    /// Outgoing edges per state (state-preserving self-loops elided).
    pub edges: Vec<Vec<EdgeLabel>>,
    /// `true` when some transition was cut by the channel cap or the state
    /// or per-state step budget — absence verdicts are then bounded.
    pub truncated: bool,
}

fn pi_fingerprint(state: &NetworkState) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    state.assignment().hash(&mut h);
    h.finish()
}

/// Builds the reachable state graph of `inst` under `model`.
///
/// For reliable all-messages models (`R1A`/`RMA`/`REA`) states are built
/// modulo the queue-to-newest-message abstraction, which is a bisimulation
/// there and keeps the polling state spaces finite without truncation.
pub fn build(inst: &SppInstance, model: CommModel, cfg: &ExploreConfig) -> StateGraph {
    build_spec(inst, Spec::Uniform(model), cfg)
}

/// Builds the reachable state graph for a uniform or heterogeneous model.
pub fn build_spec(inst: &SppInstance, spec: Spec<'_>, cfg: &ExploreConfig) -> StateGraph {
    let collapse = spec.collapsible();
    let index = ChannelIndex::new(inst.graph());
    let initial = NetworkState::initial(inst, &index);
    let mut ids: HashMap<NetworkState, usize> = HashMap::new();
    ids.insert(initial.clone(), 0);
    let mut g = StateGraph {
        states: vec![initial],
        pi_fp: Vec::new(),
        edges: vec![Vec::new()],
        truncated: false,
    };
    g.pi_fp.push(pi_fingerprint(&g.states[0]));

    // The build can explore millions of states on wheel-carrying gadgets;
    // the heartbeat makes budget consumption visible while it runs (gauges
    // to the telemetry sink, a periodic status line to stderr).
    let mut heartbeat = routelab_obs::Heartbeat::new("explore.states", cfg.max_states as u64);
    let mut frontier = vec![0usize];
    while let Some(si) = frontier.pop() {
        heartbeat.tick(g.states.len() as u64);
        let state = g.states[si].clone();
        let (steps, capped) =
            all_steps(spec, &index, &state, inst.node_count(), cfg.max_steps_per_state);
        g.truncated |= capped;
        for cs in steps {
            let activation = cs.to_activation(spec, &index);
            let mut next = state.clone();
            let effect = execute_step(inst, &index, &mut next, &activation);
            if collapse {
                // Exact abstraction for R·A models: only the newest queued
                // message can ever be learned.
                next.collapse_queues_to_newest();
            }
            if next == state {
                continue; // state-preserving: handled by noop annotations
            }
            if next.max_queue_len() > cfg.channel_cap {
                g.truncated = true;
                continue;
            }
            let ti = match ids.get(&next) {
                Some(&t) => t,
                None => {
                    if g.states.len() >= cfg.max_states {
                        g.truncated = true;
                        continue;
                    }
                    let t = g.states.len();
                    ids.insert(next.clone(), t);
                    g.pi_fp.push(pi_fingerprint(&next));
                    g.states.push(next);
                    g.edges.push(Vec::new());
                    frontier.push(t);
                    t
                }
            };
            g.edges[si].push(EdgeLabel {
                to: ti,
                attended: cs.attended(spec),
                kept: effect.kept_on.clone(),
                dropped: effect.dropped_on.clone(),
                changes_pi: !effect.changed.is_empty(),
                step: cs.clone(),
            });
        }
    }
    if routelab_obs::enabled() {
        routelab_obs::gauge("explore.states", g.states.len() as u64);
        routelab_obs::counter("explore.builds", 1);
        if g.truncated {
            routelab_obs::counter("explore.builds_truncated", 1);
        }
    }
    g
}

/// Tarjan's strongly connected components (iterative). Components are
/// returned in reverse topological order; singleton components without a
/// self-edge are included (callers filter).
pub fn sccs(g: &StateGraph) -> Vec<Vec<usize>> {
    let n = g.states.len();
    let mut index_of = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out = Vec::new();

    // Iterative DFS frames: (node, edge cursor).
    for root in 0..n {
        if index_of[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&(v, cursor)) = call.last() {
            if cursor == 0 {
                index_of[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if cursor < g.edges[v].len() {
                call.last_mut().expect("nonempty").1 += 1;
                let w = g.edges[v][cursor].to;
                if index_of[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index_of[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index_of[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack nonempty");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    out.push(comp);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use routelab_spp::gadgets;

    #[test]
    fn line2_graph_is_tiny_and_complete() {
        let inst = gadgets::line2();
        let g = build(&inst, "REA".parse().unwrap(), &ExploreConfig::default());
        assert!(!g.truncated);
        // Initial, d-announced, v-learned, v-announcement-consumed…
        assert!(g.states.len() <= 8, "{}", g.states.len());
        // From the converged terminal state there are no outgoing edges.
        let terminal =
            g.states.iter().position(|s| s.is_quiescent()).expect("line2 reaches quiescence");
        assert!(g.edges[terminal].is_empty());
    }

    #[test]
    fn disagree_r1o_graph_has_cycles() {
        let inst = gadgets::disagree();
        let g = build(&inst, "R1O".parse().unwrap(), &ExploreConfig::default());
        // Divergent schedules can pump any queue past any cap (e.g. x keeps
        // announcing while d never reads), so truncation is expected here;
        // the oscillating SCC must still be inside the explored region.
        assert!(g.truncated);
        let comps = sccs(&g);
        let biggest = comps.iter().map(Vec::len).max().unwrap();
        assert!(biggest > 1, "R1O on DISAGREE must contain a nontrivial SCC");
    }

    #[test]
    fn disagree_rma_graph_is_acyclic_besides_terminals() {
        let inst = gadgets::disagree();
        let g = build(&inst, "RMA".parse().unwrap(), &ExploreConfig::default());
        assert!(!g.truncated);
        for comp in sccs(&g) {
            if comp.len() > 1 {
                // Any multi-state SCC must keep π constant (checked fully in
                // oscillation.rs; here ensure π fp equality).
                let fp = g.pi_fp[comp[0]];
                assert!(comp.iter().all(|&s| g.pi_fp[s] == fp));
            }
        }
    }

    #[test]
    fn truncation_reported_on_tiny_caps() {
        let inst = gadgets::disagree();
        let cfg = ExploreConfig { channel_cap: 1, max_states: 4, max_steps_per_state: 4 };
        let g = build(&inst, "RMS".parse().unwrap(), &cfg);
        assert!(g.truncated);
        assert!(g.states.len() <= 4);
    }

    #[test]
    fn scc_decomposition_covers_all_states() {
        let inst = gadgets::disagree();
        let g = build(&inst, "REO".parse().unwrap(), &ExploreConfig::default());
        let comps = sccs(&g);
        let total: usize = comps.iter().map(Vec::len).sum();
        assert_eq!(total, g.states.len());
        // Each state appears exactly once.
        let mut seen = vec![false; g.states.len()];
        for c in &comps {
            for &s in c {
                assert!(!seen[s]);
                seen[s] = true;
            }
        }
    }
}

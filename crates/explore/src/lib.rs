//! Bounded exhaustive model checking for routing executions.
//!
//! The paper's negative results assert that certain networks *cannot*
//! oscillate in certain models (Examples A.1, A.2) or that certain traces
//! cannot be realized (Examples A.3–A.5). This crate decides such claims
//! mechanically, within explicit bounds:
//!
//! * [`effects`] — canonical enumeration of all distinct step effects a
//!   model admits in a state (the `(f, g)` space collapses to "how many
//!   messages deleted, which one kept"),
//! * [`graph`] — reachable-state-graph construction with channel caps and
//!   Tarjan SCC decomposition,
//! * [`oscillation`] — the fair-oscillation criterion of Definition 2.4
//!   expressed on SCCs, yielding [`oscillation::Verdict`]s,
//! * [`trace_search`] — exhaustive search for an activation sequence of a
//!   model realizing a given path-assignment trace exactly, with
//!   repetition, or as a subsequence,
//! * [`witness`] — extraction of replayable oscillation lassos (prefix +
//!   π-changing cycle) from a fair SCC.
//!
//! Heterogeneous (mixed) models from [`routelab_core::hetero`] are analyzed
//! with [`oscillation::analyze_hetero`] — the paper's Sec. 5 open question.
//!
//! # Example: DISAGREE oscillates in R1O but never in RMA (Example A.1)
//!
//! ```
//! use routelab_explore::oscillation::{analyze, Verdict};
//! use routelab_explore::graph::ExploreConfig;
//! use routelab_spp::gadgets;
//!
//! let inst = gadgets::disagree();
//! let cfg = ExploreConfig::default();
//! assert!(matches!(
//!     analyze(&inst, "R1O".parse().unwrap(), &cfg),
//!     Verdict::CanOscillate { .. }
//! ));
//! assert!(matches!(
//!     analyze(&inst, "RMA".parse().unwrap(), &cfg),
//!     Verdict::AlwaysConverges { .. }
//! ));
//! ```

pub mod arena;
pub mod effects;
pub mod error;
pub mod exec_packed;
pub mod frontier;
pub mod graph;
pub mod oscillation;
pub mod pack;
pub mod reduce;
pub mod trace_search;
pub mod witness;

pub use error::{ExploreError, ExploreErrorKind};
pub use frontier::FrontierStats;
pub use graph::{ExploreConfig, StateGraph};
pub use oscillation::{analyze, try_analyze, Verdict};
pub use pack::{PackedState, StateCodec};
pub use reduce::ReductionStats;
pub use trace_search::{search, try_search, SearchGoal, SearchResult};
pub use witness::{oscillation_witness, OscillationWitness};

//! Delta-compressed, spill-capable storage for interned frontier nodes.
//!
//! The frontier engine used to keep every interned state as its own
//! `Arc<[u16]>` — one heap allocation plus a 16-byte refcount header per
//! state, and the full flat buffer resident forever. But successive routing
//! states differ in a handful of `u16` slots (one π entry, one ρ entry, a
//! queue head consumed, an announcement appended), so [`NodeArena`] interns
//! each node as a **sparse diff against its first-discovery parent**,
//! bump-allocated into fixed-size pages. A chain of diffs is cut by a full
//! keyframe every [`KEY_EVERY`] levels, bounding materialization cost, and
//! a diff that fails to compress is stored as a keyframe too.
//!
//! Pages are sealed in order; with a spill directory configured, sealed
//! pages beyond the resident budget are written to an unlinked temp file
//! and read back with positioned reads (`pread`) on demand. All writes
//! happen in the frontier's serial merge phase, so the parallel expand and
//! dedup phases only ever read — `&NodeArena` is freely shared across
//! worker threads.
//!
//! Diff encoding: a sequence of `u16` ops, `op = word >> 14`,
//! `len = word & 0x3FFF`:
//!
//! * `0` **COPY** — copy `len` words from the parent cursor (advances both)
//! * `1` **LIT** — emit the next `len` literal words (advances output only)
//! * `2` **SKIP** — advance the parent cursor by `len` words
//!
//! Materialization replays the op sequence bottom-up from the keyframe.
//! Equality of arenas is defined by materialized content, so the
//! differential suites compare delta-compressed, spilled, and plain
//! storage bit-for-bit.

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::error::ExploreError;

/// Default words per sealed page (64 Ki words = 128 KiB). Oversized
/// entries get a dedicated page of exactly their size; entries never span
/// pages. Spill-backed arenas shrink the page so the resident budget holds
/// at least two sealed pages — otherwise a budget smaller than one page
/// could never trigger a spill (the open page never spills).
const PAGE_WORDS: usize = 1 << 16;

/// Smallest page a spill-backed arena will use, however tiny its budget.
const MIN_PAGE_WORDS: usize = 64;

/// Maximum delta-chain depth before a full keyframe is forced. Bounds the
/// number of diff applications per materialization.
const KEY_EVERY: u16 = 8;

/// Maximum length one diff op can carry (the low 14 bits of the op word).
const OP_MAX: usize = (1 << 14) - 1;

const OP_COPY: u16 = 0;
const OP_LIT: u16 = 1;
const OP_SKIP: u16 = 2;

/// `u32` sentinel for "no parent" (keyframe entries).
const NO_PARENT: u32 = u32::MAX;

/// One interned node: where its stored words live and how to expand them.
#[derive(Clone, Copy)]
struct Entry {
    /// Page index.
    page: u32,
    /// Word offset within the page.
    off: u32,
    /// Stored words (diff code, or the full buffer for keyframes).
    stored: u32,
    /// Parent entry the diff applies against; `NO_PARENT` for keyframes.
    parent: u32,
    /// Delta-chain depth (0 for keyframes).
    depth: u16,
    /// Materialized length in words.
    full: u32,
}

/// A sealed page: resident words, or a byte range of the spill file.
enum Page {
    Resident(Box<[u16]>),
    Spilled {
        /// Byte offset in the spill file.
        at: u64,
    },
}

/// The spill backing: an already-unlinked temp file (auto-reclaimed on
/// drop, even on panic) plus its append cursor.
struct Spill {
    file: File,
    write_at: u64,
    resident_budget: usize,
    /// First page index not yet considered for spilling.
    next_page: usize,
}

/// Reusable scratch for [`NodeArena::materialize`]: the delta chain, the
/// ping-pong base buffer, and an I/O buffer for spilled reads.
#[derive(Default)]
pub struct MatScratch {
    chain: Vec<u32>,
    a: Vec<u16>,
    io: Vec<u16>,
}

/// Delta-compressed arena of interned `u16`-word nodes; index = node id.
pub struct NodeArena {
    cell: String,
    entries: Vec<Entry>,
    pages: Vec<Page>,
    /// The open page being filled (always resident).
    cur: Vec<u16>,
    /// Capacity of a sealed page, in words.
    page_words: usize,
    spill: Option<Spill>,
    resident_words: u64,
    spilled_words: u64,
}

impl std::fmt::Debug for NodeArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeArena")
            .field("cell", &self.cell)
            .field("len", &self.entries.len())
            .field("pages", &self.pages.len())
            .field("resident_words", &self.resident_words)
            .field("spilled_words", &self.spilled_words)
            .finish()
    }
}

impl NodeArena {
    /// An empty, fully resident arena attributed to `cell`.
    pub fn new(cell: impl Into<String>) -> Self {
        NodeArena {
            cell: cell.into(),
            entries: Vec::new(),
            pages: Vec::new(),
            cur: Vec::new(),
            page_words: PAGE_WORDS,
            spill: None,
            resident_words: 0,
            spilled_words: 0,
        }
    }

    /// An arena that spills sealed pages past `resident_words` to an
    /// unlinked temp file under `dir`.
    ///
    /// # Errors
    ///
    /// [`ExploreErrorKind::SpillIo`](crate::error::ExploreErrorKind) when
    /// the directory or temp file cannot be created.
    pub fn with_spill(
        cell: impl Into<String>,
        dir: &Path,
        resident_words: usize,
    ) -> Result<Self, ExploreError> {
        let cell = cell.into();
        let file = open_spill_file(&cell, dir)?;
        let mut arena = NodeArena::new(cell);
        // Keep at least two sealed pages inside the budget: the open page
        // never spills, so pages larger than the budget would make tiny
        // budgets (and the tests that use them) unable to spill at all.
        arena.page_words = (resident_words / 2).clamp(MIN_PAGE_WORDS, PAGE_WORDS);
        arena.spill =
            Some(Spill { file, write_at: 0, resident_budget: resident_words, next_page: 0 });
        Ok(arena)
    }

    /// Number of interned nodes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes of node storage currently resident in memory (page payloads;
    /// excludes the per-entry index).
    pub fn bytes_resident(&self) -> u64 {
        (self.resident_words + self.cur.len() as u64) * 2
    }

    /// Bytes of node storage written to the spill file.
    pub fn bytes_spilled(&self) -> u64 {
        self.spilled_words * 2
    }

    /// Materialized length of node `id`, in words.
    pub fn word_len(&self, id: u32) -> usize {
        self.entries[id as usize].full as usize
    }

    /// Interns `words` as a full keyframe (no delta parent).
    ///
    /// # Errors
    ///
    /// Spill I/O failures while sealing pages.
    pub fn intern_full(&mut self, words: &[u16]) -> Result<u32, ExploreError> {
        self.push_entry(words, NO_PARENT, 0, words.len())
    }

    /// Interns `words` as a delta against `parent` (whose materialized
    /// words the caller already holds — the merge loop materializes each
    /// parent once for its whole run of successors). Falls back to a
    /// keyframe when the chain is deep or the diff does not compress.
    ///
    /// # Errors
    ///
    /// Spill I/O failures while sealing pages.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not an interned id.
    pub fn intern(
        &mut self,
        words: &[u16],
        parent: u32,
        parent_words: &[u16],
        code: &mut Vec<u16>,
    ) -> Result<u32, ExploreError> {
        let depth = self.entries[parent as usize].depth;
        if depth + 1 >= KEY_EVERY {
            return self.intern_full(words);
        }
        code.clear();
        diff(parent_words, words, code);
        if code.len() >= words.len() {
            return self.intern_full(words);
        }
        let (c, n) = (code.len(), words.len());
        let id = self.push_entry(code, parent, depth + 1, n);
        debug_assert!(c < n);
        id
    }

    fn push_entry(
        &mut self,
        stored: &[u16],
        parent: u32,
        depth: u16,
        full: usize,
    ) -> Result<u32, ExploreError> {
        assert!(self.entries.len() < NO_PARENT as usize, "arena id space exhausted");
        if self.cur.len() + stored.len() > self.page_words {
            self.seal_page()?;
        }
        let (page, off);
        if stored.len() > self.page_words {
            // Oversized entry: its own dedicated page.
            page = self.pages.len() as u32;
            off = 0;
            self.resident_words += stored.len() as u64;
            self.pages.push(Page::Resident(stored.into()));
            self.maybe_spill()?;
        } else {
            page = self.pages.len() as u32;
            off = self.cur.len() as u32;
            self.cur.extend_from_slice(stored);
        }
        self.entries.push(Entry {
            page,
            off,
            stored: stored.len() as u32,
            parent,
            depth,
            full: full as u32,
        });
        Ok((self.entries.len() - 1) as u32)
    }

    fn seal_page(&mut self) -> Result<(), ExploreError> {
        if self.cur.is_empty() {
            return Ok(());
        }
        let sealed: Box<[u16]> = std::mem::take(&mut self.cur).into();
        self.resident_words += sealed.len() as u64;
        self.pages.push(Page::Resident(sealed));
        self.maybe_spill()
    }

    /// Flushes the oldest resident sealed pages to the spill file until the
    /// resident payload fits the budget. Oldest-first matches breadth-first
    /// locality: dedup hits and delta parents concentrate near the
    /// frontier, i.e. in the newest pages.
    fn maybe_spill(&mut self) -> Result<(), ExploreError> {
        let Some(spill) = self.spill.as_mut() else { return Ok(()) };
        while self.resident_words > spill.resident_budget as u64
            && spill.next_page < self.pages.len()
        {
            let i = spill.next_page;
            spill.next_page += 1;
            let Page::Resident(words) = &self.pages[i] else { continue };
            let bytes = words_as_bytes(words);
            spill.file.write_all(bytes).map_err(|e| {
                ExploreError::spill_io(&self.cell, format!("writing page {i}: {e}"))
            })?;
            let at = spill.write_at;
            spill.write_at += bytes.len() as u64;
            self.resident_words -= words.len() as u64;
            self.spilled_words += words.len() as u64;
            self.pages[i] = Page::Spilled { at };
        }
        Ok(())
    }

    /// The stored words of `e`, borrowed from the resident page or read
    /// from the spill file into `io`.
    fn stored_of<'a>(&'a self, e: Entry, io: &'a mut Vec<u16>) -> Result<&'a [u16], ExploreError> {
        let (start, len) = (e.off as usize, e.stored as usize);
        if e.page as usize == self.pages.len() {
            return Ok(&self.cur[start..start + len]);
        }
        match &self.pages[e.page as usize] {
            Page::Resident(words) => Ok(&words[start..start + len]),
            Page::Spilled { at, .. } => {
                let spill = self.spill.as_ref().expect("spilled page without spill backing");
                io.resize(len, 0);
                read_words_at(&spill.file, at + (start as u64) * 2, io).map_err(|e| {
                    ExploreError::spill_io(&self.cell, format!("reading spilled entry: {e}"))
                })?;
                Ok(&io[..])
            }
        }
    }

    /// Materializes node `id` into `out` (cleared first).
    ///
    /// # Errors
    ///
    /// Spill I/O failures, or a corrupt diff chain.
    pub fn materialize(
        &self,
        id: u32,
        s: &mut MatScratch,
        out: &mut Vec<u16>,
    ) -> Result<(), ExploreError> {
        // Walk up to the keyframe.
        s.chain.clear();
        let mut cur = id;
        loop {
            s.chain.push(cur);
            let e = self.entries[cur as usize];
            if e.parent == NO_PARENT {
                break;
            }
            cur = e.parent;
        }
        // Apply diffs top-down, ping-ponging between two buffers.
        let key = self.entries[*s.chain.last().expect("nonempty chain") as usize];
        out.clear();
        {
            let stored = self.stored_of(key, &mut s.io)?;
            out.extend_from_slice(stored);
        }
        for &cid in s.chain.iter().rev().skip(1) {
            let e = self.entries[cid as usize];
            std::mem::swap(out, &mut s.a);
            let code = self.stored_of(e, &mut s.io)?;
            out.clear();
            apply(&s.a, code, out).map_err(|detail| {
                ExploreError::corrupt(&self.cell, format!("diff chain for node {id}: {detail}"))
            })?;
            if out.len() != e.full as usize {
                return Err(ExploreError::corrupt(
                    &self.cell,
                    format!(
                        "diff chain for node {id}: materialized {} words, expected {}",
                        out.len(),
                        e.full
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Materializes node `id` into a fresh `Vec` (convenience for cold
    /// paths — analysis, tests, witness extraction).
    ///
    /// # Panics
    ///
    /// Panics on a spill I/O failure or corrupt chain; hot paths use
    /// [`NodeArena::materialize`].
    pub fn node_vec(&self, id: u32) -> Vec<u16> {
        let mut s = MatScratch::default();
        let mut out = Vec::new();
        self.materialize(id, &mut s, &mut out).unwrap_or_else(|e| panic!("{e}"));
        out
    }

    /// All nodes materialized, id order (test/diagnostic helper).
    ///
    /// # Panics
    ///
    /// As [`NodeArena::node_vec`].
    pub fn snapshot(&self) -> Vec<Vec<u16>> {
        (0..self.len() as u32).map(|i| self.node_vec(i)).collect()
    }
}

/// Arenas are equal iff they hold the same nodes in the same order —
/// compared by materialized content, so delta/keyframe/spill layout
/// differences never affect equality.
impl PartialEq for NodeArena {
    fn eq(&self, other: &Self) -> bool {
        if self.len() != other.len() {
            return false;
        }
        let (mut sa, mut sb) = (MatScratch::default(), MatScratch::default());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for i in 0..self.len() as u32 {
            if self.materialize(i, &mut sa, &mut a).is_err()
                || other.materialize(i, &mut sb, &mut b).is_err()
                || a != b
            {
                return false;
            }
        }
        true
    }
}

impl Eq for NodeArena {}

fn words_as_bytes(words: &[u16]) -> &[u8] {
    // SAFETY: u16 has no padding or invalid bit patterns; the length in
    // bytes is exactly twice the length in words and the alignment of u8
    // (1) is never stricter than u16's.
    unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), words.len() * 2) }
}

fn words_as_bytes_mut(words: &mut [u16]) -> &mut [u8] {
    // SAFETY: as `words_as_bytes`; every byte pattern is a valid u16, so
    // writing raw bytes cannot create invalid values. The spill file is
    // written and read on the same host, so native endianness round-trips.
    unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), words.len() * 2) }
}

#[cfg(unix)]
fn read_words_at(file: &File, at: u64, out: &mut [u16]) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(words_as_bytes_mut(out), at)
}

#[cfg(not(unix))]
fn read_words_at(_file: &File, _at: u64, _out: &mut [u16]) -> std::io::Result<()> {
    Err(std::io::Error::other("spill arena requires positioned reads (unix only)"))
}

/// Creates (and immediately unlinks, on unix) a uniquely named spill file
/// under `dir`, so the backing storage is reclaimed automatically when the
/// arena drops — even on panic or SIGKILL-adjacent exits.
fn open_spill_file(cell: &str, dir: &Path) -> Result<File, ExploreError> {
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    std::fs::create_dir_all(dir)
        .map_err(|e| ExploreError::spill_io(cell, format!("creating {}: {e}", dir.display())))?;
    let seq = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let path: PathBuf = dir.join(format!("frontier-spill-{}-{seq}.bin", std::process::id()));
    let file =
        std::fs::OpenOptions::new().read(true).write(true).create_new(true).open(&path).map_err(
            |e| ExploreError::spill_io(cell, format!("creating {}: {e}", path.display())),
        )?;
    #[cfg(unix)]
    let _ = std::fs::remove_file(&path);
    Ok(file)
}

/// Greedy delta encoding of `child` against `parent` (ops appended to
/// `out`). Emits COPY for matching runs and resynchronizes after a
/// mismatch by scanning a bounded window for a 4-word anchor; when no
/// anchor is found the remainder is emitted literally. Always correct —
/// compression quality only affects memory.
fn diff(parent: &[u16], child: &[u16], out: &mut Vec<u16>) {
    /// Words that must match to re-align the cursors after a mismatch.
    const ANCHOR: usize = 4;
    /// How far ahead (total cursor advance) resynchronization may look.
    const WINDOW: usize = 48;

    let (mut pi, mut ci) = (0usize, 0usize);
    loop {
        // Copy the maximal matching run.
        let mut k = 0;
        while pi + k < parent.len() && ci + k < child.len() && parent[pi + k] == child[ci + k] {
            k += 1;
        }
        if k > 0 {
            emit(OP_COPY, k, &[], out);
            pi += k;
            ci += k;
        }
        if ci >= child.len() {
            return; // trailing parent words are simply unused
        }
        if pi >= parent.len() {
            emit(OP_LIT, child.len() - ci, &child[ci..], out);
            return;
        }
        // Mismatch: find the nearest (dp, dc) advance that re-aligns an
        // ANCHOR-word run, preferring the smallest total advance.
        let mut resync: Option<(usize, usize)> = None;
        'scan: for total in 1..=WINDOW {
            for dp in 0..=total {
                let dc = total - dp;
                let (p, c) = (pi + dp, ci + dc);
                if p >= parent.len() || c >= child.len() {
                    continue;
                }
                let run = ANCHOR.min(parent.len() - p).min(child.len() - c);
                if run > 0 && parent[p..p + run] == child[c..c + run] {
                    resync = Some((dp, dc));
                    break 'scan;
                }
            }
        }
        match resync {
            Some((dp, dc)) => {
                if dp > 0 {
                    emit(OP_SKIP, dp, &[], out);
                }
                if dc > 0 {
                    emit(OP_LIT, dc, &child[ci..ci + dc], out);
                }
                pi += dp;
                ci += dc;
            }
            None => {
                emit(OP_LIT, child.len() - ci, &child[ci..], out);
                return;
            }
        }
    }
}

/// Emits one logical op of length `len` (split across op words when `len`
/// exceeds the 14-bit field), with `lits` carrying LIT payload words.
fn emit(op: u16, len: usize, lits: &[u16], out: &mut Vec<u16>) {
    debug_assert!(op != OP_LIT || lits.len() == len);
    let mut done = 0usize;
    while done < len {
        let n = (len - done).min(OP_MAX);
        out.push((op << 14) | (n as u16));
        if op == OP_LIT {
            out.extend_from_slice(&lits[done..done + n]);
        }
        done += n;
    }
}

/// Applies a diff `code` against `base`, appending the child to `out`.
fn apply(base: &[u16], code: &[u16], out: &mut Vec<u16>) -> Result<(), String> {
    let mut bi = 0usize;
    let mut at = 0usize;
    while at < code.len() {
        let word = code[at];
        at += 1;
        let (op, len) = (word >> 14, usize::from(word & 0x3FFF));
        match op {
            OP_COPY => {
                if bi + len > base.len() {
                    return Err(format!("COPY {len} overruns base at {bi}/{}", base.len()));
                }
                out.extend_from_slice(&base[bi..bi + len]);
                bi += len;
            }
            OP_LIT => {
                if at + len > code.len() {
                    return Err(format!("LIT {len} overruns code at {at}/{}", code.len()));
                }
                out.extend_from_slice(&code[at..at + len]);
                at += len;
            }
            OP_SKIP => {
                if bi + len > base.len() {
                    return Err(format!("SKIP {len} overruns base at {bi}/{}", base.len()));
                }
                bi += len;
            }
            _ => return Err(format!("unknown diff op {op}")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(parent: &[u16], child: &[u16]) -> usize {
        let mut code = Vec::new();
        diff(parent, child, &mut code);
        let mut back = Vec::new();
        apply(parent, &code, &mut back).expect("apply");
        assert_eq!(back, child, "parent {parent:?} child {child:?} code {code:?}");
        code.len()
    }

    #[test]
    fn diff_round_trips_and_compresses_sparse_edits() {
        let parent: Vec<u16> = (0..200).collect();
        // One substituted slot.
        let mut child = parent.clone();
        child[17] = 9999;
        assert!(roundtrip(&parent, &child) <= 8);
        // A consumed queue head (deletion) plus an appended announcement.
        let mut child = parent.clone();
        child.remove(90);
        child.push(4242);
        assert!(roundtrip(&parent, &child) < 20);
        // Scattered edits.
        let mut child = parent.clone();
        child[3] = 1;
        child[120] = 2;
        child[199] = 3;
        assert!(roundtrip(&parent, &child) <= 24);
    }

    #[test]
    fn diff_handles_degenerate_shapes() {
        roundtrip(&[], &[]);
        roundtrip(&[], &[1, 2, 3]);
        roundtrip(&[1, 2, 3], &[]);
        roundtrip(&[1, 2, 3], &[1, 2, 3]);
        roundtrip(&[1; 50], &[2; 50]);
        roundtrip(&[1, 2, 3, 4], &[4, 3, 2, 1]);
        // Long runs exercise the op-length split.
        let parent: Vec<u16> = (0..40_000).map(|i| (i % 7) as u16).collect();
        let mut child = parent.clone();
        child[20_000] = 9;
        roundtrip(&parent, &child);
    }

    #[test]
    fn arena_round_trips_chains_and_keyframes() {
        let mut arena = NodeArena::new("test-cell");
        let mut code = Vec::new();
        let base: Vec<u16> = (0..300).collect();
        let root = arena.intern_full(&base).unwrap();
        assert_eq!(root, 0);
        // A chain far deeper than KEY_EVERY: each node tweaks one slot.
        let mut nodes = vec![base.clone()];
        let mut parent = root;
        for i in 0..40u16 {
            let mut next = nodes.last().unwrap().clone();
            next[usize::from(i) % 300] = 1000 + i;
            let pw = nodes.last().unwrap().clone();
            parent = arena.intern(&next, parent, &pw, &mut code).unwrap();
            nodes.push(next);
        }
        for (i, want) in nodes.iter().enumerate() {
            assert_eq!(&arena.node_vec(i as u32), want, "node {i}");
        }
        assert_eq!(arena.len(), 41);
        assert!(arena.bytes_resident() > 0);
        assert_eq!(arena.bytes_spilled(), 0);
    }

    #[test]
    fn incompressible_children_fall_back_to_keyframes() {
        let mut arena = NodeArena::new("test-cell");
        let mut code = Vec::new();
        let a: Vec<u16> = (0..64).collect();
        let b: Vec<u16> = (1000..1064).collect();
        let ra = arena.intern_full(&a).unwrap();
        let rb = arena.intern(&b, ra, &a, &mut code).unwrap();
        assert_eq!(arena.node_vec(rb), b);
        // Nothing matched: the entry must be stored full, not as a diff.
        assert_eq!(arena.entries[rb as usize].parent, NO_PARENT);
    }

    #[test]
    fn spilled_arena_matches_resident_arena() {
        let dir = std::env::temp_dir().join(format!("routelab-arena-test-{}", std::process::id()));
        let mut spilled = NodeArena::with_spill("test-cell", &dir, 1).unwrap();
        let mut resident = NodeArena::new("test-cell");
        let mut code = Vec::new();
        // Keyframes are ~20k words, so the run seals several pages, and the
        // 1-word budget spills every sealed page immediately.
        let mut prev: Vec<u16> = (0..20_000).collect();
        spilled.intern_full(&prev).unwrap();
        resident.intern_full(&prev).unwrap();
        let mut parent = 0u32;
        for i in 0..200u16 {
            let mut next = prev.clone();
            next[usize::from(i) * 97 % 20_000] = i;
            if i % 5 == 0 {
                next.push(i); // length changes too
            }
            let ns = spilled.intern(&next, parent, &prev, &mut code).unwrap();
            let nr = resident.intern(&next, parent, &prev, &mut code).unwrap();
            assert_eq!(ns, nr);
            parent = ns;
            prev = next;
        }
        assert!(spilled.bytes_spilled() > 0, "{spilled:?}");
        assert!(spilled.bytes_resident() < resident.bytes_resident());
        assert_eq!(spilled, resident);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn arena_equality_is_by_content() {
        let mut a = NodeArena::new("c");
        let mut b = NodeArena::new("c");
        let mut code = Vec::new();
        let base: Vec<u16> = (0..100).collect();
        let mut child = base.clone();
        child[50] = 7;
        a.intern_full(&base).unwrap();
        a.intern(&child, 0, &base, &mut code).unwrap();
        // Same nodes, different layout (both keyframes).
        b.intern_full(&base).unwrap();
        b.intern_full(&child).unwrap();
        assert_eq!(a, b);
        b.intern_full(&base).unwrap();
        assert_ne!(a, b);
    }
}

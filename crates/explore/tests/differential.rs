//! Differential determinism tests: the sharded parallel frontier engine
//! must be *bit-identical* to the retained sequential reference — same
//! interned states in the same order, same edges, same truncation flag,
//! same verdict, and the same witness cycle — for every built-in gadget ×
//! every one of the 24 communication models, at 1, 2, and 8 threads.
//!
//! State budgets are capped so the full 192-cell sweep stays affordable in
//! debug builds; the determinism contract is exercised hardest near the
//! truncation boundary anyway (the cut must land on the same candidate
//! ordinal on every thread count).

use routelab_core::model::CommModel;
use routelab_explore::effects::Spec;
use routelab_explore::graph::{build_spec_reference, try_build_spec, ExploreConfig, StateGraph};
use routelab_explore::oscillation::analyze_graph;
use routelab_explore::witness::witness_from_graph;
use routelab_spp::gadgets;

fn assert_same_graph(cell: &str, threads: usize, par: &StateGraph, reference: &StateGraph) {
    assert_eq!(par.len(), reference.len(), "{cell} @{threads}t: state count");
    assert_eq!(par.nodes, reference.nodes, "{cell} @{threads}t: interned states");
    assert_eq!(par.pi_fp, reference.pi_fp, "{cell} @{threads}t: π fingerprints");
    assert_eq!(par.edges, reference.edges, "{cell} @{threads}t: edge lists");
    assert_eq!(par.truncated, reference.truncated, "{cell} @{threads}t: truncation flag");
}

fn taxonomy_sweep(reduce: bool) {
    let cfg = ExploreConfig {
        channel_cap: 2,
        max_states: 1_000,
        max_steps_per_state: 20_000,
        threads: None,
        reduce,
        ..ExploreConfig::default()
    };
    for (name, inst) in gadgets::corpus() {
        for model in CommModel::all() {
            let spec = Spec::Uniform(model);
            let cell = format!("{name} × {model}");
            let reference = build_spec_reference(&inst, spec, &cfg)
                .unwrap_or_else(|e| panic!("{cell} reference: {e}"));
            let ref_verdict = analyze_graph(spec, &reference);
            let ref_witness = witness_from_graph(spec, &reference);
            for threads in [1usize, 2, 8] {
                let par_cfg = ExploreConfig { threads: Some(threads), ..cfg.clone() };
                let par = try_build_spec(&inst, spec, &par_cfg)
                    .unwrap_or_else(|e| panic!("{cell} @{threads}t: {e}"));
                assert_same_graph(&cell, threads, &par, &reference);
                assert_eq!(analyze_graph(spec, &par), ref_verdict, "{cell} @{threads}t: verdict");
                assert_eq!(
                    witness_from_graph(spec, &par),
                    ref_witness,
                    "{cell} @{threads}t: witness"
                );
            }
        }
    }
}

#[test]
fn parallel_explorer_is_bit_identical_to_reference_across_the_whole_taxonomy() {
    taxonomy_sweep(false);
}

#[test]
fn reduced_parallel_explorer_is_bit_identical_to_reference_across_the_whole_taxonomy() {
    // The reduction layer runs inside the frontier expansion, so the
    // determinism contract must hold for quotient graphs too.
    taxonomy_sweep(true);
}

#[test]
fn parallel_explorer_matches_reference_on_larger_oscillating_cells() {
    // A deeper sweep over the cells whose verdicts carry the paper's
    // separations, at a budget big enough to include the fair SCCs.
    let cfg = ExploreConfig {
        channel_cap: 3,
        max_states: 30_000,
        max_steps_per_state: 20_000,
        ..ExploreConfig::default()
    };
    for (name, model) in
        [("DISAGREE", "R1O"), ("DISAGREE", "RMA"), ("BAD-GADGET", "REA"), ("GOOD-GADGET", "R1O")]
    {
        let inst = gadgets::corpus()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, i)| i)
            .expect("gadget");
        let model: CommModel = model.parse().expect("model");
        let spec = Spec::Uniform(model);
        let cell = format!("{name} × {model}");
        let reference = build_spec_reference(&inst, spec, &cfg)
            .unwrap_or_else(|e| panic!("{cell} reference: {e}"));
        let ref_verdict = analyze_graph(spec, &reference);
        let ref_witness = witness_from_graph(spec, &reference);
        for threads in [2usize, 8] {
            let par_cfg = ExploreConfig { threads: Some(threads), ..cfg.clone() };
            let par = try_build_spec(&inst, spec, &par_cfg)
                .unwrap_or_else(|e| panic!("{cell} @{threads}t: {e}"));
            assert_same_graph(&cell, threads, &par, &reference);
            assert_eq!(analyze_graph(spec, &par), ref_verdict, "{cell} @{threads}t: verdict");
            assert_eq!(witness_from_graph(spec, &par), ref_witness, "{cell} @{threads}t: witness");
        }
    }
}

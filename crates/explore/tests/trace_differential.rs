//! Flight-recorder neutrality: enabling tracing must not change a single
//! bit of the explorer's results or the engine's run outcomes.
//!
//! Trace enablement is one-way for the process (the recorder is a
//! process-global `OnceLock`), so this file holds exactly ONE test:
//! everything is computed trace-OFF first, tracing is then enabled into a
//! temp directory, and the same computations re-run trace-ON. Integration
//! tests compile to their own binary, so the enablement cannot leak into
//! any other test.

use routelab_core::model::CommModel;
use routelab_engine::outcome::{drive, RunOutcome};
use routelab_engine::runner::Runner;
use routelab_engine::schedule::RoundRobin;
use routelab_explore::effects::Spec;
use routelab_explore::graph::{try_build_spec, ExploreConfig, StateGraph};
use routelab_spp::gadgets;

fn explore_cfg(threads: usize) -> ExploreConfig {
    ExploreConfig {
        channel_cap: 3,
        max_states: 10_000,
        max_steps_per_state: 20_000,
        threads: Some(threads),
        ..ExploreConfig::default()
    }
}

fn build_cells(threads: usize) -> Vec<StateGraph> {
    let mut graphs = Vec::new();
    for (name, model) in [("DISAGREE", "R1O"), ("GOOD-GADGET", "REA")] {
        let inst = gadgets::corpus()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, i)| i)
            .expect("gadget");
        let model: CommModel = model.parse().expect("model");
        let g = try_build_spec(&inst, Spec::Uniform(model), &explore_cfg(threads))
            .unwrap_or_else(|e| panic!("{name} × {model} @{threads}t: {e}"));
        graphs.push(g);
    }
    graphs
}

fn drive_outcomes() -> Vec<RunOutcome> {
    let mut outcomes = Vec::new();
    for (name, model) in [("BAD-GADGET", "R1O"), ("GOOD-GADGET", "RMS")] {
        let inst = gadgets::corpus()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, i)| i)
            .expect("gadget");
        let mut runner = Runner::new(&inst);
        let mut sched = RoundRobin::new(&inst, model.parse().expect("model"));
        outcomes.push(drive(&mut runner, &mut sched, 50_000));
    }
    outcomes
}

fn assert_same_graph(threads: usize, on: &StateGraph, off: &StateGraph) {
    assert_eq!(on.nodes, off.nodes, "@{threads}t: interned states differ with tracing on");
    assert_eq!(on.pi_fp, off.pi_fp, "@{threads}t: π fingerprints differ with tracing on");
    assert_eq!(on.edges, off.edges, "@{threads}t: edge lists differ with tracing on");
    assert_eq!(on.truncated, off.truncated, "@{threads}t: truncation differs with tracing on");
}

#[test]
fn tracing_is_bit_neutral_for_explorer_and_engine() {
    // Phase 1: everything with tracing off (the recorder must not exist yet).
    assert!(!routelab_obs::trace_enabled(), "tracing leaked in before the off phase");
    let off_graphs: Vec<(usize, Vec<StateGraph>)> =
        [1usize, 2, 8].into_iter().map(|t| (t, build_cells(t))).collect();
    let off_outcomes = drive_outcomes();

    // Phase 2: enable tracing (one-way for this process) and recompute.
    let dir = std::env::temp_dir().join(format!("routelab-trace-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = routelab_obs::enable_trace_to_dir(&dir, "trace-differential")
        .expect("trace enablement must succeed");
    assert!(routelab_obs::trace_enabled());

    for (threads, off) in &off_graphs {
        let on = build_cells(*threads);
        for (g_on, g_off) in on.iter().zip(off) {
            assert_same_graph(*threads, g_on, g_off);
        }
    }
    let on_outcomes = drive_outcomes();
    assert_eq!(on_outcomes, off_outcomes, "run outcomes differ with tracing on");

    // The recorder must actually have captured the traced runs: per-run
    // headers, step events, and verdicts.
    routelab_obs::flush_trace();
    let content = std::fs::read_to_string(&path).expect("trace file");
    for tag in ["\"t\":\"tmeta\"", "\"t\":\"trun\"", "\"t\":\"tstep\"", "\"t\":\"tend\""] {
        assert!(content.contains(tag), "trace file is missing {tag} lines");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

//! State-storage soundness tests: the delta-compressed (and optionally
//! spill-backed) node arena must be an invisible implementation detail.
//!
//! Three properties, per the determinism contract:
//!
//! 1. delta-encoding a reachable state against an arbitrary parent and
//!    materializing it back round-trips bit-for-bit, for every gadget of
//!    the corpus (proptest over engine-driven walks);
//! 2. a spilled arena and a resident arena produce identical graphs —
//!    same interned states, edges, π fingerprints, and truncation;
//! 3. unreduced (`reduce: false`) builds on the delta arena are
//!    bit-identical to the sequential reference at 1, 2, and 8 threads.

use proptest::prelude::*;
use routelab_core::step::{ActivationStep, ChannelAction, NodeUpdate};
use routelab_engine::exec::execute_step;
use routelab_engine::index::ChannelIndex;
use routelab_engine::state::NetworkState;
use routelab_explore::arena::{MatScratch, NodeArena};
use routelab_explore::effects::Spec;
use routelab_explore::error::ExploreError;
use routelab_explore::frontier::{bfs, BfsOptions, Expand, SuccBuf};
use routelab_explore::graph::{build_spec_reference, try_build_spec, ExploreConfig};
use routelab_explore::pack::StateCodec;
use routelab_spp::{gadgets, NodeId, SppInstance};

/// The packed encodings of the states visited by an activation walk
/// (read-all steps of the picked nodes), initial state included.
fn walk_words(inst: &SppInstance, walk: &[usize]) -> Vec<Vec<u16>> {
    let index = ChannelIndex::new(inst.graph());
    let codec = StateCodec::new(inst, &index, "storage-test").expect("codec");
    let mut state = NetworkState::initial(inst, &index);
    let mut out = Vec::with_capacity(walk.len() + 1);
    let mut buf = Vec::new();
    codec.encode_into(&state, &mut buf).expect("encode");
    out.push(buf.clone());
    for &pick in walk {
        let v = NodeId((pick % inst.node_count()) as u32);
        let actions = index
            .in_channels(v)
            .iter()
            .map(|&cid| ChannelAction::read_all(index.channel(cid)))
            .collect();
        execute_step(
            inst,
            &index,
            &mut state,
            &ActivationStep::single(NodeUpdate::new(v, actions)),
        );
        codec.encode_into(&state, &mut buf).expect("encode");
        out.push(buf.clone());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Property 1: delta-encode → materialize round-trips every corpus
    /// state, whatever parent each diff is computed against.
    #[test]
    fn delta_interning_round_trips_every_corpus_state(
        gadget in 0usize..6,
        walk in prop::collection::vec(0usize..64, 0..16),
        parent_picks in prop::collection::vec(0usize..16, 0..16),
    ) {
        let corpus = gadgets::corpus();
        let (_, inst) = &corpus[gadget % corpus.len()];
        let states = walk_words(inst, &walk);

        let mut arena = NodeArena::new("storage-test");
        let mut code = Vec::new();
        let mut ids = Vec::new();
        for (i, ws) in states.iter().enumerate() {
            let id = if i == 0 {
                arena.intern_full(ws).expect("resident interning")
            } else {
                // Diff against an arbitrary earlier state, not necessarily
                // the walk predecessor — the engine picks BFS parents, so
                // the codec must work against any base.
                let p = parent_picks.get(i - 1).copied().unwrap_or(0) % i;
                arena
                    .intern(ws, ids[p], &states[p], &mut code)
                    .expect("resident interning")
            };
            ids.push(id);
        }

        let mut scratch = MatScratch::default();
        let mut out = Vec::new();
        for (i, ws) in states.iter().enumerate() {
            arena.materialize(ids[i], &mut scratch, &mut out).expect("materialize");
            prop_assert_eq!(&out, ws, "state {} of the walk", i);
        }
    }
}

/// Property 2: spilling is invisible — identical graphs, bit for bit.
#[test]
fn spilled_and_resident_builds_are_identical() {
    let dir = std::env::temp_dir().join(format!("routelab-storage-spill-{}", std::process::id()));
    for (name, model, reduce) in
        [("DISAGREE", "R1O", false), ("DISAGREE", "RMS", false), ("BAD-GADGET", "REA", true)]
    {
        let inst = gadgets::corpus()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, i)| i)
            .expect("gadget");
        let spec = Spec::Uniform(model.parse().expect("model"));
        let base =
            ExploreConfig { channel_cap: 2, max_states: 5_000, reduce, ..ExploreConfig::default() };
        let resident = try_build_spec(&inst, spec, &base).expect("resident build");
        let spill_cfg = ExploreConfig {
            spill_dir: Some(dir.clone()),
            // A deliberately tiny resident budget so sealed pages actually
            // move to disk in a test-sized space (the arena shrinks its
            // page size to fit the budget).
            spill_resident_bytes: 512,
            ..base
        };
        let spilled = try_build_spec(&inst, spec, &spill_cfg).expect("spilled build");
        let cell = format!("{name} × {model} (reduce={reduce})");
        assert!(spilled.stats.bytes_spilled > 0, "{cell}: nothing spilled ({:?})", spilled.stats);
        assert_eq!(spilled.nodes, resident.nodes, "{cell}: interned states");
        assert_eq!(spilled.pi_fp, resident.pi_fp, "{cell}: π fingerprints");
        assert_eq!(spilled.edges, resident.edges, "{cell}: edges");
        assert_eq!(spilled.truncated, resident.truncated, "{cell}: truncation");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A synthetic routing-state-shaped workload: 64-word states of which the
/// first 8 slots are increment counters, every state offering all 8
/// increments as successors. Reachability is the 8-dimensional composition
/// lattice, so the space is combinatorially large while successive states
/// differ in exactly one `u16` slot — the shape the delta arena exists for.
struct Lattice;

impl Expand for Lattice {
    type Label = ();
    type Scratch = Vec<u16>;

    fn expand(
        &self,
        _id: u32,
        node: &[u16],
        out: &mut SuccBuf<()>,
        scratch: &mut Vec<u16>,
    ) -> Result<bool, ExploreError> {
        for slot in 0..8 {
            scratch.clear();
            scratch.extend_from_slice(node);
            scratch[slot] += 1;
            out.push(scratch, ());
        }
        Ok(false)
    }
}

/// Acceptance demo (ignored by default — ~10 GB of candidate traffic):
/// a 10M-state budget completes under the spill arena with the resident
/// payload held near the configured budget. Run with
/// `cargo test --release -p routelab-explore --test storage -- --ignored`.
#[test]
#[ignore = "10M-state spill acceptance demo; run explicitly in release"]
fn ten_million_state_budget_completes_under_spill() {
    const BUDGET: usize = 10_000_000;
    const RESIDENT: usize = 64 << 20; // 64 MiB resident payload
    let dir = std::env::temp_dir().join(format!("routelab-storage-10m-{}", std::process::id()));
    let root = [0u16; 64];
    let opts = BfsOptions {
        spill_dir: Some(dir.clone()),
        spill_resident_bytes: RESIDENT,
        ..BfsOptions::new(1, BUDGET)
    };
    let r = bfs(&Lattice, &root, "lattice-10m", &opts).expect("10M-state spill run");
    println!("10M spill run: {:?}", r.stats);
    assert_eq!(r.nodes.len(), BUDGET);
    assert!(r.truncated, "the lattice is far larger than the budget");
    assert!(r.stats.bytes_spilled > 0, "{:?}", r.stats);
    // The arena halves the configured budget into words; sealed pages past
    // it must be on disk, leaving only the budget plus the open page and
    // unsealed slack resident.
    assert!(
        r.stats.bytes_resident < (RESIDENT + (RESIDENT / 4)) as u64,
        "resident payload exceeds the spill budget: {:?}",
        r.stats
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Property 3: the unreduced fast path on the delta arena matches the
/// sequential reference at every thread count.
#[test]
fn unreduced_delta_builds_match_reference_across_thread_counts() {
    for (name, model) in [("DISAGREE", "R1O"), ("FIG6", "R1A"), ("BAD-GADGET", "REA")] {
        let inst = gadgets::corpus()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, i)| i)
            .expect("gadget");
        let spec = Spec::Uniform(model.parse().expect("model"));
        let cfg = ExploreConfig {
            channel_cap: 2,
            max_states: 4_000,
            reduce: false,
            ..ExploreConfig::default()
        };
        let reference = build_spec_reference(&inst, spec, &cfg).expect("reference");
        for threads in [1usize, 2, 8] {
            let par_cfg = ExploreConfig { threads: Some(threads), ..cfg.clone() };
            let par = try_build_spec(&inst, spec, &par_cfg).expect("parallel build");
            let cell = format!("{name} × {model} @{threads}t");
            assert_eq!(par.nodes, reference.nodes, "{cell}: interned states");
            assert_eq!(par.pi_fp, reference.pi_fp, "{cell}: π fingerprints");
            assert_eq!(par.edges, reference.edges, "{cell}: edges");
            assert_eq!(par.truncated, reference.truncated, "{cell}: truncation");
        }
    }
}

//! Reduction-soundness differential tests: for every built-in gadget ×
//! every one of the 24 communication models, at 1, 2 and 8 threads, the
//! reduced (queue normal forms + symmetry quotient) and unreduced builds
//! must agree on the oscillation verdict, and — when both explorations are
//! exhaustive — on the reachable quiescent (stable) states.
//!
//! A bounded verdict on one side is consistent with a decisive verdict on
//! the other: the decisive side simply explored further, which is the
//! reduction's purpose (e.g. the unreliable-All set collapse turns the
//! infinite `U·A` spaces finite). What is *never* allowed is a decisive
//! contradiction: one side proving an oscillation the other side has
//! exhaustively ruled out.

use std::collections::HashSet;

use routelab_core::model::CommModel;
use routelab_explore::effects::Spec;
use routelab_explore::graph::{try_build_spec, ExploreConfig, StateGraph};
use routelab_explore::oscillation::{analyze_graph, Verdict};
use routelab_spp::gadgets;

fn assert_consistent(cell: &str, reduced: &Verdict, unreduced: &Verdict) {
    use Verdict::*;
    match (reduced, unreduced) {
        (CanOscillate { .. }, CanOscillate { .. })
        | (AlwaysConverges { .. }, AlwaysConverges { .. })
        | (NoOscillationWithinBound { .. }, NoOscillationWithinBound { .. }) => {}
        (NoOscillationWithinBound { .. }, _) | (_, NoOscillationWithinBound { .. }) => {}
        (r, u) => panic!("{cell}: reduced verdict {r:?} contradicts unreduced {u:?}"),
    }
}

/// The π assignments of the reachable quiescent (stable) states. The
/// route-class projection rewrites ρ entries, so reduced quiescent states
/// need not be bit-identical to unreduced ones — but the projection
/// preserves π and quiescence exactly, so the stable assignments are
/// comparable.
fn quiescent_pis(g: &StateGraph) -> HashSet<Vec<u16>> {
    (0..g.len())
        .filter(|&i| g.codec.is_quiescent(&g.packed(i)))
        .map(|i| g.codec.pi_ids(&g.packed(i)).to_vec())
        .collect()
}

#[test]
fn reduced_and_unreduced_builds_agree_across_the_whole_taxonomy() {
    let base = ExploreConfig {
        channel_cap: 2,
        max_states: 1_500,
        max_steps_per_state: 20_000,
        threads: None,
        reduce: true,
        ..ExploreConfig::default()
    };
    for (name, inst) in gadgets::corpus() {
        for model in CommModel::all() {
            let spec = Spec::Uniform(model);
            let cell = format!("{name} × {model}");
            for threads in [1usize, 2, 8] {
                let rcfg = ExploreConfig { threads: Some(threads), ..base.clone() };
                let ucfg = ExploreConfig { reduce: false, ..rcfg.clone() };
                let rg = try_build_spec(&inst, spec, &rcfg)
                    .unwrap_or_else(|e| panic!("{cell} reduced @{threads}t: {e}"));
                let ug = try_build_spec(&inst, spec, &ucfg)
                    .unwrap_or_else(|e| panic!("{cell} unreduced @{threads}t: {e}"));
                let rv = analyze_graph(spec, &rg);
                let uv = analyze_graph(spec, &ug);
                assert_consistent(&format!("{cell} @{threads}t"), &rv, &uv);
                assert!(
                    rg.len() <= ug.len(),
                    "{cell} @{threads}t: the quotient ({}) must not exceed the full space ({})",
                    rg.len(),
                    ug.len()
                );
                if rg.truncated || ug.truncated {
                    continue;
                }
                // Both exhaustive: compare the stable (quiescent) π
                // assignments. Every reduced quiescent state is the class
                // projection of a symmetric image of a real reachable
                // quiescent state; the projection preserves π and an
                // automorphism maps reachable states to reachable states,
                // so each reduced π appears among the unreduced ones. In
                // the other direction every unreduced quiescent π has some
                // group image in the reduced set, bounding the unreduced
                // count by the reduced one times the group order.
                let rq = quiescent_pis(&rg);
                let uq = quiescent_pis(&ug);
                let order = rg.reduction.group_order.max(1);
                assert!(
                    rq.is_subset(&uq),
                    "{cell} @{threads}t: reduced stable assignments must be reachable unreduced"
                );
                assert!(
                    uq.len() >= rq.len() && uq.len() <= rq.len() * order,
                    "{cell} @{threads}t: {} unreduced stable assignments vs {} orbits × group {}",
                    uq.len(),
                    rq.len(),
                    order
                );
                if order == 1 {
                    assert_eq!(
                        rq, uq,
                        "{cell} @{threads}t: trivial group must preserve stable assignments"
                    );
                }
            }
        }
    }
}

#[test]
fn reduction_decides_the_unreliable_polling_cells() {
    // The survey's `?` cells: unreliable policy-A models have unbounded
    // queues unreduced (every announcement may be re-queued forever), but
    // the set collapse makes them finite. DISAGREE converges in all three
    // — the reduced explorer must now prove it exhaustively.
    let inst = gadgets::disagree();
    let cfg = ExploreConfig::default();
    for model in ["U1A", "UMA", "UEA"] {
        let spec = Spec::Uniform(model.parse().unwrap());
        let g = try_build_spec(&inst, spec, &cfg).expect("build");
        assert!(!g.truncated, "{model}: set collapse must bound the space");
        assert!(
            matches!(analyze_graph(spec, &g), Verdict::AlwaysConverges { .. }),
            "{model} must converge exhaustively on DISAGREE"
        );
        assert!(g.reduction.set_collapses > 0 || g.len() < 100, "{model}: collapse must engage");
    }
}

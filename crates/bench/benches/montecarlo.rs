//! Monte-Carlo harness throughput (experiment E11): randomized fair runs
//! per second across models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use routelab_sim::montecarlo::{run_cell, CellConfig};
use routelab_spp::gadgets;
use routelab_spp::generator::gao_rexford_instance;

fn bench_montecarlo(c: &mut Criterion) {
    let mut group = c.benchmark_group("montecarlo");
    group.sample_size(10);
    let cfg = CellConfig { runs: 10, max_steps: 5_000, seed: 1, drop_prob: 0.25 };
    for model in ["R1O", "RMS", "UMS", "REA"] {
        let inst = gadgets::fig6();
        group.bench_with_input(BenchmarkId::new("fig6", model), &inst, |b, inst| {
            b.iter(|| run_cell(inst, model.parse().unwrap(), &cfg).converged)
        });
    }
    let gr = gao_rexford_instance(16, 3, 6, 5).expect("generator");
    group.bench_with_input(BenchmarkId::new("gao_rexford_16", "RMS"), &gr, |b, inst| {
        b.iter(|| run_cell(inst, "RMS".parse().unwrap(), &cfg).converged)
    });
    group.finish();
}

criterion_group!(benches, bench_montecarlo);
criterion_main!(benches);

//! Execution-engine throughput: steps per second of the Definition 2.3
//! semantics under different models and instance sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use routelab_bench::rr_prefix;
use routelab_engine::runner::Runner;
use routelab_spp::gadgets;
use routelab_spp::generator::{random_instance, RandomSppConfig};

fn bench_gadget_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_step/gadgets");
    for (name, inst) in [("disagree", gadgets::disagree()), ("fig6", gadgets::fig6())] {
        for model in ["R1O", "REA", "RMS"] {
            let seq = rr_prefix(&inst, model.parse().unwrap(), 64);
            group.bench_with_input(
                BenchmarkId::new(name, model),
                &(&inst, &seq),
                |b, (inst, seq)| {
                    b.iter(|| {
                        let mut runner = Runner::new(inst);
                        runner.run(seq);
                        runner.stats().sent
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_random_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_step/random_n");
    for n in [8usize, 16, 32, 64] {
        let inst = random_instance(&RandomSppConfig {
            nodes: n,
            extra_edges: n,
            seed: 1,
            ..RandomSppConfig::default()
        })
        .expect("generator");
        let seq = rr_prefix(&inst, "RMS".parse().unwrap(), 4 * n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(&inst, &seq), |b, (inst, seq)| {
            b.iter(|| {
                let mut runner = Runner::new(inst);
                runner.run(seq);
                runner.stats().consumed
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gadget_steps, bench_random_sizes);
criterion_main!(benches);

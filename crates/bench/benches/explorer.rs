//! Exhaustive exploration cost (experiments E3/E4/E9): state-graph
//! construction, SCC analysis, and trace search on the paper gadgets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use routelab_engine::runner::Runner;
use routelab_explore::graph::ExploreConfig;
use routelab_explore::oscillation::analyze;
use routelab_explore::trace_search::{search, SearchGoal};
use routelab_spp::gadgets;

fn bench_oscillation(c: &mut Criterion) {
    let mut group = c.benchmark_group("explorer/oscillation");
    group.sample_size(10);
    let cfg = ExploreConfig::default();
    for (name, inst, model) in [
        ("disagree-R1O", gadgets::disagree(), "R1O"),
        ("disagree-RMA", gadgets::disagree(), "RMA"),
        ("fig6-REA", gadgets::fig6(), "REA"),
        ("bad-gadget-REA", gadgets::bad_gadget(), "REA"),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &inst, |b, inst| {
            b.iter(|| analyze(inst, model.parse().unwrap(), &cfg))
        });
    }
    group.finish();
}

fn bench_trace_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("explorer/trace_search");
    group.sample_size(10);
    let cfg = ExploreConfig {
        channel_cap: 6,
        max_states: 2_000_000,
        max_steps_per_state: 50_000,
        ..ExploreConfig::default()
    };
    let a4 = routelab_engine::paper_runs::a4_rea();
    let target = Runner::trace_of(&a4.instance, &a4.seq);
    group.bench_function("a4-repetition-in-R1O(impossible)", |b| {
        b.iter(|| {
            search(&a4.instance, "R1O".parse().unwrap(), &target, SearchGoal::Repetition, &cfg)
                .is_impossible()
        })
    });
    group.bench_function("a4-subsequence-in-R1O(found)", |b| {
        b.iter(|| {
            search(&a4.instance, "R1O".parse().unwrap(), &target, SearchGoal::Subsequence, &cfg)
                .is_found()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_oscillation, bench_trace_search);
criterion_main!(benches);

//! SPP substrate cost: stable-assignment enumeration, dispute-wheel
//! detection, and instance generation at increasing sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use routelab_spp::dispute::{dispute_digraph, find_dispute_wheel};
use routelab_spp::gadgets;
use routelab_spp::generator::{gao_rexford_instance, random_instance, RandomSppConfig};
use routelab_spp::solve::enumerate_stable_assignments;

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/stable_assignments");
    for (name, inst) in gadgets::corpus() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &inst, |b, inst| {
            b.iter(|| enumerate_stable_assignments(inst, 10_000_000).unwrap().len())
        });
    }
    group.finish();
}

fn bench_dispute(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/dispute_wheel");
    for n in [8usize, 16, 32] {
        let inst = gao_rexford_instance(n, 3, 6, 5).expect("generator");
        group.bench_with_input(BenchmarkId::new("gao_rexford", n), &inst, |b, inst| {
            b.iter(|| find_dispute_wheel(inst).is_none())
        });
        let rnd = random_instance(&RandomSppConfig {
            nodes: n,
            extra_edges: n,
            seed: 3,
            ..RandomSppConfig::default()
        })
        .expect("generator");
        group.bench_with_input(BenchmarkId::new("random", n), &rnd, |b, inst| {
            b.iter(|| find_dispute_wheel(inst).is_some())
        });
        group.bench_with_input(BenchmarkId::new("digraph", n), &rnd, |b, inst| {
            b.iter(|| dispute_digraph(inst).vertices.len())
        });
    }
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/generators");
    for n in [16usize, 64] {
        group.bench_with_input(BenchmarkId::new("random", n), &n, |b, &n| {
            b.iter(|| {
                random_instance(&RandomSppConfig {
                    nodes: n,
                    extra_edges: n,
                    seed: 9,
                    ..RandomSppConfig::default()
                })
                .unwrap()
                .node_count()
            })
        });
        group.bench_with_input(BenchmarkId::new("gao_rexford", n), &n, |b, &n| {
            b.iter(|| gao_rexford_instance(n, 9, 6, 5).unwrap().node_count())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solver, bench_dispute, bench_generators);
criterion_main!(benches);

//! Cost of deriving the Figure 3/4 bounds matrix from the foundational
//! facts (experiments E1/E2), and of comparing against the published tables.

use criterion::{criterion_group, criterion_main, Criterion};
use routelab_core::closure::derive_bounds;
use routelab_core::edges::foundational_facts;
use routelab_core::paper::{compare, figure3, figure4};

fn bench_closure(c: &mut Criterion) {
    c.bench_function("closure/foundational_facts", |b| b.iter(foundational_facts));
    let facts = foundational_facts();
    c.bench_function("closure/derive_bounds", |b| b.iter(|| derive_bounds(&facts)));
    let bounds = derive_bounds(&facts);
    c.bench_function("closure/compare_fig3", |b| {
        let table = figure3();
        b.iter(|| compare(&bounds, &table).cells.len())
    });
    c.bench_function("closure/compare_fig4", |b| {
        let table = figure4();
        b.iter(|| compare(&bounds, &table).cells.len())
    });
}

criterion_group!(benches, bench_closure);
criterion_main!(benches);

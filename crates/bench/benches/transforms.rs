//! Cost of the constructive realization transformations (experiment E10).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use routelab_bench::rr_prefix;
use routelab_core::MessagePolicy;
use routelab_realize::compose::{plan, realize};
use routelab_realize::transform;
use routelab_spp::gadgets;

fn bench_transforms(c: &mut Criterion) {
    let inst = gadgets::fig6();
    let mut group = c.benchmark_group("transforms");

    let rma = rr_prefix(&inst, "RMA".parse().unwrap(), 56);
    group.bench_function("split_m_to_1/56", |b| {
        b.iter(|| transform::split_m_to_1(&inst, &rma, MessagePolicy::All).unwrap().seq.len())
    });

    let rms = rr_prefix(&inst, "RMS".parse().unwrap(), 56);
    group.bench_function("pad_m_to_e/56", |b| {
        b.iter(|| transform::pad_m_to_e(&inst, &rms).unwrap().seq.len())
    });

    let r1s = rr_prefix(&inst, "R1S".parse().unwrap(), 56);
    group.bench_function("flag_r1s_to_r1o/56", |b| {
        b.iter(|| transform::flag_r1s_to_r1o(&inst, &r1s).unwrap().seq.len())
    });

    let u1o = rr_prefix(&inst, "U1O".parse().unwrap(), 56);
    group.bench_function("coalesce_u1o_to_r1s/56", |b| {
        b.iter(|| transform::coalesce_u1o_to_r1s(&inst, &u1o).unwrap().seq.len())
    });
    group.finish();

    let mut group = c.benchmark_group("compose");
    for (from, to) in [("REA", "UMS"), ("REA", "R1O"), ("U1O", "RMS")] {
        let fm = from.parse().unwrap();
        let tm = to.parse().unwrap();
        let seq = rr_prefix(&inst, fm, 28);
        group.bench_with_input(
            BenchmarkId::new("realize", format!("{from}->{to}")),
            &seq,
            |b, seq| b.iter(|| realize(&inst, seq, fm, tm).unwrap().map(|o| o.seq.len())),
        );
    }
    group.bench_function("plan_all_pairs", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for a in routelab_core::model::CommModel::all() {
                for m in routelab_core::model::CommModel::all() {
                    total += plan(a, m).map_or(0, |p| p.len());
                }
            }
            total
        })
    });
    group.finish();
}

criterion_group!(benches, bench_transforms);
criterion_main!(benches);

//! Scaling of the run-level worker pool against the legacy one-thread-per-
//! model grid on the full 24-model DISAGREE grid (the ISSUE's acceptance
//! workload). Cells are wildly imbalanced, so the legacy strategy is bounded
//! by its slowest cell while the pool keeps every worker busy; on a 4+ core
//! machine `pool/t4` should beat `per_model_threads` by well over 2×. On a
//! single-core machine the strategies tie — the numbers here are still
//! useful as a regression baseline for the engine itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use routelab_core::model::CommModel;
use routelab_sim::montecarlo::{run_grid_per_model_threads, run_grid_with, CellConfig};
use routelab_sim::pool::PoolConfig;
use routelab_spp::gadgets;

fn bench_pool_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_scaling");
    group.sample_size(10);
    let inst = gadgets::disagree();
    let models: Vec<CommModel> = CommModel::all();
    let cfg = CellConfig { runs: 8, max_steps: 4_000, seed: 11, drop_prob: 0.25 };

    group.bench_function("per_model_threads", |b| {
        b.iter(|| run_grid_per_model_threads(&inst, &models, &cfg).len())
    });
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("pool", threads), &threads, |b, &t| {
            b.iter(|| run_grid_with(&inst, &models, &cfg, &PoolConfig::with_threads(t)).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pool_scaling);
criterion_main!(benches);

//! Scaling of the run-level worker pool against the legacy one-thread-per-
//! model grid on the full 24-model DISAGREE grid (the ISSUE's acceptance
//! workload). Cells are wildly imbalanced, so the legacy strategy is bounded
//! by its slowest cell while the pool keeps every worker busy; on a 4+ core
//! machine `pool/t4` should beat `per_model_threads` by well over 2×. On a
//! single-core machine the strategies tie — the numbers here are still
//! useful as a regression baseline for the engine itself.

use std::time::Instant;

use criterion::{criterion_group, BenchmarkId, Criterion};
use routelab_core::model::CommModel;
use routelab_sim::montecarlo::{run_grid_per_model_threads, run_grid_with, CellConfig};
use routelab_sim::pool::PoolConfig;
use routelab_sim::report::{write_json_to, Json};
use routelab_spp::gadgets;

fn bench_pool_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_scaling");
    group.sample_size(10);
    let inst = gadgets::disagree();
    let models: Vec<CommModel> = CommModel::all();
    let cfg = CellConfig { runs: 8, max_steps: 4_000, seed: 11, drop_prob: 0.25 };

    group.bench_function("per_model_threads", |b| {
        b.iter(|| run_grid_per_model_threads(&inst, &models, &cfg).len())
    });
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("pool", threads), &threads, |b, &t| {
            b.iter(|| run_grid_with(&inst, &models, &cfg, &PoolConfig::with_threads(t)).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pool_scaling);

/// Median wall-clock milliseconds over `reps` runs of the acceptance grid.
fn grid_wall_ms(reps: usize) -> f64 {
    let inst = gadgets::disagree();
    let models: Vec<CommModel> = CommModel::all();
    let cfg = CellConfig { runs: 8, max_steps: 4_000, seed: 11, drop_prob: 0.25 };
    let pool = PoolConfig::with_threads(4);
    let mut walls: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            criterion::black_box(run_grid_with(&inst, &models, &cfg, &pool).len());
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    walls.sort_by(|a, b| a.total_cmp(b));
    walls[walls.len() / 2]
}

/// Measures telemetry overhead on the same workload: the obs-off baseline
/// MUST run first, then obs-on, then trace-on, because both sink and
/// flight-recorder enablement are one-way within a process (so the trace-on
/// figure includes the obs sink too — it is the full diagnostic stack). The
/// deltas are recorded in `results/BENCH_obs_overhead.json`; the acceptance
/// targets are <3% for obs and ~0% disabled (disabled cost is a single
/// relaxed atomic load per instrumentation site). The flight recorder
/// formats every step's causal record, so its gate is deliberately loose —
/// it is a diagnostic tool, not an always-on layer.
fn bench_obs_overhead() {
    const REPS: usize = 15;
    let _ = grid_wall_ms(4); // warm-up
    let off_ms = grid_wall_ms(REPS);

    let dir = std::env::temp_dir().join(format!("routelab-obs-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    routelab_obs::enable_to_dir(&dir, "pool-scaling-bench");
    let on_ms = grid_wall_ms(REPS);

    // Bound the ring so the traced reps measure recording cost, not
    // allocator growth. Single-threaded here (criterion has finished), so
    // mutating the environment is safe.
    std::env::set_var("ROUTELAB_TRACE_CAP", "4096");
    routelab_obs::enable_trace_to_dir(&dir, "pool-scaling-bench");
    let trace_on_ms = grid_wall_ms(REPS);
    routelab_obs::shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    let overhead_pct = (on_ms - off_ms) / off_ms * 100.0;
    let trace_overhead_pct = (trace_on_ms - off_ms) / off_ms * 100.0;
    println!(
        "pool_scaling/obs_overhead                        obs-off {off_ms:.2} ms, \
         obs-on {on_ms:.2} ms ({overhead_pct:+.2}%), \
         trace-on {trace_on_ms:.2} ms ({trace_overhead_pct:+.2}%)"
    );
    let json = Json::obj([
        ("bench", Json::str("obs_overhead")),
        ("workload", Json::str("disagree 24-model grid, 8 runs/cell, 4 threads")),
        ("reps", Json::int(REPS)),
        ("obs_off_ms", Json::Num(off_ms)),
        ("obs_on_ms", Json::Num(on_ms)),
        ("overhead_pct", Json::Num(overhead_pct)),
        ("trace_on_ms", Json::Num(trace_on_ms)),
        ("trace_overhead_pct", Json::Num(trace_overhead_pct)),
    ]);
    // `cargo bench` sets the CWD to the package root, so resolve the
    // workspace-level results dir explicitly rather than relying on a
    // relative default.
    let dir = std::env::var("ROUTELAB_RESULTS_DIR")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../results").to_string());
    match write_json_to(std::path::Path::new(&dir), "BENCH_obs_overhead", &json) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_obs_overhead.json: {e}"),
    }
}

fn main() {
    benches();
    bench_obs_overhead();
}

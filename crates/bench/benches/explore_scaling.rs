//! Thread-scaling of the sharded frontier engine on the Appendix A.2
//! acceptance workload: the Fig. 6 polling cells (R1A, RMA) whose
//! exhaustive closures visit ≈654k raw states each under channel cap 3 —
//! run both with the default state-space reduction (route-class
//! projection + queue normal forms + symmetry quotient) and with
//! `reduce` off.
//!
//! For every thread count the run re-verifies the determinism contract —
//! interned states, π fingerprints, and edge lists must be bit-identical
//! to the single-thread build of the same mode — and that the reduced and
//! unreduced builds agree on the oscillation verdict. Wall clock, the
//! engine's shard statistics, and the reduction counters (class rewrites,
//! absorbed reads, set collapses, symmetry hits, group order) go to
//! `results/BENCH_explore.json`.
//!
//! The speedup column is only meaningful on a multi-core host; the JSON
//! records `host_parallelism` so a single-core CI runner's numbers (ties
//! across thread counts) are not misread as a scaling regression.

use std::time::Instant;

use routelab_core::model::CommModel;
use routelab_explore::effects::Spec;
use routelab_explore::graph::{try_build_spec, ExploreConfig, StateGraph};
use routelab_explore::oscillation::analyze_graph;
use routelab_sim::report::{write_json_to, Json};
use routelab_spp::gadgets;

const THREADS: [usize; 3] = [1, 2, 8];

/// Unreduced FIG6 × R1A throughput (states/s, 1 thread) of the pre-delta
/// arena engine, from the checked-in `results/BENCH_explore.json` baseline
/// (654,312 states in 60,133.8 ms). `scripts/check_bench.py` gates on the
/// headline run staying above this.
const BASELINE_UNREDUCED_STATES_PER_S: f64 = 10_881.6;

fn identical(a: &StateGraph, b: &StateGraph) -> bool {
    a.nodes == b.nodes && a.pi_fp == b.pi_fp && a.edges == b.edges && a.truncated == b.truncated
}

fn main() {
    let inst = gadgets::fig6();
    let host_parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    println!("explore_scaling: host parallelism {host_parallelism}");

    let mut cells_json = Vec::new();
    let mut all_identical = true;
    let mut all_consistent = true;
    for model_s in ["R1A", "RMA"] {
        let model: CommModel = model_s.parse().expect("static model");
        let spec = Spec::Uniform(model);
        let mut verdicts = Vec::new();
        for reduce in [true, false] {
            let mode = if reduce { "reduced" } else { "unreduced" };
            let mut baseline: Option<StateGraph> = None;
            let mut walls = Vec::new();
            let mut runs_json = Vec::new();
            let mut states = 0usize;
            let mut reduction_json = Json::Null;
            for &threads in &THREADS {
                let cfg = ExploreConfig {
                    channel_cap: 3,
                    max_states: 1_500_000,
                    max_steps_per_state: 20_000,
                    threads: Some(threads),
                    reduce,
                    ..ExploreConfig::default()
                };
                let t0 = Instant::now();
                let g = try_build_spec(&inst, spec, &cfg)
                    .unwrap_or_else(|e| panic!("FIG6 × {model_s} {mode} @{threads}t: {e}"));
                let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
                let states_per_s = g.len() as f64 / (wall_ms / 1e3);
                let same = baseline.as_ref().is_none_or(|b| identical(b, &g));
                all_identical &= same;
                println!(
                    "explore_scaling/FIG6×{model_s} {mode} t{threads}: {} states in {:.0} ms \
                     ({:.0} states/s, dedup hit-rate {:.1}%, peak frontier {}, \
                     {:.1} MiB resident, shards {}..{}{})",
                    g.len(),
                    wall_ms,
                    states_per_s,
                    g.stats.dedup_hit_rate() * 100.0,
                    g.stats.peak_frontier,
                    g.stats.bytes_resident as f64 / (1 << 20) as f64,
                    g.stats.shard_min,
                    g.stats.shard_max,
                    if same { "" } else { ", MISMATCH vs 1-thread build" },
                );
                runs_json.push(Json::obj([
                    ("threads", Json::int(threads)),
                    ("wall_ms", Json::Num(wall_ms)),
                    ("states", Json::int(g.len())),
                    ("states_per_s", Json::Num(states_per_s)),
                    ("candidates", Json::int(g.stats.candidates as usize)),
                    ("dedup_hits", Json::int(g.stats.dedup_hits as usize)),
                    ("peak_frontier", Json::int(g.stats.peak_frontier)),
                    ("bytes_resident", Json::int(g.stats.bytes_resident as usize)),
                    ("bytes_spilled", Json::int(g.stats.bytes_spilled as usize)),
                    ("shard_min", Json::int(g.stats.shard_min)),
                    ("shard_max", Json::int(g.stats.shard_max)),
                    ("identical_to_single_thread", Json::Bool(same)),
                ]));
                walls.push(wall_ms);
                states = g.len();
                if reduce {
                    let r = g.reduction;
                    reduction_json = Json::obj([
                        ("canon_rewrites", Json::int(r.canon_rewrites as usize)),
                        ("absorb_pops", Json::int(r.absorb_pops as usize)),
                        ("set_collapses", Json::int(r.set_collapses as usize)),
                        ("sym_hits", Json::int(r.sym_hits as usize)),
                        ("group_order", Json::int(r.group_order)),
                    ]);
                }
                if baseline.is_none() {
                    verdicts.push(analyze_graph(spec, &g));
                    baseline = Some(g);
                }
            }
            let speedup_8t = walls[0] / walls[THREADS.len() - 1];
            println!(
                "explore_scaling/FIG6×{model_s} {mode}: speedup at 8 threads = {speedup_8t:.2}×"
            );
            cells_json.push(Json::obj([
                ("model", Json::str(model_s)),
                ("gadget", Json::str("FIG6")),
                ("reduce", Json::Bool(reduce)),
                ("states", Json::int(states)),
                ("reduction", reduction_json),
                ("runs", Json::Arr(runs_json)),
                ("speedup_8t", Json::Num(speedup_8t)),
            ]));
        }
        let consistent =
            std::mem::discriminant(&verdicts[0]) == std::mem::discriminant(&verdicts[1]);
        all_consistent &= consistent;
        println!(
            "explore_scaling/FIG6×{model_s}: reduced verdict {:?} vs unreduced {:?}{}",
            verdicts[0],
            verdicts[1],
            if consistent { "" } else { " — MISMATCH" },
        );
    }

    let json = Json::obj([
        ("bench", Json::str("explore_scaling")),
        (
            "workload",
            Json::str("A.2: FIG6 × {R1A, RMA}, channel cap 3, exhaustive (~654k raw states)"),
        ),
        ("host_parallelism", Json::int(host_parallelism)),
        ("baseline_states_per_s", Json::Num(BASELINE_UNREDUCED_STATES_PER_S)),
        ("bit_identical_across_thread_counts", Json::Bool(all_identical)),
        ("reduced_verdicts_match_unreduced", Json::Bool(all_consistent)),
        ("cells", Json::Arr(cells_json)),
    ]);
    let dir = std::env::var("ROUTELAB_RESULTS_DIR")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../results").to_string());
    match write_json_to(std::path::Path::new(&dir), "BENCH_explore", &json) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_explore.json: {e}"),
    }
    assert!(all_identical, "determinism contract violated across thread counts");
    assert!(all_consistent, "reduction changed an oscillation verdict");
}

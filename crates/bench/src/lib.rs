//! Benchmark support: shared fixtures for the Criterion benches.
//!
//! The benches cover every routelab component (DESIGN.md experiment E12):
//!
//! * `engine_step` — Definition 2.3 execution throughput,
//! * `closure` — deriving the Figure 3/4 bounds matrix,
//! * `transforms` — the realization constructions of Sec. 3.2,
//! * `explorer` — exhaustive state-space analysis,
//! * `solver` — stable-assignment enumeration and dispute-wheel detection,
//! * `montecarlo` — randomized-schedule simulation throughput.

use routelab_core::model::CommModel;
use routelab_core::step::ActivationSeq;
use routelab_engine::runner::Runner;
use routelab_engine::schedule::{RoundRobin, Scheduler};
use routelab_spp::SppInstance;

/// Generates a fair round-robin prefix of `steps` steps in `model`.
pub fn rr_prefix(inst: &SppInstance, model: CommModel, steps: usize) -> ActivationSeq {
    let mut sched = RoundRobin::new(inst, model);
    let mut runner = Runner::new(inst);
    let mut seq = Vec::with_capacity(steps);
    for _ in 0..steps {
        let s = sched.next_step(&runner.state()).expect("round robin is infinite");
        runner.step(&s);
        seq.push(s);
    }
    seq
}

#[cfg(test)]
mod tests {
    use super::*;
    use routelab_spp::gadgets;

    #[test]
    fn prefix_has_requested_length() {
        let inst = gadgets::disagree();
        let seq = rr_prefix(&inst, "RMS".parse().unwrap(), 12);
        assert_eq!(seq.len(), 12);
    }
}

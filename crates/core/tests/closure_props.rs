//! Property tests for the realization lattice and closure machinery.

use proptest::prelude::*;
use routelab_core::closure::derive_bounds;
use routelab_core::edges::{foundational_facts, NegativeFact, PositiveFact};
use routelab_core::lattice::{CellBound, Strength};
use routelab_core::model::CommModel;

fn arb_model() -> impl Strategy<Value = CommModel> {
    prop::sample::select(CommModel::all())
}

fn arb_bound() -> impl Strategy<Value = CellBound> {
    (0u8..=4, 0u8..=4).prop_map(|(a, b)| CellBound { lower: a.min(b), upper: a.max(b) })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn tokens_round_trip(b in arb_bound()) {
        let tok = b.token();
        prop_assert_eq!(CellBound::from_token(&tok), Some(b), "{}", tok);
    }

    #[test]
    fn meet_is_idempotent_commutative_and_refining(a in arb_bound(), b in arb_bound()) {
        prop_assert_eq!(a.meet(a), a);
        prop_assert_eq!(a.meet(b), b.meet(a));
        let m = a.meet(b);
        prop_assert!(m.refines(a));
        prop_assert!(m.refines(b));
    }

    #[test]
    fn closure_lower_bounds_are_transitive(
        a in arb_model(),
        b in arb_model(),
        c in arb_model(),
    ) {
        let bounds = derive_bounds(&foundational_facts());
        let ab = bounds.get(a, b).lower;
        let bc = bounds.get(b, c).lower;
        let ac = bounds.get(a, c).lower;
        prop_assert!(ac >= ab.min(bc), "{a} {b} {c}: {ac} < min({ab},{bc})");
    }

    #[test]
    fn closure_respects_negative_contrapositives(
        a in arb_model(),
        b in arb_model(),
        c in arb_model(),
    ) {
        // If B realizes A at ≥ s and C fails A below s, C must fail B too.
        let bounds = derive_bounds(&foundational_facts());
        let lower_ab = bounds.get(a, b).lower;
        let upper_ac = bounds.get(a, c).upper;
        if upper_ac < lower_ab {
            prop_assert!(
                bounds.get(b, c).upper <= upper_ac,
                "{a} {b} {c}: upper(B,C) not propagated"
            );
        }
    }

    #[test]
    fn adding_consistent_facts_only_tightens(
        a in arb_model(),
        b in arb_model(),
        strength_level in 1u8..=4,
    ) {
        let base = derive_bounds(&foundational_facts());
        prop_assume!(a != b);
        let cell = base.get(a, b);
        // Add a positive fact consistent with the current upper bound.
        prop_assume!(strength_level <= cell.upper);
        let mut facts = foundational_facts();
        facts.positives.push(PositiveFact {
            realized: a,
            realizer: b,
            strength: Strength::from_level(strength_level).expect("1..=4"),
            source: "synthetic",
        });
        // Indirect propagation may expose the synthetic fact as globally
        // inconsistent, in which case derive_bounds rejects it loudly —
        // skip those cases, the property is about consistent additions.
        let Ok(tightened) = std::panic::catch_unwind(|| derive_bounds(&facts)) else {
            return Ok(());
        };
        for x in CommModel::all() {
            for y in CommModel::all() {
                prop_assert!(
                    tightened.get(x, y).refines(base.get(x, y)),
                    "({x},{y}) loosened"
                );
            }
        }
    }

    #[test]
    fn adding_consistent_negatives_only_tightens(
        a in arb_model(),
        b in arb_model(),
        max_level in 0u8..=3,
    ) {
        let base = derive_bounds(&foundational_facts());
        prop_assume!(a != b);
        prop_assume!(max_level >= base.get(a, b).lower);
        let mut facts = foundational_facts();
        facts.negatives.push(NegativeFact {
            realized: a,
            realizer: b,
            max_level,
            source: "synthetic",
        });
        let Ok(tightened) = std::panic::catch_unwind(|| derive_bounds(&facts)) else {
            return Ok(());
        };
        for x in CommModel::all() {
            for y in CommModel::all() {
                prop_assert!(
                    tightened.get(x, y).refines(base.get(x, y)),
                    "({x},{y}) loosened"
                );
            }
        }
    }
}

//! The foundational realization results of Sec. 3.2–3.3, as data.
//!
//! Positive facts say "`realizer` realizes `realized` at least at strength
//! `s`"; negative facts say "`realizer` cannot realize `realized` above level
//! `max_level`". [`crate::closure`] combines them with the transitivity
//! rules of Sec. 3.4 to reconstruct Figures 3 and 4.

use crate::dims::{MessagePolicy, NeighborScope, Reliability};
use crate::lattice::Strength;
use crate::model::CommModel;

/// A proven realization: `realizer` realizes `realized` at strength ≥ `s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PositiveFact {
    /// The model whose executions are reproduced (`A` in `A ≤ B`).
    pub realized: CommModel,
    /// The model reproducing them (`B`).
    pub realizer: CommModel,
    /// Proven strength.
    pub strength: Strength,
    /// The theorem/proposition establishing the fact.
    pub source: &'static str,
}

/// A proven non-realization: `realizer` realizes `realized` at level at most
/// `max_level` (`0` = does not even preserve oscillations, the figures' `-1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NegativeFact {
    /// The model whose executions cannot be reproduced.
    pub realized: CommModel,
    /// The model failing to reproduce them.
    pub realizer: CommModel,
    /// Highest level still possible.
    pub max_level: u8,
    /// The theorem/proposition establishing the fact.
    pub source: &'static str,
}

/// The foundational facts of the paper.
#[derive(Debug, Clone, Default)]
pub struct Facts {
    /// Positive results (Props 3.3, 3.4, Thm 3.5, Prop 3.6, Thm 3.7).
    pub positives: Vec<PositiveFact>,
    /// Negative results (Thms 3.8, 3.9, Props 3.10–3.13).
    pub negatives: Vec<NegativeFact>,
}

fn m(w: Reliability, x: NeighborScope, y: MessagePolicy) -> CommModel {
    CommModel::new(w, x, y)
}

/// All foundational facts stated in Sec. 3.2 and Sec. 3.3.
pub fn foundational_facts() -> Facts {
    use MessagePolicy as P;
    use NeighborScope as S;
    use Reliability as R;

    let mut facts = Facts::default();
    let mut pos = |realized: CommModel, realizer: CommModel, strength, source| {
        facts.positives.push(PositiveFact { realized, realizer, strength, source });
    };

    // Proposition 3.3(1): Uxy exactly realizes Rxy.
    for x in S::ALL {
        for y in P::ALL {
            pos(m(R::Reliable, x, y), m(R::Unreliable, x, y), Strength::Exact, "Prop 3.3(1)");
        }
    }
    for w in R::ALL {
        for x in S::ALL {
            // Proposition 3.3(2): wxS exactly realizes wxF.
            pos(m(w, x, P::Forced), m(w, x, P::Some), Strength::Exact, "Prop 3.3(2)");
            // Proposition 3.3(3): wxF exactly realizes wxO and wxA.
            pos(m(w, x, P::One), m(w, x, P::Forced), Strength::Exact, "Prop 3.3(3)");
            pos(m(w, x, P::All), m(w, x, P::Forced), Strength::Exact, "Prop 3.3(3)");
        }
        for y in P::ALL {
            // Proposition 3.3(4): wMy exactly realizes w1y and wEy.
            pos(m(w, S::One, y), m(w, S::Multiple, y), Strength::Exact, "Prop 3.3(4)");
            pos(m(w, S::Every, y), m(w, S::Multiple, y), Strength::Exact, "Prop 3.3(4)");
            // Theorem 3.5: w1y realizes wMy with repetition.
            pos(m(w, S::Multiple, y), m(w, S::One, y), Strength::Repetition, "Thm 3.5");
        }
        // Proposition 3.4: wES exactly realizes wMS.
        pos(m(w, S::Multiple, P::Some), m(w, S::Every, P::Some), Strength::Exact, "Prop 3.4");
    }
    // Proposition 3.6: R1O realizes R1S as a subsequence; U1O realizes U1S
    // with repetition.
    pos(
        m(R::Reliable, S::One, P::Some),
        m(R::Reliable, S::One, P::One),
        Strength::Subsequence,
        "Prop 3.6",
    );
    pos(
        m(R::Unreliable, S::One, P::Some),
        m(R::Unreliable, S::One, P::One),
        Strength::Repetition,
        "Prop 3.6",
    );
    // Theorem 3.7: R1S exactly realizes U1O.
    pos(
        m(R::Unreliable, S::One, P::One),
        m(R::Reliable, S::One, P::Some),
        Strength::Exact,
        "Thm 3.7",
    );

    let mut neg = |realized: &str, realizer: &str, max_level: u8, source| {
        facts.negatives.push(NegativeFact {
            realized: realized.parse().expect("static model name"),
            realizer: realizer.parse().expect("static model name"),
            max_level,
            source,
        });
    };
    // Theorem 3.8: REO, REF, R1A, RMA, REA do not preserve R1O's oscillations.
    for b in ["REO", "REF", "R1A", "RMA", "REA"] {
        neg("R1O", b, 0, "Thm 3.8 (Ex A.1, DISAGREE)");
    }
    // Theorem 3.9: R1A, RMA, REA do not preserve REO's or REF's oscillations.
    for a in ["REO", "REF"] {
        for b in ["R1A", "RMA", "REA"] {
            neg(a, b, 0, "Thm 3.9 (Ex A.2)");
        }
    }
    // Proposition 3.10: REO cannot be exactly realized in R1O.
    neg("REO", "R1O", 3, "Prop 3.10 (Ex A.3)");
    // Proposition 3.11: REA cannot be realized with repetition in R1O.
    neg("REA", "R1O", 2, "Prop 3.11 (Ex A.4)");
    // Proposition 3.12: REA cannot be exactly realized by R1S.
    neg("REA", "R1S", 3, "Prop 3.12 (Ex A.5)");
    // Proposition 3.13: REO cannot be exactly realized by R1S.
    neg("REO", "R1S", 3, "Prop 3.13 (Ex A.5)");

    facts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fact_counts() {
        let f = foundational_facts();
        // 3.3(1): 12; 3.3(2): 6; 3.3(3): 12; 3.3(4): 16; 3.5: 8; 3.4: 2;
        // 3.6: 2; 3.7: 1.
        assert_eq!(f.positives.len(), 12 + 6 + 12 + 16 + 8 + 2 + 2 + 1);
        // 3.8: 5; 3.9: 6; 3.10–3.13: 4.
        assert_eq!(f.negatives.len(), 5 + 6 + 4);
    }

    #[test]
    fn no_positive_self_loops_or_duplicates() {
        let f = foundational_facts();
        for p in &f.positives {
            assert_ne!(p.realized, p.realizer, "{} {}", p.realized, p.source);
        }
        for (i, p) in f.positives.iter().enumerate() {
            assert!(
                !f.positives[i + 1..]
                    .iter()
                    .any(|q| q.realized == p.realized && q.realizer == p.realizer),
                "duplicate positive {} -> {}",
                p.realized,
                p.realizer
            );
        }
    }

    #[test]
    fn spot_check_specific_facts() {
        let f = foundational_facts();
        let has_pos = |a: &str, b: &str, s: Strength| {
            let a: CommModel = a.parse().unwrap();
            let b: CommModel = b.parse().unwrap();
            f.positives.iter().any(|p| p.realized == a && p.realizer == b && p.strength == s)
        };
        assert!(has_pos("R1O", "U1O", Strength::Exact)); // 3.3(1)
        assert!(has_pos("REA", "RMA", Strength::Exact)); // 3.3(4)
        assert!(has_pos("RMS", "RES", Strength::Exact)); // 3.4
        assert!(has_pos("RMO", "R1O", Strength::Repetition)); // 3.5
        assert!(has_pos("R1S", "R1O", Strength::Subsequence)); // 3.6
        assert!(has_pos("U1O", "R1S", Strength::Exact)); // 3.7
        let has_neg = |a: &str, b: &str, max: u8| {
            let a: CommModel = a.parse().unwrap();
            let b: CommModel = b.parse().unwrap();
            f.negatives.iter().any(|n| n.realized == a && n.realizer == b && n.max_level == max)
        };
        assert!(has_neg("R1O", "REA", 0)); // 3.8
        assert!(has_neg("REF", "RMA", 0)); // 3.9
        assert!(has_neg("REO", "R1O", 3)); // 3.10
        assert!(has_neg("REA", "R1O", 2)); // 3.11
        assert!(has_neg("REA", "R1S", 3)); // 3.12
        assert!(has_neg("REO", "R1S", 3)); // 3.13
    }
}

//! The published Figure 3 and Figure 4 matrices, transcribed cell by cell.
//!
//! Cell tokens use the figures' conventions (see [`CellBound::from_token`]):
//! `4`/`3`/`2` exact levels, `>=k`/`<=k` one-sided bounds, `2,3` a two-value
//! range, `-1` for "does not preserve oscillations", `.` for blank
//! (unknown), `-` for the diagonal.

use std::fmt;

use crate::closure::BoundsMatrix;
use crate::lattice::CellBound;
use crate::model::CommModel;

/// A published table: rows are all 24 models, columns the 12 reliable
/// (Fig. 3) or 12 unreliable (Fig. 4) models.
#[derive(Debug, Clone)]
pub struct PaperTable {
    /// Table name, `"Figure 3"` or `"Figure 4"`.
    pub name: &'static str,
    /// Row models (realized), figure order.
    pub rows: Vec<CommModel>,
    /// Column models (realizers), figure order.
    pub cols: Vec<CommModel>,
    /// `cells[r][c]`; `None` on the diagonal.
    pub cells: Vec<Vec<Option<CellBound>>>,
}

impl PaperTable {
    /// The published bound for `(realized, realizer)`, if the pair is in the
    /// table and off-diagonal.
    pub fn get(&self, realized: CommModel, realizer: CommModel) -> Option<CellBound> {
        let r = self.rows.iter().position(|&m| m == realized)?;
        let c = self.cols.iter().position(|&m| m == realizer)?;
        self.cells[r][c]
    }
}

/// Figure 3 rows (reliable realizers). Tokens separated by whitespace.
const FIG3: [&str; 24] = [
    //        R1O   RMO   REO   R1S   RMS   RES   R1F   RMF   REF   R1A   RMA   REA
    /* R1O */
    "-     4     -1    4     4     4     4     4     -1    -1    -1    -1",
    /* RMO */ "3     -     -1    3     4     4     3     4     -1    -1    -1    -1",
    /* REO */ "3     4     -     3     4     4     3     4     4     -1    -1    -1",
    /* R1S */ "2     2     -1    -     4     4     >=2   >=2   -1    -1    -1    -1",
    /* RMS */ "2     2     -1    3     -     4     2,3   >=2   -1    -1    -1    -1",
    /* RES */ "2     2     -1    3     4     -     2,3   >=2   -1    -1    -1    -1",
    /* R1F */ "2     2     -1    4     4     4     -     4     -1    -1    -1    -1",
    /* RMF */ "2     2     -1    3     4     4     3     -     -1    -1    -1    -1",
    /* REF */ "2     2     <=2   3     4     4     3     4     -     -1    -1    -1",
    /* R1A */ "2     2     <=2   4     4     4     4     4     .     -     4     .",
    /* RMA */ "2     2     <=2   3     4     4     3     4     .     3     -     .",
    /* REA */ "2     2     <=2   3     4     4     3     4     4     3     4     -",
    /* U1O */ ">=2   >=2   -1    4     4     4     >=2   >=2   -1    -1    -1    -1",
    /* UMO */ "2,3   >=2   -1    3     >=3   >=3   2,3   >=2   -1    -1    -1    -1",
    /* UEO */ "2,3   >=2   .     3     >=3   >=3   2,3   >=2   .     -1    -1    -1",
    /* U1S */ "2     2     -1    >=3   >=3   >=3   >=2   >=2   -1    -1    -1    -1",
    /* UMS */ "2     2     -1    3     >=3   >=3   2,3   >=2   -1    -1    -1    -1",
    /* UES */ "2     2     -1    3     >=3   >=3   2,3   >=2   -1    -1    -1    -1",
    /* U1F */ "2     2     -1    >=3   >=3   >=3   >=2   >=2   -1    -1    -1    -1",
    /* UMF */ "2     2     -1    3     >=3   >=3   2,3   >=2   -1    -1    -1    -1",
    /* UEF */ "2     2     <=2   3     >=3   >=3   2,3   >=2   .     -1    -1    -1",
    /* U1A */ "2     2     <=2   >=3   >=3   >=3   >=2   >=2   .     .     .     .",
    /* UMA */ "2     2     <=2   3     >=3   >=3   2,3   >=2   .     <=3   .     .",
    /* UEA */ "2     2     <=2   3     >=3   >=3   2,3   >=2   .     <=3   .     .",
];

/// Figure 4 rows (unreliable realizers).
const FIG4: [&str; 24] = [
    //        U1O   UMO   UEO   U1S   UMS   UES   U1F   UMF   UEF   U1A   UMA   UEA
    /* R1O */
    "4     4     .     4     4     4     4     4     .     .     .     .",
    /* RMO */ "3     4     .     >=3   4     4     >=3   4     .     .     .     .",
    /* REO */ "3     4     4     >=3   4     4     >=3   4     4     .     .     .",
    /* R1S */ ">=3   >=3   .     4     4     4     >=3   >=3   .     .     .     .",
    /* RMS */ "3     >=3   .     >=3   4     4     >=3   >=3   .     .     .     .",
    /* RES */ "3     >=3   .     >=3   4     4     >=3   >=3   .     .     .     .",
    /* R1F */ ">=3   >=3   .     4     4     4     4     4     .     .     .     .",
    /* RMF */ "3     >=3   .     >=3   4     4     >=3   4     .     .     .     .",
    /* REF */ "3     >=3   .     >=3   4     4     >=3   4     4     .     .     .",
    /* R1A */ ">=3   >=3   .     4     4     4     4     4     .     4     4     .",
    /* RMA */ "3     >=3   .     >=3   4     4     >=3   4     .     >=3   4     .",
    /* REA */ "3     >=3   .     >=3   4     4     >=3   4     4     >=3   4     4",
    /* U1O */ "-     4     .     4     4     4     4     4     .     .     .     .",
    /* UMO */ "3     -     .     >=3   4     4     >=3   4     .     .     .     .",
    /* UEO */ "3     4     -     >=3   4     4     >=3   4     4     .     .     .",
    /* U1S */ ">=3   >=3   .     -     4     4     >=3   >=3   .     .     .     .",
    /* UMS */ "3     >=3   .     >=3   -     4     >=3   >=3   .     .     .     .",
    /* UES */ "3     >=3   .     >=3   4     -     >=3   >=3   .     .     .     .",
    /* U1F */ ">=3   >=3   .     4     4     4     -     4     .     .     .     .",
    /* UMF */ "3     >=3   .     >=3   4     4     >=3   -     .     .     .     .",
    /* UEF */ "3     >=3   .     >=3   4     4     >=3   4     -     .     .     .",
    /* U1A */ ">=3   >=3   .     4     4     4     4     4     .     -     4     .",
    /* UMA */ "3     >=3   .     >=3   4     4     >=3   4     .     >=3   -     .",
    /* UEA */ "3     >=3   .     >=3   4     4     >=3   4     4     >=3   4     -",
];

fn parse_table(name: &'static str, cols: Vec<CommModel>, raw: &[&str; 24]) -> PaperTable {
    let rows = CommModel::all();
    let mut cells = Vec::with_capacity(24);
    for (r, line) in raw.iter().enumerate() {
        let toks: Vec<&str> = line.split_whitespace().collect();
        assert_eq!(toks.len(), cols.len(), "{name} row {r} has {} tokens", toks.len());
        let mut row = Vec::with_capacity(cols.len());
        for (c, tok) in toks.iter().enumerate() {
            if *tok == "-" {
                assert_eq!(rows[r], cols[c], "{name}: diagonal marker off-diagonal");
                row.push(None);
            } else {
                let bound = CellBound::from_token(tok)
                    .unwrap_or_else(|| panic!("{name} row {r} col {c}: bad token {tok:?}"));
                row.push(Some(bound));
            }
        }
        cells.push(row);
    }
    PaperTable { name, rows, cols, cells }
}

/// The published Figure 3 (ability of reliable-channel models to realize all
/// 24 models).
pub fn figure3() -> PaperTable {
    parse_table("Figure 3", CommModel::all_reliable(), &FIG3)
}

/// The published Figure 4 (ability of unreliable-channel models to realize
/// all 24 models).
pub fn figure4() -> PaperTable {
    parse_table("Figure 4", CommModel::all_unreliable(), &FIG4)
}

/// How a computed cell relates to the published one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellVerdict {
    /// Identical bounds.
    Match,
    /// Computed interval strictly inside the published one (we know more).
    Tighter,
    /// Published interval strictly inside the computed one (we know less).
    Looser,
    /// Overlapping but incomparable intervals.
    Incomparable,
    /// Disjoint intervals — a genuine contradiction.
    Conflict,
}

/// One compared cell.
#[derive(Debug, Clone, Copy)]
pub struct CellComparison {
    /// Row model (realized).
    pub realized: CommModel,
    /// Column model (realizer).
    pub realizer: CommModel,
    /// Published bound.
    pub published: CellBound,
    /// Computed bound.
    pub computed: CellBound,
    /// Relationship.
    pub verdict: CellVerdict,
}

/// Summary of a table comparison.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// All off-diagonal cells with their verdicts.
    pub cells: Vec<CellComparison>,
}

impl Comparison {
    /// Number of cells with the given verdict.
    pub fn count(&self, v: CellVerdict) -> usize {
        self.cells.iter().filter(|c| c.verdict == v).count()
    }

    /// All conflicting cells.
    pub fn conflicts(&self) -> Vec<&CellComparison> {
        self.cells.iter().filter(|c| c.verdict == CellVerdict::Conflict).collect()
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} cells: {} match, {} tighter, {} looser, {} incomparable, {} conflicts",
            self.cells.len(),
            self.count(CellVerdict::Match),
            self.count(CellVerdict::Tighter),
            self.count(CellVerdict::Looser),
            self.count(CellVerdict::Incomparable),
            self.count(CellVerdict::Conflict),
        )?;
        for c in &self.cells {
            if c.verdict != CellVerdict::Match {
                writeln!(
                    f,
                    "  {} realized by {}: paper {} vs computed {} ({:?})",
                    c.realized, c.realizer, c.published, c.computed, c.verdict
                )?;
            }
        }
        Ok(())
    }
}

/// Compares computed bounds against a published table, cell by cell.
pub fn compare(computed: &BoundsMatrix, table: &PaperTable) -> Comparison {
    let mut out = Comparison::default();
    for &a in &table.rows {
        for &b in &table.cols {
            let Some(published) = table.get(a, b) else { continue };
            let comp = computed.get(a, b);
            let verdict = if comp == published {
                CellVerdict::Match
            } else if comp.lower > published.upper || comp.upper < published.lower {
                CellVerdict::Conflict
            } else if comp.refines(published) {
                CellVerdict::Tighter
            } else if published.refines(comp) {
                CellVerdict::Looser
            } else {
                CellVerdict::Incomparable
            };
            out.cells.push(CellComparison {
                realized: a,
                realizer: b,
                published,
                computed: comp,
                verdict,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::derive_bounds;
    use crate::edges::foundational_facts;

    #[test]
    fn tables_parse() {
        let f3 = figure3();
        assert_eq!(f3.rows.len(), 24);
        assert_eq!(f3.cols.len(), 12);
        // 24*12 cells, 12 of them diagonal.
        let non_diag: usize = f3.cells.iter().flatten().filter(|c| c.is_some()).count();
        assert_eq!(non_diag, 24 * 12 - 12);
        let f4 = figure4();
        let non_diag4: usize = f4.cells.iter().flatten().filter(|c| c.is_some()).count();
        assert_eq!(non_diag4, 24 * 12 - 12);
    }

    #[test]
    fn spot_check_published_cells() {
        let f3 = figure3();
        let g = |a: &str, b: &str| f3.get(a.parse().unwrap(), b.parse().unwrap()).unwrap();
        assert_eq!(g("R1O", "RMO"), CellBound::exactly(4));
        assert_eq!(g("R1O", "REO"), CellBound::exactly(0)); // -1
        assert_eq!(g("RMS", "R1F"), CellBound { lower: 2, upper: 3 });
        assert_eq!(g("U1O", "R1O"), CellBound::at_least(2));
        assert_eq!(g("REA", "REO"), CellBound::at_most(2));
        assert_eq!(g("R1A", "REF"), CellBound::unknown()); // blank
        let f4 = figure4();
        let g4 = |a: &str, b: &str| f4.get(a.parse().unwrap(), b.parse().unwrap()).unwrap();
        assert_eq!(g4("REO", "UEO"), CellBound::exactly(4));
        assert_eq!(g4("R1O", "UEO"), CellBound::unknown());
        assert_eq!(g4("UMA", "U1A"), CellBound::at_least(3));
    }

    #[test]
    fn no_conflicts_with_derived_bounds() {
        let bounds = derive_bounds(&foundational_facts());
        for table in [figure3(), figure4()] {
            let cmp = compare(&bounds, &table);
            let conflicts = cmp.conflicts();
            assert!(conflicts.is_empty(), "{}: {} conflicts\n{}", table.name, conflicts.len(), cmp);
        }
    }

    #[test]
    fn derived_bounds_reproduce_figures() {
        // The closure should recover the published entry in (almost) every
        // cell. We require: zero conflicts, zero looser cells (we never know
        // *less* than the paper), and report the match rate.
        let bounds = derive_bounds(&foundational_facts());
        for table in [figure3(), figure4()] {
            let cmp = compare(&bounds, &table);
            assert_eq!(cmp.count(CellVerdict::Conflict), 0, "{}\n{}", table.name, cmp);
            assert_eq!(cmp.count(CellVerdict::Looser), 0, "{}\n{}", table.name, cmp);
            assert_eq!(cmp.count(CellVerdict::Incomparable), 0, "{}\n{}", table.name, cmp);
        }
    }

    #[test]
    fn diagonal_query_returns_none() {
        let f3 = figure3();
        let m: CommModel = "RMS".parse().unwrap();
        assert!(f3.get(m, m).is_none());
        // Unreliable realizer not in Figure 3 columns.
        let u: CommModel = "UMS".parse().unwrap();
        assert!(f3.get(m, u).is_none());
    }

    #[test]
    fn comparison_display_lists_nonmatches() {
        let bounds = derive_bounds(&foundational_facts());
        let cmp = compare(&bounds, &figure3());
        let s = cmp.to_string();
        assert!(s.contains("cells:"), "{s}");
    }
}

//! Activation steps and sequences (Definition 2.2).
//!
//! A general activation-sequence entry is a quadruple `(U, X, f, g)`:
//! updating nodes, processed channels, per-channel message counts, and
//! per-channel drop sets. Here a step is represented structurally: a set of
//! [`NodeUpdate`]s (usually one), each holding the [`ChannelAction`]s for the
//! channels that node processes.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use routelab_spp::{Channel, NodeId};

/// How many messages to process from one channel (the paper's `f(c)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Take {
    /// Process the first `n` messages (capped at the channel length at
    /// execution time). `Count(0)` processes nothing.
    Count(u32),
    /// Process every message currently in the channel (`f(c) = ∞`).
    All,
}

impl fmt::Display for Take {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Take::Count(n) => write!(f, "{n}"),
            Take::All => write!(f, "∞"),
        }
    }
}

/// Malformed channel action per the constraints of Definition 2.2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidActionError {
    reason: String,
}

impl fmt::Display for InvalidActionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid channel action: {}", self.reason)
    }
}

impl Error for InvalidActionError {}

/// Processing of one channel within a step: `(f(c), g(c))`.
///
/// Invariants (Definition 2.2): if `f(c) = 0` then `g(c) = ∅`; if
/// `0 < f(c) < ∞` then `g(c) ⊆ {1, …, f(c)}`. Drop indices are 1-based.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ChannelAction {
    channel: Channel,
    take: Take,
    drops: BTreeSet<u32>,
}

impl ChannelAction {
    /// Processes `channel` with count `take` and drop set `drops`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidActionError`] when the Definition 2.2 constraints on
    /// `(f, g)` are violated.
    pub fn new(
        channel: Channel,
        take: Take,
        drops: BTreeSet<u32>,
    ) -> Result<Self, InvalidActionError> {
        if drops.contains(&0) {
            return Err(InvalidActionError { reason: "drop indices are 1-based".into() });
        }
        match take {
            Take::Count(0) if !drops.is_empty() => {
                return Err(InvalidActionError { reason: "f(c) = 0 requires g(c) = ∅".into() })
            }
            Take::Count(k) => {
                if drops.iter().any(|&i| i > k) {
                    return Err(InvalidActionError {
                        reason: format!("g(c) must be a subset of 1..={k}"),
                    });
                }
            }
            Take::All => {}
        }
        Ok(ChannelAction { channel, take, drops })
    }

    /// Reads one message, keeping it (`f = 1`, `g = ∅`).
    pub fn read_one(channel: Channel) -> Self {
        ChannelAction { channel, take: Take::Count(1), drops: BTreeSet::new() }
    }

    /// Reads one message and drops it (`f = 1`, `g = {1}`), the unreliable
    /// single read.
    pub fn drop_one(channel: Channel) -> Self {
        ChannelAction { channel, take: Take::Count(1), drops: BTreeSet::from([1]) }
    }

    /// Reads `k` messages, keeping all (`f = k`, `g = ∅`).
    pub fn read_count(channel: Channel, k: u32) -> Self {
        ChannelAction { channel, take: Take::Count(k), drops: BTreeSet::new() }
    }

    /// Reads the whole channel, keeping everything (`f = ∞`, `g = ∅`).
    pub fn read_all(channel: Channel) -> Self {
        ChannelAction { channel, take: Take::All, drops: BTreeSet::new() }
    }

    /// Targets the channel but reads nothing (`f = 0`).
    pub fn skip(channel: Channel) -> Self {
        ChannelAction { channel, take: Take::Count(0), drops: BTreeSet::new() }
    }

    /// The processed channel.
    pub fn channel(&self) -> Channel {
        self.channel
    }

    /// The message count `f(c)`.
    pub fn take(&self) -> Take {
        self.take
    }

    /// The drop set `g(c)` (1-based indices).
    pub fn drops(&self) -> &BTreeSet<u32> {
        &self.drops
    }

    /// `true` when no message is dropped.
    pub fn is_lossless(&self) -> bool {
        self.drops.is_empty()
    }

    /// `true` when at least one message is targeted (`f ≥ 1`), i.e. the node
    /// genuinely *tries to read* the channel in the sense of fairness
    /// (Definition 2.4).
    pub fn attends(&self) -> bool {
        !matches!(self.take, Take::Count(0))
    }
}

impl fmt::Display for ChannelAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}·f={}", self.channel, self.take)?;
        if !self.drops.is_empty() {
            let idx: Vec<String> = self.drops.iter().map(u32::to_string).collect();
            write!(f, "·g={{{}}}", idx.join(","))?;
        }
        Ok(())
    }
}

/// One node's part of a step: the node and its channel actions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NodeUpdate {
    /// The updating node `v ∈ U`.
    pub node: NodeId,
    /// Actions on a subset of `v`'s incoming channels.
    pub actions: Vec<ChannelAction>,
}

impl NodeUpdate {
    /// An update processing the given channels.
    pub fn new(node: NodeId, actions: Vec<ChannelAction>) -> Self {
        NodeUpdate { node, actions }
    }

    /// An update that processes no channels (the node still re-chooses and
    /// possibly announces — relevant when its known routes already changed).
    pub fn bare(node: NodeId) -> Self {
        NodeUpdate { node, actions: Vec::new() }
    }
}

impl fmt::Display for NodeUpdate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.node)?;
        for (i, a) in self.actions.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "]")
    }
}

/// A step of the activation sequence: the quadruple `(U, X, f, g)` grouped
/// per node. Usually `|U| = 1`; Example A.6 uses more.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ActivationStep {
    /// The node updates, one per element of `U`.
    pub updates: Vec<NodeUpdate>,
}

impl ActivationStep {
    /// A single-node step.
    pub fn single(update: NodeUpdate) -> Self {
        ActivationStep { updates: vec![update] }
    }

    /// A multi-node step (Example A.6).
    pub fn simultaneous(updates: Vec<NodeUpdate>) -> Self {
        ActivationStep { updates }
    }

    /// The single updating node, if `|U| = 1`.
    pub fn sole_node(&self) -> Option<NodeId> {
        match self.updates.as_slice() {
            [u] => Some(u.node),
            _ => None,
        }
    }

    /// Iterates over all channel actions across all updates.
    pub fn actions(&self) -> impl Iterator<Item = &ChannelAction> {
        self.updates.iter().flat_map(|u| u.actions.iter())
    }
}

impl fmt::Display for ActivationStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, u) in self.updates.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{u}")?;
        }
        Ok(())
    }
}

/// A finite prefix of an activation sequence.
pub type ActivationSeq = Vec<ActivationStep>;

#[cfg(test)]
mod tests {
    use super::*;

    fn ch() -> Channel {
        Channel::new(NodeId(0), NodeId(1))
    }

    #[test]
    fn constructors_set_f_and_g() {
        assert_eq!(ChannelAction::read_one(ch()).take(), Take::Count(1));
        assert!(ChannelAction::read_one(ch()).is_lossless());
        assert_eq!(ChannelAction::drop_one(ch()).drops(), &BTreeSet::from([1]));
        assert_eq!(ChannelAction::read_all(ch()).take(), Take::All);
        assert!(!ChannelAction::skip(ch()).attends());
        assert!(ChannelAction::read_all(ch()).attends());
        assert_eq!(ChannelAction::read_count(ch(), 5).take(), Take::Count(5));
    }

    #[test]
    fn definition_2_2_constraints() {
        // f = 0 requires g = ∅.
        assert!(ChannelAction::new(ch(), Take::Count(0), BTreeSet::from([1])).is_err());
        // g ⊆ 1..=f for finite f.
        assert!(ChannelAction::new(ch(), Take::Count(2), BTreeSet::from([3])).is_err());
        assert!(ChannelAction::new(ch(), Take::Count(2), BTreeSet::from([1, 2])).is_ok());
        // 0 is not a valid 1-based index.
        assert!(ChannelAction::new(ch(), Take::All, BTreeSet::from([0])).is_err());
        // With f = ∞ any positive indices are fine.
        assert!(ChannelAction::new(ch(), Take::All, BTreeSet::from([7, 9])).is_ok());
        let e = ChannelAction::new(ch(), Take::Count(0), BTreeSet::from([1])).unwrap_err();
        assert!(e.to_string().contains("f(c) = 0"));
    }

    #[test]
    fn step_accessors() {
        let u = NodeUpdate::new(NodeId(1), vec![ChannelAction::read_one(ch())]);
        let s = ActivationStep::single(u.clone());
        assert_eq!(s.sole_node(), Some(NodeId(1)));
        assert_eq!(s.actions().count(), 1);
        let multi = ActivationStep::simultaneous(vec![u, NodeUpdate::bare(NodeId(2))]);
        assert_eq!(multi.sole_node(), None);
        assert_eq!(multi.actions().count(), 1);
    }

    #[test]
    fn display_is_informative() {
        let a = ChannelAction::new(ch(), Take::Count(2), BTreeSet::from([1])).unwrap();
        let s = a.to_string();
        assert!(s.contains("f=2"), "{s}");
        assert!(s.contains("g={1}"), "{s}");
        assert!(ChannelAction::read_all(ch()).to_string().contains('∞'));
        let u = NodeUpdate::new(NodeId(1), vec![a]);
        assert!(u.to_string().starts_with("1["));
        let step = ActivationStep::simultaneous(vec![u.clone(), NodeUpdate::bare(NodeId(2))]);
        assert!(step.to_string().contains(" + "));
    }
}

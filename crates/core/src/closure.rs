//! Transitive closure of realization facts (Sec. 3.4).
//!
//! Positive facts close under max–min transitivity: if `B` realizes `A` at
//! strength `s₁` and `C` realizes `B` at `s₂`, then `C` realizes `A` at
//! `min(s₁, s₂)` (Fig. 1). Negative facts propagate by the contrapositives
//! (Fig. 2):
//!
//! * **push the tail**: `B ⊒ₛ A` and `C ⋣ₜ A` with `t ≤ s` imply `C ⋣ₜ B`,
//! * **pull the head**: `C ⊒ₛ A` and `C ⋣ₜ B` with `t ≤ s` imply `A ⋣ₜ B`.

use std::fmt;

use crate::edges::Facts;
use crate::lattice::CellBound;
use crate::model::CommModel;

/// A 24×24 matrix of [`CellBound`]s over the full taxonomy, indexed by
/// `(realized, realizer)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundsMatrix {
    models: Vec<CommModel>,
    cells: Vec<CellBound>,
}

impl BoundsMatrix {
    /// An all-unknown matrix over [`CommModel::all`], with the diagonal
    /// pinned to exact (every model realizes itself).
    pub fn unknown() -> Self {
        let models = CommModel::all();
        let n = models.len();
        let mut cells = vec![CellBound::unknown(); n * n];
        for i in 0..n {
            cells[i * n + i] = CellBound::exactly(4);
        }
        BoundsMatrix { models, cells }
    }

    /// The models indexing rows and columns (figure order).
    pub fn models(&self) -> &[CommModel] {
        &self.models
    }

    fn idx(&self, realized: CommModel, realizer: CommModel) -> usize {
        realized.index() * self.models.len() + realizer.index()
    }

    /// The bound for "`realizer` realizes `realized`".
    pub fn get(&self, realized: CommModel, realizer: CommModel) -> CellBound {
        self.cells[self.idx(realized, realizer)]
    }

    /// Intersects the cell with `bound`.
    pub fn tighten(&mut self, realized: CommModel, realizer: CommModel, bound: CellBound) {
        let i = self.idx(realized, realizer);
        self.cells[i] = self.cells[i].meet(bound);
    }

    /// `true` when every cell has `lower ≤ upper`.
    pub fn is_consistent(&self) -> bool {
        self.cells.iter().all(|c| c.is_consistent())
    }

    /// Renders the sub-matrix with the given columns as an ASCII table in
    /// the layout of Figures 3 and 4 (all 24 rows).
    pub fn render(&self, columns: &[CommModel]) -> String {
        let mut out = String::new();
        out.push_str("      ");
        for c in columns {
            out.push_str(&format!("{:>5} ", c.to_string()));
        }
        out.push('\n');
        for &a in &self.models {
            out.push_str(&format!("{:>5} ", a.to_string()));
            for &b in columns {
                let tok = if a == b { "-".to_string() } else { self.get(a, b).token() };
                out.push_str(&format!("{tok:>5} "));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for BoundsMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(&self.models))
    }
}

/// Derives the full bounds matrix from foundational facts: seeds the matrix,
/// closes lower bounds under max–min transitivity, then propagates upper
/// bounds with the two contrapositive rules until a fixpoint.
///
/// # Panics
///
/// Panics if the facts are mutually inconsistent (some cell ends with
/// `lower > upper`) — that would mean a transcription error in
/// [`crate::edges`].
pub fn derive_bounds(facts: &Facts) -> BoundsMatrix {
    let mut m = BoundsMatrix::unknown();
    let n = m.models.len();

    // Seed.
    for p in &facts.positives {
        m.tighten(p.realized, p.realizer, CellBound::at_least(p.strength.level()));
    }
    for nfact in &facts.negatives {
        m.tighten(nfact.realized, nfact.realizer, CellBound::at_most(nfact.max_level));
    }

    let models = m.models.clone();
    // Lower-bound closure: lower(a,c) ≥ min(lower(a,b), lower(b,c)).
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &models {
            for &a in &models {
                let ab = m.get(a, b).lower;
                if ab == 0 {
                    continue;
                }
                for &c in &models {
                    if a == c {
                        continue;
                    }
                    let bc = m.get(b, c).lower;
                    let through = ab.min(bc);
                    let i = m.idx(a, c);
                    if through > m.cells[i].lower {
                        m.cells[i].lower = through;
                        changed = true;
                    }
                }
            }
        }
    }

    // Upper-bound propagation.
    changed = true;
    while changed {
        changed = false;
        for ai in 0..n {
            for bi in 0..n {
                if ai == bi {
                    continue;
                }
                let (a, b) = (models[ai], models[bi]);
                let lower_ab = m.get(a, b).lower;
                if lower_ab == 0 {
                    continue;
                }
                for &c in &models {
                    // Rule "push the tail": B ⊒ A (≥ s), C ⋣ A above u < s
                    // ⇒ C ⋣ B above u.
                    let upper_ac = m.get(a, c).upper;
                    if upper_ac < lower_ab {
                        let i = m.idx(b, c);
                        if upper_ac < m.cells[i].upper {
                            m.cells[i].upper = upper_ac;
                            changed = true;
                        }
                    }
                    // Rule "pull the head": B ⊒ A (≥ s) read as C' ⊒ A with
                    // C' = B, and B ⋣ ... — expressed symmetrically below.
                    // If C realizes A at ≥ s and C ⋣ X above u < s then
                    // A ⋣ X above u:  here (a, b) plays (A, C) and we scan X.
                    let upper_xb = m.get(c, b).upper; // C=b fails to realize X=c above this
                    if upper_xb < lower_ab {
                        let i = m.idx(c, a);
                        if upper_xb < m.cells[i].upper {
                            m.cells[i].upper = upper_xb;
                            changed = true;
                        }
                    }
                }
            }
        }
    }

    assert!(m.is_consistent(), "foundational facts are inconsistent: some cell has lower > upper");
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edges::foundational_facts;

    fn bounds() -> BoundsMatrix {
        derive_bounds(&foundational_facts())
    }

    fn cell(b: &BoundsMatrix, a: &str, c: &str) -> CellBound {
        b.get(a.parse().unwrap(), c.parse().unwrap())
    }

    #[test]
    fn diagonal_is_exact() {
        let b = bounds();
        for m in CommModel::all() {
            assert_eq!(b.get(m, m), CellBound::exactly(4));
        }
    }

    #[test]
    fn queueing_models_are_strong() {
        // Sec. 3.5: "RMS is able to realize all reliable channel models
        // exactly and all unreliable channel models either with repetition
        // or exactly. UMS is able to exactly realize all models."
        let b = bounds();
        for a in CommModel::all() {
            let ums = cell(&b, &a.to_string(), "UMS");
            assert_eq!(ums.lower, 4, "UMS should exactly realize {a}");
        }
        for a in CommModel::all_reliable() {
            let rms = cell(&b, &a.to_string(), "RMS");
            assert_eq!(rms.lower, 4, "RMS should exactly realize {a}");
        }
        for a in CommModel::all_unreliable() {
            let rms = cell(&b, &a.to_string(), "RMS");
            assert!(rms.lower >= 3, "RMS should realize {a} at least with repetition");
        }
    }

    #[test]
    fn oscillation_catchers() {
        // Sec. 3.5: R1O, RMO, R1S, RMS, RES, R1F, RMF catch all oscillations
        // of all other models (level ≥ 2 ⇒ oscillation-preserving; lower ≥ 1
        // suffices but the paper proves ≥ 2 everywhere here).
        let b = bounds();
        for strong in ["R1O", "RMO", "R1S", "RMS", "RES", "R1F", "RMF"] {
            for a in CommModel::all() {
                if a.to_string() == strong {
                    continue;
                }
                let c = cell(&b, &a.to_string(), strong);
                assert!(c.lower >= 2, "{strong} should realize {a} at ≥ 2, got {c}");
            }
        }
    }

    #[test]
    fn weak_models_provably_miss_oscillations() {
        // Sec. 3.5: REO, REF, R1A, RMA, REA are provably unable to capture
        // some oscillations.
        let b = bounds();
        for weak in ["REO", "REF", "R1A", "RMA", "REA"] {
            let c = cell(&b, "R1O", weak);
            assert_eq!(c.upper, 0, "{weak} must not preserve R1O oscillations, got {c}");
        }
    }

    #[test]
    fn corollary_3_14_is_derived() {
        // For every y, y' and z ≠ O: Ryz cannot be realized with repetition
        // in Ry'O.
        let b = bounds();
        for y in ["1", "M", "E"] {
            for z in ["S", "F", "A"] {
                for y2 in ["1", "M", "E"] {
                    let a = format!("R{y}{z}");
                    let c = format!("R{y2}O");
                    let bound = cell(&b, &a, &c);
                    assert!(bound.upper <= 2, "{c} realizing {a}: {bound}");
                }
            }
        }
    }

    #[test]
    fn example_cells_from_the_paper() {
        let b = bounds();
        // Fig. 3 row R1S, col R1O = 2.
        assert_eq!(cell(&b, "R1S", "R1O"), CellBound::exactly(2));
        // Fig. 3 row R1O, col RMO = 4.
        assert_eq!(cell(&b, "R1O", "RMO"), CellBound::exactly(4));
        // Fig. 3 row RMO, col R1O = 3.
        assert_eq!(cell(&b, "RMO", "R1O"), CellBound::exactly(3));
        // Fig. 3 row REA, col REF = 4.
        assert_eq!(cell(&b, "REA", "REF"), CellBound::exactly(4));
        // Fig. 4 row R1O, col U1S = 4.
        assert_eq!(cell(&b, "R1O", "U1S"), CellBound::exactly(4));
        // Fig. 3 row U1O, col R1O = ">=2".
        assert_eq!(cell(&b, "U1O", "R1O").lower, 2);
    }

    #[test]
    fn matrix_is_consistent_and_renders() {
        let b = bounds();
        assert!(b.is_consistent());
        let s = b.render(&CommModel::all_reliable());
        assert!(s.contains("R1O"));
        assert!(s.lines().count() == 25); // header + 24 rows
        let full = b.to_string();
        assert!(full.contains("UEA"));
    }

    #[test]
    fn tighten_meets() {
        let mut m = BoundsMatrix::unknown();
        let a: CommModel = "R1O".parse().unwrap();
        let c: CommModel = "REA".parse().unwrap();
        m.tighten(a, c, CellBound::at_least(2));
        m.tighten(a, c, CellBound::at_most(3));
        assert_eq!(m.get(a, c), CellBound { lower: 2, upper: 3 });
    }
}

//! Legality of activation steps under a communication model.
//!
//! Each model in the taxonomy is a *restricted class of activation
//! sequences* (Sec. 2.1); this module decides membership of individual steps
//! — and hence finite sequences — in that class.

use std::error::Error;
use std::fmt;

use routelab_spp::{Graph, NodeId};

use crate::dims::{MessagePolicy, NeighborScope, Reliability, UpdaterCount};
use crate::model::CommModel;
use crate::step::{ActivationSeq, ActivationStep, NodeUpdate, Take};

/// Why a step is not legal in a model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelViolation {
    /// The step updates a number of nodes the updater-count dimension
    /// forbids.
    UpdaterCount { expected: UpdaterCount, got: usize },
    /// An action's channel is not an incoming channel of the updating node.
    ForeignChannel { node: NodeId },
    /// The same channel appears twice in one update.
    DuplicateChannel { node: NodeId },
    /// Neighbor scope violated (e.g. `E` requires all in-channels).
    Scope { expected: NeighborScope, node: NodeId },
    /// Message policy violated (e.g. `O` requires `f ≡ 1`).
    Messages { expected: MessagePolicy, node: NodeId },
    /// A reliable model with a non-empty drop set.
    Dropped { node: NodeId },
}

impl fmt::Display for ModelViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelViolation::UpdaterCount { expected, got } => {
                write!(f, "step updates {got} nodes but the model requires {expected}")
            }
            ModelViolation::ForeignChannel { node } => {
                write!(f, "node {node} processes a channel it does not read")
            }
            ModelViolation::DuplicateChannel { node } => {
                write!(f, "node {node} processes the same channel twice in one step")
            }
            ModelViolation::Scope { expected, node } => {
                write!(f, "node {node} violates neighbor scope {expected}")
            }
            ModelViolation::Messages { expected, node } => {
                write!(f, "node {node} violates message policy {expected}")
            }
            ModelViolation::Dropped { node } => {
                write!(f, "node {node} drops messages on reliable channels")
            }
        }
    }
}

impl Error for ModelViolation {}

/// Checks a single node's update against the model dimensions.
fn check_update(model: CommModel, g: &Graph, u: &NodeUpdate) -> Result<(), ModelViolation> {
    // Structural: channels into the node, no duplicates.
    for (i, a) in u.actions.iter().enumerate() {
        if a.channel().to != u.node || !g.has_edge(a.channel().from, a.channel().to) {
            return Err(ModelViolation::ForeignChannel { node: u.node });
        }
        if u.actions[i + 1..].iter().any(|b| b.channel() == a.channel()) {
            return Err(ModelViolation::DuplicateChannel { node: u.node });
        }
    }
    // Neighbor scope.
    let degree = g.degree(u.node);
    let scope_ok = match model.scope {
        NeighborScope::One => u.actions.len() == 1,
        NeighborScope::Multiple => true,
        NeighborScope::Every => u.actions.len() == degree,
    };
    if !scope_ok {
        return Err(ModelViolation::Scope { expected: model.scope, node: u.node });
    }
    // Message policy.
    for a in &u.actions {
        let ok = match model.messages {
            MessagePolicy::One => a.take() == Take::Count(1),
            MessagePolicy::Some => true,
            MessagePolicy::Forced => a.attends(),
            MessagePolicy::All => a.take() == Take::All,
        };
        if !ok {
            return Err(ModelViolation::Messages { expected: model.messages, node: u.node });
        }
    }
    // Reliability.
    if model.reliability == Reliability::Reliable && u.actions.iter().any(|a| !a.is_lossless()) {
        return Err(ModelViolation::Dropped { node: u.node });
    }
    Ok(())
}

/// Checks a step under a model with the given updater-count dimension.
///
/// # Errors
///
/// Returns the first [`ModelViolation`] found.
pub fn check_step_with(
    model: CommModel,
    updaters: UpdaterCount,
    g: &Graph,
    step: &ActivationStep,
) -> Result<(), ModelViolation> {
    let count_ok = match updaters {
        UpdaterCount::One => step.updates.len() == 1,
        UpdaterCount::Unrestricted => !step.updates.is_empty(),
        UpdaterCount::Every => step.updates.len() == g.node_count(),
    };
    if !count_ok {
        return Err(ModelViolation::UpdaterCount { expected: updaters, got: step.updates.len() });
    }
    // Distinct updaters.
    for (i, u) in step.updates.iter().enumerate() {
        if step.updates[i + 1..].iter().any(|w| w.node == u.node) {
            return Err(ModelViolation::DuplicateChannel { node: u.node });
        }
        check_update(model, g, u)?;
    }
    Ok(())
}

/// Checks a step in the paper's standard setting (`|U| = 1`).
///
/// # Errors
///
/// Returns the first [`ModelViolation`] found.
pub fn check_step(
    model: CommModel,
    g: &Graph,
    step: &ActivationStep,
) -> Result<(), ModelViolation> {
    check_step_with(model, UpdaterCount::One, g, step)
}

/// Checks every step of a finite sequence (`|U| = 1` setting).
///
/// # Errors
///
/// Returns the index of the first offending step with its violation.
pub fn check_sequence(
    model: CommModel,
    g: &Graph,
    seq: &ActivationSeq,
) -> Result<(), (usize, ModelViolation)> {
    for (t, step) in seq.iter().enumerate() {
        check_step(model, g, step).map_err(|e| (t, e))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::ChannelAction;
    use routelab_spp::gadgets;
    use routelab_spp::Channel;

    fn disagree_graph() -> (Graph, NodeId, NodeId, NodeId) {
        let inst = gadgets::disagree();
        let d = inst.dest();
        let x = inst.node_by_name("x").unwrap();
        let y = inst.node_by_name("y").unwrap();
        (inst.graph().clone(), d, x, y)
    }

    fn m(s: &str) -> CommModel {
        s.parse().unwrap()
    }

    #[test]
    fn scope_one_requires_exactly_one_channel() {
        let (g, d, x, y) = disagree_graph();
        let one = ActivationStep::single(NodeUpdate::new(
            x,
            vec![ChannelAction::read_one(Channel::new(d, x))],
        ));
        assert!(check_step(m("R1O"), &g, &one).is_ok());
        let two = ActivationStep::single(NodeUpdate::new(
            x,
            vec![
                ChannelAction::read_one(Channel::new(d, x)),
                ChannelAction::read_one(Channel::new(y, x)),
            ],
        ));
        assert!(matches!(check_step(m("R1O"), &g, &two), Err(ModelViolation::Scope { .. })));
        assert!(check_step(m("RMO"), &g, &two).is_ok());
    }

    #[test]
    fn scope_every_requires_all_channels() {
        let (g, d, x, y) = disagree_graph();
        let partial = ActivationStep::single(NodeUpdate::new(
            x,
            vec![ChannelAction::read_all(Channel::new(d, x))],
        ));
        assert!(matches!(check_step(m("REA"), &g, &partial), Err(ModelViolation::Scope { .. })));
        let full = ActivationStep::single(NodeUpdate::new(
            x,
            vec![
                ChannelAction::read_all(Channel::new(d, x)),
                ChannelAction::read_all(Channel::new(y, x)),
            ],
        ));
        assert!(check_step(m("REA"), &g, &full).is_ok());
    }

    #[test]
    fn message_policies() {
        let (g, d, x, _) = disagree_graph();
        let c = Channel::new(d, x);
        let mk = |a: ChannelAction| ActivationStep::single(NodeUpdate::new(x, vec![a]));
        // O: exactly one.
        assert!(check_step(m("R1O"), &g, &mk(ChannelAction::read_one(c))).is_ok());
        assert!(check_step(m("R1O"), &g, &mk(ChannelAction::read_count(c, 2))).is_err());
        assert!(check_step(m("R1O"), &g, &mk(ChannelAction::read_all(c))).is_err());
        // A: all.
        assert!(check_step(m("R1A"), &g, &mk(ChannelAction::read_all(c))).is_ok());
        assert!(check_step(m("R1A"), &g, &mk(ChannelAction::read_one(c))).is_err());
        // F: at least one.
        assert!(check_step(m("R1F"), &g, &mk(ChannelAction::read_count(c, 3))).is_ok());
        assert!(check_step(m("R1F"), &g, &mk(ChannelAction::read_all(c))).is_ok());
        assert!(check_step(m("R1F"), &g, &mk(ChannelAction::skip(c))).is_err());
        // S: anything.
        assert!(check_step(m("R1S"), &g, &mk(ChannelAction::skip(c))).is_ok());
        assert!(check_step(m("R1S"), &g, &mk(ChannelAction::read_all(c))).is_ok());
    }

    #[test]
    fn reliability_forbids_drops() {
        let (g, d, x, _) = disagree_graph();
        let c = Channel::new(d, x);
        let dropping = ActivationStep::single(NodeUpdate::new(x, vec![ChannelAction::drop_one(c)]));
        assert!(matches!(check_step(m("R1O"), &g, &dropping), Err(ModelViolation::Dropped { .. })));
        assert!(check_step(m("U1O"), &g, &dropping).is_ok());
    }

    #[test]
    fn foreign_and_duplicate_channels_rejected() {
        let (g, d, x, y) = disagree_graph();
        // Channel into a different node.
        let foreign = ActivationStep::single(NodeUpdate::new(
            x,
            vec![ChannelAction::read_one(Channel::new(d, y))],
        ));
        assert!(matches!(
            check_step(m("R1O"), &g, &foreign),
            Err(ModelViolation::ForeignChannel { .. })
        ));
        // Same channel twice.
        let dup = ActivationStep::single(NodeUpdate::new(
            x,
            vec![
                ChannelAction::read_one(Channel::new(d, x)),
                ChannelAction::read_one(Channel::new(d, x)),
            ],
        ));
        assert!(matches!(
            check_step(m("RMO"), &g, &dup),
            Err(ModelViolation::DuplicateChannel { .. })
        ));
    }

    #[test]
    fn updater_count_checked() {
        let (g, d, x, y) = disagree_graph();
        let multi = ActivationStep::simultaneous(vec![
            NodeUpdate::new(x, vec![ChannelAction::read_all(Channel::new(d, x))]),
            NodeUpdate::new(y, vec![ChannelAction::read_all(Channel::new(d, y))]),
        ]);
        assert!(matches!(
            check_step(m("R1A"), &g, &multi),
            Err(ModelViolation::UpdaterCount { .. })
        ));
        assert!(check_step_with(m("R1A"), UpdaterCount::Unrestricted, &g, &multi).is_ok());
        assert!(matches!(
            check_step_with(m("R1A"), UpdaterCount::Every, &g, &multi),
            Err(ModelViolation::UpdaterCount { .. })
        ));
    }

    #[test]
    fn scope_multiple_allows_empty() {
        let (g, _, x, _) = disagree_graph();
        let bare = ActivationStep::single(NodeUpdate::bare(x));
        assert!(check_step(m("RMS"), &g, &bare).is_ok());
        // But E with zero channels is illegal (degree 2).
        assert!(check_step(m("RES"), &g, &bare).is_err());
        // And 1 needs exactly one.
        assert!(check_step(m("R1S"), &g, &bare).is_err());
    }

    #[test]
    fn sequence_reports_offending_index() {
        let (g, d, x, _) = disagree_graph();
        let ok = ActivationStep::single(NodeUpdate::new(
            x,
            vec![ChannelAction::read_one(Channel::new(d, x))],
        ));
        let bad = ActivationStep::single(NodeUpdate::bare(x));
        let seq = vec![ok.clone(), ok, bad];
        let (t, _) = check_sequence(m("R1O"), &g, &seq).unwrap_err();
        assert_eq!(t, 2);
    }

    #[test]
    fn violations_display() {
        let v = ModelViolation::Scope { expected: NeighborScope::Every, node: NodeId(3) };
        assert!(v.to_string().contains("scope"));
        let v = ModelViolation::UpdaterCount { expected: UpdaterCount::One, got: 2 };
        assert!(v.to_string().contains("2 nodes"));
    }
}

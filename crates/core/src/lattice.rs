//! Realization strengths and cell bounds (Definitions 3.1 and 3.2).
//!
//! The strengths form a chain: exact realization (level 4) implies
//! realization with repetition (3), which implies realization as a
//! subsequence (2), which implies oscillation preservation (1). Level 0
//! means even oscillation preservation fails — the paper's `-1` entries.

use std::fmt;

/// A realization strength (Definition 3.1/3.2), strongest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Strength {
    /// Level 1: only the existence of oscillations carries over
    /// (Definition 3.1).
    OscillationPreserving = 1,
    /// Level 2: realization as a subsequence.
    Subsequence = 2,
    /// Level 3: exact realization with repetition.
    Repetition = 3,
    /// Level 4: exact realization.
    Exact = 4,
}

impl Strength {
    /// The numeric level used in Figures 3 and 4.
    pub fn level(self) -> u8 {
        self as u8
    }

    /// Strength from a figure level (1–4).
    pub fn from_level(level: u8) -> Option<Strength> {
        match level {
            1 => Some(Strength::OscillationPreserving),
            2 => Some(Strength::Subsequence),
            3 => Some(Strength::Repetition),
            4 => Some(Strength::Exact),
            _ => None,
        }
    }
}

impl fmt::Display for Strength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Strength::OscillationPreserving => "oscillation-preserving",
            Strength::Subsequence => "subsequence",
            Strength::Repetition => "repetition",
            Strength::Exact => "exact",
        };
        write!(f, "{s}")
    }
}

/// What is known about one ordered model pair: the strongest realization
/// level proven to hold (`lower`) and the strongest level not yet excluded
/// (`upper`). Levels range over `0..=4`; `0` means "not even
/// oscillation-preserving".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellBound {
    /// Proven lower bound on the realization level.
    pub lower: u8,
    /// Proven upper bound on the realization level.
    pub upper: u8,
}

impl CellBound {
    /// Nothing known: level in `0..=4`.
    pub fn unknown() -> Self {
        CellBound { lower: 0, upper: 4 }
    }

    /// The level is known exactly.
    pub fn exactly(level: u8) -> Self {
        assert!(level <= 4, "levels range over 0..=4");
        CellBound { lower: level, upper: level }
    }

    /// Only a lower bound.
    pub fn at_least(level: u8) -> Self {
        assert!(level <= 4);
        CellBound { lower: level, upper: 4 }
    }

    /// Only an upper bound.
    pub fn at_most(level: u8) -> Self {
        assert!(level <= 4);
        CellBound { lower: 0, upper: level }
    }

    /// `true` when `lower ≤ upper`.
    pub fn is_consistent(self) -> bool {
        self.lower <= self.upper
    }

    /// `true` when the level is pinned down.
    pub fn is_determined(self) -> bool {
        self.lower == self.upper
    }

    /// Intersects two bounds (both must hold).
    pub fn meet(self, other: CellBound) -> CellBound {
        CellBound { lower: self.lower.max(other.lower), upper: self.upper.min(other.upper) }
    }

    /// `true` if `self` carries at least as much information as `other`
    /// (interval containment).
    pub fn refines(self, other: CellBound) -> bool {
        self.lower >= other.lower && self.upper <= other.upper
    }

    /// Renders the bound with the figures' conventions: `4`/`3`/`2` for
    /// determined levels, `-1` for level 0, `>=k` / `<=k` for one-sided
    /// bounds, `a,b` for a two-value range, `.` when nothing is known.
    pub fn token(self) -> String {
        match (self.lower, self.upper) {
            (0, 0) => "-1".to_string(),
            (l, u) if l == u => l.to_string(),
            (0, 4) => ".".to_string(),
            (l, 4) => format!(">={l}"),
            (0, u) => format!("<={u}"),
            (l, u) if u == l + 1 => format!("{l},{u}"),
            (l, u) => format!("{l}..{u}"),
        }
    }

    /// Parses a figure token (inverse of [`CellBound::token`]).
    pub fn from_token(tok: &str) -> Option<CellBound> {
        match tok {
            "." => return Some(CellBound::unknown()),
            "-1" => return Some(CellBound::exactly(0)),
            _ => {}
        }
        if let Some(rest) = tok.strip_prefix(">=") {
            return rest.parse().ok().filter(|&l| l <= 4).map(CellBound::at_least);
        }
        if let Some(rest) = tok.strip_prefix("<=") {
            return rest.parse().ok().filter(|&u| u <= 4).map(CellBound::at_most);
        }
        for sep in [",", ".."] {
            if let Some((a, b)) = tok.split_once(sep) {
                let (l, u) = (a.parse().ok()?, b.parse().ok()?);
                if l <= u && u <= 4 {
                    return Some(CellBound { lower: l, upper: u });
                }
                return None;
            }
        }
        tok.parse().ok().filter(|&l| l <= 4u8).map(CellBound::exactly)
    }
}

impl Default for CellBound {
    fn default() -> Self {
        CellBound::unknown()
    }
}

impl fmt::Display for CellBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.token())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strength_chain() {
        assert!(Strength::Exact > Strength::Repetition);
        assert!(Strength::Repetition > Strength::Subsequence);
        assert!(Strength::Subsequence > Strength::OscillationPreserving);
        for s in [
            Strength::OscillationPreserving,
            Strength::Subsequence,
            Strength::Repetition,
            Strength::Exact,
        ] {
            assert_eq!(Strength::from_level(s.level()), Some(s));
        }
        assert_eq!(Strength::from_level(0), None);
        assert_eq!(Strength::from_level(5), None);
    }

    #[test]
    fn tokens_round_trip() {
        for tok in ["4", "3", "2", "1", "-1", ">=3", ">=2", "<=2", "<=3", "2,3", "."] {
            let b = CellBound::from_token(tok).unwrap_or_else(|| panic!("{tok}"));
            assert_eq!(b.token(), tok, "token {tok}");
        }
        assert_eq!(CellBound::from_token("x"), None);
        assert_eq!(CellBound::from_token(">=9"), None);
        assert_eq!(CellBound::from_token("3,2"), None);
    }

    #[test]
    fn meet_and_refinement() {
        let a = CellBound::at_least(2);
        let b = CellBound::at_most(3);
        let m = a.meet(b);
        assert_eq!(m, CellBound { lower: 2, upper: 3 });
        assert!(m.is_consistent());
        assert!(m.refines(a));
        assert!(m.refines(b));
        assert!(!a.refines(m));
        let conflict = CellBound::at_least(3).meet(CellBound::at_most(1));
        assert!(!conflict.is_consistent());
    }

    #[test]
    fn determined_and_default() {
        assert!(CellBound::exactly(4).is_determined());
        assert!(!CellBound::unknown().is_determined());
        assert_eq!(CellBound::default(), CellBound::unknown());
        assert_eq!(CellBound::exactly(0).token(), "-1");
    }

    #[test]
    #[should_panic(expected = "levels range over 0..=4")]
    fn exactly_rejects_out_of_range() {
        let _ = CellBound::exactly(5);
    }

    #[test]
    fn display_matches_token() {
        assert_eq!(CellBound { lower: 1, upper: 3 }.to_string(), "1..3");
        assert_eq!(CellBound { lower: 2, upper: 3 }.to_string(), "2,3");
    }
}

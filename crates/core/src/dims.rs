//! The dimensions of the communication-model space (Definition 2.6).

use std::fmt;

/// Channel reliability: are update messages ever lost?
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Reliability {
    /// `R`: every message placed in a channel is eventually read
    /// (the drop sets `g` are always empty).
    Reliable,
    /// `U`: messages may be dropped (`g` need not be empty).
    Unreliable,
}

impl Reliability {
    /// All values, in paper order (`R`, `U`).
    pub const ALL: [Reliability; 2] = [Reliability::Reliable, Reliability::Unreliable];

    /// One-letter paper symbol.
    pub fn symbol(self) -> char {
        match self {
            Reliability::Reliable => 'R',
            Reliability::Unreliable => 'U',
        }
    }
}

impl fmt::Display for Reliability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// How many neighbors a node processes when it updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NeighborScope {
    /// `1`: exactly one incoming channel is processed.
    One,
    /// `M`: an arbitrary subset of incoming channels (possibly none or all).
    Multiple,
    /// `E`: every incoming channel.
    Every,
}

impl NeighborScope {
    /// All values, in paper order (`1`, `M`, `E`).
    pub const ALL: [NeighborScope; 3] =
        [NeighborScope::One, NeighborScope::Multiple, NeighborScope::Every];

    /// One-letter paper symbol.
    pub fn symbol(self) -> char {
        match self {
            NeighborScope::One => '1',
            NeighborScope::Multiple => 'M',
            NeighborScope::Every => 'E',
        }
    }
}

impl fmt::Display for NeighborScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// How many messages a node reads from each processed channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MessagePolicy {
    /// `O`: exactly one message per processed channel (`f ≡ 1`).
    One,
    /// `S`: unrestricted (`f` arbitrary, including 0 and ∞).
    Some,
    /// `F`: at least one message per processed channel (`f ≥ 1`).
    Forced,
    /// `A`: all messages in the channel (`f ≡ ∞`).
    All,
}

impl MessagePolicy {
    /// All values, in paper order (`O`, `S`, `F`, `A`).
    pub const ALL: [MessagePolicy; 4] =
        [MessagePolicy::One, MessagePolicy::Some, MessagePolicy::Forced, MessagePolicy::All];

    /// One-letter paper symbol.
    pub fn symbol(self) -> char {
        match self {
            MessagePolicy::One => 'O',
            MessagePolicy::Some => 'S',
            MessagePolicy::Forced => 'F',
            MessagePolicy::All => 'A',
        }
    }
}

impl fmt::Display for MessagePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// How many nodes update per step (the first dimension of Definition 2.6).
///
/// The paper — and everything in [`crate::edges`] and [`crate::closure`] —
/// fixes this to [`UpdaterCount::One`]; [`UpdaterCount::Unrestricted`] is
/// supported by the engine for Example A.6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum UpdaterCount {
    /// Exactly one node updates per step (`|U| = 1`).
    #[default]
    One,
    /// Any non-empty set of nodes updates per step.
    Unrestricted,
    /// Every node updates at every step (`U = V`).
    Every,
}

impl fmt::Display for UpdaterCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UpdaterCount::One => "one",
            UpdaterCount::Unrestricted => "unrestricted",
            UpdaterCount::Every => "every",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_match_paper() {
        assert_eq!(Reliability::Reliable.to_string(), "R");
        assert_eq!(Reliability::Unreliable.to_string(), "U");
        assert_eq!(NeighborScope::One.to_string(), "1");
        assert_eq!(NeighborScope::Multiple.to_string(), "M");
        assert_eq!(NeighborScope::Every.to_string(), "E");
        assert_eq!(MessagePolicy::One.to_string(), "O");
        assert_eq!(MessagePolicy::Some.to_string(), "S");
        assert_eq!(MessagePolicy::Forced.to_string(), "F");
        assert_eq!(MessagePolicy::All.to_string(), "A");
    }

    #[test]
    fn all_lists_are_complete_and_ordered() {
        assert_eq!(Reliability::ALL.len(), 2);
        assert_eq!(NeighborScope::ALL.len(), 3);
        assert_eq!(MessagePolicy::ALL.len(), 4);
        // Paper order: the symbols spell the column headers of Fig. 3/4.
        let syms: String = MessagePolicy::ALL.iter().map(|m| m.symbol()).collect();
        assert_eq!(syms, "OSFA");
    }

    #[test]
    fn updater_count_default_is_one() {
        assert_eq!(UpdaterCount::default(), UpdaterCount::One);
        assert_eq!(UpdaterCount::Unrestricted.to_string(), "unrestricted");
    }
}

//! The 24 communication models and their named families (Sec. 2.2–2.3).

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use crate::dims::{MessagePolicy, NeighborScope, Reliability};

/// A point in the model space: reliability × neighbor scope × message
/// policy (with one node updating per step, as in Sec. 2.3).
///
/// ```
/// use routelab_core::model::CommModel;
/// let m: CommModel = "RMS".parse()?;
/// assert_eq!(m.to_string(), "RMS");
/// assert!(m.family() == routelab_core::model::Family::Queueing);
/// # Ok::<(), routelab_core::model::ParseModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CommModel {
    /// Channel reliability (`R`/`U`).
    pub reliability: Reliability,
    /// Neighbors processed per update (`1`/`M`/`E`).
    pub scope: NeighborScope,
    /// Messages processed per channel (`O`/`S`/`F`/`A`).
    pub messages: MessagePolicy,
}

/// The named model families highlighted in Sec. 2.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// `R1A`, `RMA`, `REA` — nodes learn neighbors' *current* state
    /// ("poll one", "poll some", "poll all").
    Polling,
    /// `R1O`, `RMO`, `REO` — one message per processed channel, as in the
    /// original SPP work; `R1O` is the event-driven model.
    MessagePassing,
    /// `RMS`, `UMS` — unrestricted processing; the models closest to a
    /// conformant BGP implementation, and the strongest realizers.
    Queueing,
    /// Everything else in the taxonomy.
    Other,
}

impl CommModel {
    /// Creates a model from its three dimensions.
    pub fn new(reliability: Reliability, scope: NeighborScope, messages: MessagePolicy) -> Self {
        CommModel { reliability, scope, messages }
    }

    /// All 24 models in Figure 3/4 row order: all reliable models
    /// (`R1O, RMO, REO, R1S, …, REA`), then all unreliable ones.
    pub fn all() -> Vec<CommModel> {
        let mut out = Vec::with_capacity(24);
        for w in Reliability::ALL {
            for y in MessagePolicy::ALL {
                for x in NeighborScope::ALL {
                    out.push(CommModel::new(w, x, y));
                }
            }
        }
        out
    }

    /// The 12 reliable models in Figure 3 column order.
    pub fn all_reliable() -> Vec<CommModel> {
        CommModel::all().into_iter().filter(|m| m.reliability == Reliability::Reliable).collect()
    }

    /// The 12 unreliable models in Figure 4 column order.
    pub fn all_unreliable() -> Vec<CommModel> {
        CommModel::all().into_iter().filter(|m| m.reliability == Reliability::Unreliable).collect()
    }

    /// The family this model belongs to (Sec. 2.3 uses reliable channels for
    /// the polling and message-passing families; queueing covers `RMS` and
    /// `UMS`).
    pub fn family(self) -> Family {
        use MessagePolicy as P;
        use NeighborScope as S;
        use Reliability as R;
        match (self.reliability, self.scope, self.messages) {
            (R::Reliable, _, P::All) => Family::Polling,
            (R::Reliable, _, P::One) => Family::MessagePassing,
            (_, S::Multiple, P::Some) => Family::Queueing,
            _ => Family::Other,
        }
    }

    /// The same model over reliable channels.
    pub fn to_reliable(self) -> CommModel {
        CommModel { reliability: Reliability::Reliable, ..self }
    }

    /// The same model over unreliable channels.
    pub fn to_unreliable(self) -> CommModel {
        CommModel { reliability: Reliability::Unreliable, ..self }
    }

    /// Index of this model within [`CommModel::all`].
    pub fn index(self) -> usize {
        let w = match self.reliability {
            Reliability::Reliable => 0,
            Reliability::Unreliable => 1,
        };
        let y = MessagePolicy::ALL.iter().position(|&m| m == self.messages).expect("policy in ALL");
        let x = NeighborScope::ALL.iter().position(|&s| s == self.scope).expect("scope in ALL");
        w * 12 + y * 3 + x
    }
}

/// `Display` writes the paper's three-letter abbreviation, e.g. `RMS`.
impl fmt::Display for CommModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}{}", self.reliability.symbol(), self.scope.symbol(), self.messages.symbol())
    }
}

/// Error parsing a three-letter model abbreviation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModelError {
    input: String,
}

impl fmt::Display for ParseModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid model {:?}: expected [RU][1ME][OSFA], e.g. \"RMS\"", self.input)
    }
}

impl Error for ParseModelError {}

impl FromStr for CommModel {
    type Err = ParseModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseModelError { input: s.to_string() };
        let chars: Vec<char> = s.chars().collect();
        if chars.len() != 3 {
            return Err(err());
        }
        let reliability =
            Reliability::ALL.into_iter().find(|r| r.symbol() == chars[0]).ok_or_else(err)?;
        let scope =
            NeighborScope::ALL.into_iter().find(|x| x.symbol() == chars[1]).ok_or_else(err)?;
        let messages =
            MessagePolicy::ALL.into_iter().find(|y| y.symbol() == chars[2]).ok_or_else(err)?;
        Ok(CommModel { reliability, scope, messages })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_four_models_in_figure_order() {
        let all = CommModel::all();
        assert_eq!(all.len(), 24);
        let names: Vec<String> = all.iter().map(|m| m.to_string()).collect();
        assert_eq!(
            &names[..12],
            &["R1O", "RMO", "REO", "R1S", "RMS", "RES", "R1F", "RMF", "REF", "R1A", "RMA", "REA"]
        );
        assert_eq!(names[12], "U1O");
        assert_eq!(names[23], "UEA");
        // index() agrees with position.
        for (i, m) in all.iter().enumerate() {
            assert_eq!(m.index(), i, "{m}");
        }
    }

    #[test]
    fn parse_round_trips() {
        for m in CommModel::all() {
            let s = m.to_string();
            let back: CommModel = s.parse().unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "R", "RM", "RMSX", "XMS", "RXS", "RMX", "rms"] {
            assert!(bad.parse::<CommModel>().is_err(), "{bad:?}");
        }
        let e = "ZZZ".parse::<CommModel>().unwrap_err();
        assert!(e.to_string().contains("ZZZ"));
    }

    #[test]
    fn families_match_section_2_3() {
        let f = |s: &str| s.parse::<CommModel>().unwrap().family();
        assert_eq!(f("R1A"), Family::Polling);
        assert_eq!(f("RMA"), Family::Polling);
        assert_eq!(f("REA"), Family::Polling);
        assert_eq!(f("R1O"), Family::MessagePassing);
        assert_eq!(f("RMO"), Family::MessagePassing);
        assert_eq!(f("REO"), Family::MessagePassing);
        assert_eq!(f("RMS"), Family::Queueing);
        assert_eq!(f("UMS"), Family::Queueing);
        assert_eq!(f("RES"), Family::Other);
        assert_eq!(f("U1O"), Family::Other);
        assert_eq!(f("UEA"), Family::Other);
    }

    #[test]
    fn reliability_flips() {
        let m: CommModel = "RMS".parse().unwrap();
        assert_eq!(m.to_unreliable().to_string(), "UMS");
        assert_eq!(m.to_unreliable().to_reliable(), m);
    }

    #[test]
    fn reliable_and_unreliable_partitions() {
        assert_eq!(CommModel::all_reliable().len(), 12);
        assert_eq!(CommModel::all_unreliable().len(), 12);
        assert!(CommModel::all_reliable().iter().all(|m| m.reliability == Reliability::Reliable));
    }
}

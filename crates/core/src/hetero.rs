//! Heterogeneous (mixed) communication models — the paper's future work.
//!
//! Sec. 5 of the paper leaves two questions open: *mixed channels* (some
//! reliable, some lossy — the paper notes its unreliable-channel results
//! still apply) and *mixed node behavior* ("some nodes poll and others act
//! on messages"), for which the paper has no results. A [`HeteroModel`]
//! expresses both: a per-node neighbor scope and message policy, plus a set
//! of lossy channels. The explorer (`routelab-explore`) analyzes these
//! models exactly like the uniform ones.

use std::collections::BTreeSet;
use std::fmt;

use routelab_spp::{Channel, Graph, NodeId};

use crate::dims::{MessagePolicy, NeighborScope, Reliability};
use crate::model::CommModel;
use crate::step::{ActivationStep, Take};
use crate::validate::ModelViolation;

/// One node's collection behavior: the last two dimensions of the taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeModel {
    /// Neighbors processed per update.
    pub scope: NeighborScope,
    /// Messages processed per channel.
    pub messages: MessagePolicy,
}

impl fmt::Display for NodeModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.scope.symbol(), self.messages.symbol())
    }
}

/// A mixed communication model: per-node scope and message policy, and a
/// set of lossy channels (all others are reliable).
///
/// ```
/// use routelab_core::hetero::{HeteroModel, NodeModel};
/// use routelab_spp::{gadgets, NodeId};
///
/// let inst = gadgets::disagree();
/// // Everyone polls (REA)… except node x, which is event-driven (1O).
/// let mut h = HeteroModel::uniform(inst.node_count(), "REA".parse()?);
/// h.set_node(NodeId(1), NodeModel { scope: routelab_core::NeighborScope::One,
///                                   messages: routelab_core::MessagePolicy::One });
/// assert!(!h.is_uniform());
/// # Ok::<(), routelab_core::model::ParseModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeteroModel {
    per_node: Vec<NodeModel>,
    lossy: BTreeSet<Channel>,
    all_lossy: bool,
}

impl HeteroModel {
    /// Every node behaves per `model`; channels are lossy exactly when
    /// `model` is unreliable.
    pub fn uniform(node_count: usize, model: CommModel) -> Self {
        HeteroModel {
            per_node: vec![NodeModel { scope: model.scope, messages: model.messages }; node_count],
            lossy: BTreeSet::new(),
            all_lossy: model.reliability == Reliability::Unreliable,
        }
    }

    /// Overrides one node's behavior.
    pub fn set_node(&mut self, v: NodeId, m: NodeModel) -> &mut Self {
        self.per_node[v.index()] = m;
        self
    }

    /// Marks one channel as lossy.
    pub fn set_lossy(&mut self, c: Channel) -> &mut Self {
        self.lossy.insert(c);
        self
    }

    /// The behavior of node `v`.
    pub fn node(&self, v: NodeId) -> NodeModel {
        self.per_node[v.index()]
    }

    /// The reliability of channel `c`.
    pub fn reliability(&self, c: Channel) -> Reliability {
        if self.all_lossy || self.lossy.contains(&c) {
            Reliability::Unreliable
        } else {
            Reliability::Reliable
        }
    }

    /// `true` when every node behaves identically and channels are
    /// homogeneous — i.e. the model is really one of the 24 uniform ones.
    pub fn is_uniform(&self) -> bool {
        self.per_node.windows(2).all(|w| w[0] == w[1]) && (self.all_lossy || self.lossy.is_empty())
    }

    /// `true` when every channel is reliable and every node uses policy `A`
    /// (the queue-to-newest state abstraction is then exact).
    pub fn collapsible(&self) -> bool {
        !self.all_lossy
            && self.lossy.is_empty()
            && self.per_node.iter().all(|m| m.messages == MessagePolicy::All)
    }

    /// Number of nodes configured.
    pub fn node_count(&self) -> usize {
        self.per_node.len()
    }
}

/// Checks one activation step against a heterogeneous model (the mixed
/// analogue of [`crate::validate::check_step`]).
///
/// # Errors
///
/// Returns the first [`ModelViolation`] found.
pub fn check_step_hetero(
    model: &HeteroModel,
    g: &Graph,
    step: &ActivationStep,
) -> Result<(), ModelViolation> {
    if step.updates.len() != 1 {
        return Err(ModelViolation::UpdaterCount {
            expected: crate::dims::UpdaterCount::One,
            got: step.updates.len(),
        });
    }
    let u = &step.updates[0];
    let nm = model.node(u.node);
    for (i, a) in u.actions.iter().enumerate() {
        if a.channel().to != u.node || !g.has_edge(a.channel().from, a.channel().to) {
            return Err(ModelViolation::ForeignChannel { node: u.node });
        }
        if u.actions[i + 1..].iter().any(|b| b.channel() == a.channel()) {
            return Err(ModelViolation::DuplicateChannel { node: u.node });
        }
        let ok = match nm.messages {
            MessagePolicy::One => a.take() == Take::Count(1),
            MessagePolicy::Some => true,
            MessagePolicy::Forced => a.attends(),
            MessagePolicy::All => a.take() == Take::All,
        };
        if !ok {
            return Err(ModelViolation::Messages { expected: nm.messages, node: u.node });
        }
        if model.reliability(a.channel()) == Reliability::Reliable && !a.is_lossless() {
            return Err(ModelViolation::Dropped { node: u.node });
        }
    }
    let scope_ok = match nm.scope {
        NeighborScope::One => u.actions.len() == 1,
        NeighborScope::Multiple => true,
        NeighborScope::Every => u.actions.len() == g.degree(u.node),
    };
    if !scope_ok {
        return Err(ModelViolation::Scope { expected: nm.scope, node: u.node });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::{ChannelAction, NodeUpdate};
    use routelab_spp::gadgets;

    fn disagree() -> (routelab_spp::SppInstance, NodeId, NodeId, NodeId) {
        let inst = gadgets::disagree();
        let d = inst.dest();
        let x = inst.node_by_name("x").unwrap();
        let y = inst.node_by_name("y").unwrap();
        (inst, d, x, y)
    }

    #[test]
    fn uniform_round_trip() {
        let (inst, _, _, _) = disagree();
        for m in CommModel::all() {
            let h = HeteroModel::uniform(inst.node_count(), m);
            assert!(h.is_uniform(), "{m}");
            for c in inst.graph().channels() {
                assert_eq!(h.reliability(c), m.reliability, "{m}");
            }
            assert_eq!(
                h.collapsible(),
                m.reliability == Reliability::Reliable && m.messages == MessagePolicy::All,
                "{m}"
            );
        }
    }

    #[test]
    fn node_and_channel_overrides() {
        let (inst, d, x, _) = disagree();
        let mut h = HeteroModel::uniform(inst.node_count(), "REA".parse().unwrap());
        h.set_node(x, NodeModel { scope: NeighborScope::One, messages: MessagePolicy::One });
        assert!(!h.is_uniform());
        assert!(!h.collapsible()); // x no longer uses policy A
        assert_eq!(h.node(x).messages, MessagePolicy::One);
        let c = Channel::new(d, x);
        assert_eq!(h.reliability(c), Reliability::Reliable);
        h.set_lossy(c);
        assert_eq!(h.reliability(c), Reliability::Unreliable);
        assert!(!h.is_uniform());
    }

    #[test]
    fn hetero_validation_mixes_rules() {
        let (inst, d, x, y) = disagree();
        let mut h = HeteroModel::uniform(inst.node_count(), "REA".parse().unwrap());
        h.set_node(y, NodeModel { scope: NeighborScope::One, messages: MessagePolicy::One });
        let g = inst.graph();

        // x must still poll everything…
        let x_poll = ActivationStep::single(NodeUpdate::new(
            x,
            vec![
                ChannelAction::read_all(Channel::new(d, x)),
                ChannelAction::read_all(Channel::new(y, x)),
            ],
        ));
        assert!(check_step_hetero(&h, g, &x_poll).is_ok());
        let x_partial = ActivationStep::single(NodeUpdate::new(
            x,
            vec![ChannelAction::read_all(Channel::new(d, x))],
        ));
        assert!(matches!(check_step_hetero(&h, g, &x_partial), Err(ModelViolation::Scope { .. })));

        // …while y reads one message from one channel.
        let y_read = ActivationStep::single(NodeUpdate::new(
            y,
            vec![ChannelAction::read_one(Channel::new(x, y))],
        ));
        assert!(check_step_hetero(&h, g, &y_read).is_ok());
        let y_all = ActivationStep::single(NodeUpdate::new(
            y,
            vec![ChannelAction::read_all(Channel::new(x, y))],
        ));
        assert!(matches!(check_step_hetero(&h, g, &y_all), Err(ModelViolation::Messages { .. })));

        // Drops only on lossy channels.
        let y_drop = ActivationStep::single(NodeUpdate::new(
            y,
            vec![ChannelAction::drop_one(Channel::new(x, y))],
        ));
        assert!(matches!(check_step_hetero(&h, g, &y_drop), Err(ModelViolation::Dropped { .. })));
        h.set_lossy(Channel::new(x, y));
        assert!(check_step_hetero(&h, g, &y_drop).is_ok());
    }

    #[test]
    fn multi_node_steps_rejected() {
        let (inst, _, x, y) = disagree();
        let h = HeteroModel::uniform(inst.node_count(), "RMS".parse().unwrap());
        let step = ActivationStep::simultaneous(vec![NodeUpdate::bare(x), NodeUpdate::bare(y)]);
        assert!(matches!(
            check_step_hetero(&h, inst.graph(), &step),
            Err(ModelViolation::UpdaterCount { .. })
        ));
    }

    #[test]
    fn node_model_display() {
        let nm = NodeModel { scope: NeighborScope::Every, messages: MessagePolicy::All };
        assert_eq!(nm.to_string(), "EA");
    }
}

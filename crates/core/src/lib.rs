//! The paper's primary contribution, as a library: the taxonomy of
//! communication models and the realization relationships between them.
//!
//! * [`dims`] — the dimensions of the model space (Definition 2.6),
//! * [`model`] — the 24 [`CommModel`]s (`R`/`U` × `1`/`M`/`E` ×
//!   `O`/`S`/`F`/`A`) and the named families (polling, message-passing,
//!   queueing),
//! * [`step`] — activation steps and sequences (Definition 2.2),
//! * [`validate`] — per-model legality of activation steps,
//! * [`lattice`] — realization strengths (Definition 3.1/3.2) and bounds,
//! * [`edges`] — the foundational positive and negative results
//!   (Props 3.3–3.13, Thms 3.5, 3.7–3.9),
//! * [`closure`] — the transitive closure machinery of Sec. 3.4 that derives
//!   the full Figure 3/4 matrices from the foundational results,
//! * [`paper`] — the published Figure 3 and Figure 4 tables, cell by cell,
//!   for conformance checking.
//!
//! # Example: recompute a Figure 3 cell
//!
//! ```
//! use routelab_core::closure::derive_bounds;
//! use routelab_core::edges::foundational_facts;
//! use routelab_core::model::CommModel;
//!
//! let bounds = derive_bounds(&foundational_facts());
//! let r1s: CommModel = "R1S".parse()?;
//! let r1o: CommModel = "R1O".parse()?;
//! // Figure 3 row R1S, column R1O is "2": R1O realizes R1S exactly as a
//! // subsequence and provably no stronger.
//! let cell = bounds.get(r1s, r1o);
//! assert_eq!((cell.lower, cell.upper), (2, 2));
//! # Ok::<(), routelab_core::model::ParseModelError>(())
//! ```

pub mod closure;
pub mod dims;
pub mod edges;
pub mod hetero;
pub mod lattice;
pub mod model;
pub mod paper;
pub mod step;
pub mod validate;

pub use dims::{MessagePolicy, NeighborScope, Reliability, UpdaterCount};
pub use lattice::{CellBound, Strength};
pub use model::{CommModel, Family};
pub use step::{ActivationSeq, ActivationStep, ChannelAction, NodeUpdate, Take};

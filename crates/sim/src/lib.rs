//! Experiment harness: Monte-Carlo simulation, the oscillation survey, and
//! the binaries that regenerate every table and figure of the paper
//! (see DESIGN.md §4 for the experiment index).
//!
//! * [`table`] — plain-text table rendering for experiment reports,
//! * [`survey`] — which models admit fair oscillations on which instances
//!   (exhaustive model checking combined with realization transfer, exactly
//!   the paper's Sec. 3.5 reasoning),
//! * [`montecarlo`] — randomized-schedule convergence statistics across
//!   models and instance families (the E11 extension experiment),
//! * [`pool`] — the deterministic run-level worker pool executing those
//!   statistics (bit-identical results for every worker count),
//! * [`pipeline`] — byte-stable rendering for the registry-backed CLI
//!   surface (`routelab transforms list` / `pipeline` / `plan`),
//! * [`report`] — machine-readable JSON reports (`results/*.json`) layered
//!   over the text tables,
//! * [`cli`] — the shared `--threads`/`--quiet`/`--obs`/`--trace` flag
//!   plumbing of the experiment binaries, wiring the `routelab-obs`
//!   telemetry layer,
//! * [`flight`] — flight-recorder trace analysis: NDJSON trace parsing,
//!   oscillation-cycle reconstruction (`routelab trace explain`), and Chrome
//!   `trace_event` export (`routelab trace export-chrome`).
//!
//! # Example
//!
//! ```
//! use routelab_sim::montecarlo::{run_cell, CellConfig};
//! use routelab_spp::gadgets;
//!
//! let cell = run_cell(&gadgets::good_gadget(), "RMS".parse().unwrap(), &CellConfig {
//!     runs: 10,
//!     max_steps: 5_000,
//!     seed: 1,
//!     drop_prob: 0.2,
//! });
//! assert_eq!(cell.converged, 10); // no dispute wheel: always converges
//! ```

pub mod beyond;
pub mod cli;
pub mod examples;
pub mod flight;
pub mod montecarlo;
pub mod pipeline;
pub mod pool;
pub mod report;
pub mod survey;
pub mod table;

pub use montecarlo::{run_cell, run_grid, CellConfig, CellStats};
pub use pool::PoolConfig;
pub use report::{Json, RunReport};
pub use survey::{survey_instance, SurveyEntry, SurveyOutcome};
pub use table::Table;

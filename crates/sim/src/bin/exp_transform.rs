//! Experiment E10: mechanically verify every foundational positive result
//! (Props 3.3, 3.4, Thm 3.5, Prop 3.6, Thm 3.7) on fair runs over the gadget
//! corpus, plus composed realizations for notable model pairs.
//!
//! The edge table is not hardcoded here: it is drawn from the
//! named-transformation registry (`routelab_realize::registry`), so this
//! binary can never drift from the transforms the library actually exposes.

use routelab_core::model::CommModel;
use routelab_realize::plan::fair_prefix;
use routelab_realize::registry::Registry;
use routelab_realize::verify::{verify_edge, verify_path};
use routelab_sim::cli;
use routelab_sim::table::Table;
use routelab_spp::gadgets;

fn main() {
    let opts = cli::parse_common("exp-transform");
    let corpus = gadgets::corpus();
    let reg = Registry::global();
    let mut ok = true;

    println!("Registered transformations on round-robin runs (4n steps per gadget):\n");
    let mut table =
        Table::new(vec!["edge".into(), "via".into(), "claimed".into(), "gadgets verified".into()]);
    for entry in reg.transforms() {
        for edge in entry.edges() {
            let mut passed = 0;
            for (name, inst) in &corpus {
                let seq = fair_prefix(inst, edge.realized, 4 * inst.node_count());
                match verify_edge(inst, &seq, edge.kind, edge.realized, edge.realizer) {
                    Ok(report) if report.holds() => passed += 1,
                    Ok(report) => {
                        println!("FAIL {name}: {report}");
                        ok = false;
                    }
                    Err(e) => {
                        println!("ERROR {name}: {e}");
                        ok = false;
                    }
                }
            }
            table.row(vec![
                format!("{} <= {}", edge.realized, edge.realizer),
                entry.meta.cache_key(),
                edge.strength.to_string(),
                format!("{passed}/{}", corpus.len()),
            ]);
        }
    }
    println!("{table}");

    println!("Composed realizations (strongest registered chains):\n");
    let mut table =
        Table::new(vec!["pair".into(), "claimed".into(), "achieved".into(), "steps".into()]);
    let pairs = [
        ("REA", "UMS"),
        ("REO", "RMS"),
        ("RMA", "R1O"),
        ("U1O", "RMS"),
        ("REA", "R1O"),
        ("UES", "UMS"),
    ];
    let inst = gadgets::fig6();
    for (from, to) in pairs {
        let from: CommModel = from.parse().expect("model");
        let to: CommModel = to.parse().expect("model");
        let seq = fair_prefix(&inst, from, 3 * inst.node_count());
        match verify_path(&inst, &seq, from, to) {
            Ok(Some(report)) => {
                ok &= report.holds();
                table.row(vec![
                    format!("{from} inside {to}"),
                    report.claimed.to_string(),
                    format!("{:?}", report.achieved),
                    format!("{} -> {}", report.steps.0, report.steps.1),
                ]);
            }
            Ok(None) => {
                table.row(vec![
                    format!("{from} inside {to}"),
                    "no chain".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
            Err(e) => {
                println!("ERROR {from} -> {to}: {e}");
                ok = false;
            }
        }
    }
    println!("{table}");
    println!("verdict: {}", if ok { "ALL CONSTRUCTIONS HOLD" } else { "MISMATCH" });
    opts.exit(if ok { 0 } else { 1 });
}

//! Experiment E10: mechanically verify every foundational positive result
//! (Props 3.3, 3.4, Thm 3.5, Prop 3.6, Thm 3.7) on fair runs over the gadget
//! corpus, plus composed realizations for notable model pairs.

use routelab_core::model::CommModel;
use routelab_engine::runner::Runner;
use routelab_engine::schedule::{RoundRobin, Scheduler};
use routelab_realize::compose::foundational_edges;
use routelab_realize::verify::{verify_edge, verify_path};
use routelab_sim::cli;
use routelab_sim::table::Table;
use routelab_spp::gadgets;

fn rr_prefix(
    inst: &routelab_spp::SppInstance,
    model: CommModel,
    steps: usize,
) -> Vec<routelab_core::step::ActivationStep> {
    let mut sched = RoundRobin::new(inst, model);
    let mut runner = Runner::new(inst);
    let mut seq = Vec::with_capacity(steps);
    for _ in 0..steps {
        let s = sched.next_step(&runner.state()).expect("infinite schedule");
        runner.step(&s);
        seq.push(s);
    }
    seq
}

fn main() {
    let opts = cli::parse_common("exp-transform");
    let corpus = gadgets::corpus();
    let mut ok = true;

    println!("Foundational transformations on round-robin runs (4n steps per gadget):\n");
    let mut table =
        Table::new(vec!["edge".into(), "kind".into(), "claimed".into(), "gadgets verified".into()]);
    for edge in foundational_edges() {
        let mut passed = 0;
        for (name, inst) in &corpus {
            let seq = rr_prefix(inst, edge.realized, 4 * inst.node_count());
            match verify_edge(inst, &seq, edge.kind, edge.realized, edge.realizer) {
                Ok(report) if report.holds() => passed += 1,
                Ok(report) => {
                    println!("FAIL {name}: {report}");
                    ok = false;
                }
                Err(e) => {
                    println!("ERROR {name}: {e}");
                    ok = false;
                }
            }
        }
        table.row(vec![
            format!("{} <= {}", edge.realized, edge.realizer),
            format!("{:?}", edge.kind),
            edge.strength.to_string(),
            format!("{passed}/{}", corpus.len()),
        ]);
    }
    println!("{table}");

    println!("Composed realizations (strongest foundational chains):\n");
    let mut table =
        Table::new(vec!["pair".into(), "claimed".into(), "achieved".into(), "steps".into()]);
    let pairs = [
        ("REA", "UMS"),
        ("REO", "RMS"),
        ("RMA", "R1O"),
        ("U1O", "RMS"),
        ("REA", "R1O"),
        ("UES", "UMS"),
    ];
    let inst = gadgets::fig6();
    for (from, to) in pairs {
        let from: CommModel = from.parse().expect("model");
        let to: CommModel = to.parse().expect("model");
        let seq = rr_prefix(&inst, from, 3 * inst.node_count());
        match verify_path(&inst, &seq, from, to) {
            Ok(Some(report)) => {
                ok &= report.holds();
                table.row(vec![
                    format!("{from} inside {to}"),
                    report.claimed.to_string(),
                    format!("{:?}", report.achieved),
                    format!("{} -> {}", report.steps.0, report.steps.1),
                ]);
            }
            Ok(None) => {
                table.row(vec![
                    format!("{from} inside {to}"),
                    "no chain".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
            Err(e) => {
                println!("ERROR {from} -> {to}: {e}");
                ok = false;
            }
        }
    }
    println!("{table}");
    println!("verdict: {}", if ok { "ALL CONSTRUCTIONS HOLD" } else { "MISMATCH" });
    opts.exit(if ok { 0 } else { 1 });
}

//! Engine throughput benchmark: measures the interned hot path on the
//! pinned Monte-Carlo workload and writes `results/BENCH_engine.json`,
//! gated by `scripts/check_bench.py`.
//!
//! Two sections:
//!
//! * **grid** — the exact default `exp-montecarlo` grid (same instances,
//!   models, and cell configuration via [`pinned`]) at **one worker**, so
//!   the headline steps/s is a per-core engine number comparable across
//!   machines of the CI class. The JSON carries its own baseline (the
//!   pre-interning engine's figure) and the minimum speedup the gate
//!   enforces.
//! * **tenk** — a 10 000-node Gao–Rexford REA cell, the Internet-scale
//!   smoke: every run must converge within the step budget, proving the
//!   zero-allocation path handles large state without drowning in cache
//!   misses or memory.
//!
//! Usage: `exp_engine_bench [runs] [--threads N] [--quiet] [--obs]`
//! (`--threads` only affects the tenk section; the grid is always 1
//! worker).

use std::time::Instant;

use routelab_sim::cli;
use routelab_sim::montecarlo::{pinned, try_run_grid_with, CellConfig, CellReport};
use routelab_sim::pool::PoolConfig;
use routelab_sim::report::{write_json, Json};

/// Single-worker steps/s of the pinned grid before the interned-route
/// engine landed (`BENCH_montecarlo.json`, threads = 1). Only ever raise
/// this.
const BASELINE_STEPS_PER_SEC: f64 = 242_116.0;

/// The gate: the interned engine must hold at least this multiple of the
/// baseline on the pinned grid.
const MIN_SPEEDUP: f64 = 3.0;

const TENK_NODES: usize = 10_000;
const TENK_RUNS: usize = 4;

fn main() {
    let opts = cli::parse_common("exp-engine-bench");
    let mut runs = 40usize;
    for arg in &opts.rest {
        if let Ok(n) = arg.parse() {
            runs = n;
        } else {
            eprintln!("usage: exp-engine-bench [runs] [--threads N] [--quiet] [--obs]");
            opts.exit(2);
        }
    }

    // Section 1: the pinned grid, one worker.
    let cfg = pinned::config(runs);
    let models = pinned::models();
    let instances = pinned::instances();
    let one = PoolConfig::with_threads(1);
    opts.progress(format!(
        "grid: {} instances x {} models x {runs} runs @1t",
        instances.len(),
        models.len()
    ));
    let t0 = Instant::now();
    let mut total_steps = 0usize;
    for (name, inst) in &instances {
        let cells = match try_run_grid_with(inst, &models, &cfg, &one) {
            Ok(cells) => cells,
            Err(e) => {
                eprintln!("error in {name}: {e}");
                opts.exit(2);
            }
        };
        total_steps += cells.iter().map(|c| c.total_steps).sum::<usize>();
    }
    let grid_wall = t0.elapsed();
    let steps_per_sec = total_steps as f64 / grid_wall.as_secs_f64();
    let speedup = steps_per_sec / BASELINE_STEPS_PER_SEC;
    println!(
        "grid @1t: {total_steps} steps in {:.0} ms -> {steps_per_sec:.0} steps/s \
         ({speedup:.2}x the {BASELINE_STEPS_PER_SEC:.0} steps/s baseline, gate {MIN_SPEEDUP:.1}x)",
        grid_wall.as_secs_f64() * 1e3
    );

    // Section 2: the 10k-node Gao–Rexford cell.
    let tenk_threads = opts.pool.resolved_threads();
    opts.progress(format!("tenk: gao-rexford n={TENK_NODES}, {TENK_RUNS} runs @{tenk_threads}t"));
    let t1 = Instant::now();
    let inst = pinned::family_instance(TENK_NODES);
    let tenk_cfg = CellConfig {
        runs: TENK_RUNS,
        max_steps: pinned::family_max_steps(TENK_NODES),
        seed: 42,
        drop_prob: 0.25,
    };
    let rea = vec!["REA".parse().expect("model")];
    let tenk: CellReport = match try_run_grid_with(&inst, &rea, &tenk_cfg, &opts.pool) {
        Ok(cells) => cells[0],
        Err(e) => {
            eprintln!("error in tenk cell: {e}");
            opts.exit(2);
        }
    };
    let tenk_wall = t1.elapsed();
    println!(
        "tenk @{tenk_threads}t: {}/{} converged, mean {:.0} +/- {:.0} steps, {:.0} steps/s, {:.0} ms",
        tenk.stats.converged,
        tenk.stats.runs,
        tenk.stats.mean_steps,
        tenk.steps_std,
        tenk.steps_per_sec(),
        tenk_wall.as_secs_f64() * 1e3
    );

    let json = Json::obj([
        ("bench", Json::str("engine")),
        ("threads", Json::int(1)),
        ("baseline_steps_per_sec", Json::Num(BASELINE_STEPS_PER_SEC)),
        ("min_speedup", Json::Num(MIN_SPEEDUP)),
        ("wall_ms", Json::Num(grid_wall.as_secs_f64() * 1e3)),
        ("total_steps", Json::int(total_steps)),
        ("steps_per_sec", Json::Num(steps_per_sec)),
        ("speedup", Json::Num(speedup)),
        (
            "tenk",
            Json::obj([
                ("nodes", Json::int(inst.node_count())),
                ("edges", Json::int(inst.graph().edge_count())),
                ("model", Json::str("REA")),
                ("threads", Json::int(tenk_threads)),
                ("runs", Json::int(tenk.stats.runs)),
                ("max_steps", Json::int(tenk_cfg.max_steps)),
                ("converged", Json::int(tenk.stats.converged)),
                ("mean_steps", Json::Num(tenk.stats.mean_steps)),
                ("steps_std", Json::Num(tenk.steps_std)),
                ("wall_ms", Json::Num(tenk_wall.as_secs_f64() * 1e3)),
                ("steps_per_sec", Json::Num(tenk.steps_per_sec())),
                ("total_steps", Json::int(tenk.total_steps)),
            ]),
        ),
    ]);
    match write_json("BENCH_engine", &json) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => {
            eprintln!("error writing JSON results: {e}");
            opts.exit(2);
        }
    }
    opts.finish();
}

//! Experiment E14 (extension): resolve blank Figure 3/4 cells by combining
//! exhaustive verdicts on DISAGREE with the Sec. 3.4 closure.
//!
//! Prints the text report and writes `results/exp-beyond.json` (schema in
//! EXPERIMENTS.md).

use std::time::Instant;

use routelab_core::closure::derive_bounds;
use routelab_core::edges::foundational_facts;
use routelab_core::model::CommModel;
use routelab_core::paper::{compare, figure3, figure4, CellVerdict};
use routelab_explore::graph::ExploreConfig;
use routelab_sim::beyond::{extended_bounds, newly_determined, try_disagree_separations};
use routelab_sim::cli;
use routelab_sim::report::{write_json, Json};
use routelab_sim::table::Table;

fn main() {
    let opts = cli::parse_common("exp-beyond");
    if !opts.rest.is_empty() {
        eprintln!("usage: exp-beyond [--threads N] [--quiet] [--obs] [--no-reduce]");
        opts.exit(2);
    }
    let t0 = Instant::now();
    let cfg = ExploreConfig {
        threads: opts.pool.threads,
        reduce: opts.reduce(),
        spill_dir: opts.spill_dir.clone(),
        ..ExploreConfig::default()
    };
    opts.progress("harvesting exhaustive verdicts for all 24 models on DISAGREE…");
    let mut harvest_span = routelab_obs::span("beyond.harvest");
    let seps = match try_disagree_separations(&cfg) {
        Ok(seps) => seps,
        Err(e) => {
            eprintln!("exp-beyond: {e}");
            opts.exit(2);
        }
    };
    harvest_span.field("separations", seps.len());
    drop(harvest_span);
    println!("{} empirical separations found\n", seps.len());

    let base = derive_bounds(&foundational_facts());
    let (facts, extended) = extended_bounds(&seps);
    println!(
        "facts: {} positives, {} negatives ({} empirical)",
        facts.positives.len(),
        facts.negatives.len(),
        facts.negatives.len() - foundational_facts().negatives.len(),
    );
    println!("newly determined or tightened cells: {}\n", newly_determined(&base, &extended));

    println!("extended Figure 4 (new -1 entries fill formerly blank cells):\n");
    println!("{}", extended.render(&CommModel::all_unreliable()));

    // Show exactly which formerly-blank published cells are now decided.
    let mut tightened: Vec<(CommModel, CommModel, String, String)> = Vec::new();
    let mut table =
        Table::new(vec!["realized".into(), "realizer".into(), "published".into(), "now".into()]);
    for paper_table in [figure3(), figure4()] {
        for &a in &paper_table.rows {
            for &b in &paper_table.cols {
                let Some(published) = paper_table.get(a, b) else { continue };
                let now = extended.get(a, b);
                if now.refines(published) && now != published {
                    tightened.push((a, b, published.token(), now.token()));
                    table.row(vec![a.to_string(), b.to_string(), published.token(), now.token()]);
                }
            }
        }
    }
    println!("published cells tightened by the extension ({}):\n", table.len());
    println!("{table}");

    let mut ok = true;
    for t in [figure3(), figure4()] {
        let cmp = compare(&extended, &t);
        ok &= cmp.count(CellVerdict::Conflict) == 0 && cmp.count(CellVerdict::Looser) == 0;
    }
    println!(
        "consistency with the published tables: {}",
        if ok { "OK (extension only tightens)" } else { "CONFLICT" }
    );
    println!("\ncaveat: for O/F-policy unreliable models the convergence verdicts use the");
    println!("strict reading of Definition 2.4 drop fairness; for A-policy models (U1A,");
    println!("UMA, UEA) the readings coincide, so those -1 entries are unconditional.");

    let json = Json::obj([
        ("experiment", Json::str("beyond")),
        ("wall_ms", Json::Num(t0.elapsed().as_secs_f64() * 1e3)),
        ("separations", Json::int(seps.len())),
        (
            "facts",
            Json::obj([
                ("positives", Json::int(facts.positives.len())),
                ("negatives", Json::int(facts.negatives.len())),
                (
                    "empirical_negatives",
                    Json::int(facts.negatives.len() - foundational_facts().negatives.len()),
                ),
            ]),
        ),
        ("newly_determined", Json::int(newly_determined(&base, &extended))),
        (
            "tightened_published_cells",
            Json::Arr(
                tightened
                    .iter()
                    .map(|(a, b, published, now)| {
                        Json::obj([
                            ("realized", Json::str(a.to_string())),
                            ("realizer", Json::str(b.to_string())),
                            ("published", Json::str(published.clone())),
                            ("now", Json::str(now.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("consistent_with_published", Json::Bool(ok)),
    ]);
    match write_json("exp-beyond", &json) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => {
            eprintln!("error writing JSON results: {e}");
            opts.exit(2);
        }
    }
    opts.exit(if ok { 0 } else { 1 });
}

//! Experiment E11 (extension): Monte-Carlo convergence statistics of
//! randomized fair schedules across communication models and instance
//! families — dispute-wheel-carrying gadgets, wheel-free Gao–Rexford
//! topologies, and random policies.
//!
//! Usage: `exp_montecarlo [runs] [--threads N] [--quiet] [--obs]`. Prints
//! text tables and writes `results/exp-montecarlo.json` (full report) plus
//! `results/BENCH_montecarlo.json` (throughput summary); see EXPERIMENTS.md
//! for the schema.

use std::time::Instant;

use routelab_core::model::CommModel;
use routelab_sim::cli::{self, CommonOpts};
use routelab_sim::montecarlo::{try_run_grid_with, CellConfig, CellReport};
use routelab_sim::pool::PoolConfig;
use routelab_sim::report::{write_json, GroupReport, RunReport};
use routelab_sim::table::Table;
use routelab_spp::generator::{gao_rexford_instance, random_instance, RandomSppConfig};
use routelab_spp::{dispute, gadgets, SppInstance};

fn report(
    opts: &CommonOpts,
    name: &str,
    inst: &SppInstance,
    models: &[CommModel],
    cfg: &CellConfig,
    pool: &PoolConfig,
) -> GroupReport {
    let wheel_free = dispute::is_wheel_free(inst);
    let wheel = if wheel_free { "wheel-free" } else { "has dispute wheel" };
    println!(
        "== {name}: {} nodes, {} edges, {wheel} ==",
        inst.node_count(),
        inst.graph().edge_count()
    );
    opts.progress(format!("running {name}: {} models x {} runs", models.len(), cfg.runs));
    let mut group_span = routelab_obs::span("mc.group");
    group_span.field("group", name.to_string());
    let cells: Vec<CellReport> = match try_run_grid_with(inst, models, cfg, pool) {
        Ok(cells) => cells,
        Err(e) => {
            eprintln!("error: {e}");
            opts.exit(2);
        }
    };
    let mut table = Table::new(vec![
        "model".into(),
        "conv rate".into(),
        "unfair quiesce".into(),
        "stable outcome".into(),
        "mean steps".into(),
        "mean msgs".into(),
        "mean drops".into(),
    ]);
    for c in &cells {
        let stats = &c.stats;
        table.row(vec![
            c.model.to_string(),
            format!("{:.2}", stats.convergence_rate()),
            format!("{:.2}", stats.converged_unfairly as f64 / stats.runs.max(1) as f64),
            format!("{:.2}", stats.stable_outcome as f64 / stats.runs.max(1) as f64),
            format!("{:.1}", stats.mean_steps),
            format!("{:.1}", stats.mean_messages),
            format!("{:.1}", stats.mean_dropped),
        ]);
    }
    println!("{table}");
    GroupReport::new(name, inst, wheel_free, cells)
}

fn main() {
    let opts = cli::parse_common("exp-montecarlo");
    let t0 = Instant::now();
    let mut runs = 40usize;
    let pool = opts.pool;
    for arg in &opts.rest {
        if let Ok(n) = arg.parse() {
            runs = n;
        } else {
            eprintln!("usage: exp-montecarlo [runs] [--threads N] [--quiet] [--obs]");
            opts.exit(2);
        }
    }
    let cfg = CellConfig { runs, max_steps: 30_000, seed: 42, drop_prob: 0.25 };
    let models: Vec<CommModel> = ["R1O", "REO", "RMS", "UMS", "R1A", "RMA", "REA", "U1O"]
        .iter()
        .map(|s| s.parse().expect("model"))
        .collect();

    let mut groups = vec![
        report(&opts, "DISAGREE", &gadgets::disagree(), &models, &cfg, &pool),
        report(&opts, "BAD-GADGET", &gadgets::bad_gadget(), &models, &cfg, &pool),
        report(&opts, "GOOD-GADGET", &gadgets::good_gadget(), &models, &cfg, &pool),
        report(&opts, "FIG6", &gadgets::fig6(), &models, &cfg, &pool),
    ];

    for n in [8, 16] {
        let gr = gao_rexford_instance(n, 7, 6, 5).expect("generator");
        groups.push(report(&opts, &format!("GAO-REXFORD n={n}"), &gr, &models, &cfg, &pool));
    }
    let rnd = random_instance(&RandomSppConfig { nodes: 10, seed: 5, ..Default::default() })
        .expect("generator");
    groups.push(report(&opts, "RANDOM n=10", &rnd, &models, &cfg, &pool));

    println!("interpretation: wheel-free instances must show conv rate 1.00 in every model;");
    println!("instances with a dispute wheel converge under randomized fair schedules with");
    println!("probability depending on the model — polling models (R1A/RMA/REA) converge on");
    println!("DISAGREE/FIG6 always, message-passing and queueing models may stall (rate < 1).");
    println!("'unfair quiesce' counts runs that went quiet only because the final message on");
    println!("some channel was dropped — executions Definition 2.4 rules out (this is how a");
    println!("lossy network can appear to 'solve' even the unsolvable BAD-GADGET); 'stable");
    println!("outcome' is the fraction of quiescent runs (fair or not) whose final assignment");
    println!("is actually a stable solution of the instance.");

    let run_report = RunReport {
        experiment: "montecarlo".into(),
        threads: pool.resolved_threads(),
        config: cfg,
        groups,
        wall: t0.elapsed(),
    };
    match write_json("exp-montecarlo", &run_report.to_json())
        .and_then(|p| write_json("BENCH_montecarlo", &run_report.bench_json()).map(|b| (p, b)))
    {
        Ok((p, b)) => println!("wrote {} and {}", p.display(), b.display()),
        Err(e) => {
            eprintln!("error writing JSON results: {e}");
            opts.exit(2);
        }
    }
    opts.finish();
}

//! Experiment E11 (extension): Monte-Carlo convergence statistics of
//! randomized fair schedules across communication models and instance
//! families — dispute-wheel-carrying gadgets, wheel-free Gao–Rexford
//! topologies, and random policies.
//!
//! Usage: `exp_montecarlo [runs] [--threads N] [--quiet] [--obs]`. Prints
//! text tables and writes `results/exp-montecarlo.json` (full report) plus
//! `results/BENCH_montecarlo.json` (throughput summary); see EXPERIMENTS.md
//! for the schema.
//!
//! The large-topology lane `exp_montecarlo [runs] --family gao-rexford
//! --nodes N [--models LIST] [--max-steps M]` runs one Internet-scale
//! Gao–Rexford cell family instead of the classic grid. Statistics stream
//! through bounded-memory accumulators (no per-run records are retained),
//! so `--nodes 10000` works in a CI smoke budget; results land in
//! `results/exp-montecarlo-family.json`.

use std::time::Instant;

use routelab_core::model::CommModel;
use routelab_sim::cli::{self, CommonOpts};
use routelab_sim::montecarlo::{pinned, try_run_grid_with, CellConfig, CellReport};
use routelab_sim::pool::PoolConfig;
use routelab_sim::report::{write_json, GroupReport, Json, RunReport};
use routelab_sim::table::Table;
use routelab_spp::{dispute, SppInstance};

const USAGE: &str = "usage: exp-montecarlo [runs] [--family gao-rexford --nodes N] \
                     [--models LIST] [--max-steps M] [--threads N] [--quiet] [--obs]";

fn report(
    opts: &CommonOpts,
    name: &str,
    inst: &SppInstance,
    models: &[CommModel],
    cfg: &CellConfig,
    pool: &PoolConfig,
) -> GroupReport {
    let wheel_free = dispute::is_wheel_free(inst);
    let wheel = if wheel_free { "wheel-free" } else { "has dispute wheel" };
    println!(
        "== {name}: {} nodes, {} edges, {wheel} ==",
        inst.node_count(),
        inst.graph().edge_count()
    );
    opts.progress(format!("running {name}: {} models x {} runs", models.len(), cfg.runs));
    let mut group_span = routelab_obs::span("mc.group");
    group_span.field("group", name.to_string());
    let cells: Vec<CellReport> = match try_run_grid_with(inst, models, cfg, pool) {
        Ok(cells) => cells,
        Err(e) => {
            eprintln!("error: {e}");
            opts.exit(2);
        }
    };
    let mut table = Table::new(vec![
        "model".into(),
        "conv rate".into(),
        "unfair quiesce".into(),
        "stable outcome".into(),
        "mean steps".into(),
        "mean msgs".into(),
        "mean drops".into(),
    ]);
    for c in &cells {
        let stats = &c.stats;
        table.row(vec![
            c.model.to_string(),
            format!("{:.2}", stats.convergence_rate()),
            format!("{:.2}", stats.converged_unfairly as f64 / stats.runs.max(1) as f64),
            format!("{:.2}", stats.stable_outcome as f64 / stats.runs.max(1) as f64),
            format!("{:.1}", stats.mean_steps),
            format!("{:.1}", stats.mean_messages),
            format!("{:.1}", stats.mean_dropped),
        ]);
    }
    println!("{table}");
    GroupReport::new(name, inst, wheel_free, cells)
}

/// Parsed command line; `runs` stays `None` until a positional count is
/// given so the grid and family lanes can apply different defaults.
struct Args {
    runs: Option<usize>,
    family: Option<String>,
    nodes: usize,
    models: Option<Vec<CommModel>>,
    max_steps: Option<usize>,
}

fn usage(opts: &CommonOpts) -> ! {
    eprintln!("{USAGE}");
    opts.exit(2)
}

fn parse_args(opts: &CommonOpts) -> Args {
    let mut args = Args { runs: None, family: None, nodes: 10_000, models: None, max_steps: None };
    let mut it = opts.rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--family" => args.family = Some(it.next().unwrap_or_else(|| usage(opts)).clone()),
            "--nodes" => {
                args.nodes = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage(opts));
            }
            "--max-steps" => {
                args.max_steps =
                    Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage(opts)));
            }
            "--models" => {
                let list = it.next().unwrap_or_else(|| usage(opts));
                let parsed: Result<Vec<CommModel>, _> =
                    list.split(',').map(|s| s.trim().parse()).collect();
                match parsed {
                    Ok(models) if !models.is_empty() => args.models = Some(models),
                    _ => {
                        eprintln!("error: bad --models list {list:?}");
                        usage(opts)
                    }
                }
            }
            other => match other.parse() {
                Ok(n) => args.runs = Some(n),
                Err(_) => usage(opts),
            },
        }
    }
    args
}

/// The `--family` lane: one large-topology cell family with streaming
/// statistics, reported with standard deviations and throughput.
fn run_family(opts: &CommonOpts, args: &Args, t0: Instant) {
    let family = args.family.as_deref().expect("family lane");
    if family != "gao-rexford" {
        eprintln!("error: unknown family {family:?} (supported: gao-rexford)");
        opts.exit(2);
    }
    let nodes = args.nodes;
    let runs = args.runs.unwrap_or(8);
    let max_steps = args.max_steps.unwrap_or_else(|| pinned::family_max_steps(nodes));
    let models = args.models.clone().unwrap_or_else(|| vec!["REA".parse().expect("model")]);
    let cfg = CellConfig { runs, max_steps, seed: 42, drop_prob: 0.25 };

    opts.progress(format!("generating gao-rexford n={nodes}"));
    let gen0 = Instant::now();
    let inst = pinned::family_instance(nodes);
    let gen_ms = gen0.elapsed().as_secs_f64() * 1e3;
    println!(
        "== GAO-REXFORD n={nodes}: {} nodes, {} edges, generated in {gen_ms:.0} ms ==",
        inst.node_count(),
        inst.graph().edge_count()
    );
    opts.progress(format!(
        "running {} models x {runs} runs, {max_steps} step budget",
        models.len()
    ));
    let cells = match try_run_grid_with(&inst, &models, &cfg, &opts.pool) {
        Ok(cells) => cells,
        Err(e) => {
            eprintln!("error: {e}");
            opts.exit(2);
        }
    };

    let mut table = Table::new(vec![
        "model".into(),
        "conv rate".into(),
        "mean steps".into(),
        "std steps".into(),
        "mean msgs".into(),
        "steps/s".into(),
    ]);
    for c in &cells {
        table.row(vec![
            c.model.to_string(),
            format!("{:.2}", c.stats.convergence_rate()),
            format!("{:.1}", c.stats.mean_steps),
            format!("{:.1}", c.steps_std),
            format!("{:.1}", c.stats.mean_messages),
            format!("{:.0}", c.steps_per_sec()),
        ]);
    }
    println!("{table}");
    println!("interpretation: Gao–Rexford policies are wheel-free, so every reliable-model");
    println!("run must converge within the step budget; 'std steps' is the sample standard");
    println!("deviation of steps-to-convergence across runs (streaming Welford accumulator).");

    let json = Json::obj([
        ("experiment", Json::str("montecarlo-family")),
        ("family", Json::str(family)),
        ("nodes", Json::int(inst.node_count())),
        ("edges", Json::int(inst.graph().edge_count())),
        ("threads", Json::int(opts.pool.resolved_threads())),
        ("wall_ms", Json::Num(t0.elapsed().as_secs_f64() * 1e3)),
        ("generate_ms", Json::Num(gen_ms)),
        (
            "config",
            Json::obj([
                ("runs", Json::int(cfg.runs)),
                ("max_steps", Json::int(cfg.max_steps)),
                ("seed", Json::int(cfg.seed as usize)),
                ("drop_prob", Json::Num(cfg.drop_prob)),
            ]),
        ),
        (
            "cells",
            Json::Arr(
                cells
                    .iter()
                    .map(|c| {
                        Json::obj([
                            ("model", Json::str(c.model.to_string())),
                            ("runs", Json::int(c.stats.runs)),
                            ("converged", Json::int(c.stats.converged)),
                            ("converged_unfairly", Json::int(c.stats.converged_unfairly)),
                            ("stable_outcome", Json::int(c.stats.stable_outcome)),
                            ("convergence_rate", Json::Num(c.stats.convergence_rate())),
                            ("mean_steps", Json::Num(c.stats.mean_steps)),
                            ("steps_std", Json::Num(c.steps_std)),
                            ("mean_messages", Json::Num(c.stats.mean_messages)),
                            ("mean_dropped", Json::Num(c.stats.mean_dropped)),
                            ("wall_ms", Json::Num(c.wall.as_secs_f64() * 1e3)),
                            ("steps_per_sec", Json::Num(c.steps_per_sec())),
                            ("total_steps", Json::int(c.total_steps)),
                            ("total_sent", Json::int(c.total_sent)),
                            ("total_dropped", Json::int(c.total_dropped)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    match write_json("exp-montecarlo-family", &json) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => {
            eprintln!("error writing JSON results: {e}");
            opts.exit(2);
        }
    }
    opts.finish();
}

fn main() {
    let opts = cli::parse_common("exp-montecarlo");
    let t0 = Instant::now();
    let args = parse_args(&opts);
    if args.family.is_some() {
        run_family(&opts, &args, t0);
        return;
    }
    let pool = opts.pool;
    let cfg = pinned::config(args.runs.unwrap_or(40));
    let models = args.models.clone().unwrap_or_else(pinned::models);

    let groups: Vec<GroupReport> = pinned::instances()
        .iter()
        .map(|(name, inst)| report(&opts, name, inst, &models, &cfg, &pool))
        .collect();

    println!("interpretation: wheel-free instances must show conv rate 1.00 in every model;");
    println!("instances with a dispute wheel converge under randomized fair schedules with");
    println!("probability depending on the model — polling models (R1A/RMA/REA) converge on");
    println!("DISAGREE/FIG6 always, message-passing and queueing models may stall (rate < 1).");
    println!("'unfair quiesce' counts runs that went quiet only because the final message on");
    println!("some channel was dropped — executions Definition 2.4 rules out (this is how a");
    println!("lossy network can appear to 'solve' even the unsolvable BAD-GADGET); 'stable");
    println!("outcome' is the fraction of quiescent runs (fair or not) whose final assignment");
    println!("is actually a stable solution of the instance.");

    let run_report = RunReport {
        experiment: "montecarlo".into(),
        threads: pool.resolved_threads(),
        config: cfg,
        groups,
        wall: t0.elapsed(),
    };
    match write_json("exp-montecarlo", &run_report.to_json())
        .and_then(|p| write_json("BENCH_montecarlo", &run_report.bench_json()).map(|b| (p, b)))
    {
        Ok((p, b)) => println!("wrote {} and {}", p.display(), b.display()),
        Err(e) => {
            eprintln!("error writing JSON results: {e}");
            opts.exit(2);
        }
    }
    opts.finish();
}

//! Experiment E11 (extension): Monte-Carlo convergence statistics of
//! randomized fair schedules across communication models and instance
//! families — dispute-wheel-carrying gadgets, wheel-free Gao–Rexford
//! topologies, and random policies.

use routelab_core::model::CommModel;
use routelab_sim::montecarlo::{run_grid, CellConfig};
use routelab_sim::table::Table;
use routelab_spp::generator::{gao_rexford_instance, random_instance, RandomSppConfig};
use routelab_spp::{dispute, gadgets, SppInstance};

fn report(name: &str, inst: &SppInstance, models: &[CommModel], cfg: &CellConfig) {
    let wheel = if dispute::is_wheel_free(inst) { "wheel-free" } else { "has dispute wheel" };
    println!(
        "== {name}: {} nodes, {} edges, {wheel} ==",
        inst.node_count(),
        inst.graph().edge_count()
    );
    let mut table = Table::new(vec![
        "model".into(),
        "conv rate".into(),
        "unfair quiesce".into(),
        "stable outcome".into(),
        "mean steps".into(),
        "mean msgs".into(),
        "mean drops".into(),
    ]);
    for (m, stats) in run_grid(inst, models, cfg) {
        table.row(vec![
            m.to_string(),
            format!("{:.2}", stats.convergence_rate()),
            format!("{:.2}", stats.converged_unfairly as f64 / stats.runs.max(1) as f64),
            format!("{:.2}", stats.stable_outcome as f64 / stats.runs.max(1) as f64),
            format!("{:.1}", stats.mean_steps),
            format!("{:.1}", stats.mean_messages),
            format!("{:.1}", stats.mean_dropped),
        ]);
    }
    println!("{table}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let runs = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(40);
    let cfg = CellConfig { runs, max_steps: 30_000, seed: 42, drop_prob: 0.25 };
    let models: Vec<CommModel> = ["R1O", "REO", "RMS", "UMS", "R1A", "RMA", "REA", "U1O"]
        .iter()
        .map(|s| s.parse().expect("model"))
        .collect();

    report("DISAGREE", &gadgets::disagree(), &models, &cfg);
    report("BAD-GADGET", &gadgets::bad_gadget(), &models, &cfg);
    report("GOOD-GADGET", &gadgets::good_gadget(), &models, &cfg);
    report("FIG6", &gadgets::fig6(), &models, &cfg);

    for n in [8, 16] {
        let gr = gao_rexford_instance(n, 7, 6, 5).expect("generator");
        report(&format!("GAO-REXFORD n={n}"), &gr, &models, &cfg);
    }
    let rnd = random_instance(&RandomSppConfig { nodes: 10, seed: 5, ..Default::default() })
        .expect("generator");
    report("RANDOM n=10", &rnd, &models, &cfg);

    println!("interpretation: wheel-free instances must show conv rate 1.00 in every model;");
    println!("instances with a dispute wheel converge under randomized fair schedules with");
    println!("probability depending on the model — polling models (R1A/RMA/REA) converge on");
    println!("DISAGREE/FIG6 always, message-passing and queueing models may stall (rate < 1).");
    println!("'unfair quiesce' counts runs that went quiet only because the final message on");
    println!("some channel was dropped — executions Definition 2.4 rules out (this is how a");
    println!("lossy network can appear to 'solve' even the unsolvable BAD-GADGET); 'stable");
    println!("outcome' is the fraction of quiescent runs (fair or not) whose final assignment");
    println!("is actually a stable solution of the instance.");
}

//! Experiment E1: regenerate **Figure 3** — the ability of reliable-channel
//! models to realize all 24 models — from the foundational results, and
//! compare cell-by-cell with the published table.

use routelab_core::closure::derive_bounds;
use routelab_core::edges::foundational_facts;
use routelab_core::model::CommModel;
use routelab_core::paper::{compare, figure3, CellVerdict};
use routelab_sim::cli;

fn main() {
    let opts = cli::parse_common("exp-fig3");
    let facts = foundational_facts();
    let bounds = derive_bounds(&facts);
    println!("Figure 3 (computed): entry (row A, col B) = B's ability to realize A");
    println!("4 exact | 3 repetition | 2 subsequence | -1 no oscillation preservation");
    println!(">=k / <=k bounds | . unknown | - diagonal\n");
    println!("{}", bounds.render(&CommModel::all_reliable()));

    let cmp = compare(&bounds, &figure3());
    println!("Comparison with the published Figure 3:");
    println!("{cmp}");
    let ok = cmp.count(CellVerdict::Conflict) == 0 && cmp.count(CellVerdict::Looser) == 0;
    println!(
        "verdict: {}",
        if ok { "REPRODUCED (no conflicts, nothing weaker than published)" } else { "MISMATCH" }
    );
    opts.exit(if ok { 0 } else { 1 });
}

//! Experiment E2: regenerate **Figure 4** — the ability of unreliable-channel
//! models to realize all 24 models — and compare with the published table.

use routelab_core::closure::derive_bounds;
use routelab_core::edges::foundational_facts;
use routelab_core::model::CommModel;
use routelab_core::paper::{compare, figure4, CellVerdict};
use routelab_sim::cli;

fn main() {
    let opts = cli::parse_common("exp-fig4");
    let bounds = derive_bounds(&foundational_facts());
    println!("Figure 4 (computed): entry (row A, col B) = B's ability to realize A\n");
    println!("{}", bounds.render(&CommModel::all_unreliable()));

    let cmp = compare(&bounds, &figure4());
    println!("Comparison with the published Figure 4:");
    println!("{cmp}");
    let ok = cmp.count(CellVerdict::Conflict) == 0 && cmp.count(CellVerdict::Looser) == 0;
    println!(
        "verdict: {}",
        if ok { "REPRODUCED (no conflicts, nothing weaker than published)" } else { "MISMATCH" }
    );
    opts.exit(if ok { 0 } else { 1 });
}

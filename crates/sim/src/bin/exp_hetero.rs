//! Experiment E13 (extension): the paper's open questions from Sec. 5 —
//! *mixed* configurations. "Although unreliable channels model reliable
//! channels … we do not have results when, e.g., some nodes poll and others
//! act on messages." This binary answers those questions for the paper's
//! own gadgets by exhaustive model checking.

use routelab_core::dims::{MessagePolicy, NeighborScope};
use routelab_core::hetero::{HeteroModel, NodeModel};
use routelab_core::model::CommModel;
use routelab_explore::graph::ExploreConfig;
use routelab_explore::oscillation::{analyze_hetero, Verdict};
use routelab_sim::cli;
use routelab_sim::table::Table;
use routelab_spp::{gadgets, Channel, SppInstance};

const POLL: NodeModel = NodeModel { scope: NeighborScope::Every, messages: MessagePolicy::All };
const EVENT: NodeModel = NodeModel { scope: NeighborScope::One, messages: MessagePolicy::One };

fn verdict_str(v: &Verdict) -> String {
    match v {
        Verdict::CanOscillate { states, scc_size } => {
            format!("OSCILLATES (SCC of {scc_size} among {states} states)")
        }
        Verdict::AlwaysConverges { states } => format!("always converges ({states} states)"),
        Verdict::NoOscillationWithinBound { states } => {
            format!("no oscillation within bound ({states} states)")
        }
    }
}

fn analyze_row(
    table: &mut Table,
    label: &str,
    inst: &SppInstance,
    model: &HeteroModel,
    cfg: &ExploreConfig,
) {
    let v = analyze_hetero(inst, model, cfg);
    table.row(vec![label.to_string(), verdict_str(&v)]);
}

fn main() {
    let opts = cli::parse_common("exp-hetero");
    let cfg = ExploreConfig {
        channel_cap: 3,
        max_states: 400_000,
        threads: opts.pool.threads,
        reduce: opts.reduce(),
        spill_dir: opts.spill_dir.clone(),
        ..ExploreConfig::default()
    };

    println!("== Mixed node behavior on DISAGREE (Fig. 5) ==");
    println!("(baseline: pure polling always converges; pure event-driven oscillates)\n");
    let inst = gadgets::disagree();
    let x = inst.node_by_name("x").expect("x");
    let y = inst.node_by_name("y").expect("y");
    let rea: CommModel = "REA".parse().expect("model");
    let r1o: CommModel = "R1O".parse().expect("model");

    let mut table = Table::new(vec!["configuration".into(), "verdict".into()]);
    analyze_row(
        &mut table,
        "all nodes poll (REA)",
        &inst,
        &HeteroModel::uniform(inst.node_count(), rea),
        &cfg,
    );
    analyze_row(
        &mut table,
        "all nodes event-driven (R1O)",
        &inst,
        &HeteroModel::uniform(inst.node_count(), r1o),
        &cfg,
    );
    let mut h = HeteroModel::uniform(inst.node_count(), r1o);
    h.set_node(x, POLL);
    analyze_row(&mut table, "x polls, y event-driven", &inst, &h, &cfg);
    let mut h = HeteroModel::uniform(inst.node_count(), r1o);
    h.set_node(x, POLL);
    h.set_node(y, POLL);
    analyze_row(&mut table, "x and y poll, d event-driven", &inst, &h, &cfg);
    println!("{table}");

    println!("== Mixed channel reliability on DISAGREE under polling (REA) ==\n");
    let mut table = Table::new(vec!["configuration".into(), "verdict".into()]);
    let mut h = HeteroModel::uniform(inst.node_count(), rea);
    h.set_lossy(Channel::new(x, y));
    analyze_row(&mut table, "lossy x->y only", &inst, &h, &cfg);
    let mut h = HeteroModel::uniform(inst.node_count(), rea);
    h.set_lossy(Channel::new(x, y));
    h.set_lossy(Channel::new(y, x));
    analyze_row(&mut table, "lossy x<->y", &inst, &h, &cfg);
    analyze_row(
        &mut table,
        "all channels lossy (UEA)",
        &inst,
        &HeteroModel::uniform(inst.node_count(), "UEA".parse().expect("model")),
        &cfg,
    );
    println!("{table}");

    println!("== Mixed node behavior on Fig. 6 ==\n");
    let inst = gadgets::fig6();
    let u = inst.node_by_name("u").expect("u");
    let v = inst.node_by_name("v").expect("v");
    let reo: CommModel = "REO".parse().expect("model");
    let mut table = Table::new(vec!["configuration".into(), "verdict".into()]);
    let mut h = HeteroModel::uniform(inst.node_count(), reo);
    h.set_node(u, POLL);
    analyze_row(&mut table, "u polls, rest REO", &inst, &h, &cfg);
    let mut h = HeteroModel::uniform(inst.node_count(), reo);
    h.set_node(u, POLL);
    h.set_node(v, POLL);
    analyze_row(&mut table, "u and v poll, rest REO", &inst, &h, &cfg);
    let mut h = HeteroModel::uniform(inst.node_count(), "REA".parse().expect("model"));
    h.set_node(u, EVENT);
    analyze_row(&mut table, "u event-driven, rest REA", &inst, &h, &cfg);
    println!("{table}");
    opts.finish();
}

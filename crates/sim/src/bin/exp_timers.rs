//! Experiment E15 (extension): announcement wait times.
//!
//! The paper's related-work section observes that BGP's configurable wait
//! times cut both ways: "longer wait times may slow BGP convergence because
//! nodes' discovery of potential routes is delayed; in other cases, longer
//! wait times may hasten convergence because nodes do not waste resources on
//! spurious or transient announcements." This experiment measures exactly
//! that trade-off: a deterministic periodic schedule where one hub node's
//! activation period is swept while everyone else stays at 1.

use routelab_core::model::CommModel;
use routelab_engine::outcome::{drive, RunOutcome};
use routelab_engine::runner::Runner;
use routelab_engine::schedule::Periodic;
use routelab_sim::cli;
use routelab_sim::table::Table;
use routelab_spp::generator::gao_rexford_instance;
use routelab_spp::{gadgets, SppInstance};

fn sweep(name: &str, inst: &SppInstance, hub: &str, model: CommModel) {
    let hub_id = inst.node_by_name(hub).expect("hub exists");
    println!("== {name}: slowing node {hub} under {model} ==");
    let mut table =
        Table::new(vec!["hub period".into(), "outcome".into(), "steps".into(), "messages".into()]);
    for w in [1u64, 2, 4, 8, 16] {
        let mut periods = vec![1u64; inst.node_count()];
        periods[hub_id.index()] = w;
        let mut runner = Runner::new(inst);
        let mut sched = Periodic::new(inst, model, periods);
        let outcome = drive(&mut runner, &mut sched, 200_000);
        let stats = runner.stats();
        let desc = match outcome {
            RunOutcome::Converged { steps, .. } => {
                table.row(vec![
                    w.to_string(),
                    "converged".into(),
                    steps.to_string(),
                    stats.sent.to_string(),
                ]);
                continue;
            }
            RunOutcome::CycleDetected { oscillating: true, .. } => "oscillates".to_string(),
            RunOutcome::CycleDetected { oscillating: false, .. } => "quiet cycle".to_string(),
            other => format!("{other:?}"),
        };
        table.row(vec![w.to_string(), desc, "-".into(), stats.sent.to_string()]);
    }
    println!("{table}");
}

fn main() {
    let opts = cli::parse_common("exp-timers");
    let rms: CommModel = "RMS".parse().expect("model");
    // FIG6: node a is the hub every route passes through; slowing it only
    // delays discovery (no transients: it always reads all spokes first).
    sweep("FIG6", &gadgets::fig6(), "a", rms);
    // FIG6 again, but slowing z — the spoke carrying a's best route. Now a
    // announces transient axd/ayd routes that u and v chase, so slowing a
    // *source* inflates both steps and messages.
    sweep("FIG6 (slow source)", &gadgets::fig6(), "z", rms);
    // GOOD-GADGET: slow one rim node.
    sweep("GOOD-GADGET", &gadgets::good_gadget(), "1", rms);
    // A Gao–Rexford topology: slow the destination's neighborhood.
    let gr = gao_rexford_instance(12, 3, 6, 5).expect("generator");
    let hub = gr.name(routelab_spp::NodeId(1)).to_string();
    sweep("GAO-REXFORD n=12", &gr, &hub, rms);

    println!("interpretation: the two FIG6 sweeps show both halves of the paper's");
    println!("related-work observation about BGP wait times. Slowing the hub a (which");
    println!("waits for all spokes anyway) only delays convergence; slowing the source z");
    println!("makes a announce transient routes (axd, ayd) that u and v chase, so the");
    println!("network pays in *both* steps and messages — whereas making a patient again");
    println!("(reading everything before announcing) suppresses those spurious updates.");
    opts.finish();
}

//! Experiments E3–E8: reproduce the executions and separation claims of
//! Examples A.1–A.6 (Figures 5–9).
//!
//! Usage: `exp-examples [--threads N] [--no-reduce] [a1|a2|a3|a4|a5|a6|all]`
//! (default `all`). `--threads` (or `ROUTELAB_THREADS`) sizes the sharded
//! frontier engine inside each exploration; every thread count prints the
//! same bytes. `--no-reduce` disables the state-space reduction (verdicts
//! are identical, only the explored-state counts change).

use routelab_core::model::CommModel;
use routelab_engine::outcome::{drive, RunOutcome};
use routelab_engine::paper_runs::{self, PaperRun};
use routelab_engine::runner::Runner;
use routelab_engine::schedule::Cyclic;
use routelab_explore::graph::ExploreConfig;
use routelab_explore::oscillation::{try_analyze, Verdict};
use routelab_explore::trace_search::{try_search, SearchGoal, SearchResult};
use routelab_sim::cli;
use routelab_sim::examples::step_table;
use routelab_sim::table::Table;

fn print_run(run: &PaperRun) -> bool {
    println!("== Example {} ({}; instance below) ==", run.name, run.model);
    print!("{}", run.instance);
    let steps = step_table(run);
    println!("{}", steps.table);
    println!("step table {}\n", if steps.matches_paper { "MATCHES the paper" } else { "MISMATCH" });
    steps.matches_paper
}

fn oscillation_claims(
    inst: &routelab_spp::SppInstance,
    oscillating: &[&str],
    converging: &[&str],
    cfg: &ExploreConfig,
) -> bool {
    let mut table = Table::new(vec!["model".into(), "verdict".into(), "paper".into()]);
    let mut ok = true;
    let mut check = |m: &str, want_oscillation: bool| {
        let v = match try_analyze(inst, m.parse::<CommModel>().expect("model"), cfg) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("exp-examples: {e}");
                ok = false;
                return;
            }
        };
        let (good, paper) = if want_oscillation {
            (matches!(v, Verdict::CanOscillate { .. }), "oscillates")
        } else {
            (matches!(v, Verdict::AlwaysConverges { .. }), "always converges")
        };
        ok &= good;
        table.row(vec![m.to_string(), format!("{v:?}"), paper.into()]);
    };
    for m in oscillating {
        check(m, true);
    }
    for m in converging {
        check(m, false);
    }
    println!("{table}");
    ok
}

fn a1(base: &ExploreConfig) -> bool {
    let (run, cycle) = paper_runs::a1_r1o();
    let mut ok = print_run(&run);

    println!("driving the fair R1O cycle after the prefix:");
    let mut runner = Runner::new(&run.instance);
    runner.run(&run.seq);
    let mut sched = Cyclic::new(cycle);
    match drive(&mut runner, &mut sched, 10_000) {
        RunOutcome::CycleDetected { first_seen, period, oscillating } => {
            println!("  state cycle: first seen at step {first_seen}, period {period}, oscillating = {oscillating}");
            ok &= oscillating;
        }
        other => {
            println!("  unexpected outcome {other:?}");
            ok = false;
        }
    }
    println!("\nexhaustive verdicts (Thm 3.8 separation on DISAGREE):");
    ok &= oscillation_claims(
        &run.instance,
        &["R1O", "RMO"],
        &["REO", "REF", "R1A", "RMA", "REA"],
        base,
    );
    ok
}

fn a2(base: &ExploreConfig) -> bool {
    let (run, cycle) = paper_runs::a2_reo();
    let mut ok = print_run(&run);
    println!("driving the fair REO cycle (v, u, a) after the 13-step prefix:");
    let mut runner = Runner::new(&run.instance);
    runner.run(&run.seq);
    let mut sched = Cyclic::new(cycle);
    match drive(&mut runner, &mut sched, 10_000) {
        RunOutcome::CycleDetected { period, oscillating, .. } => {
            println!("  state cycle of period {period}, oscillating = {oscillating}");
            ok &= oscillating;
        }
        other => {
            println!("  unexpected outcome {other:?}");
            ok = false;
        }
    }
    println!("\nexhaustive verdicts (Thm 3.9 separation on Fig. 6; the reduced R1A and");
    println!("RMA explorations close in a few hundred states — ~654k raw with --no-reduce):");
    let cfg = ExploreConfig {
        channel_cap: 3,
        max_states: 1_500_000,
        max_steps_per_state: 20_000,
        ..base.clone()
    };
    ok &= oscillation_claims(&run.instance, &["REO", "REF"], &["R1A", "RMA", "REA"], &cfg);
    ok
}

fn search_claim(
    run: &PaperRun,
    model: &str,
    goal: SearchGoal,
    expect_found: bool,
    base: &ExploreConfig,
) -> bool {
    let target = Runner::trace_of(&run.instance, &run.seq);
    let cfg = ExploreConfig {
        channel_cap: 6,
        max_states: 2_000_000,
        max_steps_per_state: 50_000,
        ..base.clone()
    };
    let res = match try_search(&run.instance, model.parse().expect("model"), &target, goal, &cfg) {
        Ok(res) => res,
        Err(e) => {
            eprintln!("exp-examples: {e}");
            return false;
        }
    };
    let ok = matches!(
        (&res, expect_found),
        (SearchResult::Found(_), true) | (SearchResult::Impossible { .. }, false)
    );
    let shown = match &res {
        SearchResult::Found(seq) => format!("FOUND ({} steps)", seq.len()),
        SearchResult::Impossible { visited } => {
            format!("IMPOSSIBLE (exhausted {visited} configurations)")
        }
        SearchResult::BoundExceeded { visited } => format!("BOUND EXCEEDED ({visited})"),
    };
    println!(
        "  realize {} trace in {} as {:?}: {} (paper: {})",
        run.name,
        model,
        goal,
        shown,
        if expect_found { "possible" } else { "impossible" }
    );
    ok
}

fn a3(base: &ExploreConfig) -> bool {
    let run = paper_runs::a3_reo();
    let mut ok = print_run(&run);
    println!("Prop 3.10 via exhaustive search (Fig. 7):");
    ok &= search_claim(&run, "R1O", SearchGoal::Exact, false, base);
    ok &= search_claim(&run, "R1O", SearchGoal::Subsequence, true, base);
    ok &= search_claim(&run, "RMS", SearchGoal::Exact, true, base);
    ok
}

fn a4(base: &ExploreConfig) -> bool {
    let run = paper_runs::a4_rea();
    let mut ok = print_run(&run);
    println!("Prop 3.11 via exhaustive search (Fig. 8):");
    ok &= search_claim(&run, "R1O", SearchGoal::Repetition, false, base);
    ok &= search_claim(&run, "R1O", SearchGoal::Subsequence, true, base);
    ok &= search_claim(&run, "R1S", SearchGoal::Repetition, true, base);
    ok
}

fn a5(base: &ExploreConfig) -> bool {
    let run = paper_runs::a5_rea();
    let mut ok = print_run(&run);
    println!("Props 3.12/3.13 via exhaustive search (Fig. 9):");
    ok &= search_claim(&run, "R1S", SearchGoal::Exact, false, base);
    ok &= search_claim(&run, "RMS", SearchGoal::Exact, true, base);
    ok
}

fn a6() -> bool {
    println!("== Example A.6 (DISAGREE, multi-node polling) ==");
    let (inst, boot, cycle) = paper_runs::a6_multinode();
    let mut runner = Runner::new(&inst);
    runner.run(&boot);
    let x = inst.node_by_name("x").expect("x");
    let y = inst.node_by_name("y").expect("y");
    println!(
        "after simultaneous bootstrap: pi_x = {}, pi_y = {}",
        inst.fmt_route(runner.state().chosen(x)),
        inst.fmt_route(runner.state().chosen(y))
    );
    let mut sched = Cyclic::new(cycle);
    match drive(&mut runner, &mut sched, 1_000) {
        RunOutcome::CycleDetected { period, oscillating, .. } => {
            println!(
                "simultaneous polling cycles with period {period}, oscillating = {oscillating}"
            );
            println!("(single-updater polling provably converges on DISAGREE — see a1)");
            oscillating
        }
        other => {
            println!("unexpected outcome {other:?}");
            false
        }
    }
}

fn main() {
    let opts = cli::parse_common("exp-examples");
    let arg = opts.rest.first().cloned().unwrap_or_else(|| "all".into());
    let base = ExploreConfig {
        threads: opts.pool.threads,
        reduce: opts.reduce(),
        spill_dir: opts.spill_dir.clone(),
        ..ExploreConfig::default()
    };
    let mut ok = true;
    let run_a = |name: &str, ok: &mut bool| match name {
        "a1" => *ok &= a1(&base),
        "a2" => *ok &= a2(&base),
        "a3" => *ok &= a3(&base),
        "a4" => *ok &= a4(&base),
        "a5" => *ok &= a5(&base),
        "a6" => *ok &= a6(),
        other => {
            eprintln!("unknown example {other:?}; expected a1..a6 or all");
            *ok = false;
        }
    };
    if arg == "all" {
        for name in ["a1", "a2", "a3", "a4", "a5", "a6"] {
            run_a(name, &mut ok);
            println!();
        }
    } else {
        run_a(&arg, &mut ok);
    }
    println!("overall: {}", if ok { "ALL CLAIMS REPRODUCED" } else { "MISMATCH" });
    opts.exit(if ok { 0 } else { 1 });
}

//! Experiment E9: the oscillation survey — for every gadget in the corpus
//! and every one of the 24 models, can a fair activation sequence fail to
//! converge? Exhaustive verdicts on probe models transfer along the
//! realization lattice, exactly as the paper argues in Sec. 3.5.

use routelab_explore::graph::ExploreConfig;
use routelab_sim::survey::{survey_instance, SurveyConfig, SurveyOutcome};
use routelab_sim::table::Table;
use routelab_spp::gadgets;

fn main() {
    let corpus = gadgets::corpus();
    let cfg = SurveyConfig {
        explore: ExploreConfig {
            channel_cap: 3,
            max_states: 1_500_000,
            max_steps_per_state: 20_000,
        },
        ..SurveyConfig::default()
    };

    let mut header = vec!["model".to_string()];
    header.extend(corpus.iter().map(|(n, _)| n.to_string()));
    let mut table = Table::new(header);

    let surveys: Vec<_> = corpus.iter().map(|(_, inst)| survey_instance(inst, &cfg)).collect();
    let models = routelab_core::model::CommModel::all();
    for (i, model) in models.iter().enumerate() {
        let mut row = vec![model.to_string()];
        for s in &surveys {
            let cell = match &s[i].outcome {
                SurveyOutcome::Oscillates { via: None } => "osc!".to_string(),
                SurveyOutcome::Oscillates { via: Some(p) } => format!("osc<{p}"),
                SurveyOutcome::Converges { via: None } => "conv!".to_string(),
                SurveyOutcome::Converges { via: Some(p) } => format!("conv<{p}"),
                SurveyOutcome::Unknown => "?".to_string(),
            };
            row.push(cell);
        }
        table.row(row);
    }
    println!("Oscillation survey (osc! / conv! = exhaustively checked;");
    println!("osc<M / conv<M = transferred along the realization lattice from probe M; ? = open)\n");
    println!("{table}");

    // Headline checks from the paper.
    let find = |gadget: &str, model: &str| -> SurveyOutcome {
        let gi = corpus.iter().position(|(n, _)| *n == gadget).expect("gadget");
        let mi = models.iter().position(|m| m.to_string() == model).expect("model");
        surveys[gi][mi].outcome.clone()
    };
    let mut ok = true;
    for m in ["REO", "REF", "R1A", "RMA", "REA"] {
        ok &= matches!(find("DISAGREE", m), SurveyOutcome::Converges { .. });
    }
    ok &= matches!(find("DISAGREE", "R1O"), SurveyOutcome::Oscillates { .. });
    for m in ["REO", "REF"] {
        ok &= matches!(find("FIG6", m), SurveyOutcome::Oscillates { .. });
    }
    for m in ["R1A", "RMA", "REA"] {
        ok &= matches!(find("FIG6", m), SurveyOutcome::Converges { .. });
    }
    println!("paper separations (Thm 3.8, Thm 3.9): {}", if ok { "REPRODUCED" } else { "MISMATCH" });
    std::process::exit(if ok { 0 } else { 1 });
}

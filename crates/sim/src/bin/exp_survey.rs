//! Experiment E9: the oscillation survey — for every gadget in the corpus
//! and every one of the 24 models, can a fair activation sequence fail to
//! converge? Exhaustive verdicts on probe models transfer along the
//! realization lattice, exactly as the paper argues in Sec. 3.5.
//!
//! Budgets are per gadget: FIG6 keeps a 1.5M-state probe cap so that the
//! `--no-reduce` escape hatch can still finish its polling convergence
//! proofs exhaustively (R1A/RMA are ~654k raw states; the default reduced
//! build reaches quiescence in a few hundred); every other gadget decides
//! its probes well under a 250k cap. Phase-2 direct checks of the
//! lattice-undecided models get 400k states: the largest such space —
//! FIG6 under U1A/UMA, finite only because the unreliable-All set collapse
//! bounds its queues — is exhaustive at 365,721 reduced states, so every
//! cell of the table now prints a decided verdict. The `--no-reduce` run
//! keeps a 25k phase-2 cap and is allowed to leave cells open (see
//! [`direct_budget`]).
//!
//! Prints the text table and writes `results/exp-survey.json` (schema in
//! EXPERIMENTS.md).

use std::time::Instant;

use routelab_explore::graph::ExploreConfig;
use routelab_sim::cli;
use routelab_sim::report::{write_json, Json};
use routelab_sim::survey::{try_survey_instance, SurveyConfig, SurveyOutcome};
use routelab_sim::table::Table;
use routelab_spp::gadgets;

/// Probe-state budget for one gadget. Only FIG6 needs more than a quarter
/// million states — and only without reduction: Thm 3.9's R1A/RMA
/// convergence proofs are exhaustive at 654,312 raw states under channel
/// cap 3 (the reduced quotient is a few hundred).
fn probe_budget(gadget: &str) -> usize {
    if gadget == "FIG6" {
        1_500_000
    } else {
        250_000
    }
}

/// Phase-2 budget for the direct checks of lattice-undecided models,
/// sized so every reduced space decides (FIG6 × U1A/UMA is the largest,
/// exhaustive at 365,721 states). The `--no-reduce` run keeps the
/// historical 25k cap: without the set collapse the unreliable-All
/// spaces are unbounded and without the route-class projection the rest
/// dwarf any practical budget, so a bigger cap would only burn minutes
/// to print the same `?`.
fn direct_budget(reduce: bool) -> usize {
    if reduce {
        400_000
    } else {
        25_000
    }
}

fn outcome_json(o: &SurveyOutcome) -> Json {
    let (verdict, via) = match o {
        SurveyOutcome::Oscillates { via } => ("oscillates", via),
        SurveyOutcome::Converges { via } => ("converges", via),
        SurveyOutcome::Unknown => ("unknown", &None),
    };
    Json::obj([
        ("verdict", Json::str(verdict)),
        ("via", via.map_or(Json::Null, |p| Json::str(p.to_string()))),
    ])
}

fn main() {
    let opts = cli::parse_common("exp-survey");
    if !opts.rest.is_empty() {
        eprintln!("usage: exp-survey [--threads N] [--quiet] [--obs] [--no-reduce]");
        opts.exit(2);
    }
    let t0 = Instant::now();
    let corpus = gadgets::corpus();

    let mut surveys = Vec::with_capacity(corpus.len());
    let mut gadget_walls = Vec::with_capacity(corpus.len());
    for (name, inst) in &corpus {
        let cfg = SurveyConfig {
            explore: ExploreConfig {
                channel_cap: 3,
                max_states: probe_budget(name),
                max_steps_per_state: 20_000,
                threads: opts.pool.threads,
                reduce: opts.reduce(),
                spill_dir: opts.spill_dir.clone(),
                ..ExploreConfig::default()
            },
            direct_budget: Some(direct_budget(opts.reduce())),
            ..SurveyConfig::default()
        };
        let g0 = Instant::now();
        opts.progress_part(format!(
            "surveying {name} (probe budget {} states) ... ",
            cfg.explore.max_states
        ));
        let mut gadget_span = routelab_obs::span("survey.gadget");
        gadget_span.field("gadget", *name);
        gadget_span.field("probe_budget", cfg.explore.max_states);
        match try_survey_instance(inst, &cfg) {
            Ok(entries) => surveys.push(entries),
            Err(e) => {
                opts.progress("failed");
                eprintln!("exp-survey: {e}");
                opts.exit(2);
            }
        }
        drop(gadget_span);
        let wall = g0.elapsed();
        opts.progress(format!("done in {:.1} s", wall.as_secs_f64()));
        gadget_walls.push(wall);
    }

    let mut header = vec!["model".to_string()];
    header.extend(corpus.iter().map(|(n, _)| n.to_string()));
    let mut table = Table::new(header);

    let models = routelab_core::model::CommModel::all();
    for (i, model) in models.iter().enumerate() {
        let mut row = vec![model.to_string()];
        for s in &surveys {
            let cell = match &s[i].outcome {
                SurveyOutcome::Oscillates { via: None } => "osc!".to_string(),
                SurveyOutcome::Oscillates { via: Some(p) } => format!("osc<{p}"),
                SurveyOutcome::Converges { via: None } => "conv!".to_string(),
                SurveyOutcome::Converges { via: Some(p) } => format!("conv<{p}"),
                SurveyOutcome::Unknown => "?".to_string(),
            };
            row.push(cell);
        }
        table.row(row);
    }
    println!("Oscillation survey (osc! / conv! = exhaustively checked;");
    println!(
        "osc<M / conv<M = transferred along the realization lattice from probe M; ? = open)\n"
    );
    println!("{table}");

    // Headline checks from the paper.
    let find = |gadget: &str, model: &str| -> SurveyOutcome {
        let gi = corpus.iter().position(|(n, _)| *n == gadget).expect("gadget");
        let mi = models.iter().position(|m| m.to_string() == model).expect("model");
        surveys[gi][mi].outcome.clone()
    };
    let mut ok = true;
    for m in ["REO", "REF", "R1A", "RMA", "REA"] {
        ok &= matches!(find("DISAGREE", m), SurveyOutcome::Converges { .. });
    }
    ok &= matches!(find("DISAGREE", "R1O"), SurveyOutcome::Oscillates { .. });
    for m in ["REO", "REF"] {
        ok &= matches!(find("FIG6", m), SurveyOutcome::Oscillates { .. });
    }
    for m in ["R1A", "RMA", "REA"] {
        ok &= matches!(find("FIG6", m), SurveyOutcome::Converges { .. });
    }
    let open = surveys
        .iter()
        .flat_map(|s| s.iter())
        .filter(|e| matches!(e.outcome, SurveyOutcome::Unknown))
        .count();
    // Only the reduced (default) run is required to decide every cell;
    // the raw explorer cannot close the unreliable-All spaces at all.
    if opts.reduce() {
        ok &= open == 0;
    }
    println!("open (?) cells: {open}");
    println!(
        "paper separations (Thm 3.8, Thm 3.9): {}",
        if ok { "REPRODUCED" } else { "MISMATCH" }
    );

    let json = Json::obj([
        ("experiment", Json::str("survey")),
        ("wall_ms", Json::Num(t0.elapsed().as_secs_f64() * 1e3)),
        (
            "config",
            Json::obj([
                ("channel_cap", Json::int(3)),
                ("max_steps_per_state", Json::int(20_000)),
                ("direct_budget", Json::int(direct_budget(opts.reduce()))),
                ("reduce", Json::Bool(opts.reduce())),
            ]),
        ),
        (
            "gadgets",
            Json::Arr(
                corpus
                    .iter()
                    .zip(&gadget_walls)
                    .map(|((n, _), wall)| {
                        Json::obj([
                            ("name", Json::str(*n)),
                            ("probe_budget", Json::int(probe_budget(n))),
                            ("wall_ms", Json::Num(wall.as_secs_f64() * 1e3)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "models",
            Json::Arr(
                models
                    .iter()
                    .enumerate()
                    .map(|(i, model)| {
                        Json::obj([
                            ("model", Json::str(model.to_string())),
                            (
                                "cells",
                                Json::Arr(
                                    surveys.iter().map(|s| outcome_json(&s[i].outcome)).collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("separations_reproduced", Json::Bool(ok)),
    ]);
    match write_json("exp-survey", &json) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => {
            eprintln!("error writing JSON results: {e}");
            opts.exit(2);
        }
    }
    opts.exit(if ok { 0 } else { 1 });
}

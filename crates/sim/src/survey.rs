//! The oscillation survey: for an instance, decide per communication model
//! whether some fair activation sequence fails to converge.
//!
//! Exhaustive model checking (from `routelab-explore`) is run on a set of
//! *probe* models; verdicts then transfer along the realization lattice
//! exactly as in the paper's Sec. 3.5: if model `B` realizes model `A` at
//! subsequence strength or better, every oscillation of `A` also exists in
//! `B`; dually, convergence-in-`B` rules out oscillation in every model `B`
//! realizes.

use routelab_core::closure::derive_bounds;
use routelab_core::edges::foundational_facts;
use routelab_core::model::CommModel;
use routelab_explore::error::ExploreError;
use routelab_explore::graph::ExploreConfig;
use routelab_explore::oscillation::{try_analyze, Verdict};
use routelab_spp::SppInstance;

/// How a survey answer was obtained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SurveyOutcome {
    /// Exhaustively verified: a fair oscillation exists.
    Oscillates {
        /// `None` when checked directly; `Some(probe)` when transferred from
        /// an oscillating probe model this model realizes.
        via: Option<CommModel>,
    },
    /// Exhaustively verified: every fair sequence converges.
    Converges {
        /// `None` when checked directly; `Some(probe)` when transferred from
        /// a converging probe model that realizes this model.
        via: Option<CommModel>,
    },
    /// Neither a witness nor an exhaustive refutation within bounds.
    Unknown,
}

/// One (model, outcome) pair.
#[derive(Debug, Clone)]
pub struct SurveyEntry {
    /// The communication model.
    pub model: CommModel,
    /// The verdict.
    pub outcome: SurveyOutcome,
}

/// The probe models checked exhaustively: the reliable models with small
/// state spaces, which between them dominate (realize or are realized by)
/// the whole taxonomy — every unreliable model realizes its reliable
/// counterpart, and `R1O` is realized by all the strong unreliable models.
pub fn probe_models() -> Vec<CommModel> {
    ["R1O", "REO", "REF", "R1A", "RMA", "REA"]
        .iter()
        .map(|s| s.parse().expect("static model"))
        .collect()
}

/// Survey configuration: exploration bounds, which models to probe
/// exhaustively, and whether still-undecided models get a (cheaper) direct
/// check of their own.
#[derive(Debug, Clone)]
pub struct SurveyConfig {
    /// Bounds for the probe explorations.
    pub explore: ExploreConfig,
    /// The models checked exhaustively in phase 1.
    pub probes: Vec<CommModel>,
    /// Phase 2: directly analyze models the transfers left undecided.
    pub direct_fallback: bool,
    /// State budget for the phase-2 direct checks; `None` defaults to an
    /// eighth of the probe budget. The undecided models are the unreliable
    /// `M`/`E`-scope ones whose drop branching blows the state space up by
    /// orders of magnitude, so callers that survey wheel-carrying gadgets
    /// should pin this low — a truncated check honestly stays `Unknown`.
    pub direct_budget: Option<usize>,
}

impl Default for SurveyConfig {
    fn default() -> Self {
        SurveyConfig {
            explore: ExploreConfig::default(),
            probes: probe_models(),
            direct_fallback: true,
            direct_budget: None,
        }
    }
}

/// Surveys all 24 models on one instance, panicking on explorer failures.
///
/// A thin wrapper over [`try_survey_instance`] for callers (mostly tests)
/// that treat an [`ExploreError`] as a bug; the experiment binaries use the
/// fallible variant so an overflowing cell is reported and exits nonzero
/// instead of tearing the process down mid-table.
pub fn survey_instance(inst: &SppInstance, cfg: &SurveyConfig) -> Vec<SurveyEntry> {
    try_survey_instance(inst, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Surveys all 24 models on one instance.
///
/// Phase 1 checks the probe models exhaustively and transfers their verdicts
/// along the realization lattice. Phase 2 (optional) directly checks any
/// model still undecided, with a reduced state budget (those are the
/// heavyweight `M`/`E` scope unreliable models; a truncated answer stays
/// `Unknown`).
///
/// # Errors
///
/// Returns the first [`ExploreError`] any probe or direct check hits; the
/// error names the offending gadget × model cell.
pub fn try_survey_instance(
    inst: &SppInstance,
    cfg: &SurveyConfig,
) -> Result<Vec<SurveyEntry>, ExploreError> {
    let bounds = derive_bounds(&foundational_facts());
    let verdicts: Vec<(CommModel, Verdict)> = cfg
        .probes
        .iter()
        .map(|&m| {
            let mut probe_span = routelab_obs::span("survey.probe");
            let v = try_analyze(inst, m, &cfg.explore)?;
            probe_span.field("model", m.to_string());
            Ok((m, v))
        })
        .collect::<Result<_, ExploreError>>()?;

    let transfer = |model: CommModel| -> Option<SurveyOutcome> {
        // Direct verdict if this model is itself a probe; an inconclusive
        // probe falls through to the lattice transfers below.
        if let Some((_, v)) = verdicts.iter().find(|(m, _)| *m == model) {
            match v {
                Verdict::CanOscillate { .. } => {
                    return Some(SurveyOutcome::Oscillates { via: None })
                }
                Verdict::AlwaysConverges { .. } => {
                    return Some(SurveyOutcome::Converges { via: None })
                }
                Verdict::NoOscillationWithinBound { .. } => {}
            }
        }
        // Oscillation transfers A -> B when B realizes A (any positive
        // realization level preserves oscillations).
        for (probe, v) in &verdicts {
            if matches!(v, Verdict::CanOscillate { .. }) && bounds.get(*probe, model).lower >= 1 {
                return Some(SurveyOutcome::Oscillates { via: Some(*probe) });
            }
        }
        // Convergence transfers B -> A when B realizes A: if A could
        // oscillate, so could B.
        for (probe, v) in &verdicts {
            if matches!(v, Verdict::AlwaysConverges { .. }) && bounds.get(model, *probe).lower >= 1
            {
                return Some(SurveyOutcome::Converges { via: Some(*probe) });
            }
        }
        None
    };

    let phase2_cfg = ExploreConfig {
        max_states: cfg.direct_budget.unwrap_or(cfg.explore.max_states / 8).max(1_000),
        ..cfg.explore.clone()
    };
    CommModel::all()
        .into_iter()
        .map(|model| {
            let outcome = match transfer(model) {
                Some(o) => o,
                None if !cfg.direct_fallback => SurveyOutcome::Unknown,
                None => {
                    let mut direct_span = routelab_obs::span("survey.direct");
                    direct_span.field("model", model.to_string());
                    match try_analyze(inst, model, &phase2_cfg)? {
                        Verdict::CanOscillate { .. } => SurveyOutcome::Oscillates { via: None },
                        Verdict::AlwaysConverges { .. } => SurveyOutcome::Converges { via: None },
                        Verdict::NoOscillationWithinBound { .. } => SurveyOutcome::Unknown,
                    }
                }
            };
            Ok(SurveyEntry { model, outcome })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use routelab_spp::gadgets;

    fn outcome_of(entries: &[SurveyEntry], model: &str) -> SurveyOutcome {
        let m: CommModel = model.parse().unwrap();
        entries.iter().find(|e| e.model == m).expect("model surveyed").outcome.clone()
    }

    #[test]
    fn disagree_survey_matches_example_a1() {
        let inst = gadgets::disagree();
        let entries = survey_instance(&inst, &SurveyConfig::default());
        assert_eq!(entries.len(), 24);
        // The five weak models converge (Thm 3.8)…
        for m in ["REO", "REF", "R1A", "RMA", "REA"] {
            assert!(
                matches!(outcome_of(&entries, m), SurveyOutcome::Converges { .. }),
                "{m}: {:?}",
                outcome_of(&entries, m)
            );
        }
        // …and every model that provably realizes R1O oscillates. (For
        // UEO, UEF, U1A, UMA, UEA the paper's tables are blank on realizing
        // R1O; phase 2 decides them directly, whatever the answer.)
        let open = ["UEO", "UEF", "U1A", "UMA", "UEA"];
        for m in CommModel::all() {
            let name = m.to_string();
            if ["REO", "REF", "R1A", "RMA", "REA"].contains(&name.as_str())
                || open.contains(&name.as_str())
            {
                continue;
            }
            assert!(
                matches!(outcome_of(&entries, &name), SurveyOutcome::Oscillates { .. }),
                "{name}: {:?}",
                outcome_of(&entries, &name)
            );
        }
    }

    #[test]
    fn fig6_survey_quick_claims() {
        // Debug-friendly subset of Example A.2: the REO oscillation, REA
        // convergence, and the transfer of the oscillation into the queueing
        // models. Breadth-first order needs REO's full ≈89k-state reduced
        // space (141,847 raw) before its fair SCC closes; REF (≈128k
        // reduced) and R1A/RMA (a few hundred reduced states, ≈654k raw)
        // are covered by the release-only test below.
        let inst = gadgets::fig6();
        let cfg = SurveyConfig {
            explore: ExploreConfig {
                channel_cap: 3,
                max_states: 150_000,
                ..ExploreConfig::default()
            },
            probes: ["REO", "REA"].iter().map(|s| s.parse().expect("model")).collect(),
            direct_fallback: false,
            direct_budget: None,
        };
        let entries = survey_instance(&inst, &cfg);
        assert!(matches!(outcome_of(&entries, "REO"), SurveyOutcome::Oscillates { via: None }));
        assert!(matches!(outcome_of(&entries, "REA"), SurveyOutcome::Converges { via: None }));
        // The queueing models inherit the oscillation (REO is realized
        // exactly by RMS and UMS — Fig. 3/4 row REO).
        for m in ["RMS", "UMS"] {
            assert!(
                matches!(outcome_of(&entries, m), SurveyOutcome::Oscillates { via: Some(_) }),
                "{m}"
            );
        }
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "≈220k reduced states across the probes; run with `cargo test --release`"
    )]
    fn fig6_survey_matches_example_a2() {
        let inst = gadgets::fig6();
        let cfg = SurveyConfig {
            explore: ExploreConfig {
                channel_cap: 3,
                max_states: 1_500_000,
                max_steps_per_state: 20_000,
                ..ExploreConfig::default()
            },
            ..SurveyConfig::default()
        };
        let entries = survey_instance(&inst, &cfg);
        for m in ["REO", "REF"] {
            assert!(matches!(outcome_of(&entries, m), SurveyOutcome::Oscillates { .. }), "{m}");
        }
        for m in ["R1A", "RMA", "REA"] {
            assert!(
                matches!(outcome_of(&entries, m), SurveyOutcome::Converges { .. }),
                "{m}: {:?}",
                outcome_of(&entries, m)
            );
        }
    }

    #[test]
    fn good_gadget_converges_everywhere() {
        let inst = gadgets::good_gadget();
        let entries = survey_instance(&inst, &SurveyConfig::default());
        for e in &entries {
            assert!(
                matches!(e.outcome, SurveyOutcome::Converges { .. }),
                "{}: {:?}",
                e.model,
                e.outcome
            );
        }
    }

    #[test]
    fn bad_gadget_oscillates_everywhere() {
        let inst = gadgets::bad_gadget();
        // Small budget: every probe's oscillating SCC appears within the
        // first 20k states.
        let cfg = SurveyConfig {
            explore: ExploreConfig { max_states: 20_000, ..ExploreConfig::default() },
            ..SurveyConfig::default()
        };
        let entries = survey_instance(&inst, &cfg);
        for e in &entries {
            assert!(
                matches!(e.outcome, SurveyOutcome::Oscillates { .. }),
                "{}: {:?}",
                e.model,
                e.outcome
            );
        }
    }
}

//! Monte-Carlo convergence experiments (DESIGN.md experiment E11).
//!
//! For an instance and a communication model, run many randomized fair
//! schedules and record how often and how fast the algorithm converges, and
//! how many messages it spends. Instances without a dispute wheel must show
//! 100 % convergence in every model; instances with one separate the models
//! the way the paper's taxonomy predicts.
//!
//! Execution decomposes into run-granularity jobs — run `i` of a cell is a
//! pure function of `(instance, model, run_seed(cfg.seed, i))` — scheduled
//! on the shared [`pool`](crate::pool) and merged back in run order, so a
//! grid's statistics are bit-identical for every worker count.

use std::fmt;
use std::time::{Duration, Instant};

use routelab_core::model::CommModel;
use routelab_engine::outcome::{drive_report, RunOutcome};
use routelab_engine::runner::Runner;
use routelab_engine::schedule::RandomFair;
use routelab_spp::solve::is_stable;
use routelab_spp::SppInstance;

use crate::pool::{self, PoolConfig};

/// Configuration of one experiment cell (instance × model).
#[derive(Debug, Clone, Copy)]
pub struct CellConfig {
    /// Independent randomized runs.
    pub runs: usize,
    /// Step budget per run.
    pub max_steps: usize,
    /// Base RNG seed (run `i` uses [`run_seed`]`(seed, i)`).
    pub seed: u64,
    /// Per-read drop probability for unreliable models.
    pub drop_prob: f64,
}

impl Default for CellConfig {
    fn default() -> Self {
        CellConfig { runs: 50, max_steps: 20_000, seed: 0, drop_prob: 0.25 }
    }
}

/// The RNG seed of run `run` within a cell with base seed `base`.
///
/// Within one cell the derived seeds are pairwise distinct for any
/// `runs ≤ 2⁶⁴` (wrapping addition of distinct offsets), so no two runs of a
/// cell ever share a schedule.
pub fn run_seed(base: u64, run: usize) -> u64 {
    base.wrapping_add(run as u64)
}

/// Everything one randomized run produces — the unit merged into
/// [`CellStats`], and the engine-level observability record (wall-clock and
/// message counters) feeding the JSON reports.
#[derive(Debug, Clone, Copy)]
pub struct RunRecord {
    /// Run index within the cell.
    pub run: usize,
    /// Reached quiescence along a fair prefix.
    pub converged: bool,
    /// Reached quiescence only by unfairly dropping a final message.
    pub converged_unfairly: bool,
    /// Steps to convergence (meaningful when `converged`).
    pub steps_to_convergence: usize,
    /// The final assignment is a stable path assignment (quiescent runs).
    pub stable_outcome: bool,
    /// Steps actually executed (all runs).
    pub executed_steps: usize,
    /// Messages sent.
    pub sent: usize,
    /// Messages dropped.
    pub dropped: usize,
    /// Wall-clock time of this run.
    pub wall: Duration,
}

/// Aggregated results of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CellStats {
    /// Runs performed.
    pub runs: usize,
    /// Runs that reached quiescence along a fair prefix.
    pub converged: usize,
    /// Runs that reached quiescence only by *unfairly* dropping the final
    /// message on some channel (possible with unreliable channels; such
    /// executions are excluded by Definition 2.4).
    pub converged_unfairly: usize,
    /// Mean steps to convergence (over fairly converged runs).
    pub mean_steps: f64,
    /// Mean messages sent per run (all runs).
    pub mean_messages: f64,
    /// Mean messages dropped per run (all runs).
    pub mean_dropped: f64,
    /// Quiescent runs (fair or not) whose final assignment is a *stable*
    /// path assignment of the instance — with loss, a network can go quiet
    /// on an inconsistent assignment built from stale information.
    pub stable_outcome: usize,
}

impl CellStats {
    /// Fraction of runs that converged.
    pub fn convergence_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.converged as f64 / self.runs as f64
        }
    }

    /// Folds per-run records (in run order) into cell statistics. The fold
    /// order is fixed, so the result is independent of which worker
    /// produced which record.
    pub fn from_records(records: &[RunRecord]) -> CellStats {
        let mut stats = CellStats { runs: records.len(), ..CellStats::default() };
        let mut steps_sum = 0usize;
        for r in records {
            if r.converged {
                stats.converged += 1;
                steps_sum += r.steps_to_convergence;
            }
            if r.converged_unfairly {
                stats.converged_unfairly += 1;
            }
            if r.stable_outcome {
                stats.stable_outcome += 1;
            }
            stats.mean_messages += r.sent as f64;
            stats.mean_dropped += r.dropped as f64;
        }
        if stats.converged > 0 {
            stats.mean_steps = steps_sum as f64 / stats.converged as f64;
        }
        if stats.runs > 0 {
            stats.mean_messages /= stats.runs as f64;
            stats.mean_dropped /= stats.runs as f64;
        }
        stats
    }
}

/// Executes run `run` of one cell: a pure function of its arguments.
pub fn run_one(inst: &SppInstance, model: CommModel, cfg: &CellConfig, run: usize) -> RunRecord {
    let t0 = Instant::now();
    let mut runner = Runner::new(inst);
    let mut sched =
        RandomFair::new(inst, model, run_seed(cfg.seed, run)).with_drop_prob(cfg.drop_prob);
    let report = drive_report(&mut runner, &mut sched, cfg.max_steps);
    let mut rec = RunRecord {
        run,
        converged: false,
        converged_unfairly: false,
        steps_to_convergence: 0,
        stable_outcome: false,
        executed_steps: report.stats.steps,
        sent: report.stats.sent,
        dropped: report.stats.dropped,
        wall: Duration::ZERO,
    };
    if let RunOutcome::Converged { steps, assignment } = report.outcome {
        if runner.has_dangling_drops() {
            rec.converged_unfairly = true;
        } else {
            rec.converged = true;
            rec.steps_to_convergence = steps;
        }
        rec.stable_outcome = is_stable(inst, &assignment);
    }
    rec.wall = t0.elapsed();
    if routelab_obs::enabled() {
        routelab_obs::histogram("mc.run.wall_ns", rec.wall.as_nanos() as u64);
    }
    rec
}

/// Runs one cell sequentially on the calling thread.
pub fn run_cell(inst: &SppInstance, model: CommModel, cfg: &CellConfig) -> CellStats {
    let records: Vec<RunRecord> = (0..cfg.runs).map(|i| run_one(inst, model, cfg, i)).collect();
    CellStats::from_records(&records)
}

/// One cell's statistics plus execution observability: wall-clock (summed
/// over the cell's runs, so it is CPU-time-like and comparable across
/// worker counts) and raw step/message totals.
#[derive(Debug, Clone, Copy)]
pub struct CellReport {
    /// The communication model of this cell.
    pub model: CommModel,
    /// Deterministic aggregate statistics.
    pub stats: CellStats,
    /// Total time spent executing this cell's runs.
    pub wall: Duration,
    /// Steps executed across all runs.
    pub total_steps: usize,
    /// Messages sent across all runs.
    pub total_sent: usize,
    /// Messages dropped across all runs.
    pub total_dropped: usize,
}

impl CellReport {
    /// Simulation throughput of this cell in engine steps per second.
    pub fn steps_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.total_steps as f64 / secs
        } else {
            0.0
        }
    }

    fn from_records(model: CommModel, records: &[RunRecord]) -> CellReport {
        CellReport {
            model,
            stats: CellStats::from_records(records),
            wall: records.iter().map(|r| r.wall).sum(),
            total_steps: records.iter().map(|r| r.executed_steps).sum(),
            total_sent: records.iter().map(|r| r.sent).sum(),
            total_dropped: records.iter().map(|r| r.dropped).sum(),
        }
    }
}

/// A simulation run that panicked, located by cell and seed so the
/// diverging run is reproducible: rerun with `RandomFair::new(inst, model,
/// seed)` under the same configuration.
#[derive(Debug)]
pub struct GridError {
    /// Model of the failing cell.
    pub model: CommModel,
    /// Run index within the cell.
    pub run: usize,
    /// The exact scheduler seed of the failing run.
    pub seed: u64,
    /// Rendered panic payload.
    pub panic: String,
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulation run panicked in cell model={} run={} (scheduler seed {}): {}",
            self.model, self.run, self.seed, self.panic
        )
    }
}

impl std::error::Error for GridError {}

/// Runs a grid of cells (one per model) on the shared worker pool,
/// decomposed into run-granularity jobs; results are merged in `(cell,
/// run)` order and are bit-identical for every worker count.
///
/// # Errors
///
/// Returns a [`GridError`] naming the cell `(model, seed)` and run of the
/// earliest panicking job.
pub fn try_run_grid_with(
    inst: &SppInstance,
    models: &[CommModel],
    cfg: &CellConfig,
    pool_cfg: &PoolConfig,
) -> Result<Vec<CellReport>, GridError> {
    let runs = cfg.runs;
    let jobs = models.len() * runs;
    let mut grid_span = routelab_obs::span("mc.grid");
    grid_span.field("models", models.len());
    grid_span.field("runs_per_cell", runs);
    let records = pool::execute(jobs, pool_cfg.resolved_threads(), &|job| {
        run_one(inst, models[job / runs], cfg, job % runs)
    })
    .map_err(|p| GridError {
        model: models[p.job / runs],
        run: p.job % runs,
        seed: run_seed(cfg.seed, p.job % runs),
        panic: p.message,
    })?;
    Ok(models
        .iter()
        .enumerate()
        .map(|(c, &m)| CellReport::from_records(m, &records[c * runs..(c + 1) * runs]))
        .collect())
}

/// [`try_run_grid_with`] without the observability wrapper, panicking (with
/// the failing cell named) on a diverging run.
pub fn run_grid_with(
    inst: &SppInstance,
    models: &[CommModel],
    cfg: &CellConfig,
    pool_cfg: &PoolConfig,
) -> Vec<(CommModel, CellStats)> {
    match try_run_grid_with(inst, models, cfg, pool_cfg) {
        Ok(cells) => cells.into_iter().map(|c| (c.model, c.stats)).collect(),
        Err(e) => panic!("{e}"),
    }
}

/// Runs a grid of cells with default pool sizing (the `ROUTELAB_THREADS`
/// environment variable, else all available cores).
pub fn run_grid(
    inst: &SppInstance,
    models: &[CommModel],
    cfg: &CellConfig,
) -> Vec<(CommModel, CellStats)> {
    run_grid_with(inst, models, cfg, &PoolConfig::default())
}

/// The seed strategy this engine replaced: one scoped thread per model,
/// each running its whole cell. Kept for the pool-scaling benchmark — cells
/// are imbalanced, so this leaves workers idle while the slowest cell
/// finishes.
pub fn run_grid_per_model_threads(
    inst: &SppInstance,
    models: &[CommModel],
    cfg: &CellConfig,
) -> Vec<(CommModel, CellStats)> {
    let mut out: Vec<(CommModel, CellStats)> = Vec::with_capacity(models.len());
    std::thread::scope(|s| {
        let handles: Vec<_> =
            models.iter().map(|&m| s.spawn(move || (m, run_cell(inst, m, cfg)))).collect();
        for h in handles {
            out.push(h.join().expect("simulation thread panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use routelab_spp::gadgets;

    fn quick() -> CellConfig {
        CellConfig { runs: 12, max_steps: 6_000, seed: 7, drop_prob: 0.25 }
    }

    #[test]
    fn wheel_free_instances_always_converge() {
        let inst = gadgets::good_gadget();
        for model in ["R1O", "RMS", "REA"] {
            let stats = run_cell(&inst, model.parse().unwrap(), &quick());
            assert_eq!(stats.converged, stats.runs, "{model}: {stats:?}");
            assert_eq!(stats.converged_unfairly, 0, "{model}: {stats:?}");
            assert!(stats.mean_steps > 0.0);
        }
        // With lossy channels every run still quiesces, but a random
        // schedule usually ends some channel on a dropped message, which the
        // harness reports as unfair quiescence — and the resulting frozen
        // assignment need not even be stable (stale routes).
        for model in ["UMS", "U1O"] {
            let stats = run_cell(&inst, model.parse().unwrap(), &quick());
            assert_eq!(
                stats.converged + stats.converged_unfairly,
                stats.runs,
                "{model}: {stats:?}"
            );
        }
    }

    #[test]
    fn bad_gadget_never_converges() {
        // No stable assignment exists, so no run can reach quiescence.
        let inst = gadgets::bad_gadget();
        for model in ["RMS", "REA"] {
            let stats = run_cell(&inst, model.parse().unwrap(), &quick());
            assert_eq!(stats.converged, 0, "{model}: {stats:?}");
        }
    }

    #[test]
    fn bad_gadget_unreliable_quiescence_is_always_unfair() {
        // With lossy channels BAD-GADGET *can* go quiet — by dropping the
        // final message on some channel, which Definition 2.4 forbids. The
        // harness classifies those runs separately.
        let inst = gadgets::bad_gadget();
        let stats = run_cell(&inst, "UMS".parse().unwrap(), &quick());
        assert_eq!(stats.converged, 0, "{stats:?}");
        assert!(stats.converged_unfairly > 0, "{stats:?}");
    }

    #[test]
    fn disagree_polling_always_converges_randomized() {
        // RMA guarantees convergence on DISAGREE (Example A.1): every
        // randomized fair run must reach quiescence.
        let inst = gadgets::disagree();
        let stats = run_cell(&inst, "RMA".parse().unwrap(), &quick());
        assert_eq!(stats.converged, stats.runs, "{stats:?}");
    }

    #[test]
    fn stats_are_deterministic_per_seed() {
        let inst = gadgets::disagree();
        let a = run_cell(&inst, "RMS".parse().unwrap(), &quick());
        let b = run_cell(&inst, "RMS".parse().unwrap(), &quick());
        assert_eq!(a, b);
    }

    #[test]
    fn grid_matches_cells() {
        let inst = gadgets::good_gadget();
        let models: Vec<CommModel> = vec!["R1O".parse().unwrap(), "REA".parse().unwrap()];
        let grid = run_grid(&inst, &models, &quick());
        assert_eq!(grid.len(), 2);
        for (m, stats) in grid {
            assert_eq!(stats, run_cell(&inst, m, &quick()));
        }
    }

    #[test]
    fn grid_matches_legacy_per_model_strategy() {
        let inst = gadgets::disagree();
        let models: Vec<CommModel> =
            ["R1O", "RMS", "UMS"].iter().map(|s| s.parse().unwrap()).collect();
        assert_eq!(
            run_grid(&inst, &models, &quick()),
            run_grid_per_model_threads(&inst, &models, &quick())
        );
    }

    #[test]
    fn cell_reports_carry_observability() {
        let inst = gadgets::good_gadget();
        let models: Vec<CommModel> = vec!["RMS".parse().unwrap(), "UMS".parse().unwrap()];
        let cells = try_run_grid_with(&inst, &models, &quick(), &PoolConfig::with_threads(2))
            .expect("no panics");
        for c in &cells {
            assert!(c.total_steps > 0);
            assert!(c.total_sent > 0);
            assert!(c.wall > Duration::ZERO);
            assert!(c.steps_per_sec() > 0.0);
        }
        // Only the unreliable cell drops.
        assert_eq!(cells[0].total_dropped, 0);
        assert!(cells[1].total_dropped > 0);
    }

    #[test]
    fn unreliable_runs_record_drops() {
        let inst = gadgets::good_gadget();
        let stats = run_cell(&inst, "UMS".parse().unwrap(), &quick());
        assert!(stats.mean_dropped > 0.0, "{stats:?}");
        let reliable = run_cell(&inst, "RMS".parse().unwrap(), &quick());
        assert_eq!(reliable.mean_dropped, 0.0);
    }

    #[test]
    fn convergence_rate_helper() {
        let s = CellStats { runs: 10, converged: 7, ..CellStats::default() };
        assert!((s.convergence_rate() - 0.7).abs() < 1e-9);
        assert_eq!(CellStats::default().convergence_rate(), 0.0);
    }

    #[test]
    fn run_seed_is_offset_addition() {
        assert_eq!(run_seed(10, 0), 10);
        assert_eq!(run_seed(10, 5), 15);
        assert_eq!(run_seed(u64::MAX, 1), 0); // wraps, still distinct within a cell
    }
}

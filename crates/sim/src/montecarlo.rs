//! Monte-Carlo convergence experiments (DESIGN.md experiment E11).
//!
//! For an instance and a communication model, run many randomized fair
//! schedules and record how often and how fast the algorithm converges, and
//! how many messages it spends. Instances without a dispute wheel must show
//! 100 % convergence in every model; instances with one separate the models
//! the way the paper's taxonomy predicts.

use crossbeam::thread;
use routelab_core::model::CommModel;
use routelab_spp::solve::is_stable;
use routelab_engine::outcome::{drive, RunOutcome};
use routelab_engine::runner::Runner;
use routelab_engine::schedule::RandomFair;
use routelab_spp::SppInstance;

/// Configuration of one experiment cell (instance × model).
#[derive(Debug, Clone, Copy)]
pub struct CellConfig {
    /// Independent randomized runs.
    pub runs: usize,
    /// Step budget per run.
    pub max_steps: usize,
    /// Base RNG seed (run `i` uses `seed + i`).
    pub seed: u64,
    /// Per-read drop probability for unreliable models.
    pub drop_prob: f64,
}

impl Default for CellConfig {
    fn default() -> Self {
        CellConfig { runs: 50, max_steps: 20_000, seed: 0, drop_prob: 0.25 }
    }
}

/// Aggregated results of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CellStats {
    /// Runs performed.
    pub runs: usize,
    /// Runs that reached quiescence along a fair prefix.
    pub converged: usize,
    /// Runs that reached quiescence only by *unfairly* dropping the final
    /// message on some channel (possible with unreliable channels; such
    /// executions are excluded by Definition 2.4).
    pub converged_unfairly: usize,
    /// Mean steps to convergence (over fairly converged runs).
    pub mean_steps: f64,
    /// Mean messages sent per run (all runs).
    pub mean_messages: f64,
    /// Mean messages dropped per run (all runs).
    pub mean_dropped: f64,
    /// Quiescent runs (fair or not) whose final assignment is a *stable*
    /// path assignment of the instance — with loss, a network can go quiet
    /// on an inconsistent assignment built from stale information.
    pub stable_outcome: usize,
}

impl CellStats {
    /// Fraction of runs that converged.
    pub fn convergence_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.converged as f64 / self.runs as f64
        }
    }
}

/// Runs one cell sequentially.
pub fn run_cell(inst: &SppInstance, model: CommModel, cfg: &CellConfig) -> CellStats {
    let mut stats = CellStats { runs: cfg.runs, ..CellStats::default() };
    let mut steps_sum = 0usize;
    for i in 0..cfg.runs {
        let mut runner = Runner::new(inst);
        let mut sched =
            RandomFair::new(inst, model, cfg.seed.wrapping_add(i as u64))
                .with_drop_prob(cfg.drop_prob);
        match drive(&mut runner, &mut sched, cfg.max_steps) {
            RunOutcome::Converged { steps, assignment } => {
                if runner.has_dangling_drops() {
                    stats.converged_unfairly += 1;
                } else {
                    stats.converged += 1;
                    steps_sum += steps;
                }
                if is_stable(inst, &assignment) {
                    stats.stable_outcome += 1;
                }
            }
            RunOutcome::CycleDetected { .. }
            | RunOutcome::StepLimit { .. }
            | RunOutcome::ScheduleExhausted { .. } => {}
        }
        stats.mean_messages += runner.stats().sent as f64;
        stats.mean_dropped += runner.stats().dropped as f64;
    }
    if stats.converged > 0 {
        stats.mean_steps = steps_sum as f64 / stats.converged as f64;
    }
    if cfg.runs > 0 {
        stats.mean_messages /= cfg.runs as f64;
        stats.mean_dropped /= cfg.runs as f64;
    }
    stats
}

/// Runs a grid of cells (one per model) in parallel with scoped threads.
pub fn run_grid(
    inst: &SppInstance,
    models: &[CommModel],
    cfg: &CellConfig,
) -> Vec<(CommModel, CellStats)> {
    let mut out: Vec<(CommModel, CellStats)> = Vec::with_capacity(models.len());
    thread::scope(|s| {
        let handles: Vec<_> = models
            .iter()
            .map(|&m| s.spawn(move |_| (m, run_cell(inst, m, cfg))))
            .collect();
        for h in handles {
            out.push(h.join().expect("simulation thread panicked"));
        }
    })
    .expect("crossbeam scope");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use routelab_spp::gadgets;

    fn quick() -> CellConfig {
        CellConfig { runs: 12, max_steps: 6_000, seed: 7, drop_prob: 0.25 }
    }

    #[test]
    fn wheel_free_instances_always_converge() {
        let inst = gadgets::good_gadget();
        for model in ["R1O", "RMS", "REA"] {
            let stats = run_cell(&inst, model.parse().unwrap(), &quick());
            assert_eq!(stats.converged, stats.runs, "{model}: {stats:?}");
            assert_eq!(stats.converged_unfairly, 0, "{model}: {stats:?}");
            assert!(stats.mean_steps > 0.0);
        }
        // With lossy channels every run still quiesces, but a random
        // schedule usually ends some channel on a dropped message, which the
        // harness reports as unfair quiescence — and the resulting frozen
        // assignment need not even be stable (stale routes).
        for model in ["UMS", "U1O"] {
            let stats = run_cell(&inst, model.parse().unwrap(), &quick());
            assert_eq!(
                stats.converged + stats.converged_unfairly,
                stats.runs,
                "{model}: {stats:?}"
            );
        }
    }

    #[test]
    fn bad_gadget_never_converges() {
        // No stable assignment exists, so no run can reach quiescence.
        let inst = gadgets::bad_gadget();
        for model in ["RMS", "REA"] {
            let stats = run_cell(&inst, model.parse().unwrap(), &quick());
            assert_eq!(stats.converged, 0, "{model}: {stats:?}");
        }
    }

    #[test]
    fn bad_gadget_unreliable_quiescence_is_always_unfair() {
        // With lossy channels BAD-GADGET *can* go quiet — by dropping the
        // final message on some channel, which Definition 2.4 forbids. The
        // harness classifies those runs separately.
        let inst = gadgets::bad_gadget();
        let stats = run_cell(&inst, "UMS".parse().unwrap(), &quick());
        assert_eq!(stats.converged, 0, "{stats:?}");
        assert!(stats.converged_unfairly > 0, "{stats:?}");
    }

    #[test]
    fn disagree_polling_always_converges_randomized() {
        // RMA guarantees convergence on DISAGREE (Example A.1): every
        // randomized fair run must reach quiescence.
        let inst = gadgets::disagree();
        let stats = run_cell(&inst, "RMA".parse().unwrap(), &quick());
        assert_eq!(stats.converged, stats.runs, "{stats:?}");
    }

    #[test]
    fn stats_are_deterministic_per_seed() {
        let inst = gadgets::disagree();
        let a = run_cell(&inst, "RMS".parse().unwrap(), &quick());
        let b = run_cell(&inst, "RMS".parse().unwrap(), &quick());
        assert_eq!(a, b);
    }

    #[test]
    fn grid_matches_cells() {
        let inst = gadgets::good_gadget();
        let models: Vec<CommModel> = vec!["R1O".parse().unwrap(), "REA".parse().unwrap()];
        let grid = run_grid(&inst, &models, &quick());
        assert_eq!(grid.len(), 2);
        for (m, stats) in grid {
            assert_eq!(stats, run_cell(&inst, m, &quick()));
        }
    }

    #[test]
    fn unreliable_runs_record_drops() {
        let inst = gadgets::good_gadget();
        let stats = run_cell(&inst, "UMS".parse().unwrap(), &quick());
        assert!(stats.mean_dropped > 0.0, "{stats:?}");
        let reliable = run_cell(&inst, "RMS".parse().unwrap(), &quick());
        assert_eq!(reliable.mean_dropped, 0.0);
    }

    #[test]
    fn convergence_rate_helper() {
        let s = CellStats { runs: 10, converged: 7, ..CellStats::default() };
        assert!((s.convergence_rate() - 0.7).abs() < 1e-9);
        assert_eq!(CellStats::default().convergence_rate(), 0.0);
    }
}

//! Monte-Carlo convergence experiments (DESIGN.md experiment E11).
//!
//! For an instance and a communication model, run many randomized fair
//! schedules and record how often and how fast the algorithm converges, and
//! how many messages it spends. Instances without a dispute wheel must show
//! 100 % convergence in every model; instances with one separate the models
//! the way the paper's taxonomy predicts.
//!
//! Execution decomposes into run-granularity jobs — run `i` of a cell is a
//! pure function of `(instance, model, run_seed(cfg.seed, i))` — scheduled
//! on the shared [`pool`](crate::pool) and merged back in run order, so a
//! grid's statistics are bit-identical for every worker count.

use std::fmt;
use std::time::{Duration, Instant};

use routelab_core::model::CommModel;
use routelab_engine::outcome::{drive_report, RunOutcome};
use routelab_engine::runner::Runner;
use routelab_engine::schedule::RandomFair;
use routelab_spp::solve::is_stable;
use routelab_spp::{RouteTable, SppInstance};

use crate::pool::{self, PoolConfig};

/// Configuration of one experiment cell (instance × model).
#[derive(Debug, Clone, Copy)]
pub struct CellConfig {
    /// Independent randomized runs.
    pub runs: usize,
    /// Step budget per run.
    pub max_steps: usize,
    /// Base RNG seed (run `i` uses [`run_seed`]`(seed, i)`).
    pub seed: u64,
    /// Per-read drop probability for unreliable models.
    pub drop_prob: f64,
}

impl Default for CellConfig {
    fn default() -> Self {
        CellConfig { runs: 50, max_steps: 20_000, seed: 0, drop_prob: 0.25 }
    }
}

/// The RNG seed of run `run` within a cell with base seed `base`.
///
/// Within one cell the derived seeds are pairwise distinct for any
/// `runs ≤ 2⁶⁴` (wrapping addition of distinct offsets), so no two runs of a
/// cell ever share a schedule.
pub fn run_seed(base: u64, run: usize) -> u64 {
    base.wrapping_add(run as u64)
}

/// Everything one randomized run produces — the unit merged into
/// [`CellStats`], and the engine-level observability record (wall-clock and
/// message counters) feeding the JSON reports.
#[derive(Debug, Clone, Copy)]
pub struct RunRecord {
    /// Run index within the cell.
    pub run: usize,
    /// Reached quiescence along a fair prefix.
    pub converged: bool,
    /// Reached quiescence only by unfairly dropping a final message.
    pub converged_unfairly: bool,
    /// Steps to convergence (meaningful when `converged`).
    pub steps_to_convergence: usize,
    /// The final assignment is a stable path assignment (quiescent runs).
    pub stable_outcome: bool,
    /// Steps actually executed (all runs).
    pub executed_steps: usize,
    /// Messages sent.
    pub sent: usize,
    /// Messages dropped.
    pub dropped: usize,
    /// Wall-clock time of this run.
    pub wall: Duration,
}

/// Aggregated results of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CellStats {
    /// Runs performed.
    pub runs: usize,
    /// Runs that reached quiescence along a fair prefix.
    pub converged: usize,
    /// Runs that reached quiescence only by *unfairly* dropping the final
    /// message on some channel (possible with unreliable channels; such
    /// executions are excluded by Definition 2.4).
    pub converged_unfairly: usize,
    /// Mean steps to convergence (over fairly converged runs).
    pub mean_steps: f64,
    /// Mean messages sent per run (all runs).
    pub mean_messages: f64,
    /// Mean messages dropped per run (all runs).
    pub mean_dropped: f64,
    /// Quiescent runs (fair or not) whose final assignment is a *stable*
    /// path assignment of the instance — with loss, a network can go quiet
    /// on an inconsistent assignment built from stale information.
    pub stable_outcome: usize,
}

impl CellStats {
    /// Fraction of runs that converged.
    pub fn convergence_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.converged as f64 / self.runs as f64
        }
    }

    /// Folds per-run records (in run order) into cell statistics. The fold
    /// order is fixed, so the result is independent of which worker
    /// produced which record.
    pub fn from_records(records: &[RunRecord]) -> CellStats {
        let mut stats = CellStats { runs: records.len(), ..CellStats::default() };
        let mut steps_sum = 0usize;
        for r in records {
            if r.converged {
                stats.converged += 1;
                steps_sum += r.steps_to_convergence;
            }
            if r.converged_unfairly {
                stats.converged_unfairly += 1;
            }
            if r.stable_outcome {
                stats.stable_outcome += 1;
            }
            stats.mean_messages += r.sent as f64;
            stats.mean_dropped += r.dropped as f64;
        }
        if stats.converged > 0 {
            stats.mean_steps = steps_sum as f64 / stats.converged as f64;
        }
        if stats.runs > 0 {
            stats.mean_messages /= stats.runs as f64;
            stats.mean_dropped /= stats.runs as f64;
        }
        stats
    }
}

/// Streaming per-cell aggregation: folds [`RunRecord`]s one at a time (in
/// run order) and never retains them, so a cell's memory footprint is O(1)
/// in the number of runs — the Internet-scale cells run tens of thousands
/// of runs without materializing a record vector.
///
/// The accumulation replays [`CellStats::from_records`]'s exact operation
/// order (integer sums for counters, sequential f64 `+=` for the message
/// means, one final division), so the finished statistics are bit-identical
/// to the batch fold. On top of that it keeps a Welford accumulator over
/// steps-to-convergence, giving the large-topology reports a numerically
/// stable standard deviation with no second pass.
#[derive(Debug, Clone, Copy)]
pub struct CellAccum {
    model: CommModel,
    runs: usize,
    converged: usize,
    converged_unfairly: usize,
    stable_outcome: usize,
    steps_sum: usize,
    sum_messages: f64,
    sum_dropped: f64,
    welford_mean: f64,
    welford_m2: f64,
    wall: Duration,
    total_steps: usize,
    total_sent: usize,
    total_dropped: usize,
}

impl CellAccum {
    /// An empty accumulator for one cell.
    pub fn new(model: CommModel) -> CellAccum {
        CellAccum {
            model,
            runs: 0,
            converged: 0,
            converged_unfairly: 0,
            stable_outcome: 0,
            steps_sum: 0,
            sum_messages: 0.0,
            sum_dropped: 0.0,
            welford_mean: 0.0,
            welford_m2: 0.0,
            wall: Duration::ZERO,
            total_steps: 0,
            total_sent: 0,
            total_dropped: 0,
        }
    }

    /// Folds one run's record in. Records must arrive in run order for the
    /// floating-point sums to be bit-identical to the batch fold.
    pub fn push(&mut self, r: &RunRecord) {
        self.runs += 1;
        if r.converged {
            self.converged += 1;
            self.steps_sum += r.steps_to_convergence;
            let x = r.steps_to_convergence as f64;
            let d = x - self.welford_mean;
            self.welford_mean += d / self.converged as f64;
            self.welford_m2 += d * (x - self.welford_mean);
        }
        if r.converged_unfairly {
            self.converged_unfairly += 1;
        }
        if r.stable_outcome {
            self.stable_outcome += 1;
        }
        self.sum_messages += r.sent as f64;
        self.sum_dropped += r.dropped as f64;
        self.wall += r.wall;
        self.total_steps += r.executed_steps;
        self.total_sent += r.sent;
        self.total_dropped += r.dropped;
    }

    /// Sample standard deviation of steps-to-convergence over fairly
    /// converged runs (0 with fewer than two samples).
    pub fn steps_std(&self) -> f64 {
        if self.converged >= 2 {
            (self.welford_m2 / (self.converged - 1) as f64).sqrt()
        } else {
            0.0
        }
    }

    /// The finished per-cell report.
    pub fn finish(&self) -> CellReport {
        let mut stats = CellStats {
            runs: self.runs,
            converged: self.converged,
            converged_unfairly: self.converged_unfairly,
            stable_outcome: self.stable_outcome,
            mean_steps: 0.0,
            mean_messages: self.sum_messages,
            mean_dropped: self.sum_dropped,
        };
        if stats.converged > 0 {
            stats.mean_steps = self.steps_sum as f64 / stats.converged as f64;
        }
        if stats.runs > 0 {
            stats.mean_messages /= stats.runs as f64;
            stats.mean_dropped /= stats.runs as f64;
        }
        CellReport {
            model: self.model,
            stats,
            steps_std: self.steps_std(),
            wall: self.wall,
            total_steps: self.total_steps,
            total_sent: self.total_sent,
            total_dropped: self.total_dropped,
        }
    }
}

/// Executes run `run` of one cell: a pure function of its arguments.
///
/// Builds a fresh [`RouteTable`] for the instance; grids amortize that cost
/// across runs with [`run_one_with`].
pub fn run_one(inst: &SppInstance, model: CommModel, cfg: &CellConfig, run: usize) -> RunRecord {
    run_one_with(inst, &RouteTable::new(inst), model, cfg, run)
}

/// [`run_one`] against a prebuilt route table, shared (by reference) across
/// every run and worker of a grid. The runner records no assignment trace —
/// Monte-Carlo statistics never read it — which keeps the per-run
/// allocation profile flat.
pub fn run_one_with(
    inst: &SppInstance,
    table: &RouteTable,
    model: CommModel,
    cfg: &CellConfig,
    run: usize,
) -> RunRecord {
    let t0 = Instant::now();
    let mut runner = Runner::with_table(inst, table).tracing(false);
    let mut sched =
        RandomFair::new(inst, model, run_seed(cfg.seed, run)).with_drop_prob(cfg.drop_prob);
    let report = drive_report(&mut runner, &mut sched, cfg.max_steps);
    let mut rec = RunRecord {
        run,
        converged: false,
        converged_unfairly: false,
        steps_to_convergence: 0,
        stable_outcome: false,
        executed_steps: report.stats.steps,
        sent: report.stats.sent,
        dropped: report.stats.dropped,
        wall: Duration::ZERO,
    };
    if let RunOutcome::Converged { steps, assignment } = report.outcome {
        if runner.has_dangling_drops() {
            rec.converged_unfairly = true;
        } else {
            rec.converged = true;
            rec.steps_to_convergence = steps;
        }
        rec.stable_outcome = is_stable(inst, &assignment);
    }
    rec.wall = t0.elapsed();
    if routelab_obs::enabled() {
        routelab_obs::histogram("mc.run.wall_ns", rec.wall.as_nanos() as u64);
    }
    rec
}

/// Runs one cell sequentially on the calling thread, streaming each run
/// into a [`CellAccum`] (no record retention).
pub fn run_cell(inst: &SppInstance, model: CommModel, cfg: &CellConfig) -> CellStats {
    let table = RouteTable::new(inst);
    let mut acc = CellAccum::new(model);
    for i in 0..cfg.runs {
        acc.push(&run_one_with(inst, &table, model, cfg, i));
    }
    acc.finish().stats
}

/// One cell's statistics plus execution observability: wall-clock (summed
/// over the cell's runs, so it is CPU-time-like and comparable across
/// worker counts) and raw step/message totals.
#[derive(Debug, Clone, Copy)]
pub struct CellReport {
    /// The communication model of this cell.
    pub model: CommModel,
    /// Deterministic aggregate statistics.
    pub stats: CellStats,
    /// Sample standard deviation of steps-to-convergence over fairly
    /// converged runs (Welford; 0 with fewer than two samples). Reported by
    /// the large-topology family lane; the classic grid JSON ignores it.
    pub steps_std: f64,
    /// Total time spent executing this cell's runs.
    pub wall: Duration,
    /// Steps executed across all runs.
    pub total_steps: usize,
    /// Messages sent across all runs.
    pub total_sent: usize,
    /// Messages dropped across all runs.
    pub total_dropped: usize,
}

impl CellReport {
    /// Simulation throughput of this cell in engine steps per second.
    pub fn steps_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.total_steps as f64 / secs
        } else {
            0.0
        }
    }
}

/// A simulation run that panicked, located by cell and seed so the
/// diverging run is reproducible: rerun with `RandomFair::new(inst, model,
/// seed)` under the same configuration.
#[derive(Debug)]
pub struct GridError {
    /// Model of the failing cell.
    pub model: CommModel,
    /// Run index within the cell.
    pub run: usize,
    /// The exact scheduler seed of the failing run.
    pub seed: u64,
    /// Rendered panic payload.
    pub panic: String,
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulation run panicked in cell model={} run={} (scheduler seed {}): {}",
            self.model, self.run, self.seed, self.panic
        )
    }
}

impl std::error::Error for GridError {}

/// Runs a grid of cells (one per model) on the shared worker pool,
/// decomposed into run-granularity jobs; results are merged in `(cell,
/// run)` order and are bit-identical for every worker count.
///
/// # Errors
///
/// Returns a [`GridError`] naming the cell `(model, seed)` and run of the
/// earliest panicking job.
pub fn try_run_grid_with(
    inst: &SppInstance,
    models: &[CommModel],
    cfg: &CellConfig,
    pool_cfg: &PoolConfig,
) -> Result<Vec<CellReport>, GridError> {
    let runs = cfg.runs;
    let jobs = models.len() * runs;
    let mut grid_span = routelab_obs::span("mc.grid");
    grid_span.field("models", models.len());
    grid_span.field("runs_per_cell", runs);
    // One route table for the whole grid, shared by reference across every
    // worker; records stream into per-cell accumulators in job order (cell-
    // major, so each cell sees its runs in run order) and are never
    // retained.
    let table = RouteTable::new(inst);
    let mut accums: Vec<CellAccum> = models.iter().map(|&m| CellAccum::new(m)).collect();
    pool::execute_fold(
        jobs,
        pool_cfg.resolved_threads(),
        &|job| run_one_with(inst, &table, models[job / runs], cfg, job % runs),
        &mut accums,
        &mut |accs, job, rec| accs[job / runs].push(&rec),
    )
    .map_err(|p| GridError {
        model: models[p.job / runs],
        run: p.job % runs,
        seed: run_seed(cfg.seed, p.job % runs),
        panic: p.message,
    })?;
    Ok(accums.iter().map(|a| a.finish()).collect())
}

/// [`try_run_grid_with`] without the observability wrapper, panicking (with
/// the failing cell named) on a diverging run.
pub fn run_grid_with(
    inst: &SppInstance,
    models: &[CommModel],
    cfg: &CellConfig,
    pool_cfg: &PoolConfig,
) -> Vec<(CommModel, CellStats)> {
    match try_run_grid_with(inst, models, cfg, pool_cfg) {
        Ok(cells) => cells.into_iter().map(|c| (c.model, c.stats)).collect(),
        Err(e) => panic!("{e}"),
    }
}

/// Runs a grid of cells with default pool sizing (the `ROUTELAB_THREADS`
/// environment variable, else all available cores).
pub fn run_grid(
    inst: &SppInstance,
    models: &[CommModel],
    cfg: &CellConfig,
) -> Vec<(CommModel, CellStats)> {
    run_grid_with(inst, models, cfg, &PoolConfig::default())
}

/// The seed strategy this engine replaced: one scoped thread per model,
/// each running its whole cell. Kept for the pool-scaling benchmark — cells
/// are imbalanced, so this leaves workers idle while the slowest cell
/// finishes.
pub fn run_grid_per_model_threads(
    inst: &SppInstance,
    models: &[CommModel],
    cfg: &CellConfig,
) -> Vec<(CommModel, CellStats)> {
    let mut out: Vec<(CommModel, CellStats)> = Vec::with_capacity(models.len());
    std::thread::scope(|s| {
        let handles: Vec<_> =
            models.iter().map(|&m| s.spawn(move || (m, run_cell(inst, m, cfg)))).collect();
        for h in handles {
            out.push(h.join().expect("simulation thread panicked"));
        }
    });
    out
}

/// The pinned Monte-Carlo workload shared by `exp-montecarlo` and the
/// engine throughput bench (`exp-engine-bench`): instance families, model
/// list, and cell configuration in one place, so the benchmark measures
/// exactly the workload the experiment publishes and the two can never
/// drift apart.
pub mod pinned {
    use super::CellConfig;
    use routelab_core::model::CommModel;
    use routelab_spp::generator::{gao_rexford_instance, random_instance, RandomSppConfig};
    use routelab_spp::{gadgets, SppInstance};

    /// Instance groups of the default grid, in report order.
    pub fn instances() -> Vec<(String, SppInstance)> {
        let mut v = vec![
            ("DISAGREE".to_string(), gadgets::disagree()),
            ("BAD-GADGET".to_string(), gadgets::bad_gadget()),
            ("GOOD-GADGET".to_string(), gadgets::good_gadget()),
            ("FIG6".to_string(), gadgets::fig6()),
        ];
        for n in [8, 16] {
            let inst = gao_rexford_instance(n, 7, 6, 5).expect("generator");
            v.push((format!("GAO-REXFORD n={n}"), inst));
        }
        let rnd = random_instance(&RandomSppConfig { nodes: 10, seed: 5, ..Default::default() })
            .expect("generator");
        v.push(("RANDOM n=10".to_string(), rnd));
        v
    }

    /// The eight models of the published grid.
    pub fn models() -> Vec<CommModel> {
        ["R1O", "REO", "RMS", "UMS", "R1A", "RMA", "REA", "U1O"]
            .iter()
            .map(|s| s.parse().expect("model"))
            .collect()
    }

    /// The pinned cell configuration with `runs` runs per cell.
    pub fn config(runs: usize) -> CellConfig {
        CellConfig { runs, max_steps: 30_000, seed: 42, drop_prob: 0.25 }
    }

    /// A Gao–Rexford family instance of `nodes` nodes — the large-topology
    /// lane (`--family gao-rexford --nodes N`) and the bench's 10k-node
    /// cell both use this construction.
    pub fn family_instance(nodes: usize) -> SppInstance {
        gao_rexford_instance(nodes, 7, 6, 5).expect("generator")
    }

    /// The family lane's step budget for an `n`-node instance: randomized
    /// single-channel activation needs a coupon-collector factor over the
    /// channel count times a few convergence waves.
    pub fn family_max_steps(nodes: usize) -> usize {
        (120 * nodes).max(30_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routelab_spp::gadgets;

    fn quick() -> CellConfig {
        CellConfig { runs: 12, max_steps: 6_000, seed: 7, drop_prob: 0.25 }
    }

    #[test]
    fn wheel_free_instances_always_converge() {
        let inst = gadgets::good_gadget();
        for model in ["R1O", "RMS", "REA"] {
            let stats = run_cell(&inst, model.parse().unwrap(), &quick());
            assert_eq!(stats.converged, stats.runs, "{model}: {stats:?}");
            assert_eq!(stats.converged_unfairly, 0, "{model}: {stats:?}");
            assert!(stats.mean_steps > 0.0);
        }
        // With lossy channels every run still quiesces, but a random
        // schedule usually ends some channel on a dropped message, which the
        // harness reports as unfair quiescence — and the resulting frozen
        // assignment need not even be stable (stale routes).
        for model in ["UMS", "U1O"] {
            let stats = run_cell(&inst, model.parse().unwrap(), &quick());
            assert_eq!(
                stats.converged + stats.converged_unfairly,
                stats.runs,
                "{model}: {stats:?}"
            );
        }
    }

    #[test]
    fn bad_gadget_never_converges() {
        // No stable assignment exists, so no run can reach quiescence.
        let inst = gadgets::bad_gadget();
        for model in ["RMS", "REA"] {
            let stats = run_cell(&inst, model.parse().unwrap(), &quick());
            assert_eq!(stats.converged, 0, "{model}: {stats:?}");
        }
    }

    #[test]
    fn bad_gadget_unreliable_quiescence_is_always_unfair() {
        // With lossy channels BAD-GADGET *can* go quiet — by dropping the
        // final message on some channel, which Definition 2.4 forbids. The
        // harness classifies those runs separately.
        let inst = gadgets::bad_gadget();
        let stats = run_cell(&inst, "UMS".parse().unwrap(), &quick());
        assert_eq!(stats.converged, 0, "{stats:?}");
        assert!(stats.converged_unfairly > 0, "{stats:?}");
    }

    #[test]
    fn disagree_polling_always_converges_randomized() {
        // RMA guarantees convergence on DISAGREE (Example A.1): every
        // randomized fair run must reach quiescence.
        let inst = gadgets::disagree();
        let stats = run_cell(&inst, "RMA".parse().unwrap(), &quick());
        assert_eq!(stats.converged, stats.runs, "{stats:?}");
    }

    #[test]
    fn stats_are_deterministic_per_seed() {
        let inst = gadgets::disagree();
        let a = run_cell(&inst, "RMS".parse().unwrap(), &quick());
        let b = run_cell(&inst, "RMS".parse().unwrap(), &quick());
        assert_eq!(a, b);
    }

    #[test]
    fn grid_matches_cells() {
        let inst = gadgets::good_gadget();
        let models: Vec<CommModel> = vec!["R1O".parse().unwrap(), "REA".parse().unwrap()];
        let grid = run_grid(&inst, &models, &quick());
        assert_eq!(grid.len(), 2);
        for (m, stats) in grid {
            assert_eq!(stats, run_cell(&inst, m, &quick()));
        }
    }

    #[test]
    fn grid_matches_legacy_per_model_strategy() {
        let inst = gadgets::disagree();
        let models: Vec<CommModel> =
            ["R1O", "RMS", "UMS"].iter().map(|s| s.parse().unwrap()).collect();
        assert_eq!(
            run_grid(&inst, &models, &quick()),
            run_grid_per_model_threads(&inst, &models, &quick())
        );
    }

    #[test]
    fn cell_reports_carry_observability() {
        let inst = gadgets::good_gadget();
        let models: Vec<CommModel> = vec!["RMS".parse().unwrap(), "UMS".parse().unwrap()];
        let cells = try_run_grid_with(&inst, &models, &quick(), &PoolConfig::with_threads(2))
            .expect("no panics");
        for c in &cells {
            assert!(c.total_steps > 0);
            assert!(c.total_sent > 0);
            assert!(c.wall > Duration::ZERO);
            assert!(c.steps_per_sec() > 0.0);
        }
        // Only the unreliable cell drops.
        assert_eq!(cells[0].total_dropped, 0);
        assert!(cells[1].total_dropped > 0);
    }

    #[test]
    fn unreliable_runs_record_drops() {
        let inst = gadgets::good_gadget();
        let stats = run_cell(&inst, "UMS".parse().unwrap(), &quick());
        assert!(stats.mean_dropped > 0.0, "{stats:?}");
        let reliable = run_cell(&inst, "RMS".parse().unwrap(), &quick());
        assert_eq!(reliable.mean_dropped, 0.0);
    }

    #[test]
    fn convergence_rate_helper() {
        let s = CellStats { runs: 10, converged: 7, ..CellStats::default() };
        assert!((s.convergence_rate() - 0.7).abs() < 1e-9);
        assert_eq!(CellStats::default().convergence_rate(), 0.0);
    }

    #[test]
    fn streaming_accumulator_is_bit_identical_to_batch_fold() {
        // The streaming CellAccum must replay CellStats::from_records'
        // exact operation order: identical counters AND bit-identical f64
        // means on the same record sequence.
        let inst = gadgets::bad_gadget();
        let table = routelab_spp::RouteTable::new(&inst);
        for model in ["RMS", "UMS", "REA", "U1O"] {
            let model: CommModel = model.parse().unwrap();
            let records: Vec<RunRecord> = (0..quick().runs)
                .map(|i| run_one_with(&inst, &table, model, &quick(), i))
                .collect();
            let batch = CellStats::from_records(&records);
            let mut acc = CellAccum::new(model);
            for r in &records {
                acc.push(r);
            }
            let streamed = acc.finish();
            assert_eq!(streamed.stats, batch, "{model}");
            assert_eq!(streamed.stats.mean_steps.to_bits(), batch.mean_steps.to_bits());
            assert_eq!(streamed.stats.mean_messages.to_bits(), batch.mean_messages.to_bits());
            assert_eq!(streamed.stats.mean_dropped.to_bits(), batch.mean_dropped.to_bits());
        }
    }

    #[test]
    fn shared_table_runs_match_per_run_tables() {
        let inst = gadgets::fig7();
        let table = routelab_spp::RouteTable::new(&inst);
        for model in ["R1O", "UMS"] {
            let model: CommModel = model.parse().unwrap();
            for run in 0..4 {
                let a = run_one(&inst, model, &quick(), run);
                let b = run_one_with(&inst, &table, model, &quick(), run);
                assert_eq!(a.converged, b.converged);
                assert_eq!(a.converged_unfairly, b.converged_unfairly);
                assert_eq!(a.steps_to_convergence, b.steps_to_convergence);
                assert_eq!(a.stable_outcome, b.stable_outcome);
                assert_eq!(a.executed_steps, b.executed_steps);
                assert_eq!(a.sent, b.sent);
                assert_eq!(a.dropped, b.dropped);
            }
        }
    }

    #[test]
    fn grid_reports_are_bit_identical_across_thread_counts() {
        // The thread-count half of the differential suite: every statistic
        // the JSON reports (other than wall clock) must be reproduced
        // exactly at 1, 2, and 8 workers.
        for inst in [gadgets::disagree(), gadgets::bad_gadget()] {
            let models: Vec<CommModel> =
                ["R1O", "RMS", "UMS", "REA"].iter().map(|s| s.parse().unwrap()).collect();
            let base = try_run_grid_with(&inst, &models, &quick(), &PoolConfig::with_threads(1))
                .expect("no panics");
            for threads in [2, 8] {
                let other =
                    try_run_grid_with(&inst, &models, &quick(), &PoolConfig::with_threads(threads))
                        .expect("no panics");
                for (a, b) in base.iter().zip(&other) {
                    assert_eq!(a.model, b.model, "threads={threads}");
                    assert_eq!(a.stats, b.stats, "threads={threads} model={}", a.model);
                    assert_eq!(a.steps_std.to_bits(), b.steps_std.to_bits());
                    assert_eq!(a.total_steps, b.total_steps);
                    assert_eq!(a.total_sent, b.total_sent);
                    assert_eq!(a.total_dropped, b.total_dropped);
                }
            }
        }
    }

    #[test]
    fn steps_std_matches_two_pass_formula() {
        let inst = gadgets::good_gadget();
        let table = routelab_spp::RouteTable::new(&inst);
        let model: CommModel = "RMS".parse().unwrap();
        let records: Vec<RunRecord> =
            (0..quick().runs).map(|i| run_one_with(&inst, &table, model, &quick(), i)).collect();
        let mut acc = CellAccum::new(model);
        for r in &records {
            acc.push(r);
        }
        let steps: Vec<f64> =
            records.iter().filter(|r| r.converged).map(|r| r.steps_to_convergence as f64).collect();
        assert!(steps.len() >= 2, "good gadget always converges");
        let mean = steps.iter().sum::<f64>() / steps.len() as f64;
        let var = steps.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (steps.len() - 1) as f64;
        assert!((acc.steps_std() - var.sqrt()).abs() < 1e-9 * (1.0 + var.sqrt()));
        assert_eq!(CellAccum::new(model).steps_std(), 0.0);
    }

    #[test]
    fn run_seed_is_offset_addition() {
        assert_eq!(run_seed(10, 0), 10);
        assert_eq!(run_seed(10, 5), 15);
        assert_eq!(run_seed(u64::MAX, 1), 0); // wraps, still distinct within a cell
    }
}

//! Shared command-line plumbing for the experiment binaries.
//!
//! Every `exp_*` binary accepts the same infrastructure flags —
//! `--threads N`, `--quiet`, `--obs`, `--trace`, `--reduce`/`--no-reduce`,
//! `--spill-dir PATH` — parsed here once instead of being copied per
//! binary. Parsing also wires the
//! telemetry layer: `--obs` (or a truthy `ROUTELAB_OBS`) enables the NDJSON
//! sink, `--trace` (or a truthy `ROUTELAB_TRACE`) enables the flight
//! recorder, and `--quiet` suppresses progress/heartbeat output on stderr.
//! State-space reduction (queue normal forms + symmetry quotient) is on by
//! default; `--no-reduce` is the escape hatch that forces the explorer to
//! enumerate raw states (verdicts are identical either way — see
//! EXPERIMENTS.md's reduction-soundness section).
//!
//! Progress text goes to **stderr** ([`CommonOpts::progress`]) so stdout
//! stays pipeable: it carries only the experiment's tables and verdicts.
//! Binaries must call [`CommonOpts::finish`] (or [`exit`]) before
//! terminating — `std::process::exit` skips destructors, so the telemetry
//! tail would otherwise be lost.

use std::path::PathBuf;

use crate::pool::PoolConfig;

/// Options shared by all experiment binaries.
#[derive(Debug, Clone, Default)]
pub struct CommonOpts {
    /// Worker-pool sizing (`--threads N`, else `ROUTELAB_THREADS`, else all
    /// cores).
    pub pool: PoolConfig,
    /// Suppress progress and heartbeat output (`--quiet`).
    pub quiet: bool,
    /// Telemetry log path when observability is enabled.
    pub obs_log: Option<PathBuf>,
    /// Flight-recorder trace path when tracing is enabled (`--trace` or a
    /// truthy `ROUTELAB_TRACE`).
    pub trace_log: Option<PathBuf>,
    /// Disable state-space reduction (`--no-reduce`); reduction is the
    /// default, restated explicitly by `--reduce`.
    pub no_reduce: bool,
    /// Directory for the explorer's state-arena spill file
    /// (`--spill-dir PATH`): lets multi-million-state budgets run within a
    /// bounded resident footprint. `None` keeps every state in memory.
    pub spill_dir: Option<PathBuf>,
    /// Positional arguments and unrecognized flags, in order, for the
    /// binary's own parsing.
    pub rest: Vec<String>,
}

impl CommonOpts {
    /// Whether explorations should run with state-space reduction (the
    /// default; `--no-reduce` turns it off).
    pub fn reduce(&self) -> bool {
        !self.no_reduce
    }

    /// Prints a progress line to stderr unless `--quiet`.
    pub fn progress(&self, msg: impl AsRef<str>) {
        if !self.quiet {
            eprintln!("{}", msg.as_ref());
        }
    }

    /// Like [`CommonOpts::progress`] but without a trailing newline (for
    /// `surveying X ... done` style updates).
    pub fn progress_part(&self, msg: impl AsRef<str>) {
        if !self.quiet {
            use std::io::Write as _;
            let mut err = std::io::stderr();
            let _ = write!(err, "{}", msg.as_ref());
            let _ = err.flush();
        }
    }

    /// Flushes telemetry. Call once, right before the binary returns or
    /// exits.
    pub fn finish(&self) {
        routelab_obs::shutdown();
    }

    /// [`CommonOpts::finish`] followed by `std::process::exit(code)`.
    pub fn exit(&self, code: i32) -> ! {
        self.finish();
        std::process::exit(code);
    }
}

/// Parses the shared flags out of an explicit argument list (everything not
/// recognized lands in [`CommonOpts::rest`]) and initializes telemetry.
///
/// `proc_name` names the binary in usage errors and the telemetry log file.
pub fn parse_common_from<I>(proc_name: &str, args: I) -> CommonOpts
where
    I: IntoIterator<Item = String>,
{
    let mut opts = CommonOpts::default();
    let mut obs_flag = false;
    let mut trace_flag = false;
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                let Some(n) = args.next().and_then(|s| s.parse::<usize>().ok()).filter(|&n| n >= 1)
                else {
                    eprintln!("{proc_name}: --threads needs a positive integer");
                    eprintln!(
                        "usage: {proc_name} [--threads N] [--quiet] [--obs] [--no-reduce] ..."
                    );
                    std::process::exit(2);
                };
                opts.pool = PoolConfig::with_threads(n);
            }
            "--quiet" => opts.quiet = true,
            "--obs" => obs_flag = true,
            "--trace" => trace_flag = true,
            "--reduce" => opts.no_reduce = false,
            "--no-reduce" => opts.no_reduce = true,
            "--spill-dir" => {
                let Some(dir) = args.next().filter(|d| !d.is_empty()) else {
                    eprintln!("{proc_name}: --spill-dir needs a directory path");
                    eprintln!(
                        "usage: {proc_name} [--threads N] [--quiet] [--obs] [--no-reduce] \
                         [--spill-dir PATH] ..."
                    );
                    std::process::exit(2);
                };
                opts.spill_dir = Some(PathBuf::from(dir));
            }
            _ => opts.rest.push(arg),
        }
    }
    routelab_obs::set_quiet(opts.quiet);
    opts.obs_log = if obs_flag {
        routelab_obs::enable_to_dir(&routelab_obs::telemetry_dir(), proc_name)
    } else {
        routelab_obs::init_from_env(proc_name)
    };
    opts.trace_log = if trace_flag {
        routelab_obs::enable_trace_to_dir(&routelab_obs::telemetry_dir(), proc_name)
    } else {
        routelab_obs::init_trace_from_env(proc_name)
    };
    opts
}

/// [`parse_common_from`] over the process's real arguments.
pub fn parse_common(proc_name: &str) -> CommonOpts {
    parse_common_from(proc_name, std::env::args().skip(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn shared_flags_are_stripped_in_any_position() {
        let o = parse_common_from("t", strs(&["50", "--threads", "3", "--quiet", "--flag"]));
        assert_eq!(o.pool.threads, Some(3));
        assert!(o.quiet);
        assert_eq!(o.rest, vec!["50", "--flag"]);
    }

    #[test]
    fn defaults_with_no_args() {
        let o = parse_common_from("t", Vec::new());
        assert_eq!(o.pool.threads, None);
        assert!(!o.quiet);
        assert!(o.reduce(), "reduction is on by default");
        assert!(o.rest.is_empty());
        assert!(o.trace_log.is_none(), "tracing is off by default");
    }

    #[test]
    fn spill_dir_is_parsed_and_stripped() {
        let o = parse_common_from("t", strs(&["--spill-dir", "/tmp/spill", "x"]));
        assert_eq!(o.spill_dir.as_deref(), Some(std::path::Path::new("/tmp/spill")));
        assert_eq!(o.rest, vec!["x"]);
        let o = parse_common_from("t", Vec::new());
        assert!(o.spill_dir.is_none());
    }

    #[test]
    fn reduction_flags_toggle_and_strip() {
        let o = parse_common_from("t", strs(&["--no-reduce", "x"]));
        assert!(!o.reduce());
        assert_eq!(o.rest, vec!["x"]);
        // Last flag wins, and the explicit default is accepted.
        let o = parse_common_from("t", strs(&["--no-reduce", "--reduce"]));
        assert!(o.reduce());
        assert!(o.rest.is_empty());
    }
}

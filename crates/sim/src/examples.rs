//! Shared rendering of the Appendix A example executions.
//!
//! Both the `exp-examples` binary and the golden-trace snapshot tests
//! (`tests/golden_traces.rs`) render step tables through this module, so
//! the published tables and the goldens cannot drift apart: a byte changed
//! here shows up in the snapshot diff, and vice versa.

use routelab_engine::paper_runs::PaperRun;
use routelab_engine::runner::Runner;

use crate::table::Table;

/// A rendered step table plus whether it matches the paper's column.
#[derive(Debug, Clone)]
pub struct RenderedSteps {
    /// The rendered `t / U(t) / pi_U(t)(t) / paper` table.
    pub table: String,
    /// Every computed entry equals the paper's published value.
    pub matches_paper: bool,
}

/// Replays `run`'s activation sequence step by step, rendering the updated
/// node's chosen route at each step next to the paper's published value.
pub fn step_table(run: &PaperRun) -> RenderedSteps {
    let mut runner = Runner::new(&run.instance);
    let mut table =
        Table::new(vec!["t".into(), "U(t)".into(), "pi_U(t)(t)".into(), "paper".into()]);
    let mut ok = true;
    for (t, (step, (node, want))) in run.seq.iter().zip(&run.expected).enumerate() {
        runner.step(step);
        let v = run.instance.node_by_name(node).expect("node");
        let got = run.instance.fmt_route(runner.state().chosen(v));
        ok &= got == *want;
        table.row(vec![(t + 1).to_string(), node.to_string(), got, want.to_string()]);
    }
    RenderedSteps { table: table.to_string(), matches_paper: ok }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routelab_engine::paper_runs;

    #[test]
    fn all_appendix_step_tables_match_the_paper() {
        let runs = [
            paper_runs::a1_r1o().0,
            paper_runs::a2_reo().0,
            paper_runs::a3_reo(),
            paper_runs::a4_rea(),
            paper_runs::a5_rea(),
        ];
        for run in &runs {
            let r = step_table(run);
            assert!(r.matches_paper, "step table for {} diverges:\n{}", run.name, r.table);
            assert_eq!(
                r.table.lines().count(),
                run.seq.len() + 2,
                "header + rule + one row per step"
            );
        }
    }
}

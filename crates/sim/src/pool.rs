//! A deterministic, self-scheduling worker pool for experiment jobs.
//!
//! The Monte-Carlo grids decompose into many independent jobs (one per
//! `(cell, run)` pair). Cells are wildly imbalanced — unreliable-model cells
//! run an order of magnitude longer than reliable ones — so assigning one
//! thread per *cell* (the seed implementation) leaves most workers idle
//! while the U-model thread grinds on. This pool instead has every worker
//! pull the next unclaimed *job* from a shared atomic counter
//! (self-scheduling: the idle worker steals whatever work is left), and
//! writes each result into a per-job slot. Merging slots in job-index order
//! makes the final aggregate **bit-identical regardless of thread count**:
//! parallelism only changes who computes a result, never the order in which
//! results are combined.
//!
//! Worker panics are caught per job and reported with the job index, so a
//! diverging simulation names its cell instead of surfacing as an anonymous
//! "thread panicked".

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Environment variable overriding the worker count (like
/// `RAYON_NUM_THREADS`); an explicit [`PoolConfig::with_threads`] wins.
pub const THREADS_ENV: &str = "ROUTELAB_THREADS";

/// Worker-pool sizing.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolConfig {
    /// Explicit worker count; `None` falls back to [`THREADS_ENV`], then to
    /// the machine's available parallelism.
    pub threads: Option<usize>,
}

impl PoolConfig {
    /// A pool pinned to exactly `n` workers (`n` is clamped to ≥ 1).
    pub fn with_threads(n: usize) -> Self {
        PoolConfig { threads: Some(n.max(1)) }
    }

    /// The worker count this configuration resolves to.
    ///
    /// # Panics
    ///
    /// Panics when [`THREADS_ENV`] is set to anything but a positive
    /// integer — a silent fall-back to machine parallelism would turn a
    /// typo'd `ROUTELAB_THREADS=fuor` into an unpinned run (the explorer's
    /// thread resolution shares this contract).
    pub fn resolved_threads(&self) -> usize {
        if let Some(n) = self.threads {
            return n.max(1);
        }
        if let Ok(raw) = std::env::var(THREADS_ENV) {
            return routelab_explore::frontier::threads_from_env(&raw);
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// A job that panicked, with the panic payload rendered to text.
#[derive(Debug)]
pub struct JobPanic {
    /// Index of the failing job.
    pub job: usize,
    /// The panic payload (`&str`/`String` payloads verbatim).
    pub message: String,
}

fn payload_to_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `jobs` invocations of `run` on up to `threads` workers and returns
/// the results in job-index order.
///
/// On a panic inside `run`, in-flight jobs finish, no further jobs start,
/// and the panic with the **smallest job index** is returned — so the
/// reported failure is independent of scheduling.
///
/// # Errors
///
/// Returns the earliest [`JobPanic`] when any job panicked.
pub fn execute<T, F>(jobs: usize, threads: usize, run: &F) -> Result<Vec<T>, JobPanic>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs == 0 {
        return Ok(Vec::new());
    }
    let threads = threads.clamp(1, jobs);
    let obs_on = routelab_obs::enabled();
    if threads == 1 {
        // Inline fast path: no worker threads, same merge order.
        let mut worker = routelab_obs::span("pool.worker");
        let mut busy_ns: u64 = 0;
        let mut out = Vec::with_capacity(jobs);
        for i in 0..jobs {
            let t0 = if obs_on { routelab_obs::now_ns() } else { 0 };
            match catch_unwind(AssertUnwindSafe(|| run(i))) {
                Ok(v) => out.push(v),
                Err(p) => return Err(JobPanic { job: i, message: payload_to_string(p) }),
            }
            if obs_on {
                let d = routelab_obs::now_ns().saturating_sub(t0);
                busy_ns += d;
                routelab_obs::histogram("pool.job_ns", d);
            }
        }
        if obs_on {
            routelab_obs::counter("pool.jobs", jobs as u64);
            worker.field("jobs", jobs as u64);
            worker.field("busy_ns", busy_ns);
        }
        return Ok(out);
    }

    // Mutex, not OnceLock: a slot is written exactly once and only read
    // after the scope joins, and Mutex<Option<T>> needs just T: Send.
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let failure: Mutex<Option<JobPanic>> = Mutex::new(None);

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                // Per-worker telemetry: one span covering the worker's whole
                // life, a duration histogram per job, and busy/claimed
                // accounting so the summary shows idle time (span duration
                // minus busy_ns) under imbalanced job mixes.
                let mut worker = routelab_obs::span("pool.worker");
                let mut claimed: u64 = 0;
                let mut busy_ns: u64 = 0;
                loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs {
                        break;
                    }
                    let t0 = if obs_on { routelab_obs::now_ns() } else { 0 };
                    match catch_unwind(AssertUnwindSafe(|| run(i))) {
                        Ok(v) => {
                            *slots[i].lock().expect("slot mutex") = Some(v);
                        }
                        Err(p) => {
                            abort.store(true, Ordering::Relaxed);
                            let candidate = JobPanic { job: i, message: payload_to_string(p) };
                            let mut slot = failure.lock().expect("failure mutex");
                            match slot.as_ref() {
                                Some(prev) if prev.job <= candidate.job => {}
                                _ => *slot = Some(candidate),
                            }
                        }
                    }
                    if obs_on {
                        let d = routelab_obs::now_ns().saturating_sub(t0);
                        busy_ns += d;
                        claimed += 1;
                        routelab_obs::histogram("pool.job_ns", d);
                    }
                }
                if obs_on {
                    routelab_obs::counter("pool.jobs", claimed);
                    worker.field("jobs", claimed);
                    worker.field("busy_ns", busy_ns);
                }
            });
        }
    });

    if let Some(p) = failure.into_inner().expect("failure mutex") {
        return Err(p);
    }
    Ok(slots
        .into_iter()
        .map(|s| s.into_inner().expect("slot mutex").expect("every job ran to completion"))
        .collect())
}

/// The reorder buffer of [`execute_fold`] holds at most
/// `max(4 × threads, MIN_FOLD_WINDOW)` undelivered results.
const MIN_FOLD_WINDOW: usize = 16;

/// Shared reorder state between the fold workers and the consuming caller.
struct FoldState<T> {
    /// Results produced ahead of the fold cursor, keyed by job index.
    buf: BTreeMap<usize, T>,
    /// The next job index the fold expects.
    next: usize,
    /// Set on the first worker panic; producers stop, the consumer drains.
    abort: bool,
    /// Workers that have exited (the consumer's termination condition).
    workers_done: usize,
}

/// Runs `jobs` invocations of `run` on up to `threads` workers and streams
/// each result — **in job-index order** — into `fold` on the calling
/// thread, without ever materializing the full result vector.
///
/// This is the bounded-memory sibling of [`execute`]: aggregation state is
/// whatever `acc` holds, plus a reorder buffer of at most
/// `max(4 × threads, 16)` in-flight results. A worker that races ahead of
/// the fold cursor by more than the window blocks until the consumer
/// catches up (back-pressure), so a single slow job cannot make the buffer
/// grow without bound. Because the fold order is fixed, the accumulated
/// result is bit-identical for every worker count.
///
/// On a panic inside `run`, in-flight jobs finish, no further jobs start,
/// and the panic with the smallest job index is returned; `acc` then holds
/// a fold of some prefix of the jobs and should be discarded.
///
/// # Errors
///
/// Returns the earliest [`JobPanic`] when any job panicked.
pub fn execute_fold<T, A, F, G>(
    jobs: usize,
    threads: usize,
    run: &F,
    acc: &mut A,
    fold: &mut G,
) -> Result<(), JobPanic>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    G: FnMut(&mut A, usize, T),
{
    if jobs == 0 {
        return Ok(());
    }
    let threads = threads.clamp(1, jobs);
    let obs_on = routelab_obs::enabled();
    if threads == 1 {
        // Inline fast path: produce and fold on the calling thread.
        let mut worker = routelab_obs::span("pool.worker");
        let mut busy_ns: u64 = 0;
        for i in 0..jobs {
            let t0 = if obs_on { routelab_obs::now_ns() } else { 0 };
            match catch_unwind(AssertUnwindSafe(|| run(i))) {
                Ok(v) => fold(acc, i, v),
                Err(p) => return Err(JobPanic { job: i, message: payload_to_string(p) }),
            }
            if obs_on {
                let d = routelab_obs::now_ns().saturating_sub(t0);
                busy_ns += d;
                routelab_obs::histogram("pool.job_ns", d);
            }
        }
        if obs_on {
            routelab_obs::counter("pool.jobs", jobs as u64);
            worker.field("jobs", jobs as u64);
            worker.field("busy_ns", busy_ns);
        }
        return Ok(());
    }

    let window = (4 * threads).max(MIN_FOLD_WINDOW);
    let state: Mutex<FoldState<T>> =
        Mutex::new(FoldState { buf: BTreeMap::new(), next: 0, abort: false, workers_done: 0 });
    let produced = Condvar::new(); // a result arrived, or a worker exited
    let consumed = Condvar::new(); // the fold cursor advanced, or abort
    let next_job = AtomicUsize::new(0);
    let abort_flag = AtomicBool::new(false);
    let failure: Mutex<Option<JobPanic>> = Mutex::new(None);

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let mut worker = routelab_obs::span("pool.worker");
                let mut claimed: u64 = 0;
                let mut busy_ns: u64 = 0;
                loop {
                    if abort_flag.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next_job.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs {
                        break;
                    }
                    let t0 = if obs_on { routelab_obs::now_ns() } else { 0 };
                    match catch_unwind(AssertUnwindSafe(|| run(i))) {
                        Ok(v) => {
                            let mut st = state.lock().expect("fold mutex");
                            // Back-pressure: don't run further ahead of the
                            // fold cursor than the reorder window allows.
                            while !st.abort && i >= st.next + window {
                                st = consumed.wait(st).expect("fold mutex");
                            }
                            if st.abort {
                                break;
                            }
                            st.buf.insert(i, v);
                            drop(st);
                            produced.notify_all();
                        }
                        Err(p) => {
                            abort_flag.store(true, Ordering::Relaxed);
                            let candidate = JobPanic { job: i, message: payload_to_string(p) };
                            let mut slot = failure.lock().expect("failure mutex");
                            match slot.as_ref() {
                                Some(prev) if prev.job <= candidate.job => {}
                                _ => *slot = Some(candidate),
                            }
                            drop(slot);
                            state.lock().expect("fold mutex").abort = true;
                            produced.notify_all();
                            consumed.notify_all();
                        }
                    }
                    if obs_on {
                        let d = routelab_obs::now_ns().saturating_sub(t0);
                        busy_ns += d;
                        claimed += 1;
                        routelab_obs::histogram("pool.job_ns", d);
                    }
                }
                {
                    let mut st = state.lock().expect("fold mutex");
                    st.workers_done += 1;
                }
                produced.notify_all();
                if obs_on {
                    routelab_obs::counter("pool.jobs", claimed);
                    worker.field("jobs", claimed);
                    worker.field("busy_ns", busy_ns);
                }
            });
        }

        // Consumer loop on the calling thread: pop results at the cursor,
        // fold outside the lock, and stop once every worker has exited and
        // the buffer holds nothing more at the cursor.
        let mut st = state.lock().expect("fold mutex");
        loop {
            let cursor = st.next;
            if let Some(v) = st.buf.remove(&cursor) {
                let i = cursor;
                st.next += 1;
                drop(st);
                consumed.notify_all();
                fold(acc, i, v);
                st = state.lock().expect("fold mutex");
                continue;
            }
            // The cursor entry is not buffered; once every worker has
            // exited it never will be (after a panic the cursor can stall
            // below `jobs` with later results still buffered — drop them).
            if st.next >= jobs || st.workers_done == threads {
                break;
            }
            st = produced.wait(st).expect("fold mutex");
        }
    });

    if let Some(p) = failure.into_inner().expect("failure mutex") {
        return Err(p);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        for threads in [1, 2, 8] {
            let out = execute(100, threads, &|i| i * i).expect("no panics");
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn zero_jobs_is_empty() {
        let out: Vec<usize> = execute(0, 4, &|i| i).expect("no panics");
        assert!(out.is_empty());
    }

    #[test]
    fn panics_name_the_job() {
        for threads in [1, 4] {
            let err = execute(50, threads, &|i| {
                if i == 17 {
                    panic!("job seventeen diverged");
                }
                i
            })
            .expect_err("job 17 panics");
            assert_eq!(err.job, 17, "threads={threads}");
            assert!(err.message.contains("seventeen"), "{}", err.message);
        }
    }

    #[test]
    fn earliest_panic_wins() {
        // With several panicking jobs the reported one must be the smallest
        // index, whatever the interleaving.
        for threads in [1, 2, 8] {
            let err = execute(64, threads, &|i| {
                if i % 3 == 2 {
                    panic!("bad {i}");
                }
                i
            })
            .expect_err("many panics");
            assert_eq!(err.job, 2, "threads={threads}");
        }
    }

    #[test]
    fn fold_streams_results_in_job_order() {
        for threads in [1, 2, 8] {
            let mut seen: Vec<(usize, usize)> = Vec::new();
            execute_fold(100, threads, &|i| i * i, &mut seen, &mut |acc, i, v| acc.push((i, v)))
                .expect("no panics");
            assert_eq!(seen, (0..100).map(|i| (i, i * i)).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn fold_matches_execute_for_every_thread_count() {
        let run = |i: usize| (i * 7 + 3) % 101;
        let want: usize = execute(64, 1, &run).expect("no panics").into_iter().sum();
        for threads in [1, 3, 8] {
            let mut sum = 0usize;
            execute_fold(64, threads, &run, &mut sum, &mut |acc, _i, v| *acc += v)
                .expect("no panics");
            assert_eq!(sum, want, "threads={threads}");
        }
    }

    #[test]
    fn fold_panics_name_the_earliest_job() {
        for threads in [1, 2, 8] {
            let mut count = 0usize;
            let err = execute_fold(
                64,
                threads,
                &|i| {
                    if i % 5 == 4 {
                        panic!("bad {i}");
                    }
                    i
                },
                &mut count,
                &mut |acc, _i, _v| *acc += 1,
            )
            .expect_err("many panics");
            assert_eq!(err.job, 4, "threads={threads}");
            assert!(err.message.contains("bad"), "{}", err.message);
        }
    }

    #[test]
    fn fold_survives_a_slow_head_job() {
        // Job 0 finishes last; every other worker races ahead and must be
        // held inside the reorder window until the cursor catches up.
        let mut seen = Vec::new();
        execute_fold(
            200,
            4,
            &|i| {
                if i == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(30));
                }
                i
            },
            &mut seen,
            &mut |acc: &mut Vec<usize>, _i, v| acc.push(v),
        )
        .expect("no panics");
        assert_eq!(seen, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn fold_zero_jobs_is_noop() {
        let mut acc = 0usize;
        execute_fold(0, 4, &|i| i, &mut acc, &mut |a, _i, v| *a += v).expect("no panics");
        assert_eq!(acc, 0);
    }

    #[test]
    fn pool_config_resolution() {
        assert_eq!(PoolConfig::with_threads(0).resolved_threads(), 1);
        assert_eq!(PoolConfig::with_threads(6).resolved_threads(), 6);
        assert!(PoolConfig::default().resolved_threads() >= 1);
    }

    #[test]
    fn invalid_thread_env_values_are_hard_errors() {
        // Exercised through the same parser `resolved_threads` delegates to
        // (calling it directly avoids mutating the process environment,
        // which would race with concurrently running tests).
        use routelab_explore::frontier::threads_from_env;
        assert_eq!(threads_from_env("4"), 4);
        for bogus in ["", "zero", "1.5", "0", "-3"] {
            let err = std::panic::catch_unwind(|| threads_from_env(bogus))
                .expect_err("must reject {bogus:?}");
            let msg = err.downcast_ref::<String>().expect("string payload");
            assert!(msg.contains(&format!("{bogus:?}")), "{msg}");
        }
    }
}

//! Flight-recorder trace analysis.
//!
//! The read side of `routelab_obs::trace`: parse a `*.trace.ndjson` file
//! back into typed events ([`parse_trace`]), reconstruct the oscillation
//! cycle of a divergent run ([`oscillation_cycle`] / [`render_explain`]),
//! and export the whole trace — runs and explorer phases — as Chrome
//! `trace_event` JSON ([`export_chrome`]) viewable in `chrome://tracing` or
//! Perfetto.
//!
//! Time bases in the Chrome export: explorer phase events keep their real
//! recorded nanoseconds (scaled to microseconds). Run step events use a
//! synthetic timeline of 10 µs per activation step — steps are logical time,
//! and a fixed pitch renders the repeating pattern legibly.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use routelab_obs::{escape_json, parse_json, JVal};

/// One activation step's causal record, indices resolved against the owning
/// run's directory.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StepEvent {
    /// Step index within the run (0-based).
    pub step: u64,
    /// Recording timestamp (ns since trace enable).
    pub ns: u64,
    /// Activated node indices.
    pub nodes: Vec<u32>,
    /// Route changes `(node, old, new)` (ε is the empty route).
    pub pi: Vec<(u32, String, String)>,
    /// Messages enqueued `(channel, route)`.
    pub sent: Vec<(u32, String)>,
    /// Channels a message was delivered from.
    pub delivered: Vec<u32>,
    /// Channels a message was dropped from.
    pub dropped: Vec<u32>,
}

/// A run's recorded verdict.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EndEvent {
    /// `converged` / `cycle` / `exhausted` / `step-limit`.
    pub verdict: String,
    /// Total steps executed.
    pub steps: u64,
    /// Cycle start (cycle verdicts only).
    pub first_seen: Option<u64>,
    /// Cycle length (cycle verdicts only).
    pub period: Option<u64>,
    /// Whether π changes within the cycle (cycle verdicts only).
    pub oscillating: Option<bool>,
}

/// One recorded run: directory plus its event stream.
#[derive(Debug, Clone, Default)]
pub struct RunInfo {
    /// Human label from the run's `trun` line.
    pub label: String,
    /// Node names, indexed by node id.
    pub nodes: Vec<String>,
    /// Channel endpoints `(from, to)` as node indices, indexed by channel id.
    pub chans: Vec<(u32, u32)>,
    /// Step records in recording order (possibly a suffix, after overflow).
    pub steps: Vec<StepEvent>,
    /// The verdict, when the run completed inside the ring.
    pub end: Option<EndEvent>,
}

impl RunInfo {
    fn node_name(&self, v: u32) -> String {
        self.nodes.get(v as usize).cloned().unwrap_or_else(|| format!("#{v}"))
    }

    fn chan_name(&self, c: u32) -> String {
        match self.chans.get(c as usize) {
            Some(&(f, t)) => format!("{}→{}", self.node_name(f), self.node_name(t)),
            None => format!("ch{c}"),
        }
    }
}

/// An explorer pipeline phase slice.
#[derive(Debug, Clone, Default)]
pub struct PhaseEvent {
    /// Phase name (`expand`, `route`, `dedup`, `merge`, `publish`).
    pub name: String,
    /// End timestamp (ns since trace enable); start is `ns - dur_ns`.
    pub ns: u64,
    /// Slice duration.
    pub dur_ns: u64,
    /// Frontier block index.
    pub block: u64,
    /// Phase-specific counters (`parents`, `interned`, `spilled_bytes`, ...).
    pub args: Vec<(String, u64)>,
}

/// A whole parsed trace file.
#[derive(Debug, Clone, Default)]
pub struct TraceFile {
    /// Recording process name.
    pub proc: String,
    /// Header notes (e.g. `gadget`, `model` from `routelab trace record`).
    pub notes: BTreeMap<String, String>,
    /// Runs by run id.
    pub runs: BTreeMap<u32, RunInfo>,
    /// Explorer phase slices in recording order.
    pub phases: Vec<PhaseEvent>,
    /// Point counters `(name, ns, value)` in recording order.
    pub counters: Vec<(String, u64, u64)>,
    /// Events evicted from the ring before persistence.
    pub dropped: u64,
}

fn ju(v: &JVal, key: &str) -> Option<u64> {
    v.get(key).and_then(JVal::as_u64)
}

fn ju32_list(v: &JVal, key: &str) -> Vec<u32> {
    match v.get(key) {
        Some(JVal::Arr(items)) => {
            items.iter().filter_map(|i| i.as_u64()).map(|n| n as u32).collect()
        }
        _ => Vec::new(),
    }
}

/// Parses a trace file's NDJSON content. Unknown tags are skipped (forward
/// compatibility); a truncated final line (no trailing newline, unparsable)
/// is tolerated like `obs summarize` does. Errors only when the content
/// contains no trace header at all — i.e. it is not a flight-recorder file.
pub fn parse_trace(content: &str) -> Result<TraceFile, String> {
    let mut tf = TraceFile::default();
    let mut saw_meta = false;
    let complete = content.is_empty() || content.ends_with('\n');
    let mut lines = content.lines().peekable();
    while let Some(line) = lines.next() {
        if line.trim().is_empty() {
            continue;
        }
        let v = match parse_json(line) {
            Ok(v) => v,
            Err(e) => {
                if lines.peek().is_none() && !complete {
                    break; // truncated tail: writer killed mid-write
                }
                return Err(format!("malformed trace line {line:?}: {e}"));
            }
        };
        match v.get("t").and_then(JVal::as_str).unwrap_or("") {
            "tmeta" => {
                saw_meta = true;
                tf.proc = v.get("proc").and_then(JVal::as_str).unwrap_or("").to_string();
            }
            "tnote" => {
                if let (Some(k), Some(val)) =
                    (v.get("key").and_then(JVal::as_str), v.get("value").and_then(JVal::as_str))
                {
                    tf.notes.insert(k.to_string(), val.to_string());
                }
            }
            "trun" => {
                let Some(run) = ju(&v, "run") else { continue };
                let info = tf.runs.entry(run as u32).or_default();
                info.label = v.get("label").and_then(JVal::as_str).unwrap_or("").to_string();
                if let Some(JVal::Arr(names)) = v.get("nodes") {
                    info.nodes =
                        names.iter().filter_map(|n| n.as_str().map(str::to_string)).collect();
                }
                if let Some(JVal::Arr(chans)) = v.get("chans") {
                    info.chans = chans
                        .iter()
                        .filter_map(|c| match c {
                            JVal::Arr(ft) if ft.len() == 2 => {
                                Some((ft[0].as_u64()? as u32, ft[1].as_u64()? as u32))
                            }
                            _ => None,
                        })
                        .collect();
                }
            }
            "tstep" => {
                let Some(run) = ju(&v, "run") else { continue };
                let mut ev = StepEvent {
                    step: ju(&v, "step").unwrap_or(0),
                    ns: ju(&v, "ns").unwrap_or(0),
                    nodes: ju32_list(&v, "nodes"),
                    sent: Vec::new(),
                    pi: Vec::new(),
                    delivered: ju32_list(&v, "dlv"),
                    dropped: ju32_list(&v, "drop"),
                };
                if let Some(JVal::Arr(pi)) = v.get("pi") {
                    for entry in pi {
                        if let JVal::Arr(e) = entry {
                            if let (Some(n), Some(old), Some(new)) = (
                                e.first().and_then(JVal::as_u64),
                                e.get(1).and_then(JVal::as_str),
                                e.get(2).and_then(JVal::as_str),
                            ) {
                                ev.pi.push((n as u32, old.to_string(), new.to_string()));
                            }
                        }
                    }
                }
                if let Some(JVal::Arr(sent)) = v.get("sent") {
                    for entry in sent {
                        if let JVal::Arr(e) = entry {
                            if let (Some(c), Some(route)) =
                                (e.first().and_then(JVal::as_u64), e.get(1).and_then(JVal::as_str))
                            {
                                ev.sent.push((c as u32, route.to_string()));
                            }
                        }
                    }
                }
                tf.runs.entry(run as u32).or_default().steps.push(ev);
            }
            "tend" => {
                let Some(run) = ju(&v, "run") else { continue };
                tf.runs.entry(run as u32).or_default().end = Some(EndEvent {
                    verdict: v.get("verdict").and_then(JVal::as_str).unwrap_or("").to_string(),
                    steps: ju(&v, "steps").unwrap_or(0),
                    first_seen: ju(&v, "first_seen"),
                    period: ju(&v, "period"),
                    oscillating: match v.get("oscillating") {
                        Some(JVal::Bool(b)) => Some(*b),
                        _ => None,
                    },
                });
            }
            "tph" => {
                let mut args = Vec::new();
                if let Some(JVal::Obj(pairs)) = v.get("args") {
                    for (k, val) in pairs {
                        if let Some(n) = val.as_u64() {
                            args.push((k.clone(), n));
                        }
                    }
                }
                tf.phases.push(PhaseEvent {
                    name: v.get("name").and_then(JVal::as_str).unwrap_or("").to_string(),
                    ns: ju(&v, "ns").unwrap_or(0),
                    dur_ns: ju(&v, "dur_ns").unwrap_or(0),
                    block: ju(&v, "block").unwrap_or(0),
                    args,
                });
            }
            "tctr" => {
                if let Some(name) = v.get("name").and_then(JVal::as_str) {
                    tf.counters.push((
                        name.to_string(),
                        ju(&v, "ns").unwrap_or(0),
                        ju(&v, "value").unwrap_or(0),
                    ));
                }
            }
            "tdrop" => tf.dropped += ju(&v, "count").unwrap_or(0),
            _ => {} // unknown tag: skip
        }
    }
    if !saw_meta {
        return Err("not a flight-recorder trace (no tmeta header line)".to_string());
    }
    Ok(tf)
}

/// The reconstructed repeating pattern of a divergent run.
#[derive(Debug, Clone)]
pub struct CycleReport {
    /// The diagnosed run's id.
    pub run: u32,
    /// Step index where the periodic regime starts.
    pub first_seen: u64,
    /// Cycle length in steps.
    pub period: u64,
    /// The cycle's step records, in order.
    pub steps: Vec<StepEvent>,
    /// Route adoptions within one period as `(node name, new route)` —
    /// the channel/route pattern to check against the explorer's witness.
    pub pi_changes: std::collections::BTreeSet<(String, String)>,
}

/// A step's repetition signature: everything except the wall-clock stamp.
type StepSig<'a> =
    (&'a [u32], &'a [(u32, String, String)], &'a [(u32, String)], &'a [u32], &'a [u32]);

fn step_sig(s: &StepEvent) -> StepSig<'_> {
    (&s.nodes, &s.pi, &s.sent, &s.delivered, &s.dropped)
}

/// Reconstructs the oscillation cycle from the trace: picks the latest run
/// with an oscillating-cycle verdict (the replay a `trace record` invocation
/// performs last) and slices its periodic tail. When the verdict line carries
/// `first_seen`/`period` those bounds are used; otherwise (e.g. the end event
/// was evicted) the smallest period whose last two occurrences repeat
/// verbatim is inferred from the step stream itself.
pub fn oscillation_cycle(tf: &TraceFile) -> Result<CycleReport, String> {
    let (run_id, run) = tf
        .runs
        .iter()
        .rev()
        .find(|(_, r)| {
            r.end.as_ref().is_some_and(|e| e.verdict == "cycle" && e.oscillating == Some(true))
        })
        .or_else(|| tf.runs.iter().rev().find(|(_, r)| !r.steps.is_empty()))
        .ok_or("trace contains no runs with step records")?;

    let end = run.end.as_ref();
    if end.is_some_and(|e| e.verdict != "cycle") {
        return Err(format!(
            "run {run_id} did not diverge (verdict: {})",
            end.map(|e| e.verdict.as_str()).unwrap_or("missing")
        ));
    }
    let (first_seen, period) = match end.and_then(|e| Some((e.first_seen?, e.period?))) {
        Some((f, p)) if p > 0 => (f, p),
        _ => infer_period(&run.steps).ok_or_else(|| {
            format!("run {run_id} has no cycle verdict and no repeating step pattern")
        })?,
    };

    let steps: Vec<StepEvent> = run
        .steps
        .iter()
        .filter(|s| s.step >= first_seen && s.step < first_seen + period)
        .cloned()
        .collect();
    if steps.is_empty() {
        return Err(format!(
            "run {run_id}: cycle window [{first_seen}, {}) has no recorded steps \
             (ring overflow dropped {} events — raise ROUTELAB_TRACE_CAP)",
            first_seen + period,
            tf.dropped
        ));
    }
    let mut pi_changes = std::collections::BTreeSet::new();
    for s in &steps {
        for (v, _, new) in &s.pi {
            pi_changes.insert((run.node_name(*v), new.clone()));
        }
    }
    Ok(CycleReport { run: *run_id, first_seen, period, steps, pi_changes })
}

/// Infers `(first_seen, period)` from a raw step stream: the smallest period
/// `p` whose last two windows of length `p` repeat verbatim, with a π change
/// inside the window (a genuine oscillation, not quiescent churn).
fn infer_period(steps: &[StepEvent]) -> Option<(u64, u64)> {
    let n = steps.len();
    for p in 1..=n / 2 {
        let (a, b) = (&steps[n - 2 * p..n - p], &steps[n - p..]);
        let matches = a.iter().zip(b).all(|(x, y)| step_sig(x) == step_sig(y));
        if matches && b.iter().any(|s| !s.pi.is_empty()) {
            return Some((steps[n - p..].first()?.step, p as u64));
        }
    }
    None
}

/// Renders the human diagnosis: which run diverged, the repeating pattern,
/// one line per cycle step.
pub fn render_explain(tf: &TraceFile, report: &CycleReport) -> String {
    let run = &tf.runs[&report.run];
    let mut out = String::new();
    for key in ["gadget", "model"] {
        if let Some(v) = tf.notes.get(key) {
            let _ = writeln!(out, "{key}: {v}");
        }
    }
    let _ = writeln!(out, "run {}: {}", report.run, run.label);
    if tf.dropped > 0 {
        let _ = writeln!(out, "note: ring overflow dropped {} event(s)", tf.dropped);
    }
    let _ = writeln!(
        out,
        "oscillation cycle: period {} step(s), entered at step {}",
        report.period, report.first_seen
    );
    for s in &report.steps {
        let names: Vec<String> = s.nodes.iter().map(|&v| run.node_name(v)).collect();
        let _ = write!(out, "  [{:>4}] activate {}", s.step, names.join(","));
        for (v, old, new) in &s.pi {
            let _ = write!(out, "; π({}) {old} → {new}", run.node_name(*v));
        }
        for (c, route) in &s.sent {
            let _ = write!(out, "; send {route} on {}", run.chan_name(*c));
        }
        for &c in &s.delivered {
            let _ = write!(out, "; deliver {}", run.chan_name(c));
        }
        for &c in &s.dropped {
            let _ = write!(out, "; drop {}", run.chan_name(c));
        }
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "route adoptions per period: {}",
        report.pi_changes.iter().map(|(v, r)| format!("{v}←{r}")).collect::<Vec<_>>().join(" ")
    );
    out
}

/// Microseconds per activation step on the synthetic run timeline.
const STEP_PITCH_US: f64 = 10.0;

struct ChromeOut {
    out: String,
    first: bool,
}

impl ChromeOut {
    fn new() -> Self {
        ChromeOut { out: String::from("{\"traceEvents\":[\n"), first: true }
    }

    /// Appends one event object; `fields` is pre-rendered JSON members.
    fn push(&mut self, fields: &str) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        self.out.push('{');
        self.out.push_str(fields);
        self.out.push('}');
    }

    fn meta(&mut self, pid: u64, tid: u64, what: &str, name: &str) {
        let mut f = String::new();
        let _ = write!(f, "\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":");
        escape_json(&mut f, what);
        f.push_str(",\"args\":{\"name\":");
        escape_json(&mut f, name);
        f.push_str("}}");
        f.pop(); // keep only the args closing brace
        self.push(&f);
    }

    fn complete(&mut self, pid: u64, tid: u64, name: &str, cat: &str, ts: f64, dur: f64) {
        let mut f = String::new();
        f.push_str("\"ph\":\"X\",\"name\":");
        escape_json(&mut f, name);
        f.push_str(",\"cat\":");
        escape_json(&mut f, cat);
        let _ = write!(f, ",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts:.3},\"dur\":{dur:.3}");
        self.push(&f);
    }

    fn instant(&mut self, pid: u64, tid: u64, name: &str, cat: &str, ts: f64) {
        let mut f = String::new();
        f.push_str("\"ph\":\"i\",\"s\":\"t\",\"name\":");
        escape_json(&mut f, name);
        f.push_str(",\"cat\":");
        escape_json(&mut f, cat);
        let _ = write!(f, ",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts:.3}");
        self.push(&f);
    }

    fn counter(&mut self, pid: u64, name: &str, ts: f64, value: u64) {
        let mut f = String::new();
        f.push_str("\"ph\":\"C\",\"name\":");
        escape_json(&mut f, name);
        let _ = write!(f, ",\"pid\":{pid},\"tid\":0,\"ts\":{ts:.3},\"args\":{{\"value\":{value}}}");
        self.push(&f);
    }

    fn finish(mut self) -> String {
        self.out.push_str("\n]}\n");
        self.out
    }
}

/// Explorer events render under this pid; runs under `RUN_PID_BASE + run`.
const EXPLORER_PID: u64 = 1;
const RUN_PID_BASE: u64 = 100;

/// Exports the trace as Chrome `trace_event` JSON (the "JSON Array Format"
/// with a `traceEvents` wrapper), loadable in `chrome://tracing` and
/// Perfetto. Every run becomes a process with one thread per node and one
/// per channel; explorer phases become one `explorer` process with per-phase
/// complete events and counters.
pub fn export_chrome(tf: &TraceFile) -> String {
    let mut c = ChromeOut::new();

    if !tf.phases.is_empty() || !tf.counters.is_empty() {
        c.meta(EXPLORER_PID, 0, "process_name", &format!("explorer ({})", tf.proc));
        c.meta(EXPLORER_PID, 1, "thread_name", "frontier pipeline");
        for p in &tf.phases {
            let start = p.ns.saturating_sub(p.dur_ns) as f64 / 1e3;
            let name = format!("{} #{}", p.name, p.block);
            c.complete(EXPLORER_PID, 1, &name, "explorer", start, p.dur_ns as f64 / 1e3);
        }
        for (name, ns, value) in &tf.counters {
            c.counter(EXPLORER_PID, name, *ns as f64 / 1e3, *value);
        }
    }

    for (run_id, run) in &tf.runs {
        let pid = RUN_PID_BASE + *run_id as u64;
        c.meta(pid, 0, "process_name", &format!("run {run_id}: {}", run.label));
        for (v, name) in run.nodes.iter().enumerate() {
            c.meta(pid, v as u64 + 1, "thread_name", &format!("node {name}"));
        }
        let chan_tid = |ci: u32| run.nodes.len() as u64 + 1 + ci as u64;
        for ci in 0..run.chans.len() {
            c.meta(
                pid,
                chan_tid(ci as u32),
                "thread_name",
                &format!("chan {}", run.chan_name(ci as u32)),
            );
        }
        for s in &run.steps {
            let ts = s.step as f64 * STEP_PITCH_US;
            for &v in &s.nodes {
                c.complete(
                    pid,
                    v as u64 + 1,
                    &format!("step {}", s.step),
                    "activation",
                    ts,
                    STEP_PITCH_US * 0.8,
                );
            }
            for (v, old, new) in &s.pi {
                c.instant(
                    pid,
                    *v as u64 + 1,
                    &format!("π {old} → {new}"),
                    "route",
                    ts + STEP_PITCH_US * 0.4,
                );
            }
            for (ci, route) in &s.sent {
                c.instant(
                    pid,
                    chan_tid(*ci),
                    &format!("send {route}"),
                    "msg",
                    ts + STEP_PITCH_US * 0.2,
                );
            }
            for &ci in &s.delivered {
                c.instant(pid, chan_tid(ci), "deliver", "msg", ts + STEP_PITCH_US * 0.6);
            }
            for &ci in &s.dropped {
                c.instant(pid, chan_tid(ci), "drop ✗", "msg", ts + STEP_PITCH_US * 0.6);
            }
        }
        if let Some(end) = &run.end {
            let ts = end.steps as f64 * STEP_PITCH_US;
            let name = match (&end.first_seen, &end.period) {
                (Some(f), Some(p)) => {
                    format!("verdict: {} (first_seen={f}, period={p})", end.verdict)
                }
                _ => format!("verdict: {}", end.verdict),
            };
            c.instant(pid, 0, &name, "verdict", ts);
        }
    }
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-written trace exercising the documented wire format: one
    /// divergent run of period 2 plus explorer phases, with hostile strings.
    const SAMPLE: &str = concat!(
        "{\"t\":\"tmeta\",\"proc\":\"routelab\",\"pid\":7,\"cap\":1024}\n",
        "{\"t\":\"tnote\",\"key\":\"gadget\",\"value\":\"DISAGREE\"}\n",
        "{\"t\":\"tnote\",\"key\":\"model\",\"value\":\"R1O\"}\n",
        "{\"t\":\"trun\",\"run\":0,\"ns\":10,\"label\":\"3 nodes, dest d\",",
        "\"nodes\":[\"d\",\"x\",\"y \\\"q\\\"\"],\"chans\":[[0,1],[0,2],[1,2],[2,1]]}\n",
        "{\"t\":\"tstep\",\"run\":0,\"step\":0,\"ns\":20,\"nodes\":[1],",
        "\"pi\":[[1,\"ε\",\"xd\"]],\"sent\":[[2,\"xd\"]],\"dlv\":[0]}\n",
        "{\"t\":\"tstep\",\"run\":0,\"step\":1,\"ns\":30,\"nodes\":[2],",
        "\"pi\":[[2,\"yxd\",\"yd\"]],\"sent\":[[3,\"yd\"]],\"dlv\":[2],\"drop\":[1]}\n",
        "{\"t\":\"tstep\",\"run\":0,\"step\":2,\"ns\":40,\"nodes\":[1],",
        "\"pi\":[[1,\"xd\",\"ε\"]],\"sent\":[[2,\"xd\"]],\"dlv\":[0]}\n",
        "{\"t\":\"tstep\",\"run\":0,\"step\":3,\"ns\":50,\"nodes\":[2],",
        "\"pi\":[[2,\"yd\",\"yxd\"]],\"sent\":[[3,\"yd\"]],\"dlv\":[2],\"drop\":[1]}\n",
        "{\"t\":\"tend\",\"run\":0,\"ns\":60,\"steps\":4,\"verdict\":\"cycle\",",
        "\"first_seen\":2,\"period\":2,\"oscillating\":true}\n",
        "{\"t\":\"tph\",\"name\":\"expand\",\"ns\":5000,\"dur_ns\":700,\"block\":0,",
        "\"args\":{\"parents\":1}}\n",
        "{\"t\":\"tph\",\"name\":\"merge\",\"ns\":9000,\"dur_ns\":300,\"block\":0,",
        "\"args\":{\"interned\":5,\"spilled_bytes\":0}}\n",
        "{\"t\":\"tctr\",\"name\":\"frontier.cache.hits\",\"ns\":9500,\"value\":12}\n",
    );

    #[test]
    fn parses_the_documented_wire_format() {
        let tf = parse_trace(SAMPLE).unwrap();
        assert_eq!(tf.proc, "routelab");
        assert_eq!(tf.notes["gadget"], "DISAGREE");
        assert_eq!(tf.notes["model"], "R1O");
        let run = &tf.runs[&0];
        assert_eq!(run.nodes, vec!["d", "x", "y \"q\""]);
        assert_eq!(run.chans.len(), 4);
        assert_eq!(run.steps.len(), 4);
        assert_eq!(run.steps[1].pi, vec![(2, "yxd".into(), "yd".into())]);
        assert_eq!(run.steps[1].dropped, vec![1]);
        let end = run.end.as_ref().unwrap();
        assert_eq!((end.first_seen, end.period), (Some(2), Some(2)));
        assert_eq!(tf.phases.len(), 2);
        assert_eq!(tf.phases[1].args, vec![("interned".into(), 5), ("spilled_bytes".into(), 0)]);
        assert_eq!(tf.counters, vec![("frontier.cache.hits".into(), 9500, 12)]);
    }

    #[test]
    fn truncated_tail_is_tolerated_but_garbage_is_not() {
        let cut = &SAMPLE[..SAMPLE.len() - 30]; // mid-line, no trailing newline
        let tf = parse_trace(cut).unwrap();
        assert_eq!(tf.runs[&0].steps.len(), 4);
        assert!(parse_trace("{\"t\":\"tmeta\",\"proc\":\"p\",\"pid\":1}\nnope\n{}\n").is_err());
        assert!(parse_trace("").is_err(), "no tmeta → not a trace");
    }

    #[test]
    fn explains_the_cycle_from_the_verdict_bounds() {
        let tf = parse_trace(SAMPLE).unwrap();
        let report = oscillation_cycle(&tf).unwrap();
        assert_eq!((report.run, report.first_seen, report.period), (0, 2, 2));
        assert_eq!(report.steps.len(), 2);
        assert_eq!(report.steps[0].step, 2);
        let changes: Vec<(String, String)> = report.pi_changes.iter().cloned().collect();
        assert_eq!(changes, vec![("x".into(), "ε".into()), ("y \"q\"".into(), "yxd".into())]);
        let text = render_explain(&tf, &report);
        assert!(text.contains("gadget: DISAGREE"), "{text}");
        assert!(text.contains("oscillation cycle: period 2 step(s), entered at step 2"), "{text}");
        assert!(text.contains("π(x) xd → ε"), "{text}");
        assert!(text.contains("drop d→y \"q\""), "{text}");
    }

    #[test]
    fn infers_the_period_when_the_end_event_is_missing() {
        // No tend line at all (e.g. evicted by ring overflow): diagnosis must
        // fall back to detecting the verbatim-repeating suffix. Steps 1/2
        // repeat as 3/4 → period 2 entered at step 3's window start.
        let trace = concat!(
            "{\"t\":\"tmeta\",\"proc\":\"p\",\"pid\":1,\"cap\":16}\n",
            "{\"t\":\"trun\",\"run\":0,\"ns\":1,\"label\":\"l\",",
            "\"nodes\":[\"d\",\"x\",\"y\"],\"chans\":[[0,1],[1,2]]}\n",
            "{\"t\":\"tstep\",\"run\":0,\"step\":0,\"ns\":2,\"nodes\":[0],\"sent\":[[0,\"d\"]]}\n",
            "{\"t\":\"tstep\",\"run\":0,\"step\":1,\"ns\":3,\"nodes\":[1],",
            "\"pi\":[[1,\"ε\",\"xd\"]],\"dlv\":[0]}\n",
            "{\"t\":\"tstep\",\"run\":0,\"step\":2,\"ns\":4,\"nodes\":[2],\"drop\":[1]}\n",
            "{\"t\":\"tstep\",\"run\":0,\"step\":3,\"ns\":5,\"nodes\":[1],",
            "\"pi\":[[1,\"ε\",\"xd\"]],\"dlv\":[0]}\n",
            "{\"t\":\"tstep\",\"run\":0,\"step\":4,\"ns\":6,\"nodes\":[2],\"drop\":[1]}\n",
        );
        let tf = parse_trace(trace).unwrap();
        let report = oscillation_cycle(&tf).unwrap();
        assert_eq!((report.first_seen, report.period), (3, 2));
        assert_eq!(report.steps.len(), 2);
    }

    #[test]
    fn converged_runs_are_not_explained() {
        let converged = concat!(
            "{\"t\":\"tmeta\",\"proc\":\"p\",\"pid\":1,\"cap\":16}\n",
            "{\"t\":\"trun\",\"run\":0,\"ns\":1,\"label\":\"l\",\"nodes\":[\"d\"],\"chans\":[]}\n",
            "{\"t\":\"tstep\",\"run\":0,\"step\":0,\"ns\":2,\"nodes\":[0]}\n",
            "{\"t\":\"tend\",\"run\":0,\"ns\":3,\"steps\":1,\"verdict\":\"converged\"}\n",
        );
        let tf = parse_trace(converged).unwrap();
        let err = oscillation_cycle(&tf).unwrap_err();
        assert!(err.contains("did not diverge"), "{err}");
    }

    #[test]
    fn chrome_export_is_valid_json_with_expected_events() {
        let tf = parse_trace(SAMPLE).unwrap();
        let json = export_chrome(&tf);
        let v = parse_json(&json).unwrap_or_else(|e| panic!("chrome export must parse: {e}"));
        let JVal::Arr(events) = v.get("traceEvents").expect("traceEvents") else {
            panic!("traceEvents must be an array")
        };
        assert!(!events.is_empty());
        let names: Vec<&str> =
            events.iter().filter_map(|e| e.get("name").and_then(JVal::as_str)).collect();
        assert!(names.contains(&"process_name"), "{names:?}");
        assert!(names.contains(&"expand #0"), "{names:?}");
        assert!(names.iter().any(|n| n.starts_with("π ")), "{names:?}");
        assert!(names.iter().any(|n| n.starts_with("send xd")), "{names:?}");
        assert!(names.contains(&"verdict: cycle (first_seen=2, period=2)"), "{names:?}");
        // Hostile node name survives the double escape (NDJSON → Chrome).
        let thread_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(JVal::as_str) == Some("thread_name"))
            .filter_map(|e| e.get("args").and_then(|a| a.get("name")).and_then(JVal::as_str))
            .collect();
        assert!(thread_names.contains(&"node y \"q\""), "{thread_names:?}");
        // Every event has the mandatory fields.
        for e in events {
            assert!(e.get("ph").is_some() && e.get("pid").is_some(), "{e:?}");
        }
    }
}

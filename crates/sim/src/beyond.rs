//! Beyond the paper: resolving blank Figure 3/4 cells empirically.
//!
//! The published tables leave many cells blank (unknown). Exhaustive model
//! checking produces new *facts*: whenever some instance oscillates under
//! model `A` but provably always converges under model `C`, model `C` does
//! not preserve `A`'s oscillations — the cell `(A, C)` is `-1`. Feeding
//! these empirical negatives through the Sec. 3.4 closure then resolves
//! further cells by transitivity.
//!
//! The headline finding (from DISAGREE alone): the unreliable analogues of
//! the paper's five weak models — `UEO`, `UEF`, `U1A`, `UMA`, `UEA` — force
//! DISAGREE to converge, so none of them preserves the oscillations of
//! `R1O` (or of any model realizing `R1O`). This answers blanks the paper
//! left open in Figure 4.
//!
//! Caveat (documented also on the checker): for `O`/`F`-policy unreliable
//! models the absence verdicts use the strict reading of Definition 2.4's
//! drop fairness (every channel that is dropped on infinitely often must
//! also deliver infinitely often); for `A`-policy models the two readings
//! coincide because every read consumes the whole channel.

use routelab_core::closure::{derive_bounds, BoundsMatrix};
use routelab_core::edges::{foundational_facts, Facts, NegativeFact};
use routelab_core::model::CommModel;
use routelab_explore::error::ExploreError;
use routelab_explore::graph::ExploreConfig;
use routelab_explore::oscillation::{try_analyze, Verdict};
use routelab_spp::SppInstance;

/// An empirical separation: `instance` oscillates in `oscillates_in` but
/// always converges in `converges_in`.
#[derive(Debug, Clone)]
pub struct Separation {
    /// Gadget name.
    pub instance: &'static str,
    /// Model admitting a fair oscillation.
    pub oscillates_in: CommModel,
    /// Model in which every fair execution converges (exhaustively).
    pub converges_in: CommModel,
}

/// Harvests separations from one instance by checking the given models
/// exhaustively (only unconditional verdicts contribute). Panics on an
/// [`ExploreError`]; see [`try_harvest`].
pub fn harvest(
    name: &'static str,
    inst: &SppInstance,
    models: &[CommModel],
    cfg: &ExploreConfig,
) -> Vec<Separation> {
    try_harvest(name, inst, models, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`harvest`].
///
/// # Errors
///
/// Returns the first [`ExploreError`] any check hits; the error names the
/// offending gadget × model cell.
pub fn try_harvest(
    name: &'static str,
    inst: &SppInstance,
    models: &[CommModel],
    cfg: &ExploreConfig,
) -> Result<Vec<Separation>, ExploreError> {
    let mut oscillating = Vec::new();
    let mut converging = Vec::new();
    for &m in models {
        match try_analyze(inst, m, cfg)? {
            Verdict::CanOscillate { .. } => oscillating.push(m),
            Verdict::AlwaysConverges { .. } => converging.push(m),
            Verdict::NoOscillationWithinBound { .. } => {}
        }
    }
    let mut out = Vec::new();
    for &a in &oscillating {
        for &c in &converging {
            out.push(Separation { instance: name, oscillates_in: a, converges_in: c });
        }
    }
    Ok(out)
}

/// The default harvesting run: every model on DISAGREE (all 24 state spaces
/// are small there). Panics on an [`ExploreError`]; see
/// [`try_disagree_separations`].
pub fn disagree_separations(cfg: &ExploreConfig) -> Vec<Separation> {
    try_disagree_separations(cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`disagree_separations`].
///
/// # Errors
///
/// Returns the first [`ExploreError`] any check hits.
pub fn try_disagree_separations(cfg: &ExploreConfig) -> Result<Vec<Separation>, ExploreError> {
    let inst = routelab_spp::gadgets::disagree();
    try_harvest("DISAGREE", &inst, &CommModel::all(), cfg)
}

/// Extends the foundational facts with empirical negatives and re-derives
/// the bounds matrix.
pub fn extended_bounds(separations: &[Separation]) -> (Facts, BoundsMatrix) {
    let mut facts = foundational_facts();
    for s in separations {
        facts.negatives.push(NegativeFact {
            realized: s.oscillates_in,
            realizer: s.converges_in,
            max_level: 0,
            source: "routelab exhaustive check",
        });
    }
    let bounds = derive_bounds(&facts);
    (facts, bounds)
}

/// Counts cells of `new` strictly tighter than in `old`.
pub fn newly_determined(old: &BoundsMatrix, new: &BoundsMatrix) -> usize {
    let mut n = 0;
    for a in CommModel::all() {
        for b in CommModel::all() {
            if a == b {
                continue;
            }
            let (o, w) = (old.get(a, b), new.get(a, b));
            if w.refines(o) && w != o {
                n += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use routelab_core::lattice::CellBound;
    use routelab_core::paper::{compare, figure3, figure4, CellVerdict};

    fn cfg() -> ExploreConfig {
        ExploreConfig::default()
    }

    #[test]
    fn disagree_resolves_the_unreliable_weak_columns() {
        let seps = disagree_separations(&cfg());
        assert!(!seps.is_empty());
        let (_, bounds) = extended_bounds(&seps);
        // The headline: R1O's oscillations are not preserved by the five
        // unreliable weak models — formerly blank Figure 4 cells.
        let r1o: CommModel = "R1O".parse().unwrap();
        for weak in ["UEO", "UEF", "U1A", "UMA", "UEA"] {
            let cell = bounds.get(r1o, weak.parse().unwrap());
            assert_eq!(cell, CellBound::exactly(0), "(R1O, {weak}) should be -1, got {cell}");
        }
        // …and by transitivity neither are the oscillations of any model
        // realizing R1O, e.g. the queueing models.
        for strong in ["RMS", "UMS", "R1S", "U1O"] {
            let cell = bounds.get(strong.parse().unwrap(), "UEA".parse().unwrap());
            assert_eq!(cell, CellBound::exactly(0), "({strong}, UEA) should be -1, got {cell}");
        }
    }

    #[test]
    fn extension_is_consistent_with_the_published_tables() {
        // The extension must only tighten: zero conflicts against Figures
        // 3 and 4, and strictly more determined cells than the base.
        let seps = disagree_separations(&cfg());
        let (_, extended) = extended_bounds(&seps);
        for table in [figure3(), figure4()] {
            let cmp = compare(&extended, &table);
            assert_eq!(cmp.count(CellVerdict::Conflict), 0, "{}:\n{cmp}", table.name);
            assert_eq!(cmp.count(CellVerdict::Looser), 0, "{}", table.name);
        }
        let base = derive_bounds(&foundational_facts());
        let gained = newly_determined(&base, &extended);
        assert!(gained >= 50, "expected a large batch of resolved cells, got {gained}");
    }

    #[test]
    fn harvest_is_symmetric_free() {
        // A model never separates from itself, and separations never point
        // from a converging model.
        let seps = disagree_separations(&cfg());
        for s in &seps {
            assert_ne!(s.oscillates_in, s.converges_in);
        }
        // DISAGREE's weak five must be on the converging side only.
        for weak in ["REO", "REF", "R1A", "RMA", "REA", "UEA"] {
            let weak: CommModel = weak.parse().unwrap();
            assert!(seps.iter().all(|s| s.oscillates_in != weak), "{weak}");
        }
    }
}

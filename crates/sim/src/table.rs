//! Minimal plain-text table rendering for experiment reports.

use std::fmt;

/// A simple left-padded text table.
///
/// ```
/// use routelab_sim::table::Table;
/// let mut t = Table::new(vec!["model".into(), "verdict".into()]);
/// t.row(vec!["R1O".into(), "oscillates".into()]);
/// let s = t.to_string();
/// assert!(s.contains("R1O"));
/// assert!(s.lines().count() >= 3); // header, rule, row
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Table { header, rows: Vec::new() }
    }

    /// Appends a row; short rows are padded with empty cells.
    ///
    /// # Panics
    ///
    /// Panics if the row has more cells than the header has columns.
    pub fn row(&mut self, mut cells: Vec<String>) {
        assert!(cells.len() <= self.header.len(), "row wider than header");
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data row was added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{c:>w$}", w = width[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let rule: Vec<String> = width.iter().map(|&w| "-".repeat(w)).collect();
        write_row(f, &rule)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a".into(), "long-header".into()]);
        t.row(vec!["xxxx".into(), "1".into()]);
        t.row(vec!["y".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have equal width.
        let w = lines[0].chars().count();
        assert!(lines.iter().all(|l| l.chars().count() == w), "{s}");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row wider than header")]
    fn wide_rows_rejected() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }
}

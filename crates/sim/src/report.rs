//! Machine-readable experiment reports.
//!
//! Every experiment binary prints human-oriented text tables; this module
//! layers a JSON artifact (`results/<experiment>.json`) on top so the
//! performance trajectory (`BENCH_*.json`) and downstream tooling have
//! structured data to consume. The writer is hand-rolled — the offline
//! vendor set has no serde — and keeps object keys in insertion order so
//! regenerated files diff cleanly.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

use routelab_spp::SppInstance;

use crate::montecarlo::{CellConfig, CellReport};

/// A JSON value with order-preserving objects.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integer value (exact for |n| ≤ 2⁵³).
    pub fn int(n: usize) -> Json {
        Json::Num(n as f64)
    }

    /// An object builder from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 9e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One instance's worth of Monte-Carlo cells.
#[derive(Debug, Clone)]
pub struct GroupReport {
    /// Instance name as printed in the text table.
    pub instance: String,
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Whether the instance is dispute-wheel-free.
    pub wheel_free: bool,
    /// One report per communication model.
    pub cells: Vec<CellReport>,
}

impl GroupReport {
    /// Builds a group from an instance and its freshly computed cells.
    pub fn new(name: &str, inst: &SppInstance, wheel_free: bool, cells: Vec<CellReport>) -> Self {
        GroupReport {
            instance: name.to_string(),
            nodes: inst.node_count(),
            edges: inst.graph().edge_count(),
            wheel_free,
            cells,
        }
    }
}

/// A whole experiment's structured results: configuration, per-cell
/// statistics and observability counters, and aggregate throughput.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Experiment name (`montecarlo`, `survey`, …).
    pub experiment: String,
    /// Worker threads the engine resolved to.
    pub threads: usize,
    /// Cell configuration shared by all groups.
    pub config: CellConfig,
    /// Per-instance groups.
    pub groups: Vec<GroupReport>,
    /// End-to-end wall clock of the experiment binary.
    pub wall: Duration,
}

impl RunReport {
    /// Total engine steps across every cell.
    pub fn total_steps(&self) -> usize {
        self.groups.iter().flat_map(|g| &g.cells).map(|c| c.total_steps).sum()
    }

    /// Summed per-run wall time across every cell (CPU-time-like).
    pub fn total_run_time(&self) -> Duration {
        self.groups.iter().flat_map(|g| &g.cells).map(|c| c.wall).sum()
    }

    /// Aggregate throughput in engine steps per second of end-to-end wall
    /// clock — the headline number tracked by `BENCH_montecarlo.json`.
    pub fn steps_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.total_steps() as f64 / secs
        } else {
            0.0
        }
    }

    /// The full structured report.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("experiment", Json::str(&self.experiment)),
            ("threads", Json::int(self.threads)),
            ("wall_ms", Json::Num(self.wall.as_secs_f64() * 1e3)),
            ("steps_per_sec", Json::Num(self.steps_per_sec())),
            (
                "config",
                Json::obj([
                    ("runs", Json::int(self.config.runs)),
                    ("max_steps", Json::int(self.config.max_steps)),
                    ("seed", Json::int(self.config.seed as usize)),
                    ("drop_prob", Json::Num(self.config.drop_prob)),
                ]),
            ),
            (
                "groups",
                Json::Arr(
                    self.groups
                        .iter()
                        .map(|g| {
                            Json::obj([
                                ("instance", Json::str(&g.instance)),
                                ("nodes", Json::int(g.nodes)),
                                ("edges", Json::int(g.edges)),
                                ("wheel_free", Json::Bool(g.wheel_free)),
                                ("cells", Json::Arr(g.cells.iter().map(cell_json).collect())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// The compact throughput summary written to `results/BENCH_<name>.json`
    /// — one sample of the perf trajectory.
    pub fn bench_json(&self) -> Json {
        Json::obj([
            ("bench", Json::str(&self.experiment)),
            ("threads", Json::int(self.threads)),
            ("wall_ms", Json::Num(self.wall.as_secs_f64() * 1e3)),
            ("total_steps", Json::int(self.total_steps())),
            ("steps_per_sec", Json::Num(self.steps_per_sec())),
            ("run_time_ms", Json::Num(self.total_run_time().as_secs_f64() * 1e3)),
        ])
    }
}

fn cell_json(c: &CellReport) -> Json {
    Json::obj([
        ("model", Json::str(c.model.to_string())),
        ("runs", Json::int(c.stats.runs)),
        ("converged", Json::int(c.stats.converged)),
        ("converged_unfairly", Json::int(c.stats.converged_unfairly)),
        ("stable_outcome", Json::int(c.stats.stable_outcome)),
        ("convergence_rate", Json::Num(c.stats.convergence_rate())),
        ("mean_steps", Json::Num(c.stats.mean_steps)),
        ("mean_messages", Json::Num(c.stats.mean_messages)),
        ("mean_dropped", Json::Num(c.stats.mean_dropped)),
        ("wall_ms", Json::Num(c.wall.as_secs_f64() * 1e3)),
        ("steps_per_sec", Json::Num(c.steps_per_sec())),
        ("total_steps", Json::int(c.total_steps)),
        ("total_sent", Json::int(c.total_sent)),
        ("total_dropped", Json::int(c.total_dropped)),
    ])
}

/// Writes `json` to `<dir>/<stem>.json`, creating `dir` if needed.
///
/// This is the testable core of [`write_json`]: callers (and tests) pass the
/// resolved directory explicitly instead of mutating process environment,
/// which is racy across concurrently running test threads.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_json_to(dir: &Path, stem: &str, json: &Json) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{stem}.json"));
    std::fs::write(&path, json.render())?;
    Ok(path)
}

/// Writes `json` to `<results dir>/<stem>.json` (creating the directory),
/// where the results dir is `$ROUTELAB_RESULTS_DIR` or `results/`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_json(stem: &str, json: &Json) -> io::Result<PathBuf> {
    let dir = std::env::var("ROUTELAB_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    write_json_to(Path::new(&dir), stem, json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::{try_run_grid_with, CellConfig};
    use crate::pool::PoolConfig;
    use routelab_core::model::CommModel;
    use routelab_spp::gadgets;

    #[test]
    fn json_rendering_covers_all_value_kinds() {
        let v = Json::obj([
            ("null", Json::Null),
            ("flag", Json::Bool(true)),
            ("int", Json::int(42)),
            ("frac", Json::Num(0.25)),
            ("inf", Json::Num(f64::INFINITY)),
            ("text", Json::str("a \"b\"\nc\\d\u{1}")),
            ("arr", Json::Arr(vec![Json::int(1), Json::int(2)])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::obj([])),
        ]);
        let s = v.render();
        assert!(s.contains("\"null\": null"), "{s}");
        assert!(s.contains("\"flag\": true"), "{s}");
        assert!(s.contains("\"int\": 42"), "{s}");
        assert!(s.contains("\"frac\": 0.25"), "{s}");
        assert!(s.contains("\"inf\": null"), "{s}");
        assert!(s.contains(r#"a \"b\"\nc\\d\u0001"#), "{s}");
        assert!(s.contains("\"empty_arr\": []"), "{s}");
        assert!(s.contains("\"empty_obj\": {}"), "{s}");
        assert!(s.ends_with("}\n"), "{s}");
    }

    #[test]
    fn large_integers_render_without_exponent() {
        assert_eq!(Json::int(1_000_000_000).render(), "1000000000\n");
        assert_eq!(Json::Num(1.5).render(), "1.5\n");
    }

    #[test]
    fn run_report_round_trip_shape() {
        let inst = gadgets::disagree();
        let cfg = CellConfig { runs: 4, max_steps: 2_000, seed: 3, drop_prob: 0.25 };
        let models: Vec<CommModel> = vec!["RMS".parse().unwrap(), "UMS".parse().unwrap()];
        let cells = try_run_grid_with(&inst, &models, &cfg, &PoolConfig::with_threads(1))
            .expect("no panics");
        let report = RunReport {
            experiment: "unit".into(),
            threads: 1,
            config: cfg,
            groups: vec![GroupReport::new("DISAGREE", &inst, false, cells)],
            wall: Duration::from_millis(5),
        };
        assert!(report.total_steps() > 0);
        let json = report.to_json().render();
        for key in [
            "\"experiment\": \"unit\"",
            "\"instance\": \"DISAGREE\"",
            "\"model\": \"RMS\"",
            "\"total_dropped\"",
            "\"steps_per_sec\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let bench = report.bench_json().render();
        assert!(bench.contains("\"bench\": \"unit\""), "{bench}");
    }

    #[test]
    fn write_json_creates_file() {
        // The directory is passed explicitly — `set_var` would race with
        // other tests reading the environment on parallel test threads.
        let dir = std::env::temp_dir().join(format!("routelab-report-test-{}", std::process::id()));
        let path = write_json_to(&dir, "unit-test", &Json::obj([("ok", Json::Bool(true))]))
            .expect("writable temp dir");
        let text = std::fs::read_to_string(&path).expect("file exists");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(text.contains("\"ok\": true"));
        assert!(path.ends_with("unit-test.json"), "{}", path.display());
    }

    #[test]
    fn string_escaping_covers_json_special_cases() {
        let cases: &[(&str, &str)] = &[
            ("plain", r#""plain""#),
            ("with \"quotes\"", r#""with \"quotes\"""#),
            ("back\\slash", r#""back\\slash""#),
            ("line\nbreak", r#""line\nbreak""#),
            ("carriage\rreturn", r#""carriage\rreturn""#),
            ("tab\there", r#""tab\there""#),
            ("nul\u{0}byte", r#""nul\u0000byte""#),
            ("esc\u{1b}ape", r#""esc\u001bape""#),
            ("unit\u{1f}sep", r#""unit\u001fsep""#),
            // Non-ASCII passes through unescaped (the files are UTF-8).
            ("π ≤ ∞ désolé", r#""π ≤ ∞ désolé""#),
            ("emoji \u{1f600}", "\"emoji \u{1f600}\""),
        ];
        for (input, want) in cases {
            let mut out = String::new();
            write_escaped(&mut out, input);
            assert_eq!(&out, want, "escaping {input:?}");
        }
    }
}

//! Deterministic text rendering for the registry-backed CLI surface:
//! `routelab transforms list`, `routelab pipeline "…"`, and
//! `routelab plan <from> <to>`.
//!
//! Everything here is byte-stable (no timings, no absolute paths) so the
//! golden snapshot tests and the CI smoke job can diff CLI output exactly.

use routelab_core::model::CommModel;
use routelab_realize::plan::{
    fair_prefix, plan_route, run_pipeline, verify_route, NoRoute, PipelineError, StageOutcome,
};
use routelab_realize::registry::Registry;
use routelab_spp::SppInstance;

use crate::table::Table;

/// Renders the full registry listing: one table per entry kind, with each
/// entry's versioned cache key, model constraints, dispatch target, and
/// description.
pub fn render_transforms_list(reg: &Registry) -> String {
    let mut out = String::new();
    let mut table = Table::new(vec![
        "name".into(),
        "in".into(),
        "out".into(),
        "strength".into(),
        "impl".into(),
        "description".into(),
    ]);
    for t in reg.transforms() {
        table.row(vec![
            t.meta.cache_key(),
            t.meta.input.to_string(),
            t.meta.output.to_string(),
            t.strength().to_string(),
            t.meta.impl_path.to_string(),
            t.meta.description.to_string(),
        ]);
    }
    out.push_str(&format!("transforms ({}):\n{table}\n", reg.transforms().len()));

    let mut table =
        Table::new(vec!["name".into(), "arguments".into(), "impl".into(), "description".into()]);
    for g in reg.generators() {
        table.row(vec![
            g.meta.cache_key(),
            g.meta.input.to_string(),
            g.meta.impl_path.to_string(),
            g.meta.description.to_string(),
        ]);
    }
    out.push_str(&format!("generators ({}):\n{table}\n", reg.generators().len()));

    let mut table = Table::new(vec!["name".into(), "impl".into(), "description".into()]);
    for c in reg.checks() {
        table.row(vec![
            c.meta.cache_key(),
            c.meta.impl_path.to_string(),
            c.meta.description.to_string(),
        ]);
    }
    out.push_str(&format!("checks ({}):\n{table}", reg.checks().len()));
    out
}

/// Parses, type-checks, executes, and renders a pipeline: one summary row
/// per stage, then a verdict line.
///
/// # Errors
///
/// Returns the typed [`PipelineError`] (which names the offending stage)
/// when the pipeline fails to parse, type-check, or execute.
pub fn render_pipeline(reg: &Registry, spec: &str) -> Result<String, PipelineError> {
    let run = run_pipeline(reg, spec)?;
    let mut out = format!("pipeline: {spec}\n\n");
    let mut table = Table::new(vec!["stage".into(), "op".into(), "summary".into()]);
    for (i, outcome) in run.outcomes.iter().enumerate() {
        let (op, summary) = match outcome {
            StageOutcome::Source { label, nodes, model, inferred, steps } => (
                label.clone(),
                format!(
                    "{nodes}-node instance; {steps}-step round-robin source run in {model}{}",
                    if *inferred { " (inferred)" } else { "" }
                ),
            ),
            StageOutcome::Pin { model } => (model.to_string(), "model pin holds".into()),
            StageOutcome::Transform { name, edge, steps_in, steps_out, claimed, lossless } => (
                (*name).to_string(),
                format!(
                    "{} -> {} ({}); {steps_in} -> {steps_out} steps; chain claims {claimed}{}",
                    edge.realized,
                    edge.realizer,
                    edge.strength,
                    if *lossless { "" } else { ", lossy" }
                ),
            ),
            StageOutcome::Check { name, report } => (
                (*name).to_string(),
                format!(
                    "claimed {}, achieved {:?}, target {}: {}",
                    report.claimed,
                    report.achieved,
                    if report.target_legal { "legal" } else { "ILLEGAL" },
                    if report.holds() { "HOLDS" } else { "FAILS" }
                ),
            ),
        };
        table.row(vec![(i + 1).to_string(), op, summary]);
    }
    out.push_str(&table.to_string());
    out.push_str(&format!(
        "\nresult: {} — realized {} inside {} ({} -> {} steps)\n",
        if run.ok { "OK" } else { "FAILED" },
        run.start,
        run.end,
        run.source.len(),
        run.seq.len()
    ));
    Ok(out)
}

/// Plans a composite transform route between two models, validates it end
/// to end on a fair run of `inst`, and renders both.
///
/// # Errors
///
/// Returns the typed [`NoRoute`] when the realization lattice has no
/// positive chain between the models.
pub fn render_plan(
    reg: &Registry,
    inst: &SppInstance,
    inst_name: &str,
    from: CommModel,
    to: CommModel,
) -> Result<String, NoRoute> {
    let route = plan_route(reg, from, to)?;
    let mut out = format!("route: {route}\n");
    out.push_str(&format!(
        "stages: {}, bottleneck strength: {}\n",
        route.steps.len(),
        route.bottleneck()
    ));
    let steps = 3 * inst.node_count();
    let seq = fair_prefix(inst, from, steps);
    match verify_route(inst, &seq, &route) {
        Ok(report) => out.push_str(&format!(
            "verified on {inst_name} ({steps}-step fair run): {} — {report}\n",
            if report.holds() { "HOLDS" } else { "FAILS" }
        )),
        Err(e) => out.push_str(&format!("verification ERROR on {inst_name}: {e}\n")),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transforms_list_is_deterministic_and_complete() {
        let reg = Registry::global();
        let a = render_transforms_list(reg);
        let b = render_transforms_list(reg);
        assert_eq!(a, b);
        for t in reg.transforms() {
            assert!(a.contains(&t.meta.cache_key()), "missing {}", t.meta.name);
        }
        for g in reg.generators() {
            assert!(a.contains(&g.meta.cache_key()), "missing {}", g.meta.name);
        }
        for c in reg.checks() {
            assert!(a.contains(&c.meta.cache_key()), "missing {}", c.meta.name);
        }
    }

    #[test]
    fn pipeline_rendering_carries_stage_rows_and_verdict() {
        let out = render_pipeline(Registry::global(), "fig6 | split | pad | verify").unwrap();
        assert!(out.contains("result: OK"), "{out}");
        assert!(out.contains("split"), "{out}");
        assert!(out.contains("HOLDS"), "{out}");
    }

    #[test]
    fn pipeline_errors_are_returned_typed() {
        let err = render_pipeline(Registry::global(), "fig6 | nonsense").unwrap_err();
        assert!(matches!(err, PipelineError::Unknown { stage: 1, .. }), "{err:?}");
    }

    #[test]
    fn plan_rendering_verifies_the_route() {
        let inst = routelab_spp::gadgets::fig6();
        let reg = Registry::global();
        let from: CommModel = "REA".parse().unwrap();
        let to: CommModel = "UMS".parse().unwrap();
        let out = render_plan(reg, &inst, "FIG6", from, to).unwrap();
        assert!(out.contains("HOLDS"), "{out}");
        assert!(out.contains("bottleneck strength: exact"), "{out}");
        let err = render_plan(reg, &inst, "FIG6", to, from).unwrap_err();
        assert_eq!(err, NoRoute { from: to, to: from });
    }
}

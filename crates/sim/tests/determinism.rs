//! The experiment engine's headline guarantee: grid statistics are
//! bit-identical regardless of worker count, and per-run seed derivation
//! never collides within a cell.

use proptest::prelude::*;
use routelab_core::model::CommModel;
use routelab_sim::montecarlo::{run_seed, try_run_grid_with, CellConfig, CellStats};
use routelab_sim::pool::PoolConfig;
use routelab_spp::gadgets;

fn grid_stats(threads: usize) -> Vec<(CommModel, CellStats)> {
    let inst = gadgets::disagree();
    let models: Vec<CommModel> =
        ["R1O", "RMS", "UMS", "REA"].iter().map(|s| s.parse().unwrap()).collect();
    let cfg = CellConfig { runs: 16, max_steps: 8_000, seed: 42, drop_prob: 0.25 };
    try_run_grid_with(&inst, &models, &cfg, &PoolConfig::with_threads(threads))
        .expect("no panics")
        .into_iter()
        .map(|c| (c.model, c.stats))
        .collect()
}

#[test]
fn grid_is_bit_identical_across_worker_counts() {
    let base = grid_stats(1);
    for threads in [2, 8] {
        // CellStats derives PartialEq over its f64 means, so equality here
        // is bit-level identity of every float aggregate.
        assert_eq!(base, grid_stats(threads), "threads={threads}");
    }
}

#[test]
fn telemetry_does_not_perturb_results() {
    // Obs enablement is one-way per process, so this test measures the
    // disabled baseline first, flips the sink on, and re-measures. No other
    // test in this binary enables obs, so the baseline really is obs-off.
    assert!(!routelab_obs::enabled(), "obs must start disabled in the test process");
    let baseline: Vec<_> = [1, 4].iter().map(|&t| grid_stats(t)).collect();

    let dir = std::env::temp_dir().join(format!("routelab-obs-determinism-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let log = routelab_obs::enable_to_dir(&dir, "determinism-test");
    assert!(routelab_obs::enabled());

    // Bit-identical stats with telemetry recording, at both thread counts.
    let instrumented: Vec<_> = [1, 4].iter().map(|&t| grid_stats(t)).collect();
    assert_eq!(baseline, instrumented, "telemetry changed experiment results");

    // And the run really was instrumented: the NDJSON log contains engine
    // counters once flushed.
    routelab_obs::shutdown();
    let text = std::fs::read_to_string(log.expect("telemetry file opened")).expect("log readable");
    assert!(text.contains("\"engine.steps\""), "telemetry log missing engine counters: {text}");
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn run_seeds_never_collide_within_a_cell(base in 0u64..=u64::MAX, runs in 1usize..512) {
        let seeds: Vec<u64> = (0..runs).map(|i| run_seed(base, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), seeds.len(), "collision for base {}", base);
    }
}

//! The experiment engine's headline guarantee: grid statistics are
//! bit-identical regardless of worker count, and per-run seed derivation
//! never collides within a cell.

use proptest::prelude::*;
use routelab_core::model::CommModel;
use routelab_sim::montecarlo::{run_seed, try_run_grid_with, CellConfig, CellStats};
use routelab_sim::pool::PoolConfig;
use routelab_spp::gadgets;

fn grid_stats(threads: usize) -> Vec<(CommModel, CellStats)> {
    let inst = gadgets::disagree();
    let models: Vec<CommModel> =
        ["R1O", "RMS", "UMS", "REA"].iter().map(|s| s.parse().unwrap()).collect();
    let cfg = CellConfig { runs: 16, max_steps: 8_000, seed: 42, drop_prob: 0.25 };
    try_run_grid_with(&inst, &models, &cfg, &PoolConfig::with_threads(threads))
        .expect("no panics")
        .into_iter()
        .map(|c| (c.model, c.stats))
        .collect()
}

#[test]
fn grid_is_bit_identical_across_worker_counts() {
    let base = grid_stats(1);
    for threads in [2, 8] {
        // CellStats derives PartialEq over its f64 means, so equality here
        // is bit-level identity of every float aggregate.
        assert_eq!(base, grid_stats(threads), "threads={threads}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn run_seeds_never_collide_within_a_cell(base in 0u64..=u64::MAX, runs in 1usize..512) {
        let seeds: Vec<u64> = (0..runs).map(|i| run_seed(base, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), seeds.len(), "collision for base {}", base);
    }
}

//! The global telemetry sink and thread-local buffers.
//!
//! Write path: instrumentation calls land in a thread-local [`LocalBuf`]
//! (plain `Vec` pushes, no locks, no syscalls). When a buffer fills — or a
//! thread exits, or someone calls [`flush`] — the buffered events are encoded
//! into an NDJSON chunk and pushed onto a lock-free Treiber stack shared by
//! all threads. Draining (on flush/shutdown/heartbeat) swaps the stack head,
//! reverses the chunks back into push order, and appends them to the log
//! file; only drainers contend on the file mutex, never the hot path.
//!
//! The sink is disabled by default and enabling is one-way for the process
//! lifetime: a single relaxed atomic load guards every instrumentation call,
//! so a build with telemetry compiled in but not enabled pays one branch.

use std::cell::RefCell;
use std::fs::{self, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::event::{Event, FieldVal};
use crate::hist::LogHistogram;

/// Flush a thread-local buffer once it holds this many span/counter events.
const LOCAL_FLUSH_THRESHOLD: usize = 256;

static ENABLED: AtomicBool = AtomicBool::new(false);
static QUIET: AtomicBool = AtomicBool::new(false);
static SINK: OnceLock<Sink> = OnceLock::new();

struct Chunk {
    data: String,
    next: *mut Chunk,
}

/// Lock-free multi-producer chunk stack (Treiber stack). Producers only push;
/// the drain path detaches the whole list with one swap.
struct ChunkStack {
    head: AtomicPtr<Chunk>,
}

// Chunk pointers are only ever owned by the stack (push moves the Box in,
// drain takes them all back out), so sending them across threads is sound.
unsafe impl Send for ChunkStack {}
unsafe impl Sync for ChunkStack {}

impl ChunkStack {
    const fn new() -> Self {
        ChunkStack { head: AtomicPtr::new(ptr::null_mut()) }
    }

    fn push(&self, data: String) {
        let node = Box::into_raw(Box::new(Chunk { data, next: ptr::null_mut() }));
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            unsafe { (*node).next = head };
            match self.head.compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }

    /// Detaches every pushed chunk, returned oldest-first.
    fn drain(&self) -> Vec<String> {
        let mut node = self.head.swap(ptr::null_mut(), Ordering::Acquire);
        let mut out = Vec::new();
        while !node.is_null() {
            let boxed = unsafe { Box::from_raw(node) };
            node = boxed.next;
            out.push(boxed.data);
        }
        out.reverse();
        out
    }
}

impl Drop for ChunkStack {
    fn drop(&mut self) {
        self.drain();
    }
}

struct Sink {
    epoch: Instant,
    path: PathBuf,
    chunks: ChunkStack,
    /// Serialises file appends on the drain path only.
    file: Mutex<()>,
}

impl Sink {
    fn drain_to_file(&self) {
        let chunks = self.chunks.drain();
        if chunks.is_empty() {
            return;
        }
        let _guard = self.file.lock().unwrap_or_else(|e| e.into_inner());
        if let Ok(mut f) = OpenOptions::new().create(true).append(true).open(&self.path) {
            for c in &chunks {
                let _ = f.write_all(c.as_bytes());
            }
        }
    }
}

/// Per-thread event buffer. Spans and counters append to `events`; histograms
/// accumulate in place (keyed by static name, linear scan — the set of
/// histogram names per thread is tiny) and flush as partial histograms that
/// the summarizer merges.
#[derive(Default)]
struct LocalBuf {
    events: Vec<Event>,
    hists: Vec<(&'static str, LogHistogram)>,
}

impl LocalBuf {
    fn encode_and_push(&mut self, sink: &Sink) {
        if self.events.is_empty() && self.hists.iter().all(|(_, h)| h.is_empty()) {
            return;
        }
        let mut out = String::with_capacity(self.events.len() * 64 + 64);
        for e in self.events.drain(..) {
            e.encode(&mut out);
        }
        for (name, hist) in self.hists.iter_mut() {
            if !hist.is_empty() {
                Event::Hist { name, hist: Box::new(hist.clone()) }.encode(&mut out);
                *hist = LogHistogram::default();
            }
        }
        sink.chunks.push(out);
    }
}

struct LocalBufGuard(RefCell<LocalBuf>);

impl Drop for LocalBufGuard {
    fn drop(&mut self) {
        if let Some(sink) = SINK.get() {
            self.0.borrow_mut().encode_and_push(sink);
        }
    }
}

thread_local! {
    static LOCAL: LocalBufGuard = LocalBufGuard(RefCell::new(LocalBuf::default()));
}

/// Whether telemetry is enabled for this process.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether heartbeat/progress stderr output is suppressed.
pub fn quiet() -> bool {
    QUIET.load(Ordering::Relaxed)
}

/// Suppresses (or re-enables) heartbeat stderr output.
pub fn set_quiet(quiet: bool) {
    QUIET.store(quiet, Ordering::Relaxed);
}

/// Enables telemetry, writing NDJSON to `<dir>/<proc>-<pid>.ndjson`.
///
/// Enabling is one-way for the process lifetime; calling again (or
/// concurrently) keeps the first sink and is a no-op. Returns the log path,
/// or `None` when the directory could not be created.
pub fn enable_to_dir(dir: &Path, proc_name: &str) -> Option<PathBuf> {
    if fs::create_dir_all(dir).is_err() {
        return None;
    }
    let pid = std::process::id();
    let sink = SINK.get_or_init(|| Sink {
        epoch: Instant::now(),
        path: dir.join(format!("{proc_name}-{pid}.ndjson")),
        chunks: ChunkStack::new(),
        file: Mutex::new(()),
    });
    if !ENABLED.swap(true, Ordering::SeqCst) {
        let mut out = String::new();
        Event::Meta { proc: proc_name.to_string(), pid }.encode(&mut out);
        sink.chunks.push(out);
    }
    Some(sink.path.clone())
}

/// Monotonic nanoseconds since telemetry was enabled (0 when disabled).
pub fn now_ns() -> u64 {
    match SINK.get() {
        Some(s) => s.epoch.elapsed().as_nanos() as u64,
        None => 0,
    }
}

fn with_local(f: impl FnOnce(&mut LocalBuf, &Sink)) {
    let Some(sink) = SINK.get() else { return };
    // If the thread-local is already torn down (event emitted from another
    // destructor during thread exit), drop the event rather than panic.
    let _ = LOCAL.try_with(|guard| {
        let mut buf = guard.0.borrow_mut();
        f(&mut buf, sink);
        if buf.events.len() >= LOCAL_FLUSH_THRESHOLD {
            buf.encode_and_push(sink);
        }
    });
}

pub(crate) fn push_event(e: Event) {
    with_local(|buf, _| buf.events.push(e));
}

pub(crate) fn record_hist(name: &'static str, value: u64) {
    with_local(|buf, _| match buf.hists.iter_mut().find(|(n, _)| *n == name) {
        Some((_, h)) => h.record(value),
        None => {
            let mut h = LogHistogram::default();
            h.record(value);
            buf.hists.push((name, h));
        }
    });
}

/// Flushes this thread's buffer and appends all pending chunks to the log.
pub fn flush() {
    let Some(sink) = SINK.get() else { return };
    let _ = LOCAL.try_with(|guard| guard.0.borrow_mut().encode_and_push(sink));
    sink.drain_to_file();
}

/// Final flush. Call before `std::process::exit`, which skips destructors —
/// only the calling thread's buffer and the shared chunk stack are written,
/// so worker threads must have exited (or flushed) first. Also persists the
/// flight-recorder trace, if one was enabled.
pub fn shutdown() {
    flush();
    crate::trace::flush_trace();
}

/// A RAII span: records begin on creation, end (with duration and any
/// attached fields) on drop.
pub struct SpanGuard {
    name: &'static str,
    start_ns: u64,
    fields: Vec<(&'static str, FieldVal)>,
    live: bool,
}

impl SpanGuard {
    /// Attaches a field reported on the span-end event.
    pub fn field(&mut self, key: &'static str, value: impl Into<FieldVal>) {
        if self.live {
            self.fields.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.live {
            let ns = now_ns();
            push_event(Event::SpanEnd {
                name: self.name,
                ns,
                dur_ns: ns.saturating_sub(self.start_ns),
                fields: std::mem::take(&mut self.fields),
            });
        }
    }
}

/// Opens a span. When telemetry is disabled this is a single branch and the
/// returned guard is inert.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { name, start_ns: 0, fields: Vec::new(), live: false };
    }
    let start_ns = now_ns();
    push_event(Event::SpanBegin { name, ns: start_ns });
    SpanGuard { name, start_ns, fields: Vec::new(), live: true }
}

/// Records a counter increment.
#[inline]
pub fn counter(name: &'static str, value: u64) {
    if enabled() && value > 0 {
        push_event(Event::Counter { name, ns: now_ns(), value });
    }
}

/// Records a point-in-time gauge sample.
#[inline]
pub fn gauge(name: &'static str, value: u64) {
    if enabled() {
        push_event(Event::Gauge { name, ns: now_ns(), value });
    }
}

/// Records a histogram sample (log₂ buckets, merged across threads).
#[inline]
pub fn histogram(name: &'static str, value: u64) {
    if enabled() {
        record_hist(name, value);
    }
}

#[cfg(test)]
mod tests {
    use super::ChunkStack;
    use std::sync::Arc;

    #[test]
    fn chunk_stack_drains_in_push_order() {
        let s = ChunkStack::new();
        s.push("a".into());
        s.push("b".into());
        s.push("c".into());
        assert_eq!(s.drain(), vec!["a", "b", "c"]);
        assert!(s.drain().is_empty());
    }

    #[test]
    fn chunk_stack_is_safe_under_contention() {
        let s = Arc::new(ChunkStack::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        s.push(format!("{t}:{i}"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut all = s.drain();
        assert_eq!(all.len(), 800);
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 800, "no chunk lost or duplicated");
    }
}

//! routelab-obs: structured tracing, metrics, and run telemetry.
//!
//! Zero-dependency observability for the routelab workspace. The crate
//! provides spans, counters, gauges, and log-scale histograms that flush from
//! thread-local buffers into a lock-free global sink writing NDJSON to
//! `results/telemetry/` (schema documented in EXPERIMENTS.md §Telemetry),
//! plus a summarizer that aggregates those logs into phase-latency tables.
//!
//! Design rules:
//!
//! - **Disabled is near-free.** Every instrumentation call starts with one
//!   relaxed atomic load; nothing allocates or takes a lock until telemetry
//!   is explicitly enabled (`--obs` flag or `ROUTELAB_OBS=1`).
//! - **Telemetry never perturbs results.** Instrumentation only observes;
//!   the determinism suite runs bit-identical with the sink on and off.
//! - **Explicit shutdown.** The experiment binaries exit via
//!   `std::process::exit`, which skips destructors — call [`shutdown`]
//!   before exiting or the tail of the log is lost.
//!
//! ```
//! let dir = std::env::temp_dir().join(format!("obs-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! routelab_obs::enable_to_dir(&dir, "doctest");
//! {
//!     let mut span = routelab_obs::span("phase.work");
//!     span.field("items", 3u64);
//! }
//! routelab_obs::counter("work.items", 3);
//! routelab_obs::histogram("work.steps", 17);
//! routelab_obs::shutdown();
//! let summary = routelab_obs::summarize_dir(&dir).unwrap();
//! assert_eq!(summary.counters["work.items"].total, 3);
//! let _ = std::fs::remove_dir_all(&dir);
//! ```

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod event;
pub mod heartbeat;
pub mod hist;
pub mod sink;
pub mod summary;
pub mod trace;

pub use event::{escape_json, parse_json, Event, FieldVal, JVal, ParseError};
pub use heartbeat::{rss_bytes, Heartbeat};
pub use hist::LogHistogram;
pub use sink::{
    counter, enable_to_dir, enabled, flush, gauge, histogram, now_ns, quiet, set_quiet, shutdown,
    span, SpanGuard,
};
pub use summary::{summarize_dir, summarize_str, Summary};
pub use trace::{
    enable_trace_to_dir, flush_trace, init_trace_from_env, trace_counter, trace_enabled,
    trace_note, trace_now_ns, trace_path, trace_phase, trace_run_begin, RunTrace, StepRecord,
    TraceRecorder,
};

use std::path::PathBuf;

/// Resolves the telemetry output directory: `ROUTELAB_OBS_DIR`, else
/// `<ROUTELAB_RESULTS_DIR>/telemetry`, else `results/telemetry`.
pub fn telemetry_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("ROUTELAB_OBS_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir);
        }
    }
    let base = std::env::var("ROUTELAB_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    PathBuf::from(base).join("telemetry")
}

/// Whether an env value means "on" (`1`, `true`, `yes`, `on`; case-insensitive).
fn truthy(v: &str) -> bool {
    matches!(v.to_ascii_lowercase().as_str(), "1" | "true" | "yes" | "on")
}

/// Enables telemetry if `ROUTELAB_OBS` is set truthy; returns the log path
/// when enabled. Binaries call this once at startup (the `--obs` flag calls
/// [`enable_to_dir`] directly).
pub fn init_from_env(proc_name: &str) -> Option<PathBuf> {
    match std::env::var("ROUTELAB_OBS") {
        Ok(v) if truthy(&v) => enable_to_dir(&telemetry_dir(), proc_name),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthy_values() {
        for v in ["1", "true", "TRUE", "yes", "On"] {
            assert!(truthy(v), "{v}");
        }
        for v in ["", "0", "false", "no", "off", "2"] {
            assert!(!truthy(v), "{v}");
        }
    }

    // Enabling the sink is one-way per process, so the full write->read
    // round trip lives in a single test (plus the doctest, which runs in its
    // own process).
    #[test]
    fn end_to_end_round_trip() {
        let dir = std::env::temp_dir().join(format!("routelab-obs-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Disabled: everything is a no-op and no file appears.
        assert!(!enabled());
        counter("pre.enable", 5);
        histogram("pre.enable.h", 5);
        drop(span("pre.enable.span"));
        flush();
        assert!(!dir.exists());

        let path = enable_to_dir(&dir, "unit-test").expect("enable");
        assert!(enabled());
        // Second enable is a no-op that returns the same path.
        assert_eq!(enable_to_dir(&dir, "other-name"), Some(path.clone()));

        {
            let mut s = span("test.phase");
            s.field("gadget", "FIG6");
            s.field("states", 1234u64);
        }
        counter("test.count", 7);
        counter("test.count", 0); // zero increments are skipped
        gauge("test.gauge", 99);
        for v in [1u64, 2, 1024] {
            histogram("test.hist", v);
        }
        // Events from a worker thread must land in the same log.
        std::thread::spawn(|| {
            counter("test.count", 3);
            drop(span("test.phase"));
        })
        .join()
        .unwrap();
        shutdown();

        let content = std::fs::read_to_string(&path).expect("log written");
        for line in content.lines() {
            parse_json(line).unwrap_or_else(|e| panic!("bad NDJSON line {line:?}: {e}"));
        }
        let summary = summarize_dir(&dir).expect("summarize");
        assert_eq!(summary.malformed, 0, "{content}");
        assert_eq!(summary.procs, vec![format!("unit-test ({})", std::process::id())]);
        assert_eq!(summary.counters["test.count"].total, 10);
        assert_eq!(summary.gauges["test.gauge"].last, 99);
        assert_eq!(summary.spans["test.phase"].count, 2);
        let h = &summary.hists["test.hist"];
        assert_eq!((h.count, h.sum, h.max), (3, 1027, 1024));
        // The pre-enable events must not have leaked in.
        assert!(!summary.counters.contains_key("pre.enable"));

        let _ = std::fs::remove_dir_all(&dir);
    }
}

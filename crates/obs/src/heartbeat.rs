//! Periodic stderr heartbeats for long-running phases.
//!
//! A [`Heartbeat`] is ticked from the hot loop with the current progress
//! value; it rate-limits itself (default every 5 s, `ROUTELAB_OBS_HEARTBEAT`
//! seconds to override), prints a one-line status to stderr (unless quiet),
//! emits a gauge event, and drains the telemetry sink so the NDJSON log stays
//! current even if the process later hangs — the whole point after the PR 2
//! survey blow-up was to make the *next* hang visible in minutes.

use std::time::{Duration, Instant};

use crate::sink;

/// Default seconds between heartbeat fires.
const DEFAULT_INTERVAL_SECS: u64 = 5;

/// Resident-set size estimate in bytes from `/proc/self/statm` (Linux only;
/// `None` elsewhere or on read failure).
pub fn rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
        let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
        Some(resident_pages * 4096)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// A rate-limited progress reporter for one phase.
pub struct Heartbeat {
    label: &'static str,
    /// Optional budget the progress value counts toward (0 = none).
    budget: u64,
    interval: Duration,
    started: Instant,
    last_fire: Instant,
    /// How many ticks to skip between `Instant::now()` checks.
    check_every: u32,
    ticks_until_check: u32,
    /// Progress value at the previous fire, for the since-last-tick rate.
    last_value: u64,
}

impl Heartbeat {
    /// Creates a heartbeat for `label`; pass the phase budget (max states,
    /// max steps, ...) so fires can show percent-consumed, or 0 for none.
    pub fn new(label: &'static str, budget: u64) -> Self {
        let secs = std::env::var("ROUTELAB_OBS_HEARTBEAT")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(DEFAULT_INTERVAL_SECS)
            .max(1);
        let now = Instant::now();
        Heartbeat {
            label,
            budget,
            interval: Duration::from_secs(secs),
            started: now,
            last_fire: now,
            // Checking the clock on every tick of a million-state loop is
            // itself overhead; sample it every 1024 ticks.
            check_every: 1024,
            ticks_until_check: 0,
            last_value: 0,
        }
    }

    /// Ticks the heartbeat with the current progress value. Cheap when not
    /// due: a counter decrement on most calls, a clock read every 1024.
    #[inline]
    pub fn tick(&mut self, value: u64) {
        if self.ticks_until_check > 0 {
            self.ticks_until_check -= 1;
            return;
        }
        self.ticks_until_check = self.check_every;
        if self.last_fire.elapsed() >= self.interval {
            self.fire(value);
        }
    }

    /// Fires unconditionally: stderr line + gauge + sink drain.
    pub fn fire(&mut self, value: u64) {
        let since_last = self.last_fire.elapsed().as_secs_f64();
        let rate = rate_per_sec(value.saturating_sub(self.last_value), since_last);
        self.last_fire = Instant::now();
        self.last_value = value;
        if !sink::quiet() {
            eprintln!("{}", self.render_line(value, rate));
        }
        if sink::enabled() {
            sink::gauge(self.label, value);
            if let Some(b) = rss_bytes() {
                sink::gauge("proc.rss_bytes", b);
            }
            sink::flush();
        }
    }

    /// Formats one status line: count, percent-of-budget (when a budget is
    /// set), rate since the previous fire, RSS, and elapsed seconds.
    fn render_line(&self, value: u64, rate: f64) -> String {
        let elapsed = self.started.elapsed().as_secs();
        let rss = match rss_bytes() {
            Some(b) => format!(" rss={}MB", b / (1024 * 1024)),
            None => String::new(),
        };
        if self.budget > 0 {
            let pct = (value as f64 / self.budget as f64) * 100.0;
            format!(
                "[obs] {} {}/{} ({:.1}%) {}/s{} t={}s",
                self.label,
                value,
                self.budget,
                pct,
                fmt_rate(rate),
                rss,
                elapsed
            )
        } else {
            format!("[obs] {} {} {}/s{} t={}s", self.label, value, fmt_rate(rate), rss, elapsed)
        }
    }
}

/// Progress delta over elapsed seconds; 0 when no measurable time passed
/// (e.g. `fire` called directly back-to-back).
fn rate_per_sec(delta: u64, secs: f64) -> f64 {
    if secs <= 1e-6 {
        0.0
    } else {
        delta as f64 / secs
    }
}

/// Compact human rate: `950`, `14.2k`, `1.3M`.
fn fmt_rate(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.1}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_is_rate_limited() {
        let mut hb = Heartbeat::new("test.progress", 100);
        // A brand-new heartbeat must not fire immediately even when the clock
        // is checked: last_fire == started == now.
        for i in 0..10_000 {
            hb.tick(i);
        }
        assert!(hb.last_fire.elapsed() < hb.interval);
    }

    #[test]
    fn rate_and_percent_render() {
        let mut hb = Heartbeat::new("explore.states", 1000);
        hb.last_value = 0;
        let line = hb.render_line(250, 12_500.0);
        assert!(line.starts_with("[obs] explore.states 250/1000 (25.0%) 12.5k/s"), "{line}");
        assert!(line.contains(" t="), "{line}");
        let hb = Heartbeat::new("montecarlo.runs", 0);
        let line = hb.render_line(42, 3.0);
        assert!(line.starts_with("[obs] montecarlo.runs 42 3/s"), "{line}");

        assert_eq!(fmt_rate(0.0), "0");
        assert_eq!(fmt_rate(999.4), "999");
        assert_eq!(fmt_rate(1500.0), "1.5k");
        assert_eq!(fmt_rate(2_340_000.0), "2.3M");
        // No time elapsed → no rate spike.
        assert_eq!(rate_per_sec(100, 0.0), 0.0);
        assert_eq!(rate_per_sec(100, 2.0), 50.0);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn rss_is_readable_on_linux() {
        let rss = rss_bytes().expect("statm readable");
        assert!(rss > 0);
    }
}

//! Flight recorder: bounded causal event traces for runs and explorations.
//!
//! Where the sink in [`crate::sink`] aggregates *metrics* (counters, spans,
//! histograms), this module records *causal event streams*: which nodes
//! activated at each step, which routes were adopted or withdrawn, and which
//! messages were sent, delivered, or dropped on which channel — plus
//! phase-level timing events from the state-space explorer. The stream is the
//! raw material for `routelab trace explain` (oscillation-cycle
//! reconstruction) and `routelab trace export-chrome` (Chrome `trace_event`
//! timelines).
//!
//! Design rules mirror the sink:
//!
//! - **Disabled is near-free.** Every recording call starts with one relaxed
//!   atomic load ([`trace_enabled`]); nothing allocates until tracing is
//!   enabled (`--trace` flag or `ROUTELAB_TRACE=1`).
//! - **Recording never perturbs results.** Verdicts, state ids, edges, and
//!   witnesses are bit-identical with tracing on or off (enforced by
//!   `crates/explore/tests/trace_differential.rs`).
//! - **Bounded memory.** Events land in a ring buffer (capacity
//!   `ROUTELAB_TRACE_CAP` lines, default 2¹⁸). On overflow the *oldest*
//!   events are evicted — the tail of a divergent run is what diagnosis
//!   needs — and the evicted count is reported in a `tdrop` marker line.
//! - **Crash-tolerant persistence.** [`flush_trace`] rewrites the whole file
//!   (header, drop marker, ring contents) and is idempotent; it runs from
//!   [`crate::shutdown`] so traces survive `std::process::exit`.
//!
//! Wire format (NDJSON, one object per line, discriminated by `t`):
//!
//! ```text
//! {"t":"tmeta","proc":"routelab","pid":4242,"cap":262144}
//! {"t":"tnote","key":"gadget","value":"FIG6"}
//! {"t":"trun","run":0,"ns":1200,"label":"...","nodes":["d","1","2"],"chans":[[1,0],[2,0]]}
//! {"t":"tstep","run":0,"step":7,"ns":3400,"nodes":[1],"pi":[[1,"ε","(1 0)"]],
//!  "sent":[[0,"(1 0)"]],"dlv":[3],"drop":[2]}
//! {"t":"tend","run":0,"ns":9000,"steps":40,"verdict":"cycle","first_seen":8,
//!  "period":16,"oscillating":true}
//! {"t":"tph","name":"expand","ns":5000,"dur_ns":700,"block":3,"args":{"parents":4096}}
//! {"t":"tctr","name":"frontier.cache.hits","ns":9100,"value":12345}
//! {"t":"tdrop","count":120}
//! ```
//!
//! `ns` is monotonic nanoseconds since the recorder was enabled. `tmeta`,
//! `tnote`, and `trun` lines are *header* lines: they are kept outside the
//! ring so run directories (node names, channel endpoints) survive overflow.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::event::escape_into;

/// Environment variable that enables tracing (`1`/`true`/`yes`/`on`).
pub const TRACE_ENV: &str = "ROUTELAB_TRACE";
/// Environment variable overriding the ring-buffer capacity (in lines).
pub const TRACE_CAP_ENV: &str = "ROUTELAB_TRACE_CAP";
/// Default ring capacity: 2¹⁸ lines (~40 MB worst case at ~150 B/line).
pub const DEFAULT_TRACE_CAP: usize = 1 << 18;

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDER: OnceLock<TraceRecorder> = OnceLock::new();
static NEXT_RUN: AtomicU32 = AtomicU32::new(0);

/// A bounded line buffer: on overflow the oldest line is evicted and counted.
/// Keeping the *newest* events is deliberate — for divergence diagnosis the
/// repeating tail of the run matters, not the prefix.
#[derive(Debug)]
struct EventRing {
    cap: usize,
    dropped: u64,
    buf: VecDeque<String>,
}

impl EventRing {
    fn new(cap: usize) -> Self {
        EventRing { cap: cap.max(1), dropped: 0, buf: VecDeque::new() }
    }

    fn push(&mut self, line: String) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(line);
    }
}

#[derive(Debug)]
struct RecorderState {
    /// Header lines (meta, notes, run directories) — never evicted.
    header: Vec<String>,
    ring: EventRing,
}

/// The process-global flight recorder: a header list plus an [`EventRing`],
/// persisted to one NDJSON file by [`flush_trace`].
#[derive(Debug)]
pub struct TraceRecorder {
    epoch: Instant,
    path: PathBuf,
    state: Mutex<RecorderState>,
}

impl TraceRecorder {
    fn push_header(&self, line: String) {
        self.state.lock().unwrap().header.push(line);
    }

    fn push_event(&self, line: String) {
        self.state.lock().unwrap().ring.push(line);
    }
}

/// Whether trace recording is enabled. One relaxed atomic load; inline so the
/// disabled path costs nothing beyond the branch.
#[inline]
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Monotonic nanoseconds since the recorder was enabled (0 when disabled).
pub fn trace_now_ns() -> u64 {
    match RECORDER.get() {
        Some(r) => r.epoch.elapsed().as_nanos() as u64,
        None => 0,
    }
}

/// The trace file path, when tracing has been enabled.
pub fn trace_path() -> Option<PathBuf> {
    RECORDER.get().map(|r| r.path.clone())
}

fn ring_cap_from_env() -> usize {
    match std::env::var(TRACE_CAP_ENV) {
        Ok(v) => v.trim().parse::<usize>().ok().filter(|&c| c > 0).unwrap_or(DEFAULT_TRACE_CAP),
        Err(_) => DEFAULT_TRACE_CAP,
    }
}

/// Enables trace recording, writing to `<dir>/traces/<proc>-<pid>.trace.ndjson`.
///
/// Like the metrics sink, enabling is one-way per process; a second call is a
/// no-op that returns the already-chosen path. Returns `None` only if the
/// trace directory cannot be created.
pub fn enable_trace_to_dir(dir: &Path, proc_name: &str) -> Option<PathBuf> {
    let traces = dir.join("traces");
    if std::fs::create_dir_all(&traces).is_err() {
        return None;
    }
    let recorder = RECORDER.get_or_init(|| {
        let pid = std::process::id();
        let path = traces.join(format!("{proc_name}-{pid}.trace.ndjson"));
        let cap = ring_cap_from_env();
        let mut header = Vec::new();
        let mut line = String::new();
        line.push_str("{\"t\":\"tmeta\",\"proc\":");
        escape_into(&mut line, proc_name);
        let _ = write!(line, ",\"pid\":{pid},\"cap\":{cap}}}");
        header.push(line);
        TraceRecorder {
            epoch: Instant::now(),
            path,
            state: Mutex::new(RecorderState { header, ring: EventRing::new(cap) }),
        }
    });
    TRACE_ENABLED.store(true, Ordering::SeqCst);
    Some(recorder.path.clone())
}

/// Enables tracing if [`TRACE_ENV`] is set truthy; returns the trace path
/// when enabled. Binaries call this once at startup (the `--trace` flag calls
/// [`enable_trace_to_dir`] directly).
pub fn init_trace_from_env(proc_name: &str) -> Option<PathBuf> {
    match std::env::var(TRACE_ENV) {
        Ok(v) if crate::truthy(&v) => enable_trace_to_dir(&crate::telemetry_dir(), proc_name),
        _ => None,
    }
}

/// Records a free-form header note (e.g. the gadget and model names a CLI
/// invocation is recording). Notes survive ring overflow.
pub fn trace_note(key: &str, value: &str) {
    if !trace_enabled() {
        return;
    }
    let Some(r) = RECORDER.get() else { return };
    let mut line = String::new();
    line.push_str("{\"t\":\"tnote\",\"key\":");
    escape_into(&mut line, key);
    line.push_str(",\"value\":");
    escape_into(&mut line, value);
    line.push('}');
    r.push_header(line);
}

/// Records an explorer phase event (one timed slice of one pipeline phase).
/// `dur_ns` is the slice duration; the event timestamp is "now", so readers
/// recover the start as `ns - dur_ns`.
pub fn trace_phase(name: &str, dur_ns: u64, block: u64, args: &[(&str, u64)]) {
    if !trace_enabled() {
        return;
    }
    let Some(r) = RECORDER.get() else { return };
    let ns = r.epoch.elapsed().as_nanos() as u64;
    let mut line = String::new();
    line.push_str("{\"t\":\"tph\",\"name\":");
    escape_into(&mut line, name);
    let _ = write!(line, ",\"ns\":{ns},\"dur_ns\":{dur_ns},\"block\":{block}");
    if !args.is_empty() {
        line.push_str(",\"args\":{");
        for (i, (k, v)) in args.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            escape_into(&mut line, k);
            let _ = write!(line, ":{v}");
        }
        line.push('}');
    }
    line.push('}');
    r.push_event(line);
}

/// Records a named point-in-time counter value (e.g. a cache hit total at the
/// end of an exploration).
pub fn trace_counter(name: &str, value: u64) {
    if !trace_enabled() {
        return;
    }
    let Some(r) = RECORDER.get() else { return };
    let ns = r.epoch.elapsed().as_nanos() as u64;
    let mut line = String::new();
    line.push_str("{\"t\":\"tctr\",\"name\":");
    escape_into(&mut line, name);
    let _ = write!(line, ",\"ns\":{ns},\"value\":{value}}}");
    r.push_event(line);
}

/// Everything that happened in one activation step, referencing nodes and
/// channels by the indices declared in the run's `trun` directory line.
#[derive(Debug, Default, Clone)]
pub struct StepRecord<'a> {
    /// Indices of the nodes activated this step.
    pub nodes: &'a [u32],
    /// Route adoptions/withdrawals: `(node, old_route, new_route)`.
    pub pi: &'a [(u32, String, String)],
    /// Messages enqueued: `(channel, route)`.
    pub sent: &'a [(u32, String)],
    /// Channels a message was delivered (read and kept) from.
    pub delivered: &'a [u32],
    /// Channels a message was dropped from.
    pub dropped: &'a [u32],
}

/// A handle for recording one run's causal events; created by
/// [`trace_run_begin`], carried by the engine's `Runner`.
#[derive(Debug, Clone, Copy)]
pub struct RunTrace {
    run: u32,
}

/// Begins a new run trace: allocates a run id and writes the run's directory
/// (label, node names, channel endpoints) to the header. Returns `None` when
/// tracing is disabled so callers can store the handle in an `Option`.
///
/// Run ids are allocated from a process-global counter; under a parallel run
/// pool their *numbering* order is scheduling-dependent (the events of each
/// run are still internally ordered and self-consistent — the ids exist only
/// for diagnosis and never feed back into results).
pub fn trace_run_begin(label: &str, nodes: &[&str], chans: &[(u32, u32)]) -> Option<RunTrace> {
    if !trace_enabled() {
        return None;
    }
    let r = RECORDER.get()?;
    let run = NEXT_RUN.fetch_add(1, Ordering::Relaxed);
    let ns = r.epoch.elapsed().as_nanos() as u64;
    let mut line = String::new();
    let _ = write!(line, "{{\"t\":\"trun\",\"run\":{run},\"ns\":{ns},\"label\":");
    escape_into(&mut line, label);
    line.push_str(",\"nodes\":[");
    for (i, name) in nodes.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        escape_into(&mut line, name);
    }
    line.push_str("],\"chans\":[");
    for (i, (from, to)) in chans.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let _ = write!(line, "[{from},{to}]");
    }
    line.push_str("]}");
    r.push_header(line);
    Some(RunTrace { run })
}

impl RunTrace {
    /// This run's id (the `run` field on all of its trace lines).
    pub fn run(&self) -> u32 {
        self.run
    }

    /// Records one step's causal record.
    pub fn step(&self, step: u64, rec: &StepRecord<'_>) {
        if !trace_enabled() {
            return;
        }
        let Some(r) = RECORDER.get() else { return };
        let ns = r.epoch.elapsed().as_nanos() as u64;
        let mut line = String::new();
        let _ = write!(line, "{{\"t\":\"tstep\",\"run\":{},\"step\":{step},\"ns\":{ns}", self.run);
        line.push_str(",\"nodes\":[");
        for (i, v) in rec.nodes.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let _ = write!(line, "{v}");
        }
        line.push(']');
        if !rec.pi.is_empty() {
            line.push_str(",\"pi\":[");
            for (i, (v, old, new)) in rec.pi.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                let _ = write!(line, "[{v},");
                escape_into(&mut line, old);
                line.push(',');
                escape_into(&mut line, new);
                line.push(']');
            }
            line.push(']');
        }
        if !rec.sent.is_empty() {
            line.push_str(",\"sent\":[");
            for (i, (c, route)) in rec.sent.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                let _ = write!(line, "[{c},");
                escape_into(&mut line, route);
                line.push(']');
            }
            line.push(']');
        }
        if !rec.delivered.is_empty() {
            line.push_str(",\"dlv\":[");
            for (i, c) in rec.delivered.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                let _ = write!(line, "{c}");
            }
            line.push(']');
        }
        if !rec.dropped.is_empty() {
            line.push_str(",\"drop\":[");
            for (i, c) in rec.dropped.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                let _ = write!(line, "{c}");
            }
            line.push(']');
        }
        line.push('}');
        r.push_event(line);
    }

    /// Records the run's outcome. `first_seen`/`period`/`oscillating` are
    /// present only for cycle verdicts.
    pub fn end(
        &self,
        verdict: &str,
        steps: u64,
        first_seen: Option<u64>,
        period: Option<u64>,
        oscillating: Option<bool>,
    ) {
        if !trace_enabled() {
            return;
        }
        let Some(r) = RECORDER.get() else { return };
        let ns = r.epoch.elapsed().as_nanos() as u64;
        let mut line = String::new();
        let _ = write!(line, "{{\"t\":\"tend\",\"run\":{},\"ns\":{ns},\"steps\":{steps}", self.run);
        line.push_str(",\"verdict\":");
        escape_into(&mut line, verdict);
        if let Some(f) = first_seen {
            let _ = write!(line, ",\"first_seen\":{f}");
        }
        if let Some(p) = period {
            let _ = write!(line, ",\"period\":{p}");
        }
        if let Some(o) = oscillating {
            let _ = write!(line, ",\"oscillating\":{o}");
        }
        line.push('}');
        r.push_event(line);
    }
}

/// Persists the recorded trace: rewrites the trace file with the header
/// lines, a `tdrop` marker when the ring overflowed, and the ring contents
/// (oldest first). Idempotent — the ring is not cleared — and called from
/// [`crate::shutdown`] so explicit-exit binaries keep their traces.
pub fn flush_trace() {
    let Some(r) = RECORDER.get() else { return };
    let state = r.state.lock().unwrap();
    let mut out = String::new();
    for line in &state.header {
        out.push_str(line);
        out.push('\n');
    }
    if state.ring.dropped > 0 {
        let _ = writeln!(out, "{{\"t\":\"tdrop\",\"count\":{}}}", state.ring.dropped);
    }
    for line in &state.ring.buf {
        out.push_str(line);
        out.push('\n');
    }
    // Write-then-rename would be more atomic, but the file lives in a
    // results directory on one filesystem and a torn tail is tolerated by
    // every reader (`obs summarize` and the trace parser both skip a
    // truncated final line) — plain truncate+write keeps it simple.
    if let Ok(mut f) = std::fs::File::create(&r.path) {
        let _ = f.write_all(out.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{parse_json, JVal};

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut ring = EventRing::new(3);
        for i in 0..5 {
            ring.push(format!("line{i}"));
        }
        assert_eq!(ring.dropped, 2);
        let kept: Vec<&str> = ring.buf.iter().map(|s| s.as_str()).collect();
        assert_eq!(kept, ["line2", "line3", "line4"], "newest lines must survive");
        // Exactly at capacity: nothing dropped.
        let mut ring = EventRing::new(2);
        ring.push("a".into());
        ring.push("b".into());
        assert_eq!(ring.dropped, 0);
        assert_eq!(ring.buf.len(), 2);
        // Degenerate capacity clamps to 1.
        let mut ring = EventRing::new(0);
        ring.push("a".into());
        ring.push("b".into());
        assert_eq!((ring.cap, ring.dropped, ring.buf.len()), (1, 1, 1));
    }

    // Enabling the recorder is one-way per process, so the full
    // enable → record → flush → parse round trip lives in one test.
    #[test]
    fn end_to_end_round_trip() {
        let dir = std::env::temp_dir().join(format!("routelab-trace-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Disabled: everything is a no-op.
        assert!(!trace_enabled());
        assert!(trace_run_begin("early", &["a"], &[]).is_none());
        trace_note("k", "v");
        trace_phase("expand", 10, 0, &[]);
        flush_trace();
        assert!(!dir.exists());

        let path = enable_trace_to_dir(&dir, "unit-test").expect("enable");
        assert!(trace_enabled());
        assert_eq!(enable_trace_to_dir(&dir, "other"), Some(path.clone()));

        trace_note("gadget", "FIG6 \"q\"\n😀");
        let rt = trace_run_begin("demo run", &["d", "n\\1", "π-node"], &[(1, 0), (2, 0), (1, 2)])
            .expect("run begin");
        rt.step(
            0,
            &StepRecord {
                nodes: &[1, 2],
                pi: &[(1, "ε".into(), "(1 0) \u{1}".into())],
                sent: &[(0, "(1 0)".into())],
                delivered: &[2],
                dropped: &[1],
            },
        );
        rt.step(1, &StepRecord::default());
        rt.end("cycle", 2, Some(0), Some(2), Some(true));
        trace_phase("merge", 1234, 7, &[("interned", 42), ("spilled", 0)]);
        trace_counter("frontier.cache.hits", 99);
        flush_trace();
        // Flush twice: idempotent.
        flush_trace();

        let content = std::fs::read_to_string(&path).expect("trace written");
        let lines: Vec<JVal> = content
            .lines()
            .map(|l| parse_json(l).unwrap_or_else(|e| panic!("bad line {l:?}: {e}")))
            .collect();
        let tag = |v: &JVal| v.get("t").and_then(JVal::as_str).unwrap().to_string();
        let tags: Vec<String> = lines.iter().map(&tag).collect();
        // Header lines (meta, note, run directory) come first, then events.
        assert_eq!(tags, ["tmeta", "tnote", "trun", "tstep", "tstep", "tend", "tph", "tctr"]);

        let note = &lines[1];
        assert_eq!(note.get("value").and_then(JVal::as_str), Some("FIG6 \"q\"\n😀"));
        let run = &lines[2];
        let JVal::Arr(nodes) = run.get("nodes").unwrap() else { panic!() };
        assert_eq!(nodes[2].as_str(), Some("π-node"));
        let step = &lines[3];
        let JVal::Arr(pi) = step.get("pi").unwrap() else { panic!() };
        let JVal::Arr(entry) = &pi[0] else { panic!() };
        assert_eq!(entry[1].as_str(), Some("ε"));
        assert_eq!(entry[2].as_str(), Some("(1 0) \u{1}"));
        let end = &lines[5];
        assert_eq!(end.get("verdict").and_then(JVal::as_str), Some("cycle"));
        assert_eq!(end.get("period").and_then(JVal::as_u64), Some(2));
        assert_eq!(end.get("oscillating"), Some(&JVal::Bool(true)));
        let ph = &lines[6];
        assert_eq!(ph.get("args").and_then(|a| a.get("interned")).and_then(JVal::as_u64), Some(42));

        let _ = std::fs::remove_dir_all(&dir);
    }
}

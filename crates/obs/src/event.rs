//! Telemetry events and their NDJSON wire format.
//!
//! One event per line, one JSON object per event. The schema (documented in
//! EXPERIMENTS.md §Telemetry) is deliberately flat so any JSON tool can
//! consume the log; the tag field `t` discriminates:
//!
//! ```text
//! {"t":"meta","proc":"exp-survey","pid":4242,"version":"0.1.0"}
//! {"t":"sb","name":"survey.gadget","ns":1200}
//! {"t":"se","name":"survey.gadget","ns":91200,"dur_ns":90000,"fields":{"gadget":"FIG6"}}
//! {"t":"ctr","name":"engine.steps","ns":91300,"value":5400}
//! {"t":"gauge","name":"explore.states","ns":91400,"value":650000}
//! {"t":"hist","name":"run.steps","count":40,"sum":1000,"max":99,"buckets":{"4":12,"5":28}}
//! ```
//!
//! `ns` is monotonic nanoseconds since the process enabled telemetry;
//! histogram buckets are log₂-scale (`"4"` counts values in `[16, 32)`).
//! The module also contains a small recursive-descent JSON parser so the
//! summarizer (and round-trip tests) can read the log back without any
//! external dependency.

use std::fmt::Write as _;

use crate::hist::LogHistogram;

/// A span/event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldVal {
    /// An unsigned integer.
    U64(u64),
    /// A string.
    Str(String),
}

impl From<u64> for FieldVal {
    fn from(v: u64) -> Self {
        FieldVal::U64(v)
    }
}

impl From<usize> for FieldVal {
    fn from(v: usize) -> Self {
        FieldVal::U64(v as u64)
    }
}

impl From<String> for FieldVal {
    fn from(v: String) -> Self {
        FieldVal::Str(v)
    }
}

impl From<&str> for FieldVal {
    fn from(v: &str) -> Self {
        FieldVal::Str(v.to_string())
    }
}

/// One telemetry event (the write side: names are static strings so the hot
/// path never allocates for them).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Process identification, first line of every log file.
    Meta {
        /// The emitting process (experiment binary name).
        proc: String,
        /// OS process id.
        pid: u32,
    },
    /// A span opened.
    SpanBegin {
        /// Span name.
        name: &'static str,
        /// Monotonic nanos since telemetry start.
        ns: u64,
    },
    /// A span closed.
    SpanEnd {
        /// Span name.
        name: &'static str,
        /// Monotonic nanos (at close).
        ns: u64,
        /// Span duration.
        dur_ns: u64,
        /// Attached fields.
        fields: Vec<(&'static str, FieldVal)>,
    },
    /// A monotonic counter increment (usually a flushed thread-local sum).
    Counter {
        /// Counter name.
        name: &'static str,
        /// Monotonic nanos (at flush).
        ns: u64,
        /// Increment.
        value: u64,
    },
    /// A point-in-time gauge sample.
    Gauge {
        /// Gauge name.
        name: &'static str,
        /// Monotonic nanos.
        ns: u64,
        /// Sampled value.
        value: u64,
    },
    /// A flushed log-scale histogram (partial; the summarizer merges).
    Hist {
        /// Histogram name.
        name: &'static str,
        /// The flushed buckets (boxed: 64 buckets would dominate the enum).
        hist: Box<LogHistogram>,
    },
}

/// Appends `s` to `out` as a quoted JSON string literal. Control characters
/// are `\u`-escaped and non-BMP characters are written as UTF-16 surrogate
/// pairs so the output is consumable by strict ASCII-oriented readers.
pub fn escape_json(out: &mut String, s: &str) {
    escape_into(out, s);
}

pub(crate) fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c if (c as u32) > 0xFFFF => {
                // Non-BMP: JSON \u escapes carry only 16 bits, so emit the
                // UTF-16 surrogate pair rather than the raw code point —
                // keeps the log consumable by readers that choke on astral
                // characters in any byte encoding.
                let mut units = [0u16; 2];
                for u in c.encode_utf16(&mut units) {
                    let _ = write!(out, "\\u{u:04x}");
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Event {
    /// Appends the event's NDJSON line (including the trailing newline).
    pub fn encode(&self, out: &mut String) {
        match self {
            Event::Meta { proc, pid } => {
                out.push_str("{\"t\":\"meta\",\"proc\":");
                escape_into(out, proc);
                let _ = write!(out, ",\"pid\":{pid},\"version\":{:?}}}", env!("CARGO_PKG_VERSION"));
            }
            Event::SpanBegin { name, ns } => {
                out.push_str("{\"t\":\"sb\",\"name\":");
                escape_into(out, name);
                let _ = write!(out, ",\"ns\":{ns}}}");
            }
            Event::SpanEnd { name, ns, dur_ns, fields } => {
                out.push_str("{\"t\":\"se\",\"name\":");
                escape_into(out, name);
                let _ = write!(out, ",\"ns\":{ns},\"dur_ns\":{dur_ns}");
                if !fields.is_empty() {
                    out.push_str(",\"fields\":{");
                    for (i, (k, v)) in fields.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        escape_into(out, k);
                        out.push(':');
                        match v {
                            FieldVal::U64(n) => {
                                let _ = write!(out, "{n}");
                            }
                            FieldVal::Str(s) => escape_into(out, s),
                        }
                    }
                    out.push('}');
                }
                out.push('}');
            }
            Event::Counter { name, ns, value } => {
                out.push_str("{\"t\":\"ctr\",\"name\":");
                escape_into(out, name);
                let _ = write!(out, ",\"ns\":{ns},\"value\":{value}}}");
            }
            Event::Gauge { name, ns, value } => {
                out.push_str("{\"t\":\"gauge\",\"name\":");
                escape_into(out, name);
                let _ = write!(out, ",\"ns\":{ns},\"value\":{value}}}");
            }
            Event::Hist { name, hist } => {
                out.push_str("{\"t\":\"hist\",\"name\":");
                escape_into(out, name);
                let _ = write!(
                    out,
                    ",\"count\":{},\"sum\":{},\"max\":{},\"buckets\":{{",
                    hist.count, hist.sum, hist.max
                );
                for (i, (bucket, n)) in hist.nonzero_buckets().into_iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{bucket}\":{n}");
                }
                out.push_str("}}");
            }
        }
        out.push('\n');
    }
}

/// A parsed JSON value (the read side of the NDJSON log).
#[derive(Debug, Clone, PartialEq)]
pub enum JVal {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (ints up to 2⁵³ round-trip exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JVal>),
    /// An object with keys in document order.
    Obj(Vec<(String, JVal)>),
}

impl JVal {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&JVal> {
        match self {
            JVal::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JVal::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a u64 (floors; `None` for negatives and non-numbers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JVal::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// A JSON parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub what: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &'static str) -> ParseError {
        ParseError { at: self.pos, what }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8, what: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn value(&mut self) -> Result<JVal, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JVal::Str(self.string()?)),
            Some(b't') => self.literal("true", JVal::Bool(true)),
            Some(b'f') => self.literal("false", JVal::Bool(false)),
            Some(b'n') => self.literal("null", JVal::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, text: &'static str, val: JVal) -> Result<JVal, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(val)
        } else {
            Err(self.err("malformed literal"))
        }
    }

    fn number(&mut self) -> Result<JVal, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(JVal::Num)
            .ok_or_else(|| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\', "expected low surrogate")?;
                                self.expect(b'u', "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JVal, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JVal::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JVal::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JVal, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JVal::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JVal::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("malformed \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("malformed \\u escape"))?;
        self.pos = end;
        Ok(v)
    }
}

/// Parses one complete JSON document (trailing whitespace allowed).
pub fn parse_json(s: &str) -> Result<JVal, ParseError> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(parse_json("null").unwrap(), JVal::Null);
        assert_eq!(parse_json("true").unwrap(), JVal::Bool(true));
        assert_eq!(parse_json(" false ").unwrap(), JVal::Bool(false));
        assert_eq!(parse_json("42").unwrap(), JVal::Num(42.0));
        assert_eq!(parse_json("-1.5e2").unwrap(), JVal::Num(-150.0));
        assert_eq!(parse_json("\"hi\"").unwrap(), JVal::Str("hi".into()));
    }

    #[test]
    fn parse_structures() {
        let v = parse_json(r#"{"a":[1,2,{"b":null}],"c":"d"}"#).unwrap();
        assert_eq!(v.get("c").and_then(JVal::as_str), Some("d"));
        let JVal::Arr(items) = v.get("a").unwrap() else { panic!("{v:?}") };
        assert_eq!(items.len(), 3);
        assert_eq!(items[2].get("b"), Some(&JVal::Null));
        assert_eq!(parse_json("[]").unwrap(), JVal::Arr(vec![]));
        assert_eq!(parse_json("{}").unwrap(), JVal::Obj(vec![]));
    }

    #[test]
    fn parse_escapes_and_unicode() {
        let v = parse_json(r#""a\"b\\c\nd\u0041\u00e9é""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAéé"));
        // Surrogate pair for 😀 (U+1F600).
        let v = parse_json(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "nulL", "1 2", "\"\\ud83d\""] {
            assert!(parse_json(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn events_encode_to_one_line_each() {
        let mut hist = LogHistogram::default();
        hist.record(3);
        hist.record(300);
        let events = vec![
            Event::Meta { proc: "unit \"test\"".into(), pid: 7 },
            Event::SpanBegin { name: "a", ns: 1 },
            Event::SpanEnd {
                name: "a",
                ns: 5,
                dur_ns: 4,
                fields: vec![("model", "RMS".into()), ("states", 12u64.into())],
            },
            Event::Counter { name: "c", ns: 6, value: 9 },
            Event::Gauge { name: "g", ns: 7, value: 10 },
            Event::Hist { name: "h", hist: Box::new(hist) },
        ];
        let mut out = String::new();
        for e in &events {
            e.encode(&mut out);
        }
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), events.len());
        for line in lines {
            parse_json(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        assert!(out.contains(r#""fields":{"model":"RMS","states":12}"#), "{out}");
        assert!(out.contains(r#""buckets":{"1":1,"8":1}"#), "{out}");
    }

    #[test]
    fn astral_plane_strings_round_trip_as_surrogate_pairs() {
        // Every non-BMP character must be written as a \uXXXX\uXXXX
        // surrogate pair (never raw), and parse back to the original
        // string. BMP characters stay raw.
        for s in ["😀", "a😀b", "𝔸𝕊ℂ", "🜁🜂🜃🜄", "paired \u{1F600}\u{1F680} twice", "é😀é"]
        {
            let mut out = String::new();
            Event::Meta { proc: s.into(), pid: 1 }.encode(&mut out);
            assert!(
                out.is_ascii() || s.chars().any(|c| (c as u32) <= 0xFFFF && !c.is_ascii()),
                "{s:?}: only BMP characters may appear unescaped, got {out:?}"
            );
            assert!(
                s.chars().all(|c| (c as u32) <= 0xFFFF)
                    || out.contains("\\ud8")
                    || out.contains("\\ud9")
                    || out.contains("\\uda")
                    || out.contains("\\udb"),
                "{s:?}: expected a high surrogate escape in {out:?}"
            );
            let line = out.lines().next().unwrap();
            let v = parse_json(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(v.get("proc").and_then(JVal::as_str), Some(s), "{out:?}");
        }
        // Spot-check the exact encoding of U+1F600.
        let mut out = String::new();
        Event::SpanEnd { name: "s", ns: 1, dur_ns: 1, fields: vec![("emoji", "😀".into())] }
            .encode(&mut out);
        assert!(out.contains(r#""emoji":"\ud83d\ude00""#), "{out:?}");
        assert!(!out.contains('😀'), "{out:?}");
    }

    #[test]
    fn ndjson_writer_parser_round_trip() {
        // Encode one of each event kind — with hostile strings — and read
        // every value back through the crate's own parser.
        let mut hist = LogHistogram::default();
        hist.record(1);
        hist.record(1024);
        let mut out = String::new();
        Event::Meta { proc: "exp \"q\"\n\\π\u{1}".into(), pid: 42 }.encode(&mut out);
        Event::SpanEnd {
            name: "survey.gadget",
            ns: 100,
            dur_ns: 25,
            fields: vec![("gadget", "BAD-GADGET \u{1f600}".into()), ("budget", 500u64.into())],
        }
        .encode(&mut out);
        Event::Counter { name: "engine.steps", ns: 101, value: 456 }.encode(&mut out);
        Event::Hist { name: "h", hist: Box::new(hist) }.encode(&mut out);

        let lines: Vec<JVal> =
            out.lines().map(|l| parse_json(l).expect("each line parses")).collect();
        assert_eq!(lines.len(), 4);

        assert_eq!(lines[0].get("t").and_then(JVal::as_str), Some("meta"));
        assert_eq!(lines[0].get("proc").and_then(JVal::as_str), Some("exp \"q\"\n\\π\u{1}"));
        assert_eq!(lines[0].get("pid").and_then(JVal::as_u64), Some(42));

        assert_eq!(lines[1].get("t").and_then(JVal::as_str), Some("se"));
        assert_eq!(lines[1].get("dur_ns").and_then(JVal::as_u64), Some(25));
        let fields = lines[1].get("fields").expect("fields object");
        assert_eq!(fields.get("gadget").and_then(JVal::as_str), Some("BAD-GADGET \u{1f600}"));
        assert_eq!(fields.get("budget").and_then(JVal::as_u64), Some(500));

        assert_eq!(lines[2].get("value").and_then(JVal::as_u64), Some(456));

        assert_eq!(lines[3].get("count").and_then(JVal::as_u64), Some(2));
        assert_eq!(lines[3].get("sum").and_then(JVal::as_u64), Some(1025));
        assert_eq!(lines[3].get("max").and_then(JVal::as_u64), Some(1024));
        let buckets = lines[3].get("buckets").expect("buckets object");
        assert_eq!(buckets.get("0").and_then(JVal::as_u64), Some(1));
        assert_eq!(buckets.get("10").and_then(JVal::as_u64), Some(1));
    }
}

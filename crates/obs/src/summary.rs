//! Aggregation of NDJSON telemetry logs into a summary.
//!
//! `summarize_dir` reads every `*.ndjson` file in a directory, merges span
//! durations into per-name log histograms (p50/p95/max), sums counters,
//! keeps last/max of gauges, and merges partial histograms. The result
//! renders as a human table (`render_table`) or a JSON document
//! (`to_json_string`) — this is what `routelab obs summarize` prints.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use crate::event::{parse_json, JVal};
use crate::hist::LogHistogram;

/// Aggregated counter state.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CounterSummary {
    /// Sum of all increments.
    pub total: u64,
    /// Number of increment events.
    pub events: u64,
}

/// Aggregated gauge state.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct GaugeSummary {
    /// Value of the latest (by `ns`) sample.
    pub last: u64,
    /// Largest sample.
    pub max: u64,
    /// Number of samples.
    pub samples: u64,
    /// `ns` of the latest sample (for the last-wins merge).
    pub last_ns: u64,
}

/// The aggregate of one telemetry directory.
#[derive(Debug, Default, Clone)]
pub struct Summary {
    /// Processes that contributed (`proc (pid)` strings from meta lines).
    pub procs: Vec<String>,
    /// Span-duration distributions by span name (nanoseconds).
    pub spans: BTreeMap<String, LogHistogram>,
    /// Counters by name.
    pub counters: BTreeMap<String, CounterSummary>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, GaugeSummary>,
    /// Explicit histograms by name (merged partials).
    pub hists: BTreeMap<String, LogHistogram>,
    /// NDJSON files read.
    pub files: usize,
    /// Total event lines parsed.
    pub events: u64,
    /// Lines that failed to parse or had an unknown shape.
    pub malformed: u64,
    /// Final lines without a trailing newline that failed to parse — the
    /// signature of a writer killed mid-append. Tolerated, not malformed.
    pub truncated: u64,
}

fn field_u64(v: &JVal, key: &str) -> Option<u64> {
    v.get(key).and_then(JVal::as_u64)
}

impl Summary {
    fn ingest_line(&mut self, line: &str) {
        let Ok(v) = parse_json(line) else {
            self.malformed += 1;
            return;
        };
        let tag = v.get("t").and_then(JVal::as_str).unwrap_or("");
        let name = v.get("name").and_then(JVal::as_str).unwrap_or("");
        let ok = match tag {
            "meta" => {
                if let (Some(proc), Some(pid)) =
                    (v.get("proc").and_then(JVal::as_str), field_u64(&v, "pid"))
                {
                    self.procs.push(format!("{proc} ({pid})"));
                    true
                } else {
                    false
                }
            }
            // Span begins carry no data the summary needs; ends do.
            "sb" => !name.is_empty(),
            "se" => match (name, field_u64(&v, "dur_ns")) {
                ("", _) | (_, None) => false,
                (name, Some(dur)) => {
                    self.spans.entry(name.to_string()).or_default().record(dur);
                    true
                }
            },
            "ctr" => match (name, field_u64(&v, "value")) {
                ("", _) | (_, None) => false,
                (name, Some(value)) => {
                    let c = self.counters.entry(name.to_string()).or_default();
                    c.total += value;
                    c.events += 1;
                    true
                }
            },
            "gauge" => match (name, field_u64(&v, "value")) {
                ("", _) | (_, None) => false,
                (name, Some(value)) => {
                    let ns = field_u64(&v, "ns").unwrap_or(0);
                    let g = self.gauges.entry(name.to_string()).or_default();
                    if g.samples == 0 || ns >= g.last_ns {
                        g.last = value;
                        g.last_ns = ns;
                    }
                    g.max = g.max.max(value);
                    g.samples += 1;
                    true
                }
            },
            "hist" => {
                let buckets = v.get("buckets");
                match (name, field_u64(&v, "count"), buckets) {
                    (name, Some(count), Some(JVal::Obj(pairs))) if !name.is_empty() => {
                        let mut part = LogHistogram::default();
                        for (k, n) in pairs {
                            if let (Ok(i), Some(n)) = (k.parse::<usize>(), n.as_u64()) {
                                if i < part.buckets.len() {
                                    part.buckets[i] = n;
                                }
                            }
                        }
                        part.count = count;
                        part.sum = field_u64(&v, "sum").unwrap_or(0);
                        part.max = field_u64(&v, "max").unwrap_or(0);
                        self.hists.entry(name.to_string()).or_default().merge(&part);
                        true
                    }
                    _ => false,
                }
            }
            _ => false,
        };
        if ok {
            self.events += 1;
        } else {
            self.malformed += 1;
        }
    }

    /// Renders the human-readable table (spans first — the phase-latency
    /// view — then counters, gauges, and histograms).
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "telemetry: {} file(s), {} event(s), {} malformed line(s)",
            self.files, self.events, self.malformed
        );
        if self.truncated > 0 {
            let _ = write!(out, ", {} truncated tail line(s) skipped", self.truncated);
        }
        out.push('\n');
        for p in &self.procs {
            let _ = writeln!(out, "  proc: {p}");
        }
        if !self.spans.is_empty() {
            let _ = writeln!(
                out,
                "\n{:<34} {:>8} {:>10} {:>10} {:>10}",
                "span", "count", "p50", "p95", "max"
            );
            for (name, h) in &self.spans {
                let _ = writeln!(
                    out,
                    "{:<34} {:>8} {:>10} {:>10} {:>10}",
                    name,
                    h.count,
                    fmt_ns(h.quantile(0.5)),
                    fmt_ns(h.quantile(0.95)),
                    fmt_ns(h.max)
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "\n{:<34} {:>14}", "counter", "total");
            for (name, c) in &self.counters {
                let _ = writeln!(out, "{:<34} {:>14}", name, c.total);
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "\n{:<34} {:>14} {:>14}", "gauge", "last", "max");
            for (name, g) in &self.gauges {
                let _ = writeln!(out, "{:<34} {:>14} {:>14}", name, g.last, g.max);
            }
        }
        if !self.hists.is_empty() {
            let _ = writeln!(
                out,
                "\n{:<34} {:>8} {:>10} {:>10} {:>10} {:>10}",
                "histogram", "count", "mean", "p50", "p95", "max"
            );
            for (name, h) in &self.hists {
                let _ = writeln!(
                    out,
                    "{:<34} {:>8} {:>10.1} {:>10} {:>10} {:>10}",
                    name,
                    h.count,
                    h.mean(),
                    h.quantile(0.5),
                    h.quantile(0.95),
                    h.max
                );
            }
        }
        out
    }

    /// Renders the machine-readable JSON summary.
    pub fn to_json_string(&self) -> String {
        use std::fmt::Write as _;
        fn esc(s: &str) -> String {
            let mut out = String::new();
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out
        }
        let mut out = String::from("{\n");
        let _ = write!(
            out,
            "  \"files\": {},\n  \"events\": {},\n  \"malformed\": {},\n  \"truncated\": {},\n",
            self.files, self.events, self.malformed, self.truncated
        );
        let _ = write!(out, "  \"procs\": [");
        for (i, p) in self.procs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\"", esc(p));
        }
        out.push_str("],\n  \"spans\": {");
        for (i, (name, h)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"max_ns\": {}, \"total_ns\": {}}}",
                esc(name),
                h.count,
                h.quantile(0.5),
                h.quantile(0.95),
                h.max,
                h.sum
            );
        }
        out.push_str("\n  },\n  \"counters\": {");
        for (i, (name, c)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {}", esc(name), c.total);
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, g)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    \"{}\": {{\"last\": {}, \"max\": {}}}",
                esc(name),
                g.last,
                g.max
            );
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"mean\": {:.3}, \"p50\": {}, \"p95\": {}, \"max\": {}, \"sum\": {}}}",
                esc(name),
                h.count,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.95),
                h.max,
                h.sum
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Ingests one file's content. A final line without a trailing newline that
/// also fails to parse is counted as a truncated tail (a writer killed
/// mid-append), not as malformed — the rest of the file still aggregates.
fn ingest_content(summary: &mut Summary, content: &str) {
    let mut lines = content.lines();
    let tail = if content.is_empty() || content.ends_with('\n') { None } else { lines.next_back() };
    for line in lines {
        if !line.trim().is_empty() {
            summary.ingest_line(line);
        }
    }
    if let Some(tail) = tail {
        if tail.trim().is_empty() {
        } else if parse_json(tail).is_ok() {
            summary.ingest_line(tail);
        } else {
            summary.truncated += 1;
        }
    }
}

/// Summarizes a single NDJSON string (one line per event).
pub fn summarize_str(content: &str) -> Summary {
    let mut s = Summary::default();
    ingest_content(&mut s, content);
    s
}

/// Summarizes every `*.ndjson` file under `dir` (sorted order, so output is
/// stable). Errors only if the directory itself cannot be read.
pub fn summarize_dir(dir: &Path) -> std::io::Result<Summary> {
    let mut paths: Vec<_> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "ndjson"))
        .collect();
    paths.sort();
    let mut summary = Summary::default();
    for path in paths {
        let Ok(content) = fs::read_to_string(&path) else { continue };
        summary.files += 1;
        ingest_content(&mut summary, &content);
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{"t":"meta","proc":"exp-test","pid":42,"version":"0.1.0"}
{"t":"sb","name":"phase.a","ns":100}
{"t":"se","name":"phase.a","ns":1100,"dur_ns":1000}
{"t":"se","name":"phase.a","ns":5000,"dur_ns":3000,"fields":{"k":"v"}}
{"t":"ctr","name":"engine.steps","ns":5100,"value":250}
{"t":"ctr","name":"engine.steps","ns":5200,"value":50}
{"t":"gauge","name":"explore.states","ns":5300,"value":10}
{"t":"gauge","name":"explore.states","ns":5400,"value":7}
{"t":"hist","name":"run.steps","count":2,"sum":40,"max":32,"buckets":{"3":1,"5":1}}
{"t":"hist","name":"run.steps","count":1,"sum":4,"max":4,"buckets":{"2":1}}
not json at all
"#;

    #[test]
    fn aggregates_all_event_kinds() {
        let s = summarize_str(SAMPLE);
        assert_eq!(s.procs, vec!["exp-test (42)"]);
        assert_eq!(s.events, 10);
        assert_eq!(s.malformed, 1);
        let span = &s.spans["phase.a"];
        assert_eq!(span.count, 2);
        assert_eq!(span.max, 3000);
        assert_eq!(s.counters["engine.steps"].total, 300);
        let g = &s.gauges["explore.states"];
        assert_eq!((g.last, g.max), (7, 10));
        let h = &s.hists["run.steps"];
        assert_eq!((h.count, h.sum, h.max), (3, 44, 32));
        assert_eq!(h.nonzero_buckets(), vec![(2, 1), (3, 1), (5, 1)]);
    }

    #[test]
    fn truncated_tail_is_tolerated_not_malformed() {
        // A writer killed mid-append leaves a final line with no newline
        // that is not valid JSON; everything before it must still count.
        let cut = r#"{"t":"ctr","name":"engine.steps","ns":1,"value":9}
{"t":"ctr","name":"engine.steps","ns":2,"val"#;
        let s = summarize_str(cut);
        assert_eq!(s.counters["engine.steps"].total, 9);
        assert_eq!((s.events, s.malformed, s.truncated), (1, 0, 1));
        let table = s.render_table();
        assert!(table.contains("1 truncated tail line(s) skipped"), "{table}");
        let v = crate::event::parse_json(&s.to_json_string()).unwrap();
        assert_eq!(v.get("truncated").and_then(|n| n.as_u64()), Some(1));

        // A final line that is complete JSON but merely missing its newline
        // still aggregates normally.
        let fine = "{\"t\":\"ctr\",\"name\":\"c\",\"ns\":1,\"value\":2}";
        let s = summarize_str(fine);
        assert_eq!((s.events, s.malformed, s.truncated), (1, 0, 0));
        assert_eq!(s.counters["c"].total, 2);

        // A *complete* garbage line (newline-terminated) stays malformed.
        let s = summarize_str("garbage\n");
        assert_eq!((s.events, s.malformed, s.truncated), (0, 1, 0));
    }

    #[test]
    fn renders_table_and_json() {
        let s = summarize_str(SAMPLE);
        let table = s.render_table();
        assert!(table.contains("phase.a"), "{table}");
        assert!(table.contains("engine.steps"), "{table}");
        let json = s.to_json_string();
        let v = crate::event::parse_json(&json).expect("summary JSON parses");
        assert_eq!(
            v.get("counters").and_then(|c| c.get("engine.steps")).and_then(|n| n.as_u64()),
            Some(300)
        );
        assert_eq!(
            v.get("spans")
                .and_then(|s| s.get("phase.a"))
                .and_then(|s| s.get("count"))
                .and_then(|n| n.as_u64()),
            Some(2)
        );
    }
}

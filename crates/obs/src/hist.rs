//! Log-scale (power-of-two bucket) histograms.
//!
//! Bucket `i` counts values `v` with `floor(log2(max(v, 1))) == i`, i.e.
//! `v ∈ [2^i, 2^(i+1))` (bucket 0 also holds 0). 64 buckets cover the full
//! `u64` range, recording is two instructions plus an increment, and merging
//! partial histograms from many threads is element-wise addition — exactly
//! what the telemetry sink needs for convergence-step and queue-depth
//! distributions without storing every sample.

/// Number of buckets (one per possible `log2` of a `u64`).
pub const BUCKETS: usize = 64;

/// A fixed-size log₂-bucket histogram.
#[derive(Clone, PartialEq, Eq)]
pub struct LogHistogram {
    /// Per-bucket sample counts.
    pub buckets: [u64; BUCKETS],
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram { buckets: [0; BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("max", &self.max)
            .field("buckets", &self.nonzero_buckets())
            .finish()
    }
}

/// The bucket index a value lands in.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    63 - v.max(1).leading_zeros() as usize
}

impl LogHistogram {
    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Whether any sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Element-wise merge of another (typically per-thread partial) histogram.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The non-empty `(bucket_index, count)` pairs in ascending bucket order.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets.iter().enumerate().filter(|(_, &n)| n > 0).map(|(i, &n)| (i, n)).collect()
    }

    /// An upper-bound estimate of the `q`-quantile (`q` in `[0, 1]`).
    ///
    /// Walks buckets until the cumulative count reaches `ceil(q * count)` and
    /// returns that bucket's upper bound (clamped to `max`). Within a factor
    /// of 2 of the true quantile, which is all a log histogram can promise.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let upper = if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn record_and_stats() {
        let mut h = LogHistogram::default();
        for v in [0, 1, 5, 5, 100] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 111);
        assert_eq!(h.max, 100);
        assert_eq!(h.nonzero_buckets(), vec![(0, 2), (2, 2), (6, 1)]);
    }

    #[test]
    fn merge_is_elementwise() {
        let mut a = LogHistogram::default();
        let mut b = LogHistogram::default();
        a.record(10);
        b.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 1020);
        assert_eq!(a.max, 1000);
        assert_eq!(a.nonzero_buckets(), vec![(3, 2), (9, 1)]);
    }

    #[test]
    fn quantiles_bound_true_values() {
        let mut h = LogHistogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // p50 of 1..=1000 is 500; bucket upper bound for 500 is 511.
        assert_eq!(h.quantile(0.5), 511);
        // p100 clamps to the recorded max.
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(LogHistogram::default().quantile(0.5), 0);
        let mut one = LogHistogram::default();
        one.record(7);
        assert_eq!(one.quantile(0.0), 7);
        assert_eq!(one.quantile(1.0), 7);
    }
}

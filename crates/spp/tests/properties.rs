//! Property tests for the SPP substrate.

use proptest::prelude::*;
use routelab_spp::dispute::{digraph_is_acyclic, dispute_digraph, find_dispute_wheel};
use routelab_spp::format;
use routelab_spp::generator::{
    enumerate_simple_paths, gao_rexford_instance, random_connected_graph, random_instance,
    shortest_path_instance, RandomSppConfig,
};
use routelab_spp::solve::{enumerate_stable_assignments, is_consistent, is_stable};
use routelab_spp::{NodeId, Path, Route, RouteId, RouteTable, SppInstance, NO_CANDIDATE};

fn arb_instance() -> impl Strategy<Value = SppInstance> {
    (2usize..9, 0usize..6, 0u64..5_000).prop_map(|(nodes, extra, seed)| {
        random_instance(&RandomSppConfig {
            nodes,
            extra_edges: extra,
            max_paths_per_node: 4,
            max_path_len: 5,
            seed,
        })
        .expect("generator output validates")
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn text_format_round_trips(inst in arb_instance()) {
        let text = format::to_text(&inst);
        let back = format::from_text(&text).expect("serialized instances parse");
        prop_assert_eq!(inst, back);
    }

    #[test]
    fn digraph_acyclicity_implies_freedom_from_single_hop_wheels(inst in arb_instance()) {
        // The single-hop dispute digraph only models rims of the form v·Q
        // (one hop onto the next spoke); its acyclicity therefore rules out
        // exactly those wheels. Wheels with longer rims (whose interior
        // extensions need not be permitted anywhere) are invisible to it —
        // the exact detector `find_dispute_wheel` decides those.
        if digraph_is_acyclic(&dispute_digraph(&inst)) {
            if let Some(wheel) = find_dispute_wheel(&inst) {
                prop_assert!(
                    wheel
                        .pivots
                        .iter()
                        .enumerate()
                        .any(|(i, p)| {
                            let next = &wheel.pivots[(i + 1) % wheel.pivots.len()];
                            p.rim.len() > next.spoke.len() + 1
                        }),
                    "acyclic digraph must not miss a single-hop wheel: {}",
                    wheel.display(&inst)
                );
            }
        }
    }

    #[test]
    fn found_wheels_verify(inst in arb_instance()) {
        if let Some(wheel) = find_dispute_wheel(&inst) {
            prop_assert!(wheel.verify(&inst));
        }
    }

    #[test]
    fn solutions_are_stable_and_consistent(inst in arb_instance()) {
        if let Ok(solutions) = enumerate_stable_assignments(&inst, 500_000) {
            for pi in &solutions {
                prop_assert!(is_consistent(&inst, pi));
                prop_assert!(is_stable(&inst, pi));
            }
            // Wheel-free instances are solvable (Griffin–Shepherd–Wilfong).
            if find_dispute_wheel(&inst).is_none() {
                prop_assert!(!solutions.is_empty());
            }
        }
    }

    #[test]
    fn simple_path_enumeration_yields_valid_simple_paths(
        n in 2usize..10,
        extra in 0usize..8,
        seed in 0u64..1_000,
    ) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let g = random_connected_graph(n, extra, &mut rng);
        let from = NodeId((n as u32).saturating_sub(1));
        let paths = enumerate_simple_paths(&g, from, NodeId(0), 6, 200);
        prop_assert!(!paths.is_empty(), "connected graphs always have a path");
        for p in &paths {
            prop_assert_eq!(p.source(), from);
            prop_assert_eq!(p.dest(), NodeId(0));
            for w in p.as_slice().windows(2) {
                prop_assert!(g.has_edge(w[0], w[1]));
            }
        }
        // Deterministic and duplicate-free.
        let again = enumerate_simple_paths(&g, from, NodeId(0), 6, 200);
        prop_assert_eq!(&paths, &again);
        let mut dedup = paths.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), paths.len());
    }

    #[test]
    fn shortest_path_policies_are_wheel_free(
        n in 2usize..9,
        extra in 0usize..6,
        seed in 0u64..1_000,
    ) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let g = random_connected_graph(n, extra, &mut rng);
        let inst = shortest_path_instance(g, NodeId(0), 5, 6).expect("valid instance");
        prop_assert!(find_dispute_wheel(&inst).is_none());
    }

    #[test]
    fn gao_rexford_policies_are_wheel_free(n in 2usize..12, seed in 0u64..300) {
        let inst = gao_rexford_instance(n, seed, 6, 5).expect("valid instance");
        prop_assert!(inst.validate().is_ok());
        prop_assert!(find_dispute_wheel(&inst).is_none());
    }

    #[test]
    fn route_table_intern_round_trips(inst in arb_instance()) {
        let t = RouteTable::new(&inst);
        prop_assert!(t.route(RouteId::EPSILON).is_epsilon());
        let mut total = 1;
        for v in inst.nodes() {
            let perms = inst.permitted(v);
            prop_assert_eq!(t.route_count(v), perms.len());
            total += perms.len();
            for (pos, rp) in perms.iter().enumerate() {
                let id = t.route_id(v, pos as u32);
                // Decode then re-intern is the identity.
                prop_assert_eq!(t.route(id).as_path(), Some(&rp.path));
                prop_assert_eq!(t.intern_path(&rp.path), Some(id));
                prop_assert_eq!(t.intern_route(t.route(id)), Some(id));
                // Array position is preference position.
                prop_assert_eq!(inst.preference_position(v, &rp.path), Some(pos as u32));
            }
        }
        prop_assert_eq!(t.len(), total);
    }

    #[test]
    fn route_table_extension_agrees_with_naive_candidate(inst in arb_instance()) {
        let t = RouteTable::new(&inst);
        for (cid, ch) in inst.graph().channels().enumerate() {
            let (u, v) = (ch.from, ch.to);
            prop_assert_eq!(t.candidate_pos(cid, RouteId::EPSILON), NO_CANDIDATE);
            for (pos, rp) in inst.permitted(u).iter().enumerate() {
                let learned = Route::path(rp.path.clone());
                let fast = t.candidate_pos(cid, t.route_id(u, pos as u32));
                match inst.candidate(v, &learned) {
                    None => prop_assert_eq!(fast, NO_CANDIDATE),
                    Some((ext, rank)) => {
                        prop_assert_eq!(t.route(t.decide(v, fast)).as_path(), Some(&ext));
                        prop_assert_eq!(inst.rank(v, &ext), Some(rank));
                    }
                }
            }
        }
    }

    #[test]
    fn route_table_min_position_matches_choose_best(
        inst in arb_instance(),
        picks in proptest::collection::vec(0usize..64, 16),
    ) {
        // Random learned-route configurations per node: the min over
        // precomputed extension positions must reproduce choose_best.
        let t = RouteTable::new(&inst);
        let channels = inst.channels();
        for v in inst.nodes() {
            let ins: Vec<usize> = (0..channels.len()).filter(|&c| channels[c].to == v).collect();
            let learned: Vec<RouteId> = ins
                .iter()
                .enumerate()
                .map(|(k, &c)| {
                    let u = channels[c].from;
                    let n = t.route_count(u);
                    // pick 0 = ε, 1..=n = u's routes by preference position.
                    match picks[(k + c) % picks.len()] % (n + 1) {
                        0 => RouteId::EPSILON,
                        p => t.route_id(u, (p - 1) as u32),
                    }
                })
                .collect();
            let interned = if v == t.dest() {
                t.dest_choice()
            } else {
                let mut best = NO_CANDIDATE;
                for (k, &c) in ins.iter().enumerate() {
                    best = best.min(t.candidate_pos(c, learned[k]));
                }
                t.decide(v, best)
            };
            let routes: Vec<Route> = learned.iter().map(|&id| t.route(id).clone()).collect();
            prop_assert_eq!(t.route(interned), &inst.choose_best(v, routes.iter()));
        }
    }

    #[test]
    fn path_prepend_then_suffix_is_identity(ids in proptest::collection::vec(0u32..30, 1..6)) {
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        prop_assume!(dedup.len() == ids.len());
        let p = Path::from_ids(ids.iter().copied()).expect("distinct ids form a simple path");
        let v = 99u32;
        let q = p.prepend(NodeId(v)).expect("99 not on the path");
        prop_assert_eq!(q.suffix(1), p.clone());
        prop_assert!(q.has_suffix(&p));
        prop_assert_eq!(q.len(), p.len() + 1);
    }
}

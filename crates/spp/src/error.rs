//! Error type for the SPP substrate.

use std::error::Error;
use std::fmt;

use crate::graph::NodeId;

/// Errors produced while constructing or validating SPP artifacts.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SppError {
    /// A path was constructed from an empty node sequence.
    EmptyPath,
    /// A path repeats a node and is therefore not simple.
    PathNotSimple { repeated: NodeId },
    /// A path uses an edge absent from the instance graph.
    MissingEdge { from: NodeId, to: NodeId },
    /// A path does not terminate at the instance destination.
    WrongDestination { path_dest: NodeId, expected: NodeId },
    /// A permitted path is registered at a node other than its source.
    WrongSource { path_source: NodeId, expected: NodeId },
    /// A node id is out of range for the graph.
    UnknownNode { node: NodeId, node_count: usize },
    /// A node name was not found while parsing or building.
    UnknownName { name: String },
    /// Two permitted paths at the same node with *different* next hops share a
    /// rank, which Sec. 2.1 forbids.
    RankTie { node: NodeId, rank: u32 },
    /// The same path was registered twice at a node.
    DuplicatePath { node: NodeId },
    /// The destination node must not have non-trivial permitted paths.
    DestinationPaths,
    /// An edge endpoint equals the other endpoint (self loop).
    SelfLoop { node: NodeId },
    /// Search exceeded the configured work budget.
    BudgetExceeded { budget: u64 },
    /// Parse failure for the text instance format.
    Parse { line: usize, message: String },
    /// The graph is not connected to the destination, so some node can never
    /// learn any route. (Only reported by validation helpers that demand it.)
    Disconnected { node: NodeId },
}

impl fmt::Display for SppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SppError::EmptyPath => write!(f, "path has no nodes"),
            SppError::PathNotSimple { repeated } => {
                write!(f, "path repeats node {repeated}")
            }
            SppError::MissingEdge { from, to } => {
                write!(f, "path uses missing edge {from}-{to}")
            }
            SppError::WrongDestination { path_dest, expected } => {
                write!(f, "path ends at {path_dest} but the instance destination is {expected}")
            }
            SppError::WrongSource { path_source, expected } => {
                write!(f, "path starts at {path_source} but was registered at {expected}")
            }
            SppError::UnknownNode { node, node_count } => {
                write!(f, "node {node} out of range for a graph with {node_count} nodes")
            }
            SppError::UnknownName { name } => write!(f, "unknown node name {name:?}"),
            SppError::RankTie { node, rank } => write!(
                f,
                "two permitted paths at node {node} with different next hops share rank {rank}"
            ),
            SppError::DuplicatePath { node } => {
                write!(f, "duplicate permitted path at node {node}")
            }
            SppError::DestinationPaths => {
                write!(f, "the destination only permits its trivial path")
            }
            SppError::SelfLoop { node } => write!(f, "self loop at node {node}"),
            SppError::BudgetExceeded { budget } => {
                write!(f, "search budget of {budget} steps exceeded")
            }
            SppError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            SppError::Disconnected { node } => {
                write!(f, "node {node} cannot reach the destination")
            }
        }
    }
}

impl Error for SppError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            SppError::EmptyPath,
            SppError::PathNotSimple { repeated: NodeId(3) },
            SppError::MissingEdge { from: NodeId(0), to: NodeId(1) },
            SppError::WrongDestination { path_dest: NodeId(1), expected: NodeId(0) },
            SppError::WrongSource { path_source: NodeId(1), expected: NodeId(2) },
            SppError::UnknownNode { node: NodeId(9), node_count: 3 },
            SppError::UnknownName { name: "zz".into() },
            SppError::RankTie { node: NodeId(1), rank: 4 },
            SppError::DuplicatePath { node: NodeId(1) },
            SppError::DestinationPaths,
            SppError::SelfLoop { node: NodeId(2) },
            SppError::BudgetExceeded { budget: 10 },
            SppError::Parse { line: 3, message: "bad token".into() },
            SppError::Disconnected { node: NodeId(5) },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase(), "{s}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SppError>();
    }
}

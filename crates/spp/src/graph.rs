//! Undirected network graphs and directed communication channels.
//!
//! An SPP instance lives on an undirected graph `G = (V, E)`; for each edge
//! `{u, v}` the set of communication channels contains both directed channels
//! `(u, v)` and `(v, u)` (Sec. 2.1 of the paper).

use std::fmt;

use crate::error::SppError;

/// Identifier of a node in an instance graph.
///
/// Nodes are dense indices `0..n`; human-readable names are kept by
/// [`crate::SppInstance`].
///
/// ```
/// use routelab_spp::NodeId;
/// let v = NodeId(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(v.to_string(), "3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// A directed communication channel `(from, to)`.
///
/// Channel `(u, v)` carries announcements written by `u` and read by `v`.
///
/// ```
/// use routelab_spp::{Channel, NodeId};
/// let c = Channel::new(NodeId(0), NodeId(1));
/// assert_eq!(c.reverse(), Channel::new(NodeId(1), NodeId(0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Channel {
    /// Writing endpoint.
    pub from: NodeId,
    /// Reading endpoint.
    pub to: NodeId,
}

impl Channel {
    /// Creates the directed channel `(from, to)`.
    pub fn new(from: NodeId, to: NodeId) -> Self {
        Channel { from, to }
    }

    /// The channel in the opposite direction.
    pub fn reverse(self) -> Self {
        Channel { from: self.to, to: self.from }
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}->{})", self.from, self.to)
    }
}

/// An undirected graph over dense node ids.
///
/// ```
/// use routelab_spp::{Graph, NodeId};
/// let mut g = Graph::new(3);
/// g.add_edge(NodeId(0), NodeId(1)).unwrap();
/// g.add_edge(NodeId(1), NodeId(2)).unwrap();
/// assert!(g.has_edge(NodeId(1), NodeId(0)));
/// assert_eq!(g.neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
/// assert_eq!(g.channels().count(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Graph {
    /// Sorted adjacency list per node.
    adjacency: Vec<Vec<NodeId>>,
}

impl Graph {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Graph { adjacency: vec![Vec::new(); n] }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adjacency.push(Vec::new());
        NodeId((self.adjacency.len() - 1) as u32)
    }

    /// Iterates over all node ids in increasing order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adjacency.len() as u32).map(NodeId)
    }

    /// Returns `true` if `v` is a node of this graph.
    pub fn contains(&self, v: NodeId) -> bool {
        v.index() < self.adjacency.len()
    }

    fn check(&self, v: NodeId) -> Result<(), SppError> {
        if self.contains(v) {
            Ok(())
        } else {
            Err(SppError::UnknownNode { node: v, node_count: self.adjacency.len() })
        }
    }

    /// Adds the undirected edge `{a, b}`.
    ///
    /// Adding an existing edge is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`SppError::SelfLoop`] if `a == b`, or
    /// [`SppError::UnknownNode`] if either endpoint is out of range.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> Result<(), SppError> {
        self.check(a)?;
        self.check(b)?;
        if a == b {
            return Err(SppError::SelfLoop { node: a });
        }
        for (x, y) in [(a, b), (b, a)] {
            let adj = &mut self.adjacency[x.index()];
            if let Err(pos) = adj.binary_search(&y) {
                adj.insert(pos, y);
            }
        }
        Ok(())
    }

    /// Returns `true` if the undirected edge `{a, b}` is present.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.contains(a) && self.contains(b) && self.adjacency[a.index()].binary_search(&b).is_ok()
    }

    /// The sorted neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a node of this graph.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adjacency[v.index()]
    }

    /// Node degree.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adjacency[v.index()].len()
    }

    /// All directed channels, in deterministic `(from, to)` order.
    ///
    /// For each undirected edge both directions are produced (Sec. 2.1).
    pub fn channels(&self) -> impl Iterator<Item = Channel> + '_ {
        self.nodes()
            .flat_map(move |from| self.neighbors(from).iter().map(move |&to| Channel { from, to }))
    }

    /// All channels read by `v` (one per neighbor), in neighbor order.
    pub fn in_channels(&self, v: NodeId) -> impl Iterator<Item = Channel> + '_ {
        self.neighbors(v).iter().map(move |&u| Channel { from: u, to: v })
    }

    /// All channels written by `v` (one per neighbor), in neighbor order.
    pub fn out_channels(&self, v: NodeId) -> impl Iterator<Item = Channel> + '_ {
        self.neighbors(v).iter().map(move |&u| Channel { from: v, to: u })
    }

    /// The set of nodes that can reach `root` along edges, including `root`.
    pub fn reachable_from(&self, root: NodeId) -> Vec<bool> {
        let mut seen = vec![false; self.node_count()];
        if !self.contains(root) {
            return seen;
        }
        let mut stack = vec![root];
        seen[root.index()] = true;
        while let Some(v) = stack.pop() {
            for &u in self.neighbors(v) {
                if !seen[u.index()] {
                    seen[u.index()] = true;
                    stack.push(u);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1)).unwrap();
        g.add_edge(NodeId(1), NodeId(2)).unwrap();
        g.add_edge(NodeId(2), NodeId(0)).unwrap();
        g
    }

    #[test]
    fn edges_are_symmetric() {
        let g = triangle();
        for a in g.nodes() {
            for b in g.nodes() {
                assert_eq!(g.has_edge(a, b), g.has_edge(b, a));
            }
        }
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn duplicate_edge_is_noop() {
        let mut g = triangle();
        g.add_edge(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(NodeId(0)), 2);
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = Graph::new(2);
        assert_eq!(g.add_edge(NodeId(1), NodeId(1)), Err(SppError::SelfLoop { node: NodeId(1) }));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut g = Graph::new(2);
        assert!(matches!(g.add_edge(NodeId(0), NodeId(7)), Err(SppError::UnknownNode { .. })));
    }

    #[test]
    fn channels_cover_both_directions() {
        let g = triangle();
        let chans: Vec<Channel> = g.channels().collect();
        assert_eq!(chans.len(), 6);
        for c in &chans {
            assert!(chans.contains(&c.reverse()));
        }
    }

    #[test]
    fn in_and_out_channels() {
        let g = triangle();
        let ins: Vec<Channel> = g.in_channels(NodeId(0)).collect();
        assert_eq!(
            ins,
            vec![Channel::new(NodeId(1), NodeId(0)), Channel::new(NodeId(2), NodeId(0))]
        );
        let outs: Vec<Channel> = g.out_channels(NodeId(0)).collect();
        assert!(outs.iter().all(|c| c.from == NodeId(0)));
    }

    #[test]
    fn reachability() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1)).unwrap();
        // Node 2 and 3 isolated from 0.
        g.add_edge(NodeId(2), NodeId(3)).unwrap();
        let seen = g.reachable_from(NodeId(0));
        assert_eq!(seen, vec![true, true, false, false]);
    }

    #[test]
    fn add_node_grows_graph() {
        let mut g = Graph::new(0);
        let a = g.add_node();
        let b = g.add_node();
        assert_eq!((a, b), (NodeId(0), NodeId(1)));
        g.add_edge(a, b).unwrap();
        assert!(g.has_edge(a, b));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Channel::new(NodeId(2), NodeId(5)).to_string(), "(2->5)");
        assert_eq!(NodeId(7).to_string(), "7");
    }
}

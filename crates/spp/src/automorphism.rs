//! Instance automorphisms: symmetries of an SPP instance.
//!
//! An automorphism is a node permutation σ that fixes the destination,
//! preserves the edge relation, and maps every node's permitted paths onto
//! its image's permitted paths *with equal ranks*. Such a σ acts on entire
//! executions of the routing algorithm: relabeling every node, channel and
//! route of a fair execution by σ yields another fair execution. Explorers
//! exploit this by folding the state space along the automorphism group
//! (symmetry reduction).
//!
//! Detection is a straightforward backtracking search over node images,
//! pruned by degree, destination-fixing and rank-profile invariants. The
//! paper's gadgets have at most a handful of nodes, so the search is
//! instantaneous; the classic symmetric gadgets (DISAGREE, BAD-GADGET,
//! GOOD-GADGET, the wheels) are exactly the ones with nontrivial groups.

use crate::graph::NodeId;
use crate::instance::SppInstance;
use crate::path::{Path, Route};

/// A node permutation preserving the instance (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Automorphism {
    /// `map[v] = σ(v)`, indexed by node id.
    map: Vec<NodeId>,
}

impl Automorphism {
    /// The identity permutation on `n` nodes.
    pub fn identity(n: usize) -> Self {
        Automorphism { map: (0..n as u32).map(NodeId).collect() }
    }

    /// σ(v).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn apply(&self, v: NodeId) -> NodeId {
        self.map[v.index()]
    }

    /// The underlying image table, indexed by node id.
    pub fn as_slice(&self) -> &[NodeId] {
        &self.map
    }

    /// `true` for the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, v)| v.index() == i)
    }

    /// The image σ(p) of a path (a permutation preserves simplicity).
    pub fn map_path(&self, p: &Path) -> Path {
        Path::new(p.iter().map(|v| self.apply(v)).collect())
            .expect("a permutation maps simple paths to simple paths")
    }

    /// The image of a route (ε is fixed).
    pub fn map_route(&self, r: &Route) -> Route {
        match r.as_path() {
            Some(p) => Route::path(self.map_path(p)),
            None => Route::empty(),
        }
    }

    /// The composition `self ∘ other` (apply `other` first).
    pub fn compose(&self, other: &Automorphism) -> Automorphism {
        Automorphism { map: other.map.iter().map(|&v| self.apply(v)).collect() }
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Automorphism {
        let mut inv = vec![NodeId(0); self.map.len()];
        for (i, &v) in self.map.iter().enumerate() {
            inv[v.index()] = NodeId(i as u32);
        }
        Automorphism { map: inv }
    }
}

/// `true` when σ maps every permitted path of every node to a permitted
/// path of the image node with the same rank. With the bijectivity of σ and
/// equal per-node path counts this makes the permitted structure invariant.
fn preserves_permitted(inst: &SppInstance, a: &Automorphism) -> bool {
    inst.nodes().all(|v| {
        let w = a.apply(v);
        inst.permitted(v).len() == inst.permitted(w).len()
            && inst
                .permitted(v)
                .iter()
                .all(|rp| inst.rank(w, &a.map_path(&rp.path)) == Some(rp.rank))
    })
}

fn extend(
    inst: &SppInstance,
    rank_profile: &[Vec<u32>],
    v: usize,
    map: &mut Vec<NodeId>,
    used: &mut Vec<bool>,
    out: &mut Vec<Automorphism>,
) {
    let n = inst.node_count();
    if v == n {
        let a = Automorphism { map: map.clone() };
        if preserves_permitted(inst, &a) {
            out.push(a);
        }
        return;
    }
    let vid = NodeId(v as u32);
    for w in 0..n {
        if used[w] {
            continue;
        }
        let wid = NodeId(w as u32);
        if (vid == inst.dest()) != (wid == inst.dest())
            || inst.graph().degree(vid) != inst.graph().degree(wid)
            || rank_profile[v] != rank_profile[w]
        {
            continue;
        }
        let consistent = (0..v).all(|u| {
            inst.graph().has_edge(vid, NodeId(u as u32)) == inst.graph().has_edge(wid, map[u])
        });
        if !consistent {
            continue;
        }
        map.push(wid);
        used[w] = true;
        extend(inst, rank_profile, v + 1, map, used, out);
        map.pop();
        used[w] = false;
    }
}

/// Enumerates the full automorphism group of the instance, identity first,
/// in lexicographic image order (deterministic).
pub fn automorphisms(inst: &SppInstance) -> Vec<Automorphism> {
    let n = inst.node_count();
    let rank_profile: Vec<Vec<u32>> =
        inst.nodes().map(|v| inst.permitted(v).iter().map(|rp| rp.rank).collect()).collect();
    let mut out = Vec::new();
    let mut map = Vec::with_capacity(n);
    let mut used = vec![false; n];
    extend(inst, &rank_profile, 0, &mut map, &mut used, &mut out);
    // Lexicographic image order puts the identity first for any instance
    // whose node 0 candidates are ordered, but make it unconditional.
    if let Some(pos) = out.iter().position(Automorphism::is_identity) {
        out.swap(0, pos);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets;
    use crate::graph::Channel;

    #[test]
    fn identity_is_always_first() {
        for (name, inst) in gadgets::corpus() {
            let auts = automorphisms(&inst);
            assert!(!auts.is_empty(), "{name}");
            assert!(auts[0].is_identity(), "{name}");
        }
    }

    #[test]
    fn disagree_has_the_swap_symmetry() {
        let inst = gadgets::disagree();
        let auts = automorphisms(&inst);
        assert_eq!(auts.len(), 2);
        let swap = &auts[1];
        let x = inst.node_by_name("x").unwrap();
        let y = inst.node_by_name("y").unwrap();
        assert_eq!(swap.apply(x), y);
        assert_eq!(swap.apply(y), x);
        assert_eq!(swap.apply(inst.dest()), inst.dest());
    }

    #[test]
    fn bad_and_good_gadget_rotate() {
        // The classic gadgets are rotationally symmetric on their three
        // outer nodes: the group is cyclic of order 3.
        for inst in [gadgets::bad_gadget(), gadgets::good_gadget()] {
            assert_eq!(automorphisms(&inst).len(), 3);
        }
    }

    #[test]
    fn asymmetric_gadgets_have_trivial_groups() {
        for name in ["FIG6", "FIG7", "FIG8", "FIG9", "LINE2"] {
            let inst =
                gadgets::corpus().into_iter().find(|(n, _)| *n == name).map(|(_, i)| i).unwrap();
            assert_eq!(automorphisms(&inst).len(), 1, "{name}");
        }
    }

    #[test]
    fn wheels_rotate() {
        // wheel(n): n rim nodes around the destination hub; the rim
        // preferences are rotation- but not reflection-invariant.
        let auts = automorphisms(&gadgets::wheel(5));
        assert_eq!(auts.len(), 5);
    }

    #[test]
    fn every_automorphism_preserves_structure() {
        for (name, inst) in gadgets::corpus() {
            for a in automorphisms(&inst) {
                assert_eq!(a.apply(inst.dest()), inst.dest(), "{name}");
                for u in inst.nodes() {
                    for w in inst.nodes() {
                        assert_eq!(
                            inst.graph().has_edge(u, w),
                            inst.graph().has_edge(a.apply(u), a.apply(w)),
                            "{name}"
                        );
                    }
                }
                for v in inst.nodes() {
                    for rp in inst.permitted(v) {
                        assert_eq!(
                            inst.rank(a.apply(v), &a.map_path(&rp.path)),
                            Some(rp.rank),
                            "{name}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn group_axioms_hold() {
        let inst = gadgets::bad_gadget();
        let auts = automorphisms(&inst);
        let id = Automorphism::identity(inst.node_count());
        for a in &auts {
            assert_eq!(a.compose(&a.inverse()), id);
            assert_eq!(a.inverse().compose(a), id);
            for b in &auts {
                // Closure: composites stay in the group.
                assert!(auts.contains(&a.compose(b)));
            }
        }
    }

    #[test]
    fn routes_and_channels_map_consistently() {
        let inst = gadgets::disagree();
        let swap = automorphisms(&inst).pop().unwrap();
        assert!(!swap.is_identity());
        let x = inst.node_by_name("x").unwrap();
        let y = inst.node_by_name("y").unwrap();
        let xd = inst.parse_path("xd").unwrap();
        assert_eq!(swap.map_path(&xd), inst.parse_path("yd").unwrap());
        assert_eq!(swap.map_route(&Route::empty()), Route::empty());
        let c = Channel::new(x, inst.dest());
        let mapped = Channel::new(swap.apply(c.from), swap.apply(c.to));
        assert_eq!(mapped, Channel::new(y, inst.dest()));
    }
}

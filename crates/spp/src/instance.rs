//! SPP instances: a graph, a destination, and per-node ranked permitted paths.
//!
//! An instance of the Stable Paths Problem (Sec. 2.1) consists of an
//! undirected graph `G = (V, E)`, a destination `d`, and for every node `v` a
//! set of permitted paths `P_v` with a ranking function
//! `λ_v : P_v → ℕ` (lower rank = more preferred). Ties in rank are forbidden
//! unless the tied paths share a next hop.

use std::collections::HashMap;
use std::fmt;

use crate::error::SppError;
use crate::graph::{Channel, Graph, NodeId};
use crate::path::{Path, Route};

/// A permitted path together with its rank (lower = more preferred).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RankedPath {
    /// The permitted path.
    pub path: Path,
    /// The value of the ranking function `λ_v` on this path.
    pub rank: u32,
}

/// An immutable, validated SPP instance.
///
/// Build one with [`SppBuilder`]:
///
/// ```
/// use routelab_spp::SppBuilder;
///
/// let mut b = SppBuilder::new();
/// let d = b.node("d");
/// let x = b.node("x");
/// b.edge_between(x, d)?;
/// b.dest(d)?;
/// b.prefer(x, [vec![x, d]])?;
/// let inst = b.build()?;
/// assert_eq!(inst.permitted(x).len(), 1);
/// # Ok::<(), routelab_spp::SppError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SppInstance {
    graph: Graph,
    dest: NodeId,
    names: Vec<String>,
    /// Per node, sorted by increasing rank (most preferred first).
    permitted: Vec<Vec<RankedPath>>,
    /// Name → id (first occurrence wins for duplicate names).
    by_name: HashMap<String, NodeId>,
    /// Per node, path → position in the sorted `permitted` list.
    rank_index: Vec<HashMap<Path, u32>>,
}

impl SppInstance {
    /// The underlying undirected graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The destination node `d`.
    pub fn dest(&self) -> NodeId {
        self.dest
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// All node ids in increasing order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.graph.nodes()
    }

    /// All directed channels in deterministic order.
    pub fn channels(&self) -> Vec<Channel> {
        self.graph.channels().collect()
    }

    /// Human-readable name of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn name(&self, v: NodeId) -> &str {
        &self.names[v.index()]
    }

    /// Looks a node up by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// The permitted paths of `v`, most preferred first.
    pub fn permitted(&self, v: NodeId) -> &[RankedPath] {
        &self.permitted[v.index()]
    }

    /// The rank `λ_v(p)`, or `None` if `p ∉ P_v` (one hash probe).
    pub fn rank(&self, v: NodeId, p: &Path) -> Option<u32> {
        let pos = *self.rank_index[v.index()].get(p)?;
        Some(self.permitted[v.index()][pos as usize].rank)
    }

    /// `true` if `p` is permitted at `v`.
    pub fn is_permitted(&self, v: NodeId, p: &Path) -> bool {
        self.rank_index[v.index()].contains_key(p)
    }

    /// The position of `p` in `v`'s preference order (0 = most preferred),
    /// or `None` if `p ∉ P_v`.
    pub fn preference_position(&self, v: NodeId, p: &Path) -> Option<u32> {
        self.rank_index[v.index()].get(p).copied()
    }

    /// Extends a neighbor's route by `v` and returns the resulting candidate
    /// with its rank, or `None` when the extension is ε, loops, or is not
    /// permitted at `v` (algorithm action 2).
    pub fn candidate(&self, v: NodeId, neighbor_route: &Route) -> Option<(Path, u32)> {
        let p = neighbor_route.as_path()?;
        let ext = p.prepend(v).ok()?;
        let rank = self.rank(v, &ext)?;
        Some((ext, rank))
    }

    /// Chooses the most preferred route among the extensions of the given
    /// neighbor routes (the paper's algorithm action 2). Returns ε if no
    /// extension is feasible. For `v = d` the trivial path is returned.
    ///
    /// Determinism: instance validation guarantees candidate ranks through
    /// distinct next hops differ, and at most one candidate exists per next
    /// hop, so the minimum is unique.
    pub fn choose_best<'a, I>(&self, v: NodeId, neighbor_routes: I) -> Route
    where
        I: IntoIterator<Item = &'a Route>,
    {
        if v == self.dest {
            return Route::path(Path::trivial(self.dest));
        }
        let mut best: Option<(Path, u32)> = None;
        for r in neighbor_routes {
            if let Some((path, rank)) = self.candidate(v, r) {
                let better = match &best {
                    None => true,
                    Some((bp, br)) => rank < *br || (rank == *br && path < *bp),
                };
                if better {
                    best = Some((path, rank));
                }
            }
        }
        Route::from(best.map(|(p, _)| p))
    }

    /// Formats a path with node names; single-character names are
    /// concatenated (paper style: `xyd`), longer names joined with `-`.
    pub fn fmt_path(&self, p: &Path) -> String {
        let parts: Vec<&str> = p.iter().map(|v| self.name(v)).collect();
        if parts.iter().all(|s| s.chars().count() == 1) {
            parts.concat()
        } else {
            parts.join("-")
        }
    }

    /// Formats a route (ε or named path).
    pub fn fmt_route(&self, r: &Route) -> String {
        match r.as_path() {
            Some(p) => self.fmt_path(p),
            None => "ε".to_string(),
        }
    }

    /// Parses a path from its [`SppInstance::fmt_path`] representation.
    ///
    /// # Errors
    ///
    /// Returns [`SppError::UnknownName`] for unknown node names or path
    /// errors for malformed sequences.
    pub fn parse_path(&self, s: &str) -> Result<Path, SppError> {
        let names: Vec<String> = if s.contains('-') {
            s.split('-').map(str::to_string).collect()
        } else {
            s.chars().map(|c| c.to_string()).collect()
        };
        let mut ids = Vec::with_capacity(names.len());
        for n in &names {
            let id =
                self.node_by_name(n).ok_or_else(|| SppError::UnknownName { name: n.clone() })?;
            ids.push(id);
        }
        Path::new(ids)
    }

    /// Validates every structural invariant of the instance. Builders call
    /// this; it is public so that hand-assembled or parsed instances can be
    /// re-checked.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: path sources/destinations, edge
    /// existence along paths, destination's permitted set, duplicate paths,
    /// or forbidden rank ties.
    pub fn validate(&self) -> Result<(), SppError> {
        let d = self.dest;
        if !self.graph.contains(d) {
            return Err(SppError::UnknownNode { node: d, node_count: self.node_count() });
        }
        for v in self.graph.nodes() {
            let perms = &self.permitted[v.index()];
            if v == d {
                if perms.len() != 1 || perms[0].path != Path::trivial(d) {
                    return Err(SppError::DestinationPaths);
                }
                continue;
            }
            for (i, rp) in perms.iter().enumerate() {
                let p = &rp.path;
                if p.source() != v {
                    return Err(SppError::WrongSource { path_source: p.source(), expected: v });
                }
                if p.dest() != d {
                    return Err(SppError::WrongDestination { path_dest: p.dest(), expected: d });
                }
                for w in p.as_slice().windows(2) {
                    if !self.graph.has_edge(w[0], w[1]) {
                        return Err(SppError::MissingEdge { from: w[0], to: w[1] });
                    }
                }
                for other in &perms[i + 1..] {
                    if other.path == *p {
                        return Err(SppError::DuplicatePath { node: v });
                    }
                    if other.rank == rp.rank && other.path.next_hop() != p.next_hop() {
                        return Err(SppError::RankTie { node: v, rank: rp.rank });
                    }
                }
            }
        }
        Ok(())
    }

    /// Assembles an instance from raw parts and validates it.
    ///
    /// Prefer [`SppBuilder`]; this is the escape hatch used by parsers and
    /// generators.
    ///
    /// # Errors
    ///
    /// Any error from [`SppInstance::validate`].
    pub fn from_parts(
        graph: Graph,
        dest: NodeId,
        names: Vec<String>,
        mut permitted: Vec<Vec<RankedPath>>,
    ) -> Result<Self, SppError> {
        if names.len() != graph.node_count() || permitted.len() != graph.node_count() {
            return Err(SppError::UnknownNode { node: dest, node_count: graph.node_count() });
        }
        for perms in &mut permitted {
            perms.sort_by(|a, b| a.rank.cmp(&b.rank).then_with(|| a.path.cmp(&b.path)));
        }
        let mut by_name = HashMap::with_capacity(names.len());
        for (i, n) in names.iter().enumerate() {
            // First occurrence wins, matching a front-to-back name scan.
            by_name.entry(n.clone()).or_insert(NodeId(i as u32));
        }
        let rank_index = permitted
            .iter()
            .map(|perms| {
                perms
                    .iter()
                    .enumerate()
                    .map(|(pos, rp)| (rp.path.clone(), pos as u32))
                    .collect::<HashMap<_, _>>()
            })
            .collect();
        let inst = SppInstance { graph, dest, names, permitted, by_name, rank_index };
        inst.validate()?;
        Ok(inst)
    }
}

impl fmt::Display for SppInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "spp instance: {} nodes, {} edges, dest {}",
            self.node_count(),
            self.graph.edge_count(),
            self.name(self.dest)
        )?;
        for v in self.nodes() {
            if v == self.dest {
                continue;
            }
            let prefs: Vec<String> =
                self.permitted(v).iter().map(|rp| self.fmt_path(&rp.path)).collect();
            writeln!(f, "  {}: {}", self.name(v), prefs.join(" > "))?;
        }
        Ok(())
    }
}

/// Incremental builder for [`SppInstance`].
///
/// The destination's trivial path is added automatically. Ranks given via
/// [`SppBuilder::prefer`] are consecutive in declaration order (most
/// preferred first), matching how the paper's figures list preferences.
#[derive(Debug, Clone, Default)]
pub struct SppBuilder {
    graph: Graph,
    names: Vec<String>,
    by_name: HashMap<String, NodeId>,
    dest: Option<NodeId>,
    permitted: Vec<Vec<RankedPath>>,
}

impl SppBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        SppBuilder::default()
    }

    /// Adds (or looks up) a node by name and returns its id.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.graph.add_node();
        self.names.push(name.to_string());
        self.permitted.push(Vec::new());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Adds the undirected edge `{a, b}`.
    ///
    /// # Errors
    ///
    /// See [`Graph::add_edge`].
    pub fn edge_between(&mut self, a: NodeId, b: NodeId) -> Result<&mut Self, SppError> {
        self.graph.add_edge(a, b)?;
        Ok(self)
    }

    /// Adds an edge by node names, creating the nodes if necessary.
    ///
    /// # Errors
    ///
    /// See [`Graph::add_edge`].
    pub fn edge(&mut self, a: &str, b: &str) -> Result<&mut Self, SppError> {
        let a = self.node(a);
        let b = self.node(b);
        self.edge_between(a, b)?;
        Ok(self)
    }

    /// Declares `v`'s permitted paths in decreasing preference; ranks
    /// continue from any previously declared paths at `v` (starting at 1).
    ///
    /// # Errors
    ///
    /// Returns path construction errors; full instance invariants are
    /// checked by [`SppBuilder::build`].
    pub fn prefer<I, P>(&mut self, v: NodeId, paths: I) -> Result<&mut Self, SppError>
    where
        I: IntoIterator<Item = P>,
        P: IntoIterator<Item = NodeId>,
    {
        if !self.graph.contains(v) {
            return Err(SppError::UnknownNode { node: v, node_count: self.graph.node_count() });
        }
        let base = self.permitted[v.index()].iter().map(|rp| rp.rank).max().unwrap_or(0);
        for (offset, p) in paths.into_iter().enumerate() {
            let path = Path::new(p.into_iter().collect())?;
            self.permitted[v.index()].push(RankedPath { path, rank: base + 1 + offset as u32 });
        }
        Ok(self)
    }

    /// Declares `v`'s permitted paths by paper-style strings (see
    /// [`SppInstance::parse_path`] for syntax), most preferred first.
    ///
    /// # Errors
    ///
    /// Returns [`SppError::UnknownName`] for names not yet added.
    pub fn prefer_named(&mut self, v: &str, paths: &[&str]) -> Result<&mut Self, SppError> {
        let vid = self
            .by_name
            .get(v)
            .copied()
            .ok_or_else(|| SppError::UnknownName { name: v.to_string() })?;
        let mut parsed = Vec::with_capacity(paths.len());
        for s in paths {
            let names: Vec<String> = if s.contains('-') {
                s.split('-').map(str::to_string).collect()
            } else {
                s.chars().map(|c| c.to_string()).collect()
            };
            let mut ids = Vec::with_capacity(names.len());
            for n in &names {
                let id = self
                    .by_name
                    .get(n)
                    .copied()
                    .ok_or_else(|| SppError::UnknownName { name: n.clone() })?;
                ids.push(id);
            }
            parsed.push(ids);
        }
        self.prefer(vid, parsed)?;
        Ok(self)
    }

    /// Registers a permitted path at `v` with an explicit rank.
    ///
    /// # Errors
    ///
    /// Returns [`SppError::UnknownNode`] if `v` was never added.
    pub fn permit_with_rank(
        &mut self,
        v: NodeId,
        path: Path,
        rank: u32,
    ) -> Result<&mut Self, SppError> {
        if !self.graph.contains(v) {
            return Err(SppError::UnknownNode { node: v, node_count: self.graph.node_count() });
        }
        self.permitted[v.index()].push(RankedPath { path, rank });
        Ok(self)
    }

    /// Sets the destination node.
    ///
    /// # Errors
    ///
    /// Returns [`SppError::UnknownNode`] if `d` was never added.
    pub fn dest(&mut self, d: NodeId) -> Result<&mut Self, SppError> {
        if !self.graph.contains(d) {
            return Err(SppError::UnknownNode { node: d, node_count: self.graph.node_count() });
        }
        self.dest = Some(d);
        Ok(self)
    }

    /// Finalizes and validates the instance.
    ///
    /// # Errors
    ///
    /// Returns [`SppError::UnknownNode`] when no destination was set, plus
    /// anything from [`SppInstance::validate`].
    pub fn build(&self) -> Result<SppInstance, SppError> {
        let dest = self.dest.ok_or(SppError::UnknownNode {
            node: NodeId(u32::MAX),
            node_count: self.graph.node_count(),
        })?;
        let mut permitted = self.permitted.clone();
        // The destination's trivial path (rank 0) is implicit.
        permitted[dest.index()] = vec![RankedPath { path: Path::trivial(dest), rank: 0 }];
        SppInstance::from_parts(self.graph.clone(), dest, self.names.clone(), permitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds DISAGREE inline (also exercised via `gadgets`).
    fn disagree() -> SppInstance {
        let mut b = SppBuilder::new();
        let d = b.node("d");
        let x = b.node("x");
        let y = b.node("y");
        b.edge("x", "d").unwrap();
        b.edge("y", "d").unwrap();
        b.edge("x", "y").unwrap();
        b.dest(d).unwrap();
        b.prefer(x, [vec![x, y, d], vec![x, d]]).unwrap();
        b.prefer(y, [vec![y, x, d], vec![y, d]]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_roundtrip() {
        let inst = disagree();
        assert_eq!(inst.node_count(), 3);
        assert_eq!(inst.dest(), NodeId(0));
        assert_eq!(inst.name(NodeId(1)), "x");
        assert_eq!(inst.node_by_name("y"), Some(NodeId(2)));
        assert_eq!(inst.node_by_name("zz"), None);
        let x = inst.node_by_name("x").unwrap();
        assert_eq!(inst.permitted(x).len(), 2);
        // Most preferred first.
        assert_eq!(inst.fmt_path(&inst.permitted(x)[0].path), "xyd");
    }

    #[test]
    fn prefer_named_matches_prefer() {
        let mut b = SppBuilder::new();
        b.node("d");
        b.node("x");
        b.node("y");
        b.edge("x", "d").unwrap();
        b.edge("y", "d").unwrap();
        b.edge("x", "y").unwrap();
        b.dest(NodeId(0)).unwrap();
        b.prefer_named("x", &["xyd", "xd"]).unwrap();
        b.prefer_named("y", &["yxd", "yd"]).unwrap();
        assert_eq!(b.build().unwrap(), disagree());
    }

    #[test]
    fn rank_and_permitted() {
        let inst = disagree();
        let x = inst.node_by_name("x").unwrap();
        let xd = inst.parse_path("xd").unwrap();
        let xyd = inst.parse_path("xyd").unwrap();
        assert_eq!(inst.rank(x, &xyd), Some(1));
        assert_eq!(inst.rank(x, &xd), Some(2));
        assert!(inst.is_permitted(x, &xd));
        let yd = inst.parse_path("yd").unwrap();
        assert!(!inst.is_permitted(x, &yd));
    }

    #[test]
    fn candidate_extension() {
        let inst = disagree();
        let x = inst.node_by_name("x").unwrap();
        let yd = Route::from(inst.parse_path("yd").unwrap());
        let (p, rank) = inst.candidate(x, &yd).unwrap();
        assert_eq!(inst.fmt_path(&p), "xyd");
        assert_eq!(rank, 1);
        // ε extends to nothing.
        assert!(inst.candidate(x, &Route::empty()).is_none());
        // A loop extends to nothing: x extending a path through x.
        let yxd = Route::from(inst.parse_path("yxd").unwrap());
        assert!(inst.candidate(x, &yxd).is_none());
    }

    #[test]
    fn choose_best_prefers_lowest_rank() {
        let inst = disagree();
        let x = inst.node_by_name("x").unwrap();
        let routes = [
            Route::from(inst.parse_path("yd").unwrap()),
            Route::from(inst.parse_path("d").unwrap()),
        ];
        let best = inst.choose_best(x, routes.iter());
        assert_eq!(inst.fmt_route(&best), "xyd");
        // Destination always picks its trivial path.
        let d = inst.dest();
        assert_eq!(inst.fmt_route(&inst.choose_best(d, [].iter())), "d");
        // No feasible extension -> ε.
        assert!(inst.choose_best(x, [Route::empty()].iter()).is_epsilon());
    }

    #[test]
    fn validation_rejects_missing_edge() {
        let mut b = SppBuilder::new();
        let d = b.node("d");
        let x = b.node("x");
        let y = b.node("y");
        b.edge("x", "d").unwrap();
        b.edge("y", "d").unwrap();
        // No x-y edge, but a path through it:
        b.dest(d).unwrap();
        b.prefer(x, [vec![x, y, d]]).unwrap();
        assert!(matches!(b.build(), Err(SppError::MissingEdge { .. })));
    }

    #[test]
    fn validation_rejects_rank_ties_across_next_hops() {
        let mut b = SppBuilder::new();
        let d = b.node("d");
        let x = b.node("x");
        let y = b.node("y");
        b.edge("x", "d").unwrap();
        b.edge("y", "d").unwrap();
        b.edge("x", "y").unwrap();
        b.dest(d).unwrap();
        b.permit_with_rank(x, Path::new(vec![x, y, d]).unwrap(), 1).unwrap();
        b.permit_with_rank(x, Path::new(vec![x, d]).unwrap(), 1).unwrap();
        assert_eq!(b.build(), Err(SppError::RankTie { node: x, rank: 1 }));
    }

    #[test]
    fn validation_allows_rank_ties_same_next_hop() {
        let mut b = SppBuilder::new();
        let d = b.node("d");
        let x = b.node("x");
        let y = b.node("y");
        b.edge("x", "d").unwrap();
        b.edge("y", "d").unwrap();
        b.edge("x", "y").unwrap();
        b.dest(d).unwrap();
        b.permit_with_rank(y, Path::new(vec![y, x, d]).unwrap(), 1).unwrap();
        b.permit_with_rank(y, Path::new(vec![y, d]).unwrap(), 2).unwrap();
        // Same next hop (x) with equal ranks is allowed by Sec. 2.1...
        b.permit_with_rank(x, Path::new(vec![x, y, d]).unwrap(), 1).unwrap();
        assert!(b.build().is_ok());
    }

    #[test]
    fn validation_rejects_duplicates_and_wrong_endpoints() {
        let mut b = SppBuilder::new();
        let d = b.node("d");
        let x = b.node("x");
        b.edge("x", "d").unwrap();
        b.dest(d).unwrap();
        b.permit_with_rank(x, Path::new(vec![x, d]).unwrap(), 1).unwrap();
        b.permit_with_rank(x, Path::new(vec![x, d]).unwrap(), 2).unwrap();
        assert_eq!(b.build(), Err(SppError::DuplicatePath { node: x }));

        let mut b = SppBuilder::new();
        let d = b.node("d");
        let x = b.node("x");
        b.edge("x", "d").unwrap();
        b.dest(d).unwrap();
        b.permit_with_rank(x, Path::new(vec![d]).unwrap(), 1).unwrap();
        assert!(matches!(b.build(), Err(SppError::WrongSource { .. })));
    }

    #[test]
    fn build_without_dest_fails() {
        let mut b = SppBuilder::new();
        b.node("d");
        assert!(b.build().is_err());
    }

    #[test]
    fn display_lists_preferences() {
        let s = disagree().to_string();
        assert!(s.contains("x: xyd > xd"), "{s}");
        assert!(s.contains("y: yxd > yd"), "{s}");
    }

    #[test]
    fn parse_path_multichar_names() {
        let mut b = SppBuilder::new();
        let d = b.node("dst");
        let v = b.node("v10");
        b.edge_between(v, d).unwrap();
        b.dest(d).unwrap();
        b.prefer(v, [vec![v, d]]).unwrap();
        let inst = b.build().unwrap();
        let p = inst.parse_path("v10-dst").unwrap();
        assert_eq!(inst.fmt_path(&p), "v10-dst");
        assert!(inst.parse_path("bogus-dst").is_err());
    }
}

//! A small line-oriented text format for SPP instances.
//!
//! ```text
//! spp v1
//! node d
//! node x
//! node y
//! edge x d
//! edge y d
//! edge x y
//! dest d
//! prefs x xyd xd
//! prefs y yxd yd
//! ```
//!
//! * Paths in `prefs` lines are most preferred first, written in the
//!   [`SppInstance::fmt_path`] style (single-character names concatenated,
//!   multi-character names joined by `-`).
//! * `#` begins a comment; blank lines are ignored.

use crate::error::SppError;
use crate::instance::{SppBuilder, SppInstance};

/// Serializes an instance to the text format.
///
/// ```
/// use routelab_spp::{format, gadgets};
/// let inst = gadgets::disagree();
/// let text = format::to_text(&inst);
/// let back = format::from_text(&text)?;
/// assert_eq!(inst, back);
/// # Ok::<(), routelab_spp::SppError>(())
/// ```
pub fn to_text(inst: &SppInstance) -> String {
    let mut out = String::from("spp v1\n");
    for v in inst.nodes() {
        out.push_str(&format!("node {}\n", inst.name(v)));
    }
    // Each undirected edge once, endpoints in id order.
    for v in inst.nodes() {
        for &u in inst.graph().neighbors(v) {
            if v < u {
                out.push_str(&format!("edge {} {}\n", inst.name(v), inst.name(u)));
            }
        }
    }
    out.push_str(&format!("dest {}\n", inst.name(inst.dest())));
    for v in inst.nodes() {
        if v == inst.dest() || inst.permitted(v).is_empty() {
            continue;
        }
        let paths: Vec<String> =
            inst.permitted(v).iter().map(|rp| inst.fmt_path(&rp.path)).collect();
        out.push_str(&format!("prefs {} {}\n", inst.name(v), paths.join(" ")));
    }
    out
}

/// Parses an instance from the text format.
///
/// # Errors
///
/// Returns [`SppError::Parse`] for malformed input and instance validation
/// errors for well-formed but inconsistent data.
pub fn from_text(text: &str) -> Result<SppInstance, SppError> {
    let mut builder = SppBuilder::new();
    let mut dest_name: Option<String> = None;
    let mut prefs: Vec<(String, Vec<String>)> = Vec::new();
    let mut saw_header = false;

    for (ln, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let keyword = tokens.next().expect("non-empty line has a token");
        let err = |message: &str| SppError::Parse { line: ln + 1, message: message.to_string() };
        match keyword {
            "spp" => {
                if tokens.next() != Some("v1") {
                    return Err(err("expected `spp v1` header"));
                }
                saw_header = true;
            }
            "node" => {
                let name = tokens.next().ok_or_else(|| err("node needs a name"))?;
                builder.node(name);
            }
            "edge" => {
                let a = tokens.next().ok_or_else(|| err("edge needs two endpoints"))?;
                let b = tokens.next().ok_or_else(|| err("edge needs two endpoints"))?;
                builder.edge(a, b)?;
            }
            "dest" => {
                let name = tokens.next().ok_or_else(|| err("dest needs a name"))?;
                dest_name = Some(name.to_string());
            }
            "prefs" => {
                let v = tokens.next().ok_or_else(|| err("prefs needs a node"))?;
                let paths: Vec<String> = tokens.map(str::to_string).collect();
                if paths.is_empty() {
                    return Err(err("prefs needs at least one path"));
                }
                prefs.push((v.to_string(), paths));
            }
            other => {
                return Err(SppError::Parse {
                    line: ln + 1,
                    message: format!("unknown keyword {other:?}"),
                });
            }
        }
    }

    if !saw_header {
        return Err(SppError::Parse { line: 1, message: "missing `spp v1` header".into() });
    }
    let dest_name =
        dest_name.ok_or(SppError::Parse { line: 1, message: "missing `dest` line".into() })?;
    for (v, paths) in &prefs {
        let refs: Vec<&str> = paths.iter().map(String::as_str).collect();
        builder.prefer_named(v, &refs)?;
    }
    let d = builder.node(&dest_name); // name must already exist; `node` is idempotent
    builder.dest(d)?;
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets;

    #[test]
    fn corpus_round_trips() {
        for (name, inst) in gadgets::corpus() {
            let text = to_text(&inst);
            let back = from_text(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(inst, back, "{name}");
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\
# DISAGREE
spp v1

node d
node x
node y
edge x d   # direct
edge y d
edge x y
dest d
prefs x xyd xd
prefs y yxd yd
";
        let inst = from_text(text).unwrap();
        assert_eq!(inst, gadgets::disagree());
    }

    #[test]
    fn missing_header_rejected() {
        assert!(matches!(from_text("node d\ndest d\n"), Err(SppError::Parse { .. })));
    }

    #[test]
    fn missing_dest_rejected() {
        assert!(matches!(from_text("spp v1\nnode d\n"), Err(SppError::Parse { .. })));
    }

    #[test]
    fn unknown_keyword_rejected() {
        let e = from_text("spp v1\nfrobnicate d\n").unwrap_err();
        assert!(matches!(e, SppError::Parse { line: 2, .. }), "{e}");
    }

    #[test]
    fn malformed_lines_rejected() {
        for bad in ["spp v1\nnode\n", "spp v1\nedge x\n", "spp v1\nprefs x\n", "spp v2\n"] {
            assert!(from_text(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unknown_path_name_rejected() {
        let text = "spp v1\nnode d\nnode x\nedge x d\ndest d\nprefs x xzd\n";
        assert!(matches!(from_text(text), Err(SppError::UnknownName { .. })));
    }

    #[test]
    fn multichar_names_round_trip() {
        let text = "\
spp v1
node dst
node v10
edge v10 dst
dest dst
prefs v10 v10-dst
";
        let inst = from_text(text).unwrap();
        let back = from_text(&to_text(&inst)).unwrap();
        assert_eq!(inst, back);
    }
}

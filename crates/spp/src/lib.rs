//! Stable Paths Problem (SPP) substrate.
//!
//! This crate implements the abstract interdomain-routing problem that the
//! paper's routing algorithm solves (Sec. 2.1 of Jaggard–Ramachandran–Wright,
//! *The Impact of Communication Models on Routing-Algorithm Convergence*):
//!
//! * [`NodeId`], [`Path`] and [`Graph`] — the network substrate,
//! * [`SppInstance`] — a graph with a destination, per-node permitted paths
//!   and ranking functions (lower rank = more preferred),
//! * [`gadgets`] — the instance corpus used throughout the paper
//!   (DISAGREE, the Fig. 6–9 instances) plus classics from the SPP
//!   literature (BAD-GADGET, GOOD-GADGET),
//! * [`solve`] — brute-force enumeration of stable path assignments,
//! * [`dispute`] — dispute-wheel detection and the dispute digraph,
//! * [`generator`] — random instance generators (uniform random policies and
//!   Gao–Rexford-style customer/peer/provider policies),
//! * [`table`] — interned route tables ([`RouteTable`]) backing the engine's
//!   allocation-free hot path,
//! * [`format`] — a small text format for instances.
//!
//! # Example
//!
//! ```
//! use routelab_spp::gadgets;
//! use routelab_spp::solve::enumerate_stable_assignments;
//!
//! let disagree = gadgets::disagree();
//! let solutions = enumerate_stable_assignments(&disagree, 10_000)?;
//! // DISAGREE famously has exactly two stable solutions.
//! assert_eq!(solutions.len(), 2);
//! # Ok::<(), routelab_spp::SppError>(())
//! ```

pub mod automorphism;
pub mod dispute;
pub mod error;
pub mod format;
pub mod gadgets;
pub mod generator;
pub mod graph;
pub mod instance;
pub mod path;
pub mod solve;
pub mod table;

pub use automorphism::{automorphisms, Automorphism};
pub use error::SppError;
pub use graph::{Channel, Graph, NodeId};
pub use instance::{RankedPath, SppBuilder, SppInstance};
pub use path::{Path, Route};
pub use table::{RouteId, RouteTable, NO_CANDIDATE};

//! Simple paths to the destination and route objects.
//!
//! A [`Path`] is a non-empty simple node sequence `v0 v1 … d` from its source
//! to the instance destination. The empty route ε of the paper is modeled as
//! [`Route::default`] / `Route(None)` — "no path".

use std::fmt;

use crate::error::SppError;
use crate::graph::NodeId;

/// A non-empty simple path, stored source-first.
///
/// The destination's trivial path is the one-element path `(d)`.
///
/// ```
/// use routelab_spp::{NodeId, Path};
/// let p = Path::new(vec![NodeId(2), NodeId(1), NodeId(0)])?;
/// assert_eq!(p.source(), NodeId(2));
/// assert_eq!(p.dest(), NodeId(0));
/// assert_eq!(p.next_hop(), Some(NodeId(1)));
/// # Ok::<(), routelab_spp::SppError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Path {
    nodes: Vec<NodeId>,
}

impl Path {
    /// Creates a path from a source-first node sequence.
    ///
    /// # Errors
    ///
    /// Returns [`SppError::EmptyPath`] for an empty sequence and
    /// [`SppError::PathNotSimple`] if a node repeats.
    pub fn new(nodes: Vec<NodeId>) -> Result<Self, SppError> {
        if nodes.is_empty() {
            return Err(SppError::EmptyPath);
        }
        if nodes.len() <= 16 {
            // Short paths: a scan over the seen prefix beats hashing.
            for i in 1..nodes.len() {
                if nodes[..i].contains(&nodes[i]) {
                    return Err(SppError::PathNotSimple { repeated: nodes[i] });
                }
            }
        } else {
            let mut seen = std::collections::HashSet::with_capacity(nodes.len());
            for &v in &nodes {
                if !seen.insert(v) {
                    return Err(SppError::PathNotSimple { repeated: v });
                }
            }
        }
        Ok(Path { nodes })
    }

    /// The trivial path `(d)` at the destination.
    pub fn trivial(d: NodeId) -> Self {
        Path { nodes: vec![d] }
    }

    /// Convenience constructor from raw `u32` ids.
    ///
    /// # Errors
    ///
    /// Same as [`Path::new`].
    pub fn from_ids<I: IntoIterator<Item = u32>>(ids: I) -> Result<Self, SppError> {
        Path::new(ids.into_iter().map(NodeId).collect())
    }

    /// First node (the path owner).
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Last node (the destination).
    pub fn dest(&self) -> NodeId {
        *self.nodes.last().expect("paths are non-empty")
    }

    /// The second node, i.e. the neighbor traffic is forwarded to;
    /// `None` for the trivial path.
    pub fn next_hop(&self) -> Option<NodeId> {
        self.nodes.get(1).copied()
    }

    /// Number of nodes on the path (edges + 1).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` only for the destination's trivial path.
    pub fn is_trivial(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Always `false`: paths are non-empty by construction. Provided to
    /// satisfy the `len`/`is_empty` convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `true` if `v` lies on the path.
    pub fn contains(&self, v: NodeId) -> bool {
        self.nodes.contains(&v)
    }

    /// The node sequence, source first.
    pub fn as_slice(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Iterates over the nodes, source first.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// The path `vP` obtained by prepending `v` (the paper's extension in
    /// algorithm action 2).
    ///
    /// # Errors
    ///
    /// Returns [`SppError::PathNotSimple`] if `v` already lies on the path —
    /// such an extension is never a candidate route.
    pub fn prepend(&self, v: NodeId) -> Result<Path, SppError> {
        if self.contains(v) {
            return Err(SppError::PathNotSimple { repeated: v });
        }
        let mut nodes = Vec::with_capacity(self.nodes.len() + 1);
        nodes.push(v);
        nodes.extend_from_slice(&self.nodes);
        Ok(Path { nodes })
    }

    /// The suffix starting at position `i` (0 = whole path).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()` — the suffix must remain non-empty.
    pub fn suffix(&self, i: usize) -> Path {
        assert!(i < self.nodes.len(), "suffix index out of range");
        Path { nodes: self.nodes[i..].to_vec() }
    }

    /// `true` if `other` is a (not necessarily proper) suffix of `self`.
    pub fn has_suffix(&self, other: &Path) -> bool {
        self.nodes.len() >= other.nodes.len()
            && self.nodes[self.nodes.len() - other.nodes.len()..] == other.nodes[..]
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for v in &self.nodes {
            if !first {
                write!(f, "-")?;
            }
            write!(f, "{v}")?;
            first = false;
        }
        Ok(())
    }
}

impl AsRef<[NodeId]> for Path {
    fn as_ref(&self) -> &[NodeId] {
        &self.nodes
    }
}

impl<'a> IntoIterator for &'a Path {
    type Item = &'a NodeId;
    type IntoIter = std::slice::Iter<'a, NodeId>;
    fn into_iter(self) -> Self::IntoIter {
        self.nodes.iter()
    }
}

/// A route object: either a path to the destination or the empty route ε.
///
/// ε is what a node "chooses" when it knows no feasible path, and what it
/// announces as a withdrawal (see Example A.2, where `u` announces ε).
///
/// ```
/// use routelab_spp::{Path, Route};
/// let eps = Route::empty();
/// assert!(eps.is_epsilon());
/// let r = Route::from(Path::from_ids([1, 0])?);
/// assert_eq!(r.as_path().unwrap().len(), 2);
/// # Ok::<(), routelab_spp::SppError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Route(Option<Path>);

impl Route {
    /// The empty route ε.
    pub fn empty() -> Self {
        Route(None)
    }

    /// A real path route.
    pub fn path(p: Path) -> Self {
        Route(Some(p))
    }

    /// `true` for ε.
    pub fn is_epsilon(&self) -> bool {
        self.0.is_none()
    }

    /// The underlying path, if any.
    pub fn as_path(&self) -> Option<&Path> {
        self.0.as_ref()
    }

    /// Consumes the route, returning the underlying path, if any.
    pub fn into_path(self) -> Option<Path> {
        self.0
    }
}

impl From<Path> for Route {
    fn from(p: Path) -> Self {
        Route(Some(p))
    }
}

impl From<Option<Path>> for Route {
    fn from(p: Option<Path>) -> Self {
        Route(p)
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Some(p) => write!(f, "{p}"),
            None => write!(f, "ε"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(ids: &[u32]) -> Path {
        Path::from_ids(ids.iter().copied()).unwrap()
    }

    #[test]
    fn rejects_empty_and_nonsimple() {
        assert_eq!(Path::new(vec![]), Err(SppError::EmptyPath));
        assert_eq!(Path::from_ids([1, 2, 1]), Err(SppError::PathNotSimple { repeated: NodeId(1) }));
    }

    #[test]
    fn accessors() {
        let path = p(&[3, 2, 0]);
        assert_eq!(path.source(), NodeId(3));
        assert_eq!(path.dest(), NodeId(0));
        assert_eq!(path.next_hop(), Some(NodeId(2)));
        assert_eq!(path.len(), 3);
        assert!(!path.is_trivial());
        assert!(!path.is_empty());
        assert!(path.contains(NodeId(2)));
        assert!(!path.contains(NodeId(9)));
    }

    #[test]
    fn trivial_path() {
        let t = Path::trivial(NodeId(0));
        assert!(t.is_trivial());
        assert_eq!(t.next_hop(), None);
        assert_eq!(t.source(), t.dest());
    }

    #[test]
    fn prepend_extends_and_checks_loops() {
        let base = p(&[1, 0]);
        let ext = base.prepend(NodeId(2)).unwrap();
        assert_eq!(ext, p(&[2, 1, 0]));
        assert!(base.prepend(NodeId(0)).is_err());
    }

    #[test]
    fn suffix_relations() {
        let path = p(&[4, 2, 1, 0]);
        assert_eq!(path.suffix(0), path);
        assert_eq!(path.suffix(2), p(&[1, 0]));
        assert!(path.has_suffix(&p(&[1, 0])));
        assert!(path.has_suffix(&path));
        assert!(!path.has_suffix(&p(&[2, 0])));
        assert!(!p(&[1, 0]).has_suffix(&path));
    }

    #[test]
    #[should_panic(expected = "suffix index out of range")]
    fn suffix_out_of_range_panics() {
        let _ = p(&[1, 0]).suffix(2);
    }

    #[test]
    fn route_display_and_default() {
        assert_eq!(Route::default(), Route::empty());
        assert_eq!(Route::empty().to_string(), "ε");
        assert_eq!(Route::from(p(&[2, 0])).to_string(), "2-0");
    }

    #[test]
    fn route_conversions() {
        let r = Route::from(Some(p(&[1, 0])));
        assert_eq!(r.clone().into_path(), Some(p(&[1, 0])));
        assert_eq!(Route::from(None), Route::empty());
        assert!(Route::empty().as_path().is_none());
    }

    #[test]
    fn path_orders_deterministically() {
        // Ordering is only used for deterministic data structures;
        // make sure ε sorts before any path.
        assert!(Route::empty() < Route::from(p(&[0])));
        let mut v = vec![p(&[2, 0]), p(&[1, 0])];
        v.sort();
        assert_eq!(v, vec![p(&[1, 0]), p(&[2, 0])]);
    }

    #[test]
    fn iteration() {
        let path = p(&[2, 1, 0]);
        let ids: Vec<u32> = path.iter().map(|n| n.0).collect();
        assert_eq!(ids, vec![2, 1, 0]);
        let via_ref: Vec<NodeId> = (&path).into_iter().copied().collect();
        assert_eq!(via_ref, path.as_slice());
        assert_eq!(path.as_ref(), path.as_slice());
    }
}

//! Random SPP instance generators.
//!
//! Three families, used by the Monte-Carlo experiments (DESIGN.md E11) and by
//! property tests:
//!
//! * [`random_instance`] — arbitrary (possibly divergent) policies,
//! * [`shortest_path_instance`] — length-first rankings, provably
//!   dispute-wheel-free,
//! * [`gao_rexford_instance`] — customer/peer/provider policies following the
//!   Gao–Rexford conditions, also dispute-wheel-free.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::error::SppError;
use crate::graph::{Graph, NodeId};
use crate::instance::{RankedPath, SppInstance};
use crate::path::Path;

/// Enumerates simple paths from `from` to `dest` by DFS, capped by node
/// count `max_len` and result count `max_count`; deterministic order.
pub fn enumerate_simple_paths(
    g: &Graph,
    from: NodeId,
    dest: NodeId,
    max_len: usize,
    max_count: usize,
) -> Vec<Path> {
    let mut out = Vec::new();
    let mut stack = vec![from];
    let mut on_path = vec![false; g.node_count()];
    on_path[from.index()] = true;
    dfs_paths(g, dest, max_len, max_count, &mut stack, &mut on_path, &mut out);
    out
}

fn dfs_paths(
    g: &Graph,
    dest: NodeId,
    max_len: usize,
    max_count: usize,
    stack: &mut Vec<NodeId>,
    on_path: &mut [bool],
    out: &mut Vec<Path>,
) {
    if out.len() >= max_count {
        return;
    }
    let v = *stack.last().expect("stack non-empty");
    if v == dest {
        out.push(Path::new(stack.clone()).expect("DFS paths are simple"));
        return;
    }
    if stack.len() >= max_len {
        return;
    }
    for &u in g.neighbors(v) {
        if !on_path[u.index()] {
            on_path[u.index()] = true;
            stack.push(u);
            dfs_paths(g, dest, max_len, max_count, stack, on_path, out);
            stack.pop();
            on_path[u.index()] = false;
        }
    }
}

/// Generates a random connected graph: a random spanning tree plus
/// `extra_edges` additional random edges.
pub fn random_connected_graph(n: usize, extra_edges: usize, rng: &mut StdRng) -> Graph {
    let mut g = Graph::new(n);
    // Random tree: attach each node to a random earlier node.
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        g.add_edge(NodeId(i as u32), NodeId(parent as u32)).expect("valid tree edge");
    }
    let mut added = 0;
    let mut attempts = 0;
    while added < extra_edges && attempts < extra_edges * 20 {
        attempts += 1;
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && !g.has_edge(NodeId(a as u32), NodeId(b as u32)) {
            g.add_edge(NodeId(a as u32), NodeId(b as u32)).expect("valid extra edge");
            added += 1;
        }
    }
    g
}

/// Configuration for [`random_instance`].
#[derive(Debug, Clone)]
pub struct RandomSppConfig {
    /// Total node count (≥ 2); node 0 is the destination.
    pub nodes: usize,
    /// Extra edges beyond the spanning tree.
    pub extra_edges: usize,
    /// At most this many permitted paths per node.
    pub max_paths_per_node: usize,
    /// Maximum path length in nodes.
    pub max_path_len: usize,
    /// RNG seed (experiments must be reproducible).
    pub seed: u64,
}

impl Default for RandomSppConfig {
    fn default() -> Self {
        RandomSppConfig {
            nodes: 8,
            extra_edges: 4,
            max_paths_per_node: 4,
            max_path_len: 6,
            seed: 0,
        }
    }
}

/// Generates a random SPP instance with arbitrary (possibly divergent)
/// rankings. Every node permits at least one path when one exists within the
/// length cap, and rankings are a random permutation (all ranks distinct, so
/// the tie rule holds trivially).
///
/// # Errors
///
/// Propagates validation errors (none are expected for the generated data;
/// the `Result` keeps the API honest).
pub fn random_instance(cfg: &RandomSppConfig) -> Result<SppInstance, SppError> {
    assert!(cfg.nodes >= 2, "need at least a destination and one other node");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let g = random_connected_graph(cfg.nodes, cfg.extra_edges, &mut rng);
    let dest = NodeId(0);
    let names: Vec<String> =
        (0..cfg.nodes).map(|i| if i == 0 { "d".to_string() } else { format!("n{i}") }).collect();

    let mut permitted: Vec<Vec<RankedPath>> = Vec::with_capacity(cfg.nodes);
    for v in g.nodes() {
        if v == dest {
            permitted.push(vec![RankedPath { path: Path::trivial(dest), rank: 0 }]);
            continue;
        }
        let mut all =
            enumerate_simple_paths(&g, v, dest, cfg.max_path_len, cfg.max_paths_per_node * 8);
        all.shuffle(&mut rng);
        all.truncate(cfg.max_paths_per_node.max(1));
        let perms = all
            .into_iter()
            .enumerate()
            .map(|(i, path)| RankedPath { path, rank: i as u32 + 1 })
            .collect();
        permitted.push(perms);
    }
    SppInstance::from_parts(g, dest, names, permitted)
}

/// Builds the instance whose policies are "shortest path first" (length,
/// then lexicographic) over all simple paths up to `max_path_len`.
///
/// Length-first rankings admit no dispute wheel: around any would-be wheel
/// the rim is at least one hop longer than the next spoke, so the spoke
/// lengths would have to decrease forever.
///
/// # Errors
///
/// Propagates validation errors from instance assembly.
pub fn shortest_path_instance(
    g: Graph,
    dest: NodeId,
    max_path_len: usize,
    max_paths_per_node: usize,
) -> Result<SppInstance, SppError> {
    let names: Vec<String> = (0..g.node_count())
        .map(|i| if i == dest.index() { "d".to_string() } else { format!("n{i}") })
        .collect();
    let mut permitted = Vec::with_capacity(g.node_count());
    for v in g.nodes() {
        if v == dest {
            permitted.push(vec![RankedPath { path: Path::trivial(dest), rank: 0 }]);
            continue;
        }
        let mut all = enumerate_simple_paths(&g, v, dest, max_path_len, usize::MAX);
        all.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
        all.truncate(max_paths_per_node);
        let perms = all
            .into_iter()
            .enumerate()
            .map(|(i, path)| RankedPath { path, rank: i as u32 + 1 })
            .collect();
        permitted.push(perms);
    }
    SppInstance::from_parts(g, dest, names, permitted)
}

/// Business relationship between adjacent ASes in the Gao–Rexford model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    /// Toward a provider ("up").
    Up,
    /// Across a peering link.
    Across,
    /// Toward a customer ("down").
    Down,
}

/// Generates a Gao–Rexford-style instance: a tiered provider/customer
/// hierarchy with some peer links; permitted paths are valley-free
/// (`up* across? down*` when read from the source) and ranked
/// customer-learned < peer-learned < provider-learned, then by length.
///
/// Gao–Rexford policies satisfy the no-dispute-wheel condition, so every
/// fair execution converges in every communication model — the control
/// group in the Monte-Carlo experiments.
///
/// # Errors
///
/// Propagates validation errors from instance assembly.
pub fn gao_rexford_instance(
    n: usize,
    seed: u64,
    max_path_len: usize,
    max_paths_per_node: usize,
) -> Result<SppInstance, SppError> {
    let (g, tiers, rel) = gao_rexford_topology(n, seed);

    let dest = NodeId(0);
    let names: Vec<String> =
        (0..n).map(|i| if i == 0 { "d".to_string() } else { format!("as{i}") }).collect();

    // Every valley-free path to the top-tier destination is a pure "up"
    // path: all of d's incident edges point up into d, and the
    // `up* across? down*` grammar cannot resume climbing once it crosses or
    // descends. Up edges strictly decrease (tier, index) — spanning edges
    // go to an earlier node of weakly smaller tier, shortcuts to a strictly
    // smaller tier — so up-paths form a DAG and are automatically simple.
    // Prepending a node preserves (length, lex) order, so each node's k
    // best paths extend only its up-neighbors' k best: the DP below is
    // exact and costs O(edges × k) instead of the exponential DFS sweep.
    let k = max_paths_per_node;
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (tiers[i], i));
    let mut best: Vec<Vec<Path>> = vec![Vec::new(); n];
    for &i in &order {
        let v = NodeId(i as u32);
        if v == dest {
            best[i] = vec![Path::trivial(dest)];
            continue;
        }
        let mut merged: Vec<Path> = Vec::new();
        for &u in g.neighbors(v) {
            if rel[&(v, u)] != Step::Up {
                continue;
            }
            for p in &best[u.index()] {
                if p.len() + 1 > max_path_len {
                    continue;
                }
                merged.push(p.prepend(v).expect("up paths strictly descend"));
            }
        }
        merged.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
        merged.truncate(k);
        debug_assert!(merged.iter().all(|p| is_valley_free(p, &rel)));
        best[i] = merged;
    }

    let mut permitted = Vec::with_capacity(n);
    for v in g.nodes() {
        if v == dest {
            permitted.push(vec![RankedPath { path: Path::trivial(dest), rank: 0 }]);
            continue;
        }
        // All paths are provider-learned (pure up), so the old
        // (relationship class, length, lex) ranking reduces to (length, lex).
        let perms = best[v.index()]
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, path)| RankedPath { path, rank: i as u32 + 1 })
            .collect();
        permitted.push(perms);
    }
    SppInstance::from_parts(g, dest, names, permitted)
}

/// The random tiered topology behind [`gao_rexford_instance`]: the graph,
/// per-node tiers (0 = top; the destination, node 0, is tier 0), and the
/// directed relationship map (`rel[(a, b)]` is `a`'s step toward `b`).
fn gao_rexford_topology(
    n: usize,
    seed: u64,
) -> (Graph, Vec<u32>, std::collections::HashMap<(NodeId, NodeId), Step>) {
    assert!(n >= 2, "need at least a destination and one other node");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    // Tier 0 is the top; node 0 (the destination) sits at the top tier.
    let tiers: Vec<u32> = (0..n).map(|i| if i == 0 { 0 } else { rng.gen_range(0..3) }).collect();

    // rel[(a,b)] = Step means "a's step toward b" (Up: b is a's provider).
    let mut rel = std::collections::HashMap::new();
    let add = |g: &mut Graph,
               rel: &mut std::collections::HashMap<(NodeId, NodeId), Step>,
               a: usize,
               b: usize,
               s: Step| {
        let (a, b) = (NodeId(a as u32), NodeId(b as u32));
        if a == b || g.has_edge(a, b) {
            return;
        }
        g.add_edge(a, b).expect("valid edge");
        rel.insert((a, b), s);
        let back = match s {
            Step::Up => Step::Down,
            Step::Down => Step::Up,
            Step::Across => Step::Across,
        };
        rel.insert((b, a), back);
    };

    // Spanning structure: every non-destination node gets a provider among
    // earlier nodes with a weakly smaller tier.
    for i in 1..n {
        let candidates: Vec<usize> = (0..i).filter(|&j| tiers[j] <= tiers[i]).collect();
        let p = *candidates.choose(&mut rng).unwrap_or(&0);
        add(&mut g, &mut rel, i, p, Step::Up);
    }
    // Extra peer links within a tier.
    for _ in 0..n / 2 {
        let a = rng.gen_range(1..n);
        let b = rng.gen_range(1..n);
        if a != b && tiers[a] == tiers[b] {
            add(&mut g, &mut rel, a, b, Step::Across);
        }
    }
    // Extra customer-provider shortcuts.
    for _ in 0..n / 2 {
        let a = rng.gen_range(1..n);
        let b = rng.gen_range(0..n);
        if a != b && tiers[b] < tiers[a] {
            add(&mut g, &mut rel, a, b, Step::Up);
        }
    }

    (g, tiers, rel)
}

/// A path (source first) is valley-free when its step sequence matches
/// `up* across? down*`.
fn is_valley_free(p: &Path, rel: &std::collections::HashMap<(NodeId, NodeId), Step>) -> bool {
    let mut phase = 0u8; // 0 = climbing, 1 = crossed, 2 = descending
    for w in p.as_slice().windows(2) {
        let s = rel[&(w[0], w[1])];
        phase = match (phase, s) {
            (0, Step::Up) => 0,
            (0, Step::Across) => 1,
            (0..=2, Step::Down) => 2,
            _ => return false,
        };
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispute::is_wheel_free;

    #[test]
    fn simple_path_enumeration_on_triangle() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1)).unwrap();
        g.add_edge(NodeId(1), NodeId(2)).unwrap();
        g.add_edge(NodeId(2), NodeId(0)).unwrap();
        let paths = enumerate_simple_paths(&g, NodeId(2), NodeId(0), 4, 100);
        assert_eq!(paths.len(), 2); // 2-0 and 2-1-0
        assert!(paths.iter().all(|p| p.source() == NodeId(2) && p.dest() == NodeId(0)));
    }

    #[test]
    fn enumeration_respects_caps() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1)).unwrap();
        g.add_edge(NodeId(1), NodeId(2)).unwrap();
        g.add_edge(NodeId(2), NodeId(0)).unwrap();
        assert_eq!(enumerate_simple_paths(&g, NodeId(2), NodeId(0), 2, 100).len(), 1);
        assert_eq!(enumerate_simple_paths(&g, NodeId(2), NodeId(0), 4, 1).len(), 1);
    }

    #[test]
    fn random_graph_is_connected() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [2, 5, 12, 30] {
            let g = random_connected_graph(n, n / 2, &mut rng);
            assert!(g.reachable_from(NodeId(0)).iter().all(|&b| b), "n = {n}");
        }
    }

    #[test]
    fn random_instance_is_valid_and_deterministic() {
        let cfg = RandomSppConfig { seed: 42, ..RandomSppConfig::default() };
        let a = random_instance(&cfg).unwrap();
        let b = random_instance(&cfg).unwrap();
        assert_eq!(a, b);
        assert!(a.validate().is_ok());
        // Different seed, different instance (overwhelmingly likely).
        let c = random_instance(&RandomSppConfig { seed: 43, ..cfg }).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn shortest_path_instances_are_wheel_free() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in [4, 8, 12] {
            let g = random_connected_graph(n, n, &mut rng);
            let inst = shortest_path_instance(g, NodeId(0), 5, 6).unwrap();
            assert!(inst.validate().is_ok());
            assert!(is_wheel_free(&inst), "n = {n}");
        }
    }

    #[test]
    fn gao_rexford_instances_are_valid_and_wheel_free() {
        for seed in 0..8 {
            let inst = gao_rexford_instance(10, seed, 6, 5).unwrap();
            assert!(inst.validate().is_ok(), "seed {seed}");
            assert!(is_wheel_free(&inst), "seed {seed}");
        }
    }

    /// The pre-k-best construction: enumerate all simple paths by DFS,
    /// filter valley-free, rank by (relationship class, length, lex).
    fn reference_gao_rexford(
        n: usize,
        seed: u64,
        max_path_len: usize,
        max_paths_per_node: usize,
    ) -> SppInstance {
        let (g, _tiers, rel) = gao_rexford_topology(n, seed);
        let dest = NodeId(0);
        let names: Vec<String> =
            (0..n).map(|i| if i == 0 { "d".to_string() } else { format!("as{i}") }).collect();
        let mut permitted = Vec::with_capacity(n);
        for v in g.nodes() {
            if v == dest {
                permitted.push(vec![RankedPath { path: Path::trivial(dest), rank: 0 }]);
                continue;
            }
            let mut paths = enumerate_simple_paths(&g, v, dest, max_path_len, usize::MAX);
            paths.retain(|p| is_valley_free(p, &rel));
            paths.sort_by_key(|p| {
                let first = rel[&(p.as_slice()[0], p.as_slice()[1])];
                let class = match first {
                    Step::Down => 0u8,
                    Step::Across => 1,
                    Step::Up => 2,
                };
                (class, p.len(), p.clone())
            });
            paths.truncate(max_paths_per_node);
            let perms = paths
                .into_iter()
                .enumerate()
                .map(|(i, path)| RankedPath { path, rank: i as u32 + 1 })
                .collect();
            permitted.push(perms);
        }
        SppInstance::from_parts(g, dest, names, permitted).unwrap()
    }

    #[test]
    fn k_best_construction_matches_exhaustive_dfs() {
        for n in [2, 3, 5, 8, 12] {
            for seed in 0..12 {
                for (len, k) in [(6, 5), (4, 3), (8, 2)] {
                    let fast = gao_rexford_instance(n, seed, len, k).unwrap();
                    let slow = reference_gao_rexford(n, seed, len, k);
                    assert_eq!(fast, slow, "n {n} seed {seed} len {len} k {k}");
                }
            }
        }
    }

    #[test]
    fn gao_rexford_scales_to_thousands_of_nodes() {
        // Random-attachment provider chains grow like ln(n), so give the
        // length cap ample room for every node to keep at least one path.
        let inst = gao_rexford_instance(2000, 11, 32, 4).unwrap();
        assert!(inst.validate().is_ok());
        // Every node reaches the destination via its spanning provider chain.
        for v in inst.nodes() {
            assert!(!inst.permitted(v).is_empty(), "node {v} has no path");
        }
    }

    #[test]
    fn valley_free_logic() {
        use std::collections::HashMap;
        let mut rel = HashMap::new();
        let (a, b, c) = (NodeId(0), NodeId(1), NodeId(2));
        rel.insert((a, b), Step::Up);
        rel.insert((b, a), Step::Down);
        rel.insert((b, c), Step::Down);
        rel.insert((c, b), Step::Up);
        // a up b down c : valley-free.
        let p = Path::new(vec![a, b, c]).unwrap();
        assert!(is_valley_free(&p, &rel));
        // c up b down a : also fine.
        let q = Path::new(vec![c, b, a]).unwrap();
        assert!(is_valley_free(&q, &rel));
        // down then up is a valley.
        let mut rel2 = HashMap::new();
        rel2.insert((a, b), Step::Down);
        rel2.insert((b, a), Step::Up);
        rel2.insert((b, c), Step::Up);
        rel2.insert((c, b), Step::Down);
        let r = Path::new(vec![a, b, c]).unwrap();
        assert!(!is_valley_free(&r, &rel2));
    }
}

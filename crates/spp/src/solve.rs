//! Stable path assignments: checking and brute-force enumeration.
//!
//! A path assignment `π = {π_v}` solves an SPP instance when it is
//! *consistent* (if `π_v = v·P` with next hop `u` then `π_u = P`) and
//! *stable* (`π_v` is the most preferred feasible extension of the neighbors'
//! assignments). Deciding solvability is NP-complete (Griffin–Shepherd–
//! Wilfong), so [`enumerate_stable_assignments`] is a budgeted exhaustive
//! search — exactly what the paper-scale instances need.

use std::collections::BTreeMap;

use crate::error::SppError;
use crate::graph::NodeId;
use crate::instance::SppInstance;
use crate::path::{Path, Route};

/// A global path assignment: one route per node.
///
/// The destination is always assigned its trivial path.
pub type PathAssignment = Vec<Route>;

/// Pretty-prints an assignment with instance names, paper style:
/// `(d, xd, yxd)` in node-id order.
pub fn fmt_assignment(inst: &SppInstance, pi: &PathAssignment) -> String {
    let parts: Vec<String> = pi.iter().map(|r| inst.fmt_route(r)).collect();
    format!("({})", parts.join(", "))
}

/// Checks consistency: every assigned path's tail is the next hop's
/// assigned path.
pub fn is_consistent(inst: &SppInstance, pi: &PathAssignment) -> bool {
    if pi.len() != inst.node_count() {
        return false;
    }
    if pi[inst.dest().index()] != Route::path(Path::trivial(inst.dest())) {
        return false;
    }
    for v in inst.nodes() {
        if v == inst.dest() {
            continue;
        }
        if let Some(p) = pi[v.index()].as_path() {
            if p.source() != v || !inst.is_permitted(v, p) {
                return false;
            }
            let u = p.next_hop().expect("non-destination paths have a next hop");
            if pi[u.index()] != Route::path(p.suffix(1)) {
                return false;
            }
        }
    }
    true
}

/// Checks stability: each node's assignment is the best feasible extension of
/// its neighbors' assignments (and ε only when no extension is feasible).
pub fn is_stable(inst: &SppInstance, pi: &PathAssignment) -> bool {
    if !is_consistent(inst, pi) {
        return false;
    }
    for v in inst.nodes() {
        if v == inst.dest() {
            continue;
        }
        let neighbor_routes: Vec<Route> =
            inst.graph().neighbors(v).iter().map(|&u| pi[u.index()].clone()).collect();
        let best = inst.choose_best(v, neighbor_routes.iter());
        if best != pi[v.index()] {
            return false;
        }
    }
    true
}

/// Enumerates **all** stable path assignments by exhaustive search with
/// consistency pruning.
///
/// `budget` bounds the number of search-tree nodes visited.
///
/// # Errors
///
/// Returns [`SppError::BudgetExceeded`] when the search tree outgrows
/// `budget` — callers decide whether a partial answer is acceptable.
///
/// ```
/// use routelab_spp::gadgets;
/// use routelab_spp::solve::enumerate_stable_assignments;
/// let n = enumerate_stable_assignments(&gadgets::bad_gadget(), 100_000)?.len();
/// assert_eq!(n, 0); // BAD-GADGET is unsolvable
/// # Ok::<(), routelab_spp::SppError>(())
/// ```
pub fn enumerate_stable_assignments(
    inst: &SppInstance,
    budget: u64,
) -> Result<Vec<PathAssignment>, SppError> {
    // Candidate routes per node: every permitted path plus ε (the
    // destination is fixed to its trivial path).
    let mut options: Vec<Vec<Route>> = Vec::with_capacity(inst.node_count());
    for v in inst.nodes() {
        if v == inst.dest() {
            options.push(vec![Route::path(Path::trivial(inst.dest()))]);
        } else {
            let mut opts: Vec<Route> =
                inst.permitted(v).iter().map(|rp| Route::path(rp.path.clone())).collect();
            opts.push(Route::empty());
            options.push(opts);
        }
    }

    let mut visited: u64 = 0;
    let mut found = Vec::new();
    let mut pi: PathAssignment = vec![Route::empty(); inst.node_count()];
    search(inst, &options, 0, &mut pi, &mut visited, budget, &mut found)?;
    Ok(found)
}

fn search(
    inst: &SppInstance,
    options: &[Vec<Route>],
    v: usize,
    pi: &mut PathAssignment,
    visited: &mut u64,
    budget: u64,
    found: &mut Vec<PathAssignment>,
) -> Result<(), SppError> {
    *visited += 1;
    if *visited > budget {
        return Err(SppError::BudgetExceeded { budget });
    }
    if v == options.len() {
        if is_stable(inst, pi) {
            found.push(pi.clone());
        }
        return Ok(());
    }
    for r in &options[v] {
        pi[v] = r.clone();
        // Prune: partial consistency among already-assigned nodes.
        if partial_consistent(inst, pi, v) {
            search(inst, options, v + 1, pi, visited, budget, found)?;
        }
    }
    pi[v] = Route::empty();
    Ok(())
}

/// Consistency restricted to nodes `0..=last` (others unassigned).
fn partial_consistent(inst: &SppInstance, pi: &PathAssignment, last: usize) -> bool {
    for i in 0..=last {
        let v = NodeId(i as u32);
        if v == inst.dest() {
            continue;
        }
        if let Some(p) = pi[i].as_path() {
            let u = p.next_hop().expect("non-trivial path");
            if u.index() <= last && pi[u.index()] != Route::path(p.suffix(1)) {
                return false;
            }
        }
    }
    true
}

/// Returns the unique stable assignment, if exactly one exists within budget.
///
/// # Errors
///
/// Propagates [`SppError::BudgetExceeded`].
pub fn unique_stable_assignment(
    inst: &SppInstance,
    budget: u64,
) -> Result<Option<PathAssignment>, SppError> {
    let mut all = enumerate_stable_assignments(inst, budget)?;
    if all.len() == 1 {
        Ok(Some(all.remove(0)))
    } else {
        Ok(None)
    }
}

/// Summary statistics of the solution structure, used in experiment reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolutionSummary {
    /// Number of stable assignments found.
    pub count: usize,
    /// Per-node count of distinct routes used across solutions.
    pub distinct_routes: BTreeMap<NodeId, usize>,
}

/// Computes a [`SolutionSummary`] within the given budget.
///
/// # Errors
///
/// Propagates [`SppError::BudgetExceeded`].
pub fn summarize_solutions(inst: &SppInstance, budget: u64) -> Result<SolutionSummary, SppError> {
    let all = enumerate_stable_assignments(inst, budget)?;
    let mut distinct_routes = BTreeMap::new();
    for v in inst.nodes() {
        let mut routes: Vec<&Route> = all.iter().map(|pi| &pi[v.index()]).collect();
        routes.sort();
        routes.dedup();
        distinct_routes.insert(v, routes.len());
    }
    Ok(SolutionSummary { count: all.len(), distinct_routes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets;

    fn route(inst: &SppInstance, s: &str) -> Route {
        Route::from(inst.parse_path(s).unwrap())
    }

    #[test]
    fn disagree_has_two_solutions() {
        let inst = gadgets::disagree();
        let sols = enumerate_stable_assignments(&inst, 100_000).unwrap();
        assert_eq!(sols.len(), 2);
        let rendered: Vec<String> = sols.iter().map(|pi| fmt_assignment(&inst, pi)).collect();
        assert!(rendered.contains(&"(d, xyd, yd)".to_string()), "{rendered:?}");
        assert!(rendered.contains(&"(d, xd, yxd)".to_string()), "{rendered:?}");
    }

    #[test]
    fn bad_gadget_has_no_solution() {
        let sols = enumerate_stable_assignments(&gadgets::bad_gadget(), 1_000_000).unwrap();
        assert!(sols.is_empty());
    }

    #[test]
    fn good_gadget_unique_solution() {
        let inst = gadgets::good_gadget();
        let sol = unique_stable_assignment(&inst, 1_000_000).unwrap().unwrap();
        assert_eq!(fmt_assignment(&inst, &sol), "(d, 1d, 2d, 3d)");
    }

    #[test]
    fn fig6_converged_assignments_are_stable() {
        // Example A.2 names two convergent outcomes:
        // (d, xd, yd, zd, azd, uvazd, vazd) and (d, xd, yd, zd, azd, uazd, vuazd).
        let inst = gadgets::fig6();
        for (u_path, v_path) in [("uvazd", "vazd"), ("uazd", "vuazd")] {
            let mut pi: PathAssignment = vec![Route::empty(); inst.node_count()];
            pi[inst.dest().index()] = Route::path(Path::trivial(inst.dest()));
            for (name, path) in
                [("x", "xd"), ("y", "yd"), ("z", "zd"), ("a", "azd"), ("u", u_path), ("v", v_path)]
            {
                let v = inst.node_by_name(name).unwrap();
                pi[v.index()] = route(&inst, path);
            }
            assert!(is_stable(&inst, &pi), "({u_path}, {v_path}) should be stable");
        }
    }

    #[test]
    fn consistency_rejects_dangling_next_hop() {
        let inst = gadgets::disagree();
        let d = inst.dest();
        let x = inst.node_by_name("x").unwrap();
        let y = inst.node_by_name("y").unwrap();
        let mut pi: PathAssignment = vec![Route::empty(); 3];
        pi[d.index()] = Route::path(Path::trivial(d));
        pi[x.index()] = route(&inst, "xyd");
        pi[y.index()] = route(&inst, "yd"); // consistent
        assert!(is_consistent(&inst, &pi));
        pi[y.index()] = Route::empty(); // x's tail now dangles
        assert!(!is_consistent(&inst, &pi));
    }

    #[test]
    fn stability_rejects_suboptimal_choice() {
        let inst = gadgets::disagree();
        let d = inst.dest();
        let x = inst.node_by_name("x").unwrap();
        let y = inst.node_by_name("y").unwrap();
        let mut pi: PathAssignment = vec![Route::empty(); 3];
        pi[d.index()] = Route::path(Path::trivial(d));
        // Both direct: consistent but not stable (each prefers the other's
        // route's extension).
        pi[x.index()] = route(&inst, "xd");
        pi[y.index()] = route(&inst, "yd");
        assert!(is_consistent(&inst, &pi));
        assert!(!is_stable(&inst, &pi));
    }

    #[test]
    fn budget_is_enforced() {
        let err = enumerate_stable_assignments(&gadgets::fig6(), 5).unwrap_err();
        assert_eq!(err, SppError::BudgetExceeded { budget: 5 });
    }

    #[test]
    fn summary_counts_distinct_routes() {
        let inst = gadgets::disagree();
        let s = summarize_solutions(&inst, 100_000).unwrap();
        assert_eq!(s.count, 2);
        let x = inst.node_by_name("x").unwrap();
        assert_eq!(s.distinct_routes[&x], 2); // xyd and xd across the 2 solutions
        assert_eq!(s.distinct_routes[&inst.dest()], 1);
    }

    #[test]
    fn line2_unique_solution() {
        let inst = gadgets::line2();
        let sol = unique_stable_assignment(&inst, 1_000).unwrap().unwrap();
        assert_eq!(fmt_assignment(&inst, &sol), "(d, vd)");
    }
}
